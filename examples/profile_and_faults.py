#!/usr/bin/env python
"""Profiling a schedule and studying a degraded link.

Two workflows the simulator enables beyond headline numbers:

1. **Profiling** — run with trace collection and inspect per-thread-
   block utilization, the heaviest instruction occurrences, and an
   ASCII timeline (the analysis loop behind the paper's tuning).
2. **Fault injection** — rerun with one NIC at 25% bandwidth and watch
   the NIC-striped AllToNext shrug while the single-path baseline
   stalls.

Run:  python examples/profile_and_faults.py
"""

from repro.algorithms import alltonext, naive_alltonext
from repro.core import CompilerOptions, compile_program
from repro.runtime import (
    IrSimulator,
    SimConfig,
    critical_path,
    slowest_threadblocks,
    timeline,
    utilization_report,
)
from repro.topology import ndv4

NODES, GPUS = 2, 8
MiB = 1024 * 1024
SIZE = 32 * MiB


def main() -> None:
    topology = ndv4(NODES)
    program = alltonext(NODES, GPUS, instances=4, protocol="Simple")
    algo = compile_program(
        program, CompilerOptions(max_threadblocks=108)
    )

    result = IrSimulator(
        algo.ir, topology, config=SimConfig(collect_trace=True)
    ).run(chunk_bytes=SIZE / algo.sizing_chunks())
    print(f"AllToNext, {SIZE >> 20}MB: {result.time_us:.1f} us\n")

    print("== five latest-finishing thread blocks ==")
    for profile in slowest_threadblocks(result, top=5):
        print(f"  r{profile.rank}/tb{profile.tb_id}: "
              f"finishes {profile.last_end_us:.1f}us, "
              f"{profile.utilization:.0%} busy")

    print("\n== heaviest instruction occurrences ==")
    for line in critical_path(result, top=5):
        print(f"  {line}")

    boundary_sender = GPUS - 1  # last GPU of node 0
    print(f"\n== timeline of rank {boundary_sender} "
          "(the boundary sender) ==")
    print(timeline(result, rank=boundary_sender, width=56))

    print("\n== utilization (first 8 rows) ==")
    print("\n".join(utilization_report(result).splitlines()[:9]))

    # -- fault injection --------------------------------------------------
    degraded = {"nic_out[0,7]": 0.25}  # the boundary sender GPU's NIC
    print("\n== degrading one NIC to 25% bandwidth ==")
    for label, builder in [
        ("striped AllToNext", lambda: alltonext(
            NODES, GPUS, instances=4, protocol="Simple")),
        ("single-path baseline", lambda: naive_alltonext(NODES, GPUS)),
    ]:
        prog = builder()
        compiled = compile_program(
            prog, CompilerOptions(max_threadblocks=108)
        )
        sizing = compiled.sizing_chunks()
        healthy = IrSimulator(compiled.ir, ndv4(NODES)).run(
            chunk_bytes=SIZE / sizing).time_us
        hurt = IrSimulator(
            compiled.ir, ndv4(NODES),
            config=SimConfig(degradations=degraded),
        ).run(chunk_bytes=SIZE / sizing).time_us
        print(f"  {label:>22s}: {healthy:8.1f} -> {hurt:8.1f} us "
              f"({hurt / healthy:4.2f}x slower)")
    print(
        "\nThe baseline funnels everything through one NIC, so a single "
        "slow link is\nthe whole story; the scatter variant only loses "
        "its share of one stripe."
    )


if __name__ == "__main__":
    main()
