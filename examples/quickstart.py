#!/usr/bin/env python
"""Quickstart: write, compile, verify, and benchmark a collective.

This walks the full MSCCLang pipeline on a Ring AllReduce for a single
8-GPU A100 node:

1. trace the algorithm in the chunk-oriented DSL,
2. compile it to MSCCL-IR (postcondition-verified, deadlock-audited),
3. execute the IR on real numpy data and check every element,
4. simulate its latency across buffer sizes against NCCL.

Run:  python examples/quickstart.py
"""

from repro.core import AllReduce, MSCCLProgram, chunk, compile_program
from repro.nccl import NcclModel
from repro.runtime import IrExecutor, IrSimulator
from repro.topology import ndv4
from repro.analysis import format_size, size_grid

NUM_RANKS = 8


def write_ring_allreduce() -> MSCCLProgram:
    """The classic Ring AllReduce in a dozen lines of MSCCLang."""
    collective = AllReduce(NUM_RANKS, chunk_factor=NUM_RANKS,
                           in_place=True)
    # The paper's best mid-size config: the logical ring striped over 4
    # channels (ch=...), the whole program parallelized 8 ways, LL.
    with MSCCLProgram("quickstart_ring", collective,
                      protocol="LL", instances=8) as program:
        for index in range(NUM_RANKS):
            channel = index % 4
            # Reduce pass: the chunk circles the ring, accumulating.
            c = chunk((index + 1) % NUM_RANKS, "in", index)
            for step in range(1, NUM_RANKS):
                nxt = (index + 1 + step) % NUM_RANKS
                c = chunk(nxt, "in", index).reduce(c, ch=channel)
            # Copy pass: the total circles once more.
            for step in range(NUM_RANKS - 1):
                nxt = (index + 1 + step) % NUM_RANKS
                c = c.copy(nxt, "in", index, ch=channel)
    return program


def main() -> None:
    program = write_ring_allreduce()
    print(f"traced {len(program.dag.operations())} chunk operations")

    algo = compile_program(program)  # verifies + audits by default
    ir = algo.ir
    print(
        f"compiled: {ir.instruction_count()} instructions on "
        f"{ir.threadblock_count()} thread blocks over "
        f"{ir.channels_used()} channels"
    )
    print(f"opcode mix: {ir.op_histogram()}")
    for name, row in algo.compile_summary.items():
        print(f"  pass {name:<9s} {row['duration_us']:8.1f} us")

    IrExecutor(ir, algo.collective).run_and_check()
    print("numeric check: every output chunk equals the sum of all "
          "ranks' inputs")

    topology = ndv4(1)
    simulator = IrSimulator(ir, topology)
    nccl = NcclModel(ndv4(1))
    print(f"\n{'size':>8s} {'ours (us)':>10s} {'NCCL (us)':>10s} "
          f"{'speedup':>8s}")
    for size in size_grid(16 * 1024, 4 * 1024 * 1024):
        ours = simulator.run(chunk_bytes=size / NUM_RANKS).time_us
        theirs = nccl.allreduce_time(size).time_us
        print(f"{format_size(size):>8s} {ours:>10.1f} {theirs:>10.1f} "
              f"{theirs / ours:>7.2f}x")


if __name__ == "__main__":
    main()
