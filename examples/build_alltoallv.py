#!/usr/bin/env python
"""Authoring an alltoallv at the thread-block level with repro.build.

The chunk DSL assumes every rank moves the same amount of data, so a
variable-count alltoall — rank ``src`` sends ``counts[src][dst]``
chunks to rank ``dst`` — cannot be traced through it. The step-level
builder API writes the MSCCL-IR directly instead: one thread block per
peer connection, explicit send/recv steps sized from the count matrix,
and the same validation the compile pipeline runs (deadlock/payload
audit plus postcondition verification against AllToAllV).

The resulting IR is interchangeable with imported XML: this script
round-trips it through the exporter/importer and cross-checks both
copies in the data-level executor and the timing simulator.

Run:  python examples/build_alltoallv.py
"""

from repro.build import IrBuilder
from repro.core import AllToAllV, import_xml
from repro.runtime import IrExecutor, IrSimulator
from repro.topology import generic

# counts[src][dst]: deliberately skewed so every buffer has a
# different size and no uniform-chunk assumption survives.
COUNTS = [
    [1, 2, 1, 3],
    [2, 1, 4, 1],
    [1, 1, 1, 1],
    [3, 2, 1, 2],
]


def build_alltoallv(counts) -> "IrBuilder":
    coll = AllToAllV(counts)
    builder = IrBuilder("alltoallv_builder", coll)
    for rank in range(coll.num_ranks):
        gpu = builder.gpu(rank)  # buffer sizes come from the collective
        local = gpu.threadblock()
        local.copy("input", coll.send_offset(rank, rank),
                   "output", coll.recv_offset(rank, rank),
                   counts[rank][rank])
        for peer in range(coll.num_ranks):
            if peer == rank:
                continue
            tb = gpu.threadblock(send=peer, recv=peer)
            if counts[rank][peer]:
                tb.send("input", coll.send_offset(rank, peer),
                        counts[rank][peer])
            if counts[peer][rank]:
                tb.recv("output", coll.recv_offset(peer, rank),
                        counts[peer][rank])
    return builder


def main() -> None:
    builder = build_alltoallv(COUNTS)
    coll = builder.collective

    # build() audits the IR and verifies its traced semantics against
    # the AllToAllV postcondition; check() additionally runs it on
    # data in the executor.
    ir = builder.check()
    print(f"{ir.name}: verified; {ir.instruction_count()} instructions, "
          f"{ir.threadblock_count()} thread blocks")

    # The builder output and its XML round-trip are the same program.
    imported = import_xml(ir.to_xml())
    assert imported.to_dict() == ir.to_dict()
    IrExecutor(imported, coll).run_and_check()
    print("XML round-trip: identical IR, executor check passed")

    topology = generic(coll.num_ranks)
    for label, program in (("built", ir), ("imported", imported)):
        result = IrSimulator(program, topology).run(chunk_bytes=1 << 17)
        print(f"{label:>8s}: {result.time_us:.1f} us for "
              f"{coll.sizing_chunks()} chunks of 128KB")

    print("\nEvery rank moved a different amount of data — the "
          "variable-size path holds end to end.")


if __name__ == "__main__":
    main()
