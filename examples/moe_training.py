#!/usr/bin/env python
"""End-to-end workload modeling (paper section 7.6).

The paper reports 1.10-1.89x speedups training a Mixture-of-Experts
model and 1.22-1.29x serving a language model after swapping NCCL
collectives for MSCCLang ones. This example reproduces the mechanism:
price a training step's collectives (MoE AllToAlls + a gradient
AllReduce) with the NCCL baseline and with the custom algorithms, and
report the step-level speedup at several communication intensities.

Run:  python examples/moe_training.py
"""

from repro.algorithms import hierarchical_allreduce, twostep_alltoall
from repro.analysis import (
    inference_serving_step,
    ir_timer,
    moe_training_step,
)
from repro.baselines import CudaTwoStepAllToAll
from repro.core import CompilerOptions, compile_program
from repro.nccl import NcclModel
from repro.topology import ndv4

NODES, GPUS = 2, 8


def build_timers(topology):
    """(baseline, optimized) collective timers for the workload model."""
    options = CompilerOptions(
        max_threadblocks=topology.machine.sm_count
    )
    allreduce = compile_program(
        hierarchical_allreduce(NODES, GPUS, instances=2,
                               protocol="LL128", intra_parallel=NODES),
        options,
    )
    alltoall = compile_program(
        twostep_alltoall(NODES, GPUS, protocol="LL128"), options
    )
    nccl = NcclModel(ndv4(NODES))
    baseline = {
        "allreduce": lambda n: nccl.allreduce_time(n).time_us,
        "alltoall": lambda n: nccl.alltoall_time(n).time_us,
    }
    # CompiledAlgorithm carries its collective, so no need to retrace
    # the programs just to recover the sizing information.
    optimized = {
        "allreduce": ir_timer(allreduce.ir, ndv4(NODES),
                              allreduce.collective),
        "alltoall": ir_timer(alltoall.ir, ndv4(NODES),
                             alltoall.collective),
    }
    return baseline, optimized


def main() -> None:
    topology = ndv4(NODES)
    baseline, optimized = build_timers(topology)

    print("== MoE training step (4 AllToAlls + gradient AllReduce) ==")
    print(f"{'expert MB':>10s} {'comm frac':>10s} {'step speedup':>13s}")
    for expert_mb in (16, 32, 64, 128, 256):
        model = moe_training_step(16, expert_mb=expert_mb,
                                  dense_mb=2 * expert_mb)
        fraction = model.communication_fraction(baseline)
        speedup = model.speedup(baseline, optimized)
        print(f"{expert_mb:>10d} {fraction:>9.0%} {speedup:>12.2f}x")

    print("\n== Tensor-parallel serving step (8 small AllReduces) ==")
    print(f"{'hidden MB':>10s} {'comm frac':>10s} {'step speedup':>13s}")
    for hidden_mb in (2, 4, 8, 16):
        model = inference_serving_step(hidden_mb=hidden_mb)
        fraction = model.communication_fraction(baseline)
        speedup = model.speedup(baseline, optimized)
        print(f"{hidden_mb:>10d} {fraction:>9.0%} {speedup:>12.2f}x")

    print(
        "\nAs in the paper, the workload gain tracks the communication "
        "fraction: communication-heavy MoE steps approach the raw "
        "collective speedup, compute-heavy steps see less."
    )


if __name__ == "__main__":
    main()
