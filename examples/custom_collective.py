#!/usr/bin/env python
"""Designing a brand-new collective from scratch (paper section 7.4).

MSCCLang's point is that collectives outside the MPI canon are cheap to
build. Here we define **Shift(k)** — every rank sends its buffer to the
rank ``k`` positions ahead (a generalization of the paper's AllToNext)
— as a ``Custom`` collective with its own postcondition, write two
implementations (direct sends vs. NIC-parallel scatter/forward/gather
at node boundaries), let the compiler verify both, and race them.

Run:  python examples/custom_collective.py
"""

from repro.analysis import format_size, ir_timer, size_grid
from repro.core import (
    CompilerOptions,
    Custom,
    InputChunk,
    MSCCLProgram,
    chunk,
    compile_program,
)
from repro.runtime import IrExecutor
from repro.topology import ndv4

NODES, GPUS, SHIFT = 2, 8, 3
RANKS = NODES * GPUS
MiB = 1024 * 1024


def shift_collective(shards: int) -> Custom:
    """Rank r's output must hold rank (r - SHIFT)'s input buffer."""

    def postcondition(rank: int):
        source = rank - SHIFT
        if source < 0:
            return {}  # the first SHIFT ranks receive nothing
        return {i: InputChunk(source, i) for i in range(shards)}

    return Custom(RANKS, postcondition, chunk_factor=shards,
                  name=f"shift{SHIFT}")


def direct_shift() -> "MSCCLProgram":
    """Baseline: one direct send per rank pair."""
    with MSCCLProgram("shift_direct", shift_collective(GPUS),
                      gpus_per_node=GPUS) as program:
        for rank in range(RANKS - SHIFT):
            chunk(rank, "in", 0, count=GPUS).copy(rank + SHIFT, "out", 0)
    return program


def scattered_shift(instances: int = 4) -> "MSCCLProgram":
    """Node-boundary hops scatter across all GPUs to use every NIC."""
    with MSCCLProgram("shift_scattered", shift_collective(GPUS),
                      gpus_per_node=GPUS, instances=instances) as program:
        for rank in range(RANKS - SHIFT):
            dst = rank + SHIFT
            src_span = chunk(rank, "in", 0, count=GPUS)
            if rank // GPUS == dst // GPUS:
                src_span.copy(dst, "out", 0)
                continue
            node_base = (rank // GPUS) * GPUS
            next_base = (dst // GPUS) * GPUS
            for shard in range(GPUS):
                piece = chunk(rank, "in", shard)
                helper = node_base + shard
                if helper != rank:
                    piece = piece.copy(helper, "sc", 0)
                landed = piece.copy(next_base + shard, "sc", 1)
                landed.copy(dst, "out", shard)
    return program


def main() -> None:
    topology = ndv4(NODES)
    options = CompilerOptions(
        max_threadblocks=topology.machine.sm_count
    )
    programs = {
        "direct": compile_program(direct_shift(), options),
        "scattered": compile_program(scattered_shift(), options),
    }
    for label, algo in programs.items():
        IrExecutor(algo.ir, algo.collective).run_and_check()
        print(f"{label}: verified; "
              f"{algo.ir.instruction_count()} instructions, "
              f"{algo.ir.max_threadblocks_per_gpu()} thread blocks/GPU "
              "max")

    timers = {
        label: ir_timer(algo.ir, ndv4(NODES), algo.collective)
        for label, algo in programs.items()
    }
    print(f"\n{'size':>8s} {'direct':>10s} {'scattered':>10s} "
          f"{'speedup':>8s}")
    for size in size_grid(64 * 1024, 256 * MiB)[::2]:
        direct = timers["direct"](size)
        scattered = timers["scattered"](size)
        print(f"{format_size(size):>8s} {direct:>10.1f} "
              f"{scattered:>10.1f} {direct / scattered:>7.2f}x")
    print("\nThe compiler verified both against the Shift postcondition; "
          "the scattered version wins once buffers amortize its extra "
          "hops, exactly like AllToNext in the paper.")


if __name__ == "__main__":
    main()
