#!/usr/bin/env python
"""Autotuning schedules and deploying them behind the NCCL-like API.

The paper's programs "took 15 minutes to an hour to write and manually
optimize" — the tuning loop being: try (channels, parallelization,
protocol) combinations, keep the fastest per buffer-size band, and let
the runtime select dynamically with NCCL fallback (section 6). This
example automates the whole loop:

1. autotune the Ring AllReduce schedule space on an 8xA100 node,
2. package the per-size winners as an AlgorithmRegistry,
3. mount it on a Communicator and replay a mixed workload,
4. show the per-algorithm call summary.

Run:  python examples/autotune_registry.py
"""

from repro.algorithms import ring_allreduce
from repro.analysis import Candidate, build_registry, format_size, tune
from repro.nccl import NcclModel
from repro.runtime import Communicator
from repro.topology import ndv4

KiB, MiB = 1024, 1024 * 1024


def builder(channels, instances, protocol):
    return ring_allreduce(8, channels=channels, instances=instances,
                          protocol=protocol)


def main() -> None:
    topology = ndv4(1)
    space = [
        Candidate(1, 2, "LL"),
        Candidate(4, 8, "LL"),
        Candidate(4, 8, "LL128"),
        Candidate(2, 8, "Simple"),
        Candidate(1, 24, "Simple"),
    ]
    sizes = [16 * KiB, 128 * KiB, 1 * MiB, 8 * MiB, 64 * MiB]
    print(f"tuning {len(space)} schedule candidates over "
          f"{len(sizes)} sizes...")
    result = tune(builder, topology, sizes,
                  collective_sizing_chunks=8, space=space)
    print(result.table())
    for candidate, reason in result.skipped:
        print(f"skipped {candidate.label}: {reason}")

    registry = build_registry(result, "allreduce")
    print(f"\nregistry: {len(registry.algorithms)} size ranges")
    for entry in registry.algorithms:
        hi = ("inf" if entry.max_bytes == float("inf")
              else format_size(entry.max_bytes + 1))
        print(f"  [{format_size(max(entry.min_bytes, 1)):>6s} .. "
              f"{hi:>6s}]  {entry.label}")

    comm = Communicator(ndv4(1))
    comm.register_registry(registry, sizing_chunks=8)
    nccl = NcclModel(ndv4(1))
    print("\nreplaying a mixed workload through the communicator:")
    workload = [16 * KiB, 1 * MiB, 16 * KiB, 64 * MiB, 128 * KiB,
                8 * MiB, 64 * MiB]
    for size in workload:
        ours = comm.all_reduce(size).time_us
        base = nccl.allreduce_time(size).time_us
        print(f"  allreduce {format_size(size):>6s}: {ours:8.1f} us "
              f"(NCCL {base:8.1f} us, {base / ours:4.2f}x)")
    print("\n" + comm.summary_text())


if __name__ == "__main__":
    main()
