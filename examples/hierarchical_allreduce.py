#!/usr/bin/env python
"""The paper's running example: hierarchical AllReduce on 2 nodes.

Demonstrates the scheduling directives of section 5 — channel pinning
(``ch=``), chunk parallelization (``parallelize``), and aggregation
(multi-count chunk references) — and why the single-kernel MSCCLang
version beats the same algorithm composed from four NCCL collective
calls (Figure 8c's red line): kernel-launch overheads and the lost
cross-phase pipelining of Figure 6.

Run:  python examples/hierarchical_allreduce.py
"""

from repro.algorithms import hierarchical_allreduce
from repro.analysis import format_size, ir_timer, size_grid
from repro.baselines import ComposedHierarchicalAllReduce
from repro.core import CompilerOptions, compile_program
from repro.nccl import NcclModel
from repro.runtime import IrExecutor, SimConfig
from repro.topology import ndv4

NODES, GPUS = 2, 8
MiB = 1024 * 1024


def main() -> None:
    topology = ndv4(NODES)
    program = hierarchical_allreduce(
        NODES, GPUS,
        instances=4,
        protocol="Simple",
        intra_parallel=4,  # parallelize(...) on the intra phases
    )
    algo = compile_program(
        program, CompilerOptions(max_threadblocks=topology.machine.sm_count)
    )
    ir = algo.ir
    print(f"program: {program.name}")
    print(f"channels: {ir.channels_used()} "
          "(intra-RS, inter, intra-AG phases on separate channels)")
    IrExecutor(ir, algo.collective).run_and_check()
    print("numeric check passed on all 16 ranks\n")

    fused = ir_timer(ir, topology, algo.collective)
    sequential = ir_timer(ir, ndv4(NODES), algo.collective,
                          sim_config=SimConfig(max_tiles=1))
    composed = ComposedHierarchicalAllReduce(ndv4(NODES))
    nccl = NcclModel(ndv4(NODES))

    print(f"{'size':>8s} {'fused':>10s} {'no-pipeline':>12s} "
          f"{'composed':>10s} {'NCCL':>10s}   (us)")
    for size in size_grid(1 * MiB, 1024 * MiB)[::2]:
        print(
            f"{format_size(size):>8s} {fused(size):>10.1f} "
            f"{sequential(size):>12.1f} {composed.time_us(size):>10.1f} "
            f"{nccl.allreduce_time(size).time_us:>10.1f}"
        )
    print(
        "\nfused < no-pipeline: the tile loop overlaps intra- and "
        "inter-node phases (Figure 6);\n"
        "fused < composed: one cooperative kernel avoids per-phase "
        "launches and barriers."
    )


if __name__ == "__main__":
    main()
