#!/usr/bin/env python
"""Peek inside the compiler: Chunk DAG -> Instruction DAG -> MSCCL-IR.

Reproduces the walkthrough of the paper's Figure 4 on a small
hierarchical AllReduce: trace it, show the chunk operations and their
dependencies, lower and fuse, then print the scheduled IR in the
msccl-tools-style XML.

Run:  python examples/inspect_compilation.py
"""

from repro.algorithms import hierarchical_allreduce
from repro.core import compile_program, fuse, lower

NODES, GPUS = 2, 3  # the paper's Figure 1 geometry


def main() -> None:
    program = hierarchical_allreduce(NODES, GPUS)
    ops = program.dag.operations()
    print(f"== Chunk DAG: {len(ops)} operations ==")
    for op in ops[:8]:
        deps = sorted(op.deps)
        print(f"  {op!r} deps={deps}")
    print("  ...")

    idag = lower(program.dag, instances=program.instances)
    print(f"\n== Instruction DAG (before fusion): {len(idag)} "
          "instructions ==")
    unfused_hist = {}
    for instr in idag.live():
        unfused_hist[instr.op.value] = (
            unfused_hist.get(instr.op.value, 0) + 1
        )
    print(f"  opcode mix: {unfused_hist}")

    fuse(idag)
    fused_hist = {}
    for instr in idag.live():
        fused_hist[instr.op.value] = fused_hist.get(instr.op.value, 0) + 1
    print(f"\n== After peephole fusion: {len(idag)} instructions ==")
    print(f"  opcode mix: {fused_hist}")
    print("  (rcs/rrcs/rrs keep intermediate chunks in registers)")

    algo = compile_program(program)
    ir = algo.ir
    print(f"\n== Scheduled MSCCL-IR: {ir.threadblock_count()} thread "
          f"blocks, {ir.channels_used()} channels ==")
    print("per-pass wall time:")
    for name, row in algo.compile_summary.items():
        print(f"  {name:<9s} {row['duration_us']:8.1f} us")
    xml = ir.to_xml()
    print("\n".join(xml.splitlines()[:24]))
    print("  ...")


if __name__ == "__main__":
    main()
