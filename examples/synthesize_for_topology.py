#!/usr/bin/env python
"""Synthesizing a topology-aware collective (the SCCL workflow).

The paper positions MSCCLang as the layer that turns synthesized routes
into runnable schedules (section 7.5). This example plays both roles on
the DGX-1 hybrid cube mesh — a machine with point-to-point NVLinks
where some GPU pairs have no direct link and others have double-width
links:

1. synthesize one load-balanced broadcast tree per source rank,
2. compile + verify the resulting AllGather with the normal pipeline,
3. race it against the link-oblivious (1,2,2) schedule and the Ring.

Run:  python examples/synthesize_for_topology.py
"""

from repro.algorithms import ring_allgather, sccl_allgather_122
from repro.analysis import format_size, ir_timer, size_grid
from repro.core import CompilerOptions, compile_program
from repro.runtime import IrExecutor
from repro.synth import synthesize_allgather
from repro.topology import dgx1_mesh

MiB = 1024 * 1024


def main() -> None:
    topology = dgx1_mesh()
    print("DGX-1 cube mesh link widths (NVLink bricks):")
    for rank in range(8):
        row = " ".join(
            str(topology.link_width(rank, other)) for other in range(8)
        )
        print(f"  GPU {rank}: {row}")

    result = synthesize_allgather(topology, instances=2)
    options = CompilerOptions(max_threadblocks=80)
    algo = compile_program(result.program, options)
    ir = algo.ir
    IrExecutor(ir, algo.collective).run_and_check()
    print(f"\nsynthesized {len(result.trees)} trees; max edge load "
          f"{result.max_edge_load():.0f}; verified on data")
    print("tree for source GPU 0 (child <- parent):")
    for child, parent in sorted(result.trees[0].items()):
        if parent is not None:
            print(f"  {child} <- {parent} "
                  f"(width {topology.link_width(parent, child)})")

    contenders = {
        "synthesized": ir_timer(ir, topology, algo.collective),
    }
    for label, program in [
        ("sccl (1,2,2)", sccl_allgather_122(8, instances=2)),
        ("ring", ring_allgather(8, channels=2, instances=2)),
    ]:
        compiled = compile_program(program, options)
        contenders[label] = ir_timer(compiled.ir, dgx1_mesh(),
                                     compiled.collective)

    print(f"\n{'size':>8s}" + "".join(
        f"{label:>14s}" for label in contenders) + "   (us)")
    for size in size_grid(64 * 1024, 128 * MiB)[::2]:
        row = f"{format_size(size):>8s}"
        for timer in contenders.values():
            row += f"{timer(size):>14.1f}"
        print(row)
    print(
        "\nThe synthesized trees avoid relay hops over missing links "
        "and lean on\nthe double-width pairs, so they win from ~1MB up; "
        "the 2-step (1,2,2)\nschedule keeps the latency crown at tiny "
        "sizes (fewer hops)."
    )


if __name__ == "__main__":
    main()
