"""Figure 8b: single-node 16xV100 (DGX-2) AllReduce speedup over NCCL.

Series: All Pairs r=2/r=4 (LL), Ring ch=4 r=8 (LL), Ring ch=8 r=4
(LL128). Same qualitative story as Figure 8a on the bigger, slower
node: All Pairs dominates small sizes even more (2 steps vs 30), the
multi-channel rings win the middle band.
"""

import pytest

from repro.algorithms import allpairs_allreduce, ring_allreduce
from repro.analysis import ir_timer, run_sweep
from repro.nccl import NcclModel
from repro.runtime import IrSimulator
from repro.topology import dgx2

from bench_common import KiB, MiB, band_max, compile_on, report, sweep_sizes

BASELINE = "NCCL"
RANKS = 16


@pytest.fixture(scope="module")
def sweep():
    topology = dgx2(1)
    nccl = NcclModel(dgx2(1))
    configs = {}
    for label, program in [
        ("All Pairs r=2 LL", allpairs_allreduce(RANKS, instances=2,
                                                protocol="LL")),
        ("All Pairs r=4 LL", allpairs_allreduce(RANKS, instances=4,
                                                protocol="LL")),
        ("Ring ch=4 r=8 LL", ring_allreduce(RANKS, channels=4,
                                            instances=8, protocol="LL")),
        ("Ring ch=8 r=4 LL128", ring_allreduce(RANKS, channels=8,
                                               instances=4,
                                               protocol="LL128")),
    ]:
        ir = compile_on(topology, program)
        configs[label] = ir_timer(ir, topology, program.collective)
    configs[BASELINE] = lambda size: nccl.allreduce_time(size).time_us
    return run_sweep("fig8b", sweep_sizes(2 * KiB, 32 * MiB), configs)


def test_fig8b_table(sweep):
    report("fig8b", "Figure 8b: 1-node 16xV100 AllReduce", sweep, BASELINE)


def test_allpairs_wins_small_sizes(sweep):
    # The paper reports up to 1.8x (and higher spikes) on 16 ranks.
    assert band_max(sweep, "All Pairs r=4 LL", BASELINE,
                    2 * KiB, 512 * KiB) > 1.5


def test_ring_wins_mid_band(sweep):
    assert band_max(sweep, "Ring ch=4 r=8 LL", BASELINE,
                    32 * KiB, 4 * MiB) > 1.2


def test_benchmark_allpairs_64kb(benchmark):
    topology = dgx2(1)
    program = allpairs_allreduce(RANKS, instances=2, protocol="LL")
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=64 * KiB / RANKS)
