"""Figure 8a: single-node 8xA100 AllReduce speedup over NCCL.

Series: All Pairs r=2/r=4 (LL) and Ring ch=4 r=8 (LL and LL128), all
relative to the NCCL Ring baseline with its size-based protocol choice.

Paper shape: All Pairs wins small sizes (its 2 steps vs the ring's
2R-2); the multi-channel LL Ring wins up to ~1.9x in the 32KB-3MB band;
LL128 takes over around 2-4MB; all plotted configs fade below NCCL's
24-channel Simple schedule at >= 8MB.
"""

import pytest

from repro.algorithms import allpairs_allreduce, ring_allreduce
from repro.analysis import ir_timer, run_sweep
from repro.nccl import NcclModel
from repro.runtime import IrSimulator
from repro.topology import ndv4

from bench_common import KiB, MiB, band_max, compile_on, report, sweep_sizes

BASELINE = "NCCL"


@pytest.fixture(scope="module")
def sweep():
    topology = ndv4(1)
    nccl = NcclModel(ndv4(1))
    configs = {}
    for label, program in [
        ("All Pairs r=2 LL", allpairs_allreduce(8, instances=2,
                                                protocol="LL")),
        ("All Pairs r=4 LL", allpairs_allreduce(8, instances=4,
                                                protocol="LL")),
        ("Ring ch=4 r=8 LL", ring_allreduce(8, channels=4, instances=8,
                                            protocol="LL")),
        ("Ring ch=4 r=8 LL128", ring_allreduce(8, channels=4, instances=8,
                                               protocol="LL128")),
    ]:
        ir = compile_on(topology, program)
        configs[label] = ir_timer(ir, topology, program.collective)
    configs[BASELINE] = lambda size: nccl.allreduce_time(size).time_us
    return run_sweep("fig8a", sweep_sizes(1 * KiB, 32 * MiB), configs)


def test_fig8a_table(sweep):
    report("fig8a", "Figure 8a: 1-node 8xA100 AllReduce", sweep, BASELINE)


def test_allpairs_wins_small_sizes(sweep):
    assert band_max(sweep, "All Pairs r=4 LL", BASELINE,
                    1 * KiB, 1 * MiB) > 1.4


def test_ring_ll_wins_mid_band(sweep):
    peak = band_max(sweep, "Ring ch=4 r=8 LL", BASELINE,
                    32 * KiB, 4 * MiB)
    assert 1.2 < peak < 2.5  # the paper reports up to 1.9x

def test_all_configs_fade_at_large_sizes(sweep):
    speedups = sweep.speedups(BASELINE)
    largest = sweep.sizes[-1]
    for label, values in speedups.items():
        at_large = values[sweep.sizes.index(largest)]
        assert at_large < 1.1, (label, at_large)


def test_benchmark_ring_ll_1mb(benchmark):
    topology = ndv4(1)
    program = ring_allreduce(8, channels=4, instances=8, protocol="LL")
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=MiB / 8)
