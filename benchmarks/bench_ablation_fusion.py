"""Ablation: instruction fusion on/off (paper section 4.3).

Fusion rewrites recv+send chains into rcs/rrcs/rrs so intermediate
chunks flow through registers instead of taking an extra pass over
global memory. Disabling it must (a) inflate the instruction count and
(b) slow execution, most visibly at bandwidth-bound sizes.
"""

import pytest

from repro.algorithms import ring_allreduce
from repro.analysis import format_size, ir_timer, run_sweep, size_grid
from repro.core import CompilerOptions, compile_program
from repro.topology import ndv4

from bench_common import KiB, MiB, RESULTS_DIR, report

RANKS = 8


def _build(instr_fusion: bool):
    program = ring_allreduce(RANKS, channels=4, instances=4,
                             protocol="LL128")
    return compile_program(
        program,
        CompilerOptions(instr_fusion=instr_fusion, max_threadblocks=108),
    ), program.collective


@pytest.fixture(scope="module")
def sweep():
    topology = ndv4(1)
    fused_ir, collective = _build(True)
    unfused_ir, _ = _build(False)
    configs = {
        "fused": ir_timer(fused_ir, topology, collective),
        "unfused": ir_timer(unfused_ir, topology, collective),
    }
    return run_sweep(
        "ablation_fusion", size_grid(32 * KiB, 32 * MiB)[::2], configs
    ), fused_ir, unfused_ir


def test_fusion_table(sweep):
    result, fused_ir, unfused_ir = sweep
    report("ablation_fusion",
           "Ablation: instruction fusion (Ring AllReduce, 8xA100)",
           result, "unfused")
    print(f"fused instructions:   {fused_ir.instruction_count()}")
    print(f"unfused instructions: {unfused_ir.instruction_count()}")


def test_fusion_reduces_instructions(sweep):
    _, fused_ir, unfused_ir = sweep
    assert fused_ir.instruction_count() < \
        unfused_ir.instruction_count() * 0.75


def test_fusion_speeds_up_all_sizes(sweep):
    result, _, _ = sweep
    for speedup in result.speedups("unfused")["fused"]:
        assert speedup > 1.0


def test_benchmark_fused_ring(benchmark):
    from repro.runtime import IrSimulator

    ir, _ = _build(True)
    simulator = IrSimulator(ir, ndv4(1))
    benchmark(simulator.run, chunk_bytes=4 * MiB / RANKS)
