"""Shared infrastructure for the figure-reproduction benchmarks.

Every ``bench_fig*.py`` regenerates one figure of the paper's evaluation
(section 7): it sweeps buffer sizes over the figure's configurations,
prints the speedup table (the figure's series), writes it to
``benchmarks/results/``, and asserts the figure's qualitative claims.

Scale control: the default configurations are laptop-sized; set
``REPRO_FULL=1`` for the paper's full node counts and dense size grids.
Set ``REPRO_JOBS=N`` to shard each figure's (config x size) grid over N
worker processes — ``run_sweep`` reads it by default, and the merged
tables are bitwise-identical to a sequential run. Compiled IR persists
in the on-disk compile cache (``REPRO_CACHE_DIR``), so back-to-back
figure runs skip recompilation entirely.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Sequence

from repro.analysis import (
    SweepResult,
    run_sweep,
    size_grid,
    speedup_table,
    summary_lines,
)
from repro.core import (CompilerOptions, compile_program,
                        default_compile_cache)
from repro.core.compiler import CompiledAlgorithm
from repro.core.program import MSCCLProgram
from repro.topology.model import Topology

FULL = bool(os.environ.get("REPRO_FULL"))
RESULTS_DIR = Path(__file__).resolve().parent / "results"

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024


def sweep_sizes(start: int, end: int) -> Sequence[int]:
    """The figure's x axis; subsampled unless REPRO_FULL is set."""
    grid = size_grid(start, end)
    return grid if FULL else grid[::2]


def compile_on(topology: Topology,
               program: MSCCLProgram) -> CompiledAlgorithm:
    """Compile with the machine's SM limit enforced.

    Benches share the process-wide compile cache: figure scripts that
    sweep the same configurations (or re-run back to back) recompile
    nothing the cache has already seen.
    """
    return compile_program(
        program,
        CompilerOptions(max_threadblocks=topology.machine.sm_count,
                        cache=default_compile_cache()),
    )


def report(name: str, title: str, result: SweepResult,
           baseline: str) -> str:
    """Render, persist, and print one figure's table."""
    lines = [
        f"== {title} ==",
        f"(speedup over {baseline}; sizes are per-GPU buffer bytes)",
        "",
        speedup_table(result, baseline),
        "",
        *summary_lines(result, baseline),
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


def band_max(result: SweepResult, label: str, baseline: str,
             lo: int, hi: int) -> float:
    """Peak speedup of a series restricted to a size band."""
    speedups = result.speedups(baseline)[label]
    values = [
        s for size, s in zip(result.sizes, speedups) if lo <= size <= hi
    ]
    return max(values)
