"""Algorithm exploration: the AllReduce zoo on one 8xA100 node.

Section 7.1.2: "One advantage of MSCCLang is the ability to explore
different algorithms easily." This bench races every AllReduce in the
repertoire — Ring, All Pairs, recursive halving-doubling, double binary
tree, and NCCL's baseline — across the size axis, reproducing the
textbook regimes: latency-optimal algorithms (All Pairs, trees,
recursive) win small buffers; bandwidth-optimal pipelines (Ring) win
large ones.
"""

import pytest

from repro.algorithms import (
    allpairs_allreduce,
    double_binary_tree_allreduce,
    recursive_halving_doubling_allreduce,
    ring_allreduce,
)
from repro.analysis import ir_timer, run_sweep
from repro.nccl import NcclModel
from repro.runtime import IrSimulator
from repro.topology import ndv4

from bench_common import KiB, MiB, compile_on, report, sweep_sizes

BASELINE = "NCCL"
RANKS = 8


@pytest.fixture(scope="module")
def sweep():
    topology = ndv4(1)
    nccl = NcclModel(ndv4(1))
    configs = {}
    for label, program in [
        ("Ring ch=4 r=8 LL", ring_allreduce(
            RANKS, channels=4, instances=8, protocol="LL")),
        ("All Pairs r=4 LL", allpairs_allreduce(
            RANKS, instances=4, protocol="LL")),
        ("Rec. halving-doubling r=4", recursive_halving_doubling_allreduce(
            RANKS, instances=4, protocol="LL")),
        ("Double binary tree r=4", double_binary_tree_allreduce(
            RANKS, instances=4, protocol="LL", chunk_factor=2)),
        ("Ring ch=1 r=24 Simple", ring_allreduce(
            RANKS, channels=1, instances=24, protocol="Simple")),
    ]:
        ir = compile_on(topology, program)
        configs[label] = ir_timer(ir, topology, program.collective)
    configs[BASELINE] = lambda size: nccl.allreduce_time(size).time_us
    return run_sweep("allreduce_zoo", sweep_sizes(1 * KiB, 64 * MiB),
                     configs)


def test_zoo_table(sweep):
    report("allreduce_zoo",
           "Algorithm exploration: AllReduce zoo, 8xA100", sweep,
           BASELINE)


def test_low_latency_algorithms_win_small(sweep):
    """At 1KB some log-step or 2-step algorithm beats both rings."""
    idx = 0
    times = {
        label: series.times_us[idx]
        for label, series in sweep.series.items()
    }
    ring_best = min(times["Ring ch=4 r=8 LL"],
                    times["Ring ch=1 r=24 Simple"])
    flat_best = min(times["All Pairs r=4 LL"],
                    times["Rec. halving-doubling r=4"],
                    times["Double binary tree r=4"])
    assert flat_best < ring_best


def test_bandwidth_algorithms_win_large(sweep):
    idx = len(sweep.sizes) - 1
    times = {
        label: series.times_us[idx]
        for label, series in sweep.series.items()
    }
    assert times["Ring ch=1 r=24 Simple"] < times["All Pairs r=4 LL"]
    assert times["Ring ch=1 r=24 Simple"] < \
        times["Double binary tree r=4"]


def test_log_step_algorithms_beat_nccl_at_small_sizes(sweep):
    """Both log-depth newcomers clear the NCCL baseline comfortably in
    the latency-bound regime — the exploration pay-off the paper's All
    Pairs story illustrates."""
    speedups = sweep.speedups(BASELINE)
    for label in ("Rec. halving-doubling r=4", "Double binary tree r=4"):
        small = [
            s for size, s in zip(sweep.sizes, speedups[label])
            if size <= 64 * KiB
        ]
        assert min(small) > 1.2, label


def test_benchmark_rhd_1mb(benchmark):
    topology = ndv4(1)
    program = recursive_halving_doubling_allreduce(
        RANKS, instances=4, protocol="LL"
    )
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=MiB / RANKS)
