"""Figure 11: the SCCL (1,2,2) AllGather on a DGX-1, latency comparison.

Unlike the Figure 8 plots this figure reports absolute latency of the
same two-step AllGather algorithm under three runtimes: SCCL's own
direct-copy protocol, MSCCLang Simple, and MSCCLang LL.

Paper shape: MSCCLang LL is fastest at small sizes (lowest-latency
protocol); SCCL's direct copy overtakes both MSCCLang protocols at
middle sizes because it skips the FIFO staging pass entirely (section
7.5 leaves closing that gap to future work).
"""

import pytest

from repro.algorithms import sccl_allgather_122
from repro.analysis import format_size, ir_timer, latency_table, run_sweep
from repro.baselines import ScclRuntimeAllGather
from repro.runtime import IrSimulator
from repro.topology import dgx1

from bench_common import KiB, MiB, RESULTS_DIR, compile_on, sweep_sizes

RANKS = 8


@pytest.fixture(scope="module")
def sweep():
    topology = dgx1(1)
    sccl = ScclRuntimeAllGather(dgx1(1))
    configs = {"SCCL (1,2,2)": sccl.time_us}
    # Simple-Direct is the paper's section 7.5 future work ("SCCL direct
    # copy protocol can also be implemented in MSCCLang Simple
    # protocols"), implemented here.
    for protocol in ("Simple", "LL", "Simple-Direct"):
        program = sccl_allgather_122(RANKS, protocol=protocol)
        ir = compile_on(topology, program)
        configs[f"MSCCLang {protocol} (1,2,2)"] = ir_timer(
            ir, topology, program.collective
        )
    return run_sweep("fig11", sweep_sizes(32 * KiB, 1024 * MiB), configs)


def test_fig11_table(sweep):
    lines = [
        "== Figure 11: SCCL (1,2,2) AllGather on DGX-1 8xV100 ==",
        "(absolute latency in us; output-buffer size on the left)",
        "",
        latency_table(sweep),
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig11.txt").write_text(text + "\n")
    print("\n" + text)


def test_ll_fastest_at_small_sizes(sweep):
    idx = 0
    ll = sweep.series["MSCCLang LL (1,2,2)"].times_us[idx]
    simple = sweep.series["MSCCLang Simple (1,2,2)"].times_us[idx]
    sccl = sweep.series["SCCL (1,2,2)"].times_us[idx]
    assert ll < sccl < simple


def test_sccl_wins_middle_sizes(sweep):
    for size, target in zip(sweep.sizes, range(len(sweep.sizes))):
        if size == 4 * MiB or (4 * MiB < size < 16 * MiB):
            sccl = sweep.series["SCCL (1,2,2)"].times_us[target]
            simple = sweep.series["MSCCLang Simple (1,2,2)"].times_us[
                target]
            ll = sweep.series["MSCCLang LL (1,2,2)"].times_us[target]
            assert sccl < simple and sccl < ll
            break
    else:
        pytest.skip("no middle-size point in the sampled grid")


def test_latency_monotone_in_size(sweep):
    for series in sweep.series.values():
        assert series.times_us == sorted(series.times_us)


def test_future_work_direct_protocol_closes_the_gap(sweep):
    """Section 7.5's future work, implemented: MSCCLang with a direct-
    copy Simple protocol tracks SCCL closely at middle/large sizes where
    plain Simple loses by ~2x."""
    for index, size in enumerate(sweep.sizes):
        if size < 4 * MiB:
            continue
        sccl = sweep.series["SCCL (1,2,2)"].times_us[index]
        direct = sweep.series[
            "MSCCLang Simple-Direct (1,2,2)"].times_us[index]
        plain = sweep.series["MSCCLang Simple (1,2,2)"].times_us[index]
        assert direct < plain
        assert direct <= sccl * 1.35


def test_benchmark_sccl_allgather_1mb(benchmark):
    topology = dgx1(1)
    program = sccl_allgather_122(RANKS, protocol="LL")
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=MiB / RANKS)
