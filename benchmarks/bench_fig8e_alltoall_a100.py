"""Figure 8e: multi-node A100 AllToAll, speedup over the hand-written
CUDA Two-Step kernel.

Series: MSCCLang Two-Step with LL128 and Simple protocols, plus NCCL's
point-to-point AllToAll for reference.

Paper shape: both Two-Step implementations beat NCCL over most of the
range (aggregation amortizes per-message InfiniBand overhead); the
MSCCLang version is up to ~1.3x faster than the CUDA kernel (compiler
scheduling, no separate rearrangement kernel); NCCL catches the CUDA
kernel again at very large sizes.

Scale note: the paper uses 16 nodes (256 GPUs). The default here is
4x8 = 32 GPUs to keep runtime modest; REPRO_FULL=1 uses 8 nodes.
"""

import pytest

from repro.algorithms import twostep_alltoall
from repro.analysis import ir_timer, run_sweep
from repro.baselines import CudaTwoStepAllToAll
from repro.nccl import NcclModel
from repro.runtime import IrSimulator
from repro.topology import ndv4

from bench_common import (
    FULL,
    GiB,
    KiB,
    MiB,
    band_max,
    compile_on,
    report,
    sweep_sizes,
)

BASELINE = "CUDA Two-Step"
NODES = 8 if FULL else 4
GPUS = 8


@pytest.fixture(scope="module")
def sweep():
    topology = ndv4(NODES)
    cuda = CudaTwoStepAllToAll(ndv4(NODES))
    nccl = NcclModel(ndv4(NODES))
    configs = {}
    for label, program in [
        ("MSCCLang Two-Step LL128",
         twostep_alltoall(NODES, GPUS, protocol="LL128")),
        ("MSCCLang Two-Step Simple",
         twostep_alltoall(NODES, GPUS, protocol="Simple")),
    ]:
        ir = compile_on(topology, program)
        configs[label] = ir_timer(ir, topology, program.collective)
    configs["NCCL"] = lambda size: nccl.alltoall_time(size).time_us
    configs[BASELINE] = cuda.time_us
    return run_sweep("fig8e", sweep_sizes(256 * KiB, 4 * GiB), configs)


def test_fig8e_table(sweep):
    report("fig8e", f"Figure 8e: {NODES}-node {NODES * GPUS}xA100 "
           "AllToAll", sweep, BASELINE)


def test_msccl_twostep_beats_cuda_at_large_sizes(sweep):
    peak = band_max(sweep, "MSCCLang Two-Step Simple", BASELINE,
                    64 * MiB, 4 * GiB)
    assert 1.05 < peak < 1.6  # the paper reports up to 1.3x


def test_both_twosteps_beat_nccl_at_small_mid_sizes(sweep):
    # Aggregation pays off where per-destination messages are small.
    # The crossover size scales with rank count: at the paper's 256
    # GPUs it sits near 512MB; at this scale it lands near 8-16MB.
    nccl = sweep.speedups(BASELINE)["NCCL"]
    small_mid = [
        s for size, s in zip(sweep.sizes, nccl)
        if size <= 4 * MiB
    ]
    assert max(small_mid) < 1.0


def test_nccl_recovers_at_very_large_sizes(sweep):
    nccl = sweep.speedups(BASELINE)["NCCL"]
    assert nccl[-1] > 0.95  # aggregation stops mattering for huge sends


def test_benchmark_twostep_64mb(benchmark):
    topology = ndv4(NODES)
    program = twostep_alltoall(NODES, GPUS, protocol="Simple")
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run,
              chunk_bytes=64 * MiB / (NODES * GPUS))
