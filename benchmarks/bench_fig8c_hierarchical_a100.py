"""Figure 8c: 2-node 16xA100 AllReduce speedup over NCCL.

Series: the hierarchical AllReduce (the paper's running example) tuned
per size band — LL r=1 for small buffers, LL128 r=2 for the middle,
Simple r=4 (intra phases parallelized 4x) for large — plus the same
algorithm composed from four NCCL collective launches ("NCCL
Hierarchical", the red line).

Paper shape: up to ~1.4x at small sizes, ~1.1x at >= 1GB, and the
composed version clearly *slower* than NCCL everywhere (kernel-launch
overhead, no cross-phase pipelining).
"""

import pytest

from repro.algorithms import hierarchical_allreduce
from repro.analysis import ir_timer, run_sweep
from repro.baselines import ComposedHierarchicalAllReduce
from repro.nccl import NcclModel
from repro.runtime import IrSimulator
from repro.topology import ndv4

from bench_common import (
    GiB,
    KiB,
    MiB,
    band_max,
    compile_on,
    report,
    sweep_sizes,
)

BASELINE = "NCCL"
NODES, GPUS = 2, 8


@pytest.fixture(scope="module")
def sweep():
    topology = ndv4(NODES)
    nccl = NcclModel(ndv4(NODES))
    composed = ComposedHierarchicalAllReduce(ndv4(NODES))
    configs = {}
    for label, program in [
        ("MSCCLang LL r=1", hierarchical_allreduce(
            NODES, GPUS, instances=1, protocol="LL", intra_parallel=2)),
        ("MSCCLang LL128 r=2", hierarchical_allreduce(
            NODES, GPUS, instances=2, protocol="LL128", intra_parallel=2)),
        ("MSCCLang Simple r=4", hierarchical_allreduce(
            NODES, GPUS, instances=4, protocol="Simple", intra_parallel=4)),
    ]:
        ir = compile_on(topology, program)
        configs[label] = ir_timer(ir, topology, program.collective)
    configs["NCCL Hierarchical"] = composed.time_us
    configs[BASELINE] = lambda size: nccl.allreduce_time(size).time_us
    return run_sweep("fig8c", sweep_sizes(4 * KiB, 4 * GiB), configs)


def test_fig8c_table(sweep):
    report("fig8c", "Figure 8c: 2-node 16xA100 AllReduce", sweep, BASELINE)


def test_ll_wins_small_sizes(sweep):
    assert band_max(sweep, "MSCCLang LL r=1", BASELINE,
                    4 * KiB, 512 * KiB) > 1.3


def test_simple_wins_large_sizes(sweep):
    speedups = sweep.speedups(BASELINE)["MSCCLang Simple r=4"]
    at_largest = speedups[-1]
    assert at_largest > 1.05  # the paper reports ~1.11x above 1GB


def test_composed_is_slower_than_nccl(sweep):
    speedups = sweep.speedups(BASELINE)["NCCL Hierarchical"]
    assert max(speedups) < 1.0


def test_benchmark_hierarchical_64mb(benchmark):
    topology = ndv4(NODES)
    program = hierarchical_allreduce(NODES, GPUS, instances=2,
                                     protocol="LL128", intra_parallel=2)
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=64 * MiB / (NODES * GPUS))
