"""Synthesis extension: topology-aware trees vs. fixed schedules.

The paper frames MSCCLang as the implementation layer for algorithm
synthesizers (SCCL, Blink). This bench closes that loop with our
spanning-tree synthesizer on the DGX-1 hybrid cube mesh — the one
topology in the evaluation where links are point-to-point, so
link-aware routing actually matters. Compared: the synthesized
AllGather, the xor-partner (1,2,2) schedule (which must relay over
missing links), and the Ring.
"""

import pytest

from repro.algorithms import ring_allgather, sccl_allgather_122
from repro.analysis import ir_timer, run_sweep
from repro.core import CompilerOptions, compile_program
from repro.runtime import IrSimulator
from repro.synth import synthesize_allgather
from repro.topology import dgx1_mesh

from bench_common import KiB, MiB, compile_on, report, sweep_sizes

BASELINE = "Ring"
RANKS = 8


def _compile(program):
    return compile_program(
        program, CompilerOptions(max_threadblocks=80)
    )


@pytest.fixture(scope="module")
def sweep():
    configs = {}
    synthesized = synthesize_allgather(dgx1_mesh(), instances=2)
    configs["Synthesized trees"] = ir_timer(
        _compile(synthesized.program), dgx1_mesh(),
        synthesized.program.collective,
    )
    sccl = sccl_allgather_122(RANKS, instances=2)
    configs["SCCL-style (1,2,2)"] = ir_timer(
        _compile(sccl), dgx1_mesh(), sccl.collective
    )
    ring = ring_allgather(RANKS, channels=2, instances=2)
    configs[BASELINE] = ir_timer(
        _compile(ring), dgx1_mesh(), ring.collective
    )
    return run_sweep("synth_allgather",
                     sweep_sizes(32 * KiB, 256 * MiB), configs)


def test_synth_table(sweep):
    report("synth_allgather",
           "Synthesis: AllGather on the DGX-1 cube mesh", sweep,
           BASELINE)


def test_synthesized_beats_ring_everywhere(sweep):
    speedups = sweep.speedups(BASELINE)["Synthesized trees"]
    assert all(s > 1.0 for s in speedups)


def test_synthesized_beats_link_oblivious_schedule(sweep):
    synth = sweep.series["Synthesized trees"].times_us
    sccl = sweep.series["SCCL-style (1,2,2)"].times_us
    large = range(len(sweep.sizes) // 2, len(sweep.sizes))
    assert all(synth[i] < sccl[i] for i in large)


def test_benchmark_synthesized_4mb(benchmark):
    synthesized = synthesize_allgather(dgx1_mesh(), instances=2)
    ir = _compile(synthesized.program)
    simulator = IrSimulator(ir, dgx1_mesh())
    benchmark(simulator.run, chunk_bytes=4 * MiB / RANKS)
