"""Ablation: tile pipelining on/off (paper section 6.2, Figure 6).

The interpreter splits chunks bigger than a FIFO slot into tiles and
streams them, so the hierarchical AllReduce's intra-node phases overlap
its inter-node phases (bottom of Figure 6) instead of leaving links
idle (top). Forcing max_tiles=1 reproduces the sequential execution.
"""

import pytest

from repro.algorithms import hierarchical_allreduce
from repro.analysis import ir_timer, run_sweep, size_grid
from repro.runtime import SimConfig
from repro.topology import ndv4

from bench_common import MiB, compile_on, report

NODES, GPUS = 2, 8


@pytest.fixture(scope="module")
def sweep():
    topology = ndv4(NODES)
    program = hierarchical_allreduce(NODES, GPUS, instances=2,
                                     protocol="Simple", intra_parallel=2)
    ir = compile_on(topology, program)
    configs = {
        "pipelined": ir_timer(ir, topology, program.collective),
        "sequential": ir_timer(
            ir, ndv4(NODES), program.collective,
            sim_config=SimConfig(max_tiles=1),
        ),
    }
    return run_sweep(
        "ablation_pipelining",
        size_grid(4 * MiB, 1024 * MiB)[::2],
        configs,
    )


def test_pipelining_table(sweep):
    report("ablation_pipelining",
           "Ablation: tile pipelining (hierarchical AllReduce, 2-node "
           "A100)", sweep, "sequential")


def test_pipelining_helps_large_buffers(sweep):
    speedups = sweep.speedups("sequential")["pipelined"]
    large = speedups[-1]
    assert large > 1.2  # inter/intra overlap is worth a lot


def test_pipelining_gain_grows_with_size(sweep):
    speedups = sweep.speedups("sequential")["pipelined"]
    assert speedups[-1] >= speedups[0]


def test_benchmark_pipelined_hierarchical(benchmark):
    from repro.runtime import IrSimulator

    topology = ndv4(NODES)
    program = hierarchical_allreduce(NODES, GPUS, instances=2,
                                     protocol="Simple", intra_parallel=2)
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=64 * MiB / (NODES * GPUS))
