"""Section 7.6: end-to-end workload speedups from swapping collectives.

The paper reports 1.22-1.29x for serving a language model and
1.10-1.89x for MoE training after replacing NCCL collectives with
MSCCLang ones. We reproduce the mechanism with the workload models of
:mod:`repro.analysis.end_to_end`: a step is compute plus collective
calls; the speedup is governed by the communication fraction and the
per-collective gains measured in the other benches.
"""

import pytest

from repro.algorithms import hierarchical_allreduce, twostep_alltoall
from repro.analysis import (
    inference_serving_step,
    ir_timer,
    moe_training_step,
)
from repro.nccl import NcclModel
from repro.topology import ndv4

from bench_common import RESULTS_DIR, compile_on

NODES, GPUS = 4, 8


@pytest.fixture(scope="module")
def timers():
    """Baseline (NCCL) and optimized collective timers.

    The optimized side mirrors the deployed runtime (section 6): the
    hyper-tuned MSCCLang program for each size range, with fallback to
    NCCL where no registered program wins.
    """
    topology = ndv4(NODES)
    nccl = NcclModel(ndv4(NODES))
    baseline = {
        "allreduce": lambda n: nccl.allreduce_time(n).time_us,
        "alltoall": lambda n: nccl.alltoall_time(n).time_us,
    }

    MiB = 1024 * 1024
    allreduce_bands = [
        (1 * MiB, hierarchical_allreduce(
            NODES, GPUS, instances=1, protocol="LL", intra_parallel=2)),
        (16 * MiB, hierarchical_allreduce(
            NODES, GPUS, instances=2, protocol="LL128", intra_parallel=2)),
        (float("inf"), hierarchical_allreduce(
            NODES, GPUS, instances=4, protocol="Simple", intra_parallel=4)),
    ]
    allreduce_timers = [
        (limit, ir_timer(compile_on(topology, program), topology,
                         program.collective))
        for limit, program in allreduce_bands
    ]

    alltoall_program = twostep_alltoall(NODES, GPUS, protocol="LL128")
    alltoall_timer = ir_timer(
        compile_on(topology, alltoall_program), topology,
        alltoall_program.collective,
    )

    def allreduce_opt(n):
        for limit, timer in allreduce_timers:
            if n <= limit:
                return min(timer(n), baseline["allreduce"](n))
        raise AssertionError  # unreachable: last band is unbounded

    def alltoall_opt(n):
        return min(alltoall_timer(n), baseline["alltoall"](n))

    optimized = {"allreduce": allreduce_opt, "alltoall": alltoall_opt}
    return baseline, optimized


def test_e2e_table(timers):
    baseline, optimized = timers
    lines = ["== Section 7.6: end-to-end workload speedups ==", ""]
    lines.append(f"{'workload':>28s} {'comm frac':>10s} {'speedup':>9s}")
    rows = []
    # At this 32-GPU scale the aggregation win sits at small expert
    # buffers (at the paper's 256 GPUs it extends to hundreds of MB).
    for expert_mb in (0.25, 1.0, 4.0):
        model = moe_training_step(32, expert_mb=expert_mb,
                                  dense_mb=8 * expert_mb,
                                  compute_ms=2.0)
        rows.append((f"MoE training {expert_mb}MB experts", model))
    for hidden_mb in (2, 8):
        rows.append((
            f"TP serving {hidden_mb}MB hidden",
            inference_serving_step(hidden_mb=hidden_mb),
        ))
    for label, model in rows:
        fraction = model.communication_fraction(baseline)
        speedup = model.speedup(baseline, optimized)
        lines.append(f"{label:>28s} {fraction:>9.0%} {speedup:>8.2f}x")
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "e2e_workloads.txt").write_text(text + "\n")
    print("\n" + text)


def test_training_speedup_in_paper_band(timers):
    """The paper's MoE range is 1.10-1.89x depending on architecture."""
    baseline, optimized = timers
    speedups = [
        moe_training_step(32, expert_mb=mb, dense_mb=8 * mb,
                          compute_ms=2.0)
        .speedup(baseline, optimized)
        for mb in (0.25, 1.0, 4.0)
    ]
    assert max(speedups) > 1.10
    assert all(s >= 0.99 for s in speedups)  # fallback never loses


def test_speedup_grows_with_comm_fraction(timers):
    baseline, optimized = timers
    light = moe_training_step(32, expert_mb=1, dense_mb=8,
                              compute_ms=50.0)
    heavy = moe_training_step(32, expert_mb=1, dense_mb=8,
                              compute_ms=2.0)
    assert heavy.communication_fraction(baseline) > \
        light.communication_fraction(baseline)
    assert heavy.speedup(baseline, optimized) > \
        light.speedup(baseline, optimized)


def test_benchmark_workload_pricing(benchmark, timers):
    baseline, optimized = timers
    model = moe_training_step(32, expert_mb=1.0)
    benchmark(model.speedup, baseline, optimized)
