"""Simulator throughput benchmark: batched engine vs the reference loop.

Measures simulated instruction-occurrences per second on a canned
64-rank hierarchical allreduce (8 nodes x 8 GPUs on NDv4, 4 MiB
chunks) — the configuration ISSUE 9 tracks — for both event-loop
engines, and checks bitwise result parity between them while at it.

Two timings are reported per engine:

* ``cold`` — a fresh :class:`IrSimulator` per run, paying program
  compilation and state construction (what a single one-off run costs),
* ``warm`` — repeated ``run()`` on one simulator instance, the
  steady-state that sweeps, tuning loops, and the conformance harness
  actually sit in.

The headline ``speedup`` is batched-warm over reference-warm
occurrences/sec. ``--assert-speedup X`` fails the process below X;
``--check-against FILE`` fails if batched-warm ips regressed more than
20% versus a previously committed baseline (the CI smoke job's knob);
``--out FILE`` writes the JSON report (default
``benchmarks/results/BENCH_simspeed.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.algorithms import hierarchical_allreduce
from repro.core import compile_program
from repro.runtime.simulator import IrSimulator, SimConfig, sim_parity_diffs
from repro.topology import presets

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DEFAULT_OUT = RESULTS_DIR / "BENCH_simspeed.json"

NODES = 8
GPUS = 8
INSTANCES = 2
CHUNK_BYTES = float(4 * 1024 * 1024)
REGRESSION_TOLERANCE = 0.20


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_bench(repeats: int = 3, warm_repeats: int = 5) -> dict:
    ir = compile_program(
        hierarchical_allreduce(NODES, GPUS, instances=INSTANCES)).ir
    topo = presets.ndv4(NODES)

    def fresh(engine: str):
        return IrSimulator(ir, topo, None, SimConfig(engine=engine))

    report: dict = {
        "config": {
            "algorithm": f"hierarchical_allreduce({NODES}, {GPUS}, "
                         f"instances={INSTANCES})",
            "topology": f"ndv4({NODES})",
            "ranks": topo.num_ranks,
            "chunk_bytes": CHUNK_BYTES,
        },
        "engines": {},
    }
    results = {}
    for engine in ("reference", "batched"):
        cold = _best(lambda: fresh(engine).run(CHUNK_BYTES), repeats)
        sim = fresh(engine)
        result = sim.run(CHUNK_BYTES)
        warm = _best(lambda: sim.run(CHUNK_BYTES), warm_repeats)
        results[engine] = result
        occurrences = result.instruction_count * result.tiles
        report["engines"][engine] = {
            "cold_s": cold,
            "warm_s": warm,
            "occurrences": occurrences,
            "ips_cold": occurrences / cold,
            "ips_warm": occurrences / warm,
            "time_us": result.time_us,
        }
    diffs = sim_parity_diffs(results["batched"], results["reference"])
    ref = report["engines"]["reference"]
    bat = report["engines"]["batched"]
    report["speedup_warm"] = bat["ips_warm"] / ref["ips_warm"]
    report["speedup_cold"] = bat["ips_cold"] / ref["ips_cold"]
    report["parity"] = "ok" if not diffs else diffs
    return report


def print_report(report: dict) -> None:
    cfg = report["config"]
    print(f"simspeed: {cfg['algorithm']} on {cfg['topology']} "
          f"({cfg['ranks']} ranks, {int(cfg['chunk_bytes'])} B chunks)")
    for engine, row in report["engines"].items():
        print(f"  {engine:>9}: cold {row['cold_s'] * 1e3:8.1f} ms "
              f"({row['ips_cold']:10.0f} occ/s)   "
              f"warm {row['warm_s'] * 1e3:8.1f} ms "
              f"({row['ips_warm']:10.0f} occ/s)")
    print(f"  speedup (warm ips): {report['speedup_warm']:.2f}x   "
          f"(cold ips): {report['speedup_cold']:.2f}x")
    print(f"  parity: {report['parity']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="JSON report path")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless warm-ips speedup >= X")
    parser.add_argument("--check-against", type=Path, default=None,
                        metavar="BASELINE",
                        help="fail if batched warm ips regressed >20%% "
                             "vs this committed report")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--warm-repeats", type=int, default=5)
    args = parser.parse_args(argv)

    report = run_bench(args.repeats, args.warm_repeats)
    print_report(report)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {args.out}")

    failures = []
    if report["parity"] != "ok":
        failures.append("engines disagree on SimResult")
    if (args.assert_speedup is not None
            and report["speedup_warm"] < args.assert_speedup):
        failures.append(
            f"speedup {report['speedup_warm']:.2f}x "
            f"< required {args.assert_speedup:.2f}x")
    if args.check_against is not None:
        baseline = json.loads(args.check_against.read_text())
        base_ips = baseline["engines"]["batched"]["ips_warm"]
        now_ips = report["engines"]["batched"]["ips_warm"]
        floor = base_ips * (1.0 - REGRESSION_TOLERANCE)
        print(f"  baseline batched warm ips {base_ips:.0f} "
              f"(floor {floor:.0f}), current {now_ips:.0f}")
        if now_ips < floor:
            failures.append(
                f"batched warm ips {now_ips:.0f} regressed >"
                f"{REGRESSION_TOLERANCE:.0%} vs baseline {base_ips:.0f}")
    for failure in failures:
        print(f"  FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
