"""CI benchmark smoke: a reduced Figure 8a point with full artifacts.

Runs the fig8a configurations over a handful of sizes (seconds, not
minutes), writes a structured ``BENCH_smoke.json``, and dumps the
observability artifacts for the tuned ring — a Chrome trace and a
``*.diagnose.json`` bottleneck attribution — so every CI run leaves
behind something a human can open when a perf number looks off.

Usage::

    PYTHONPATH=src python benchmarks/smoke.py --out-dir smoke-artifacts

``--jobs N`` (or ``REPRO_JOBS=N``) shards the (config x size) grid
across worker processes; the merged series are bitwise-identical to a
sequential run, so CI can compare the JSON field-for-field.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.algorithms import allpairs_allreduce, ring_allreduce
from repro.analysis import chunk_bytes_for, ir_timer, pool_stats, run_sweep
from repro.core import (
    CompilerOptions,
    compile_program,
    default_compile_cache,
)
from repro.nccl import NcclModel
from repro.observe import (
    Tracer,
    diagnose,
    diagnose_text,
    diagnosis_dict,
    write_chrome_trace,
)
from repro.runtime import IrSimulator, SimConfig
from repro.topology import ndv4

KiB = 1024
MiB = 1024 * 1024

# Reduced fig8a: same series, three sizes spanning the bands.
SIZES = [32 * KiB, 1 * MiB, 8 * MiB]
BASELINE = "NCCL"


def _configs(topology):
    builders = {
        "All Pairs r=4 LL": allpairs_allreduce(8, instances=4,
                                               protocol="LL"),
        "Ring ch=4 r=8 LL": ring_allreduce(8, channels=4, instances=8,
                                           protocol="LL"),
    }
    timers = {}
    for label, program in builders.items():
        algo = compile_program(program, CompilerOptions(
            max_threadblocks=topology.machine.sm_count,
            cache=default_compile_cache(),
        ))
        timers[label] = ir_timer(algo, topology, program.collective)
    return timers


def run_smoke(out_dir: Path, jobs=None) -> dict:
    out_dir.mkdir(parents=True, exist_ok=True)
    topology = ndv4(1)
    nccl = NcclModel(ndv4(1))
    timers = _configs(topology)

    sweep = run_sweep("fig8a_smoke", SIZES, timers, jobs=jobs)
    series = {
        label: [round(us, 3) for us in sweep.series[label].times_us]
        for label in timers
    }
    series[BASELINE] = [
        round(nccl.allreduce_time(size).time_us, 3) for size in SIZES
    ]
    speedup = {
        label: [
            round(base / us, 3)
            for us, base in zip(series[label], series[BASELINE])
        ]
        for label in timers
    }

    # Observability artifacts for the tuned ring at the mid size.
    tracer = Tracer()
    program = ring_allreduce(8, channels=4, instances=8, protocol="LL")
    # Same trace digest + options as the fig8a ring above, so this
    # second compile is served from the compile cache.
    algo = compile_program(program, CompilerOptions(
        max_threadblocks=topology.machine.sm_count, trace=tracer,
        cache=default_compile_cache(),
    ))
    result = IrSimulator(
        algo.ir, topology, config=SimConfig(tracer=tracer)
    ).run(chunk_bytes=chunk_bytes_for(MiB, algo.sizing_chunks()))
    write_chrome_trace(out_dir / "ring_smoke_trace.json", tracer)
    diag = diagnose(result)
    payload = diagnosis_dict(diag)
    payload["algorithm"] = program.name
    payload["size_bytes"] = MiB
    (out_dir / "ring_smoke.diagnose.json").write_text(
        json.dumps(payload, indent=2)
    )
    print(diagnose_text(diag))

    doc = {
        "figure": "fig8a_smoke",
        "topology": "ndv4x1",
        "sizes_bytes": SIZES,
        "series_us": series,
        "speedup_vs_nccl": speedup,
        "diagnose": {
            "algorithm": program.name,
            "dominant": diag.dominant,
            "dominant_share": round(diag.dominant_share, 4),
            "time_us": round(diag.time_us, 3),
        },
        "compile_cache": default_compile_cache().stats(),
        "workers": pool_stats(),
    }
    (out_dir / "BENCH_smoke.json").write_text(json.dumps(doc, indent=2))
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="smoke-artifacts",
                        type=Path)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the sweep (default: $REPRO_JOBS "
             "or 1)",
    )
    args = parser.parse_args(argv)
    doc = run_smoke(args.out_dir, jobs=args.jobs)
    # Sanity gates: the smoke run must stay qualitatively sane, not
    # bit-exact — a real regression trips these long before review.
    ring = doc["speedup_vs_nccl"]["Ring ch=4 r=8 LL"]
    assert ring[1] > 1.0, (
        f"tuned LL ring lost to NCCL at 1MB: {ring[1]}x"
    )
    assert all(us > 0 for row in doc["series_us"].values()
               for us in row)
    cache = doc["compile_cache"]
    assert cache["hits"] > 0, (
        f"compile cache never hit during the smoke run: {cache}"
    )
    print(f"\nBENCH_smoke.json written to {args.out_dir}/ "
          f"(ring 1MB speedup {ring[1]}x vs NCCL, "
          f"compile cache {cache['hits']} hit(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
