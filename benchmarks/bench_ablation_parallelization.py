"""Ablation: chunk-parallelization factor sweep (paper section 5.1).

"The user should carefully choose the parallelization factor as
increasing it beyond a certain point will reduce performance": more
instances add injection bandwidth (a single thread block cannot
saturate an NVLink) until the link saturates and extra channels only
cost resources and latency.
"""

import pytest

from repro.algorithms import ring_allreduce
from repro.analysis import format_size, ir_timer, size_grid
from repro.topology import ndv4

from bench_common import KiB, MiB, RESULTS_DIR, compile_on

RANKS = 8
FACTORS = (1, 2, 4, 8, 16, 24)


@pytest.fixture(scope="module")
def timers():
    topology = ndv4(1)
    result = {}
    for r in FACTORS:
        program = ring_allreduce(RANKS, channels=1, instances=r,
                                 protocol="Simple")
        ir = compile_on(topology, program)
        result[r] = ir_timer(ir, topology, program.collective)
    return result


def test_parallelization_table(timers):
    sizes = size_grid(32 * KiB, 128 * MiB)[::2]
    lines = [
        "== Ablation: parallelization factor r (Ring AllReduce, "
        "8xA100, Simple) ==",
        "(latency in us)",
        "",
        f"{'size':>8s}" + "".join(f"{f'r={r}':>10s}" for r in FACTORS),
    ]
    for size in sizes:
        row = f"{format_size(size):>8s}"
        for r in FACTORS:
            row += f"{timers[r](size):>10.1f}"
        lines.append(row)
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_parallelization.txt").write_text(text + "\n")
    print("\n" + text)


def test_parallelism_helps_at_bandwidth_bound_sizes(timers):
    size = 64 * MiB
    assert timers[8](size) < timers[1](size) * 0.5


def test_diminishing_or_negative_returns_at_small_sizes(timers):
    size = 32 * KiB
    # At latency-bound sizes, cranking r up cannot keep helping.
    assert timers[24](size) > timers[2](size) * 0.8


def test_saturation_at_high_factors(timers):
    size = 128 * MiB
    gain_low = timers[1](size) / timers[8](size)
    gain_high = timers[8](size) / timers[24](size)
    assert gain_low > gain_high  # returns diminish once the link is full


def test_benchmark_r8_ring(benchmark):
    from repro.runtime import IrSimulator

    topology = ndv4(1)
    program = ring_allreduce(RANKS, channels=1, instances=8,
                             protocol="Simple")
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=8 * MiB / RANKS)
