"""Figure 8f: multi-node V100 (DGX-2) AllToAll, speedup over the CUDA
Two-Step kernel.

Series: MSCCLang Two-Step LL128 r=2 and Simple r=2 (the paper's V100
configurations), with NCCL for reference.

Scale note: the paper uses 4 nodes (64 GPUs); default here is 2 nodes,
REPRO_FULL=1 for the paper's scale.
"""

import pytest

from repro.algorithms import twostep_alltoall
from repro.analysis import ir_timer, run_sweep
from repro.baselines import CudaTwoStepAllToAll
from repro.nccl import NcclModel
from repro.runtime import IrSimulator
from repro.topology import dgx2

from bench_common import (
    FULL,
    GiB,
    MiB,
    band_max,
    compile_on,
    report,
    sweep_sizes,
)

BASELINE = "CUDA Two-Step"
NODES = 4 if FULL else 2
GPUS = 16


@pytest.fixture(scope="module")
def sweep():
    topology = dgx2(NODES)
    cuda = CudaTwoStepAllToAll(dgx2(NODES))
    nccl = NcclModel(dgx2(NODES))
    configs = {}
    for label, program in [
        ("MSCCLang LL128 r=2",
         twostep_alltoall(NODES, GPUS, instances=2, protocol="LL128")),
        ("MSCCLang Simple r=2",
         twostep_alltoall(NODES, GPUS, instances=2, protocol="Simple")),
    ]:
        ir = compile_on(topology, program)
        configs[label] = ir_timer(ir, topology, program.collective)
    configs["NCCL"] = lambda size: nccl.alltoall_time(size).time_us
    configs[BASELINE] = cuda.time_us
    return run_sweep("fig8f", sweep_sizes(1 * MiB, 4 * GiB), configs)


def test_fig8f_table(sweep):
    report("fig8f", f"Figure 8f: {NODES}-node {NODES * GPUS}xV100 "
           "AllToAll", sweep, BASELINE)


def test_msccl_matches_or_beats_cuda_at_large(sweep):
    speedups = sweep.speedups(BASELINE)["MSCCLang Simple r=2"]
    assert speedups[-1] > 1.0


def test_nccl_slower_at_small_mid_sizes(sweep):
    # See fig8e: the crossover scales with rank count.
    nccl = sweep.speedups(BASELINE)["NCCL"]
    small_mid = [
        s for size, s in zip(sweep.sizes, nccl)
        if size <= 2 * MiB
    ]
    assert min(small_mid) < 0.9


def test_benchmark_twostep_v100_32mb(benchmark):
    topology = dgx2(NODES)
    program = twostep_alltoall(NODES, GPUS, instances=2,
                               protocol="Simple")
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=32 * MiB / (NODES * GPUS))
