"""Ablation: aggregation of cross-node sends (paper section 5.1 / 7.3).

The Two-Step AllToAll's whole point is coalescing the G chunks headed
to one destination node into a single InfiniBand send. This bench
compares it against the naive AllToAll (no aggregation: one small IB
message per destination GPU) and against a de-aggregated Two-Step
variant that stages chunks but ships them one by one.
"""

import pytest

from repro.algorithms.alltoall_twostep import naive_alltoall
from repro.analysis import ir_timer, run_sweep, size_grid
from repro.core import AllToAll, MSCCLProgram, chunk
from repro.topology import ndv4

from bench_common import KiB, MiB, compile_on, report

NODES, GPUS = 2, 8


def unaggregated_twostep():
    """Two-Step routing, but the staged chunks cross IB individually."""
    collective = AllToAll(NODES * GPUS, chunk_factor=1)
    with MSCCLProgram("twostep_unaggregated", collective,
                      gpus_per_node=GPUS) as program:
        for dst_node in range(NODES):
            for dst_gpu in range(GPUS):
                for src_node in range(NODES):
                    for src_gpu in range(GPUS):
                        c = chunk((src_node, src_gpu), "in",
                                  (dst_node, dst_gpu))
                        if dst_node == src_node:
                            c.copy((dst_node, dst_gpu), "out",
                                   (src_node, src_gpu))
                        else:
                            c.copy((src_node, dst_gpu), "sc",
                                   (dst_node, src_gpu))
                for src_node in range(NODES):
                    if src_node == dst_node:
                        continue
                    for k in range(GPUS):  # one IB send per chunk
                        staged = chunk((src_node, dst_gpu), "sc",
                                       dst_node * GPUS + k)
                        staged.copy((dst_node, dst_gpu), "out",
                                    src_node * GPUS + k)
    return program


@pytest.fixture(scope="module")
def sweep():
    from repro.algorithms import twostep_alltoall

    topology = ndv4(NODES)
    configs = {}
    for label, program in [
        ("aggregated", twostep_alltoall(NODES, GPUS, protocol="Simple")),
        ("unaggregated", unaggregated_twostep()),
        ("naive", naive_alltoall(NODES * GPUS, gpus_per_node=GPUS,
                                 protocol="Simple")),
    ]:
        ir = compile_on(topology, program)
        configs[label] = ir_timer(ir, topology, program.collective)
    return run_sweep(
        "ablation_aggregation",
        size_grid(256 * KiB, 256 * MiB)[::2],
        configs,
    )


def test_aggregation_table(sweep):
    report("ablation_aggregation",
           "Ablation: IB send aggregation (AllToAll, 2-node A100)",
           sweep, "naive")


def test_aggregated_beats_unaggregated(sweep):
    agg = sweep.series["aggregated"].times_us
    unagg = sweep.series["unaggregated"].times_us
    # Aggregation wins where messages are small relative to the ramp.
    assert agg[0] < unagg[0]


def test_aggregated_beats_naive_at_small_sizes(sweep):
    speedups = sweep.speedups("naive")["aggregated"]
    assert speedups[0] > 1.0


def test_benchmark_aggregated_alltoall(benchmark):
    from repro.algorithms import twostep_alltoall
    from repro.runtime import IrSimulator

    topology = ndv4(NODES)
    program = twostep_alltoall(NODES, GPUS, protocol="Simple")
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=16 * MiB / (NODES * GPUS))
