"""Plan-service load benchmark: warm serving vs cold in-process compile.

Drives a real :class:`repro.serve.PlanService` over TCP with a swarm of
concurrent clients (default 1000 connections x 4 requests) drawing from
a seeded mixed workload — several plan families across collectives,
topologies, and sizes — then measures three things ISSUE 10 tracks:

* ``cold_compile`` — the in-process baseline: tracing and compiling the
  probe plan (hierarchical allreduce, 2 nodes x 8 GPUs on NDv4) with
  the compile cache disabled, median of ``--repeats`` runs. This is
  what every caller pays without the service.
* ``burst`` — p50/p99 request latency and throughput under the
  concurrent swarm, plus the service-side hit/dedup/promotion counters
  the burst produced. The first requests of each family are cold and
  deduplicate in flight; the rest are plan-table hits.
* ``warm_probe`` — p50/p99 of sequential requests for the probe plan on
  one quiet connection once the table is warm and tuned. The headline
  ``speedup`` is cold_compile over warm p50; ``--assert-speedup X``
  fails the process below X (the acceptance bar is 100).

``--assert-dedup N`` / ``--assert-disk-hits N`` fail unless the run saw
at least N in-flight deduplications / disk-tier cache hits — the CI
smoke job's knobs (its second run shares REPRO_CACHE_DIR with the
first, so every cold family compile must come back from disk).
``--out FILE`` writes the JSON report (default
``benchmarks/results/BENCH_serve.json``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import statistics
import sys
import time
from pathlib import Path

from repro.core.compiler import CompilerOptions, compile_program
from repro.observe.metrics import metrics_dict
from repro.serve import PlanClient, PlanService, PlanServiceError
from repro.serve.service import COLLECTIVES
from repro.serve.stats import reset_serve_stats
from repro.topology import presets

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DEFAULT_OUT = RESULTS_DIR / "BENCH_serve.json"

KiB = 1024
MiB = 1024 * 1024

# The probe family the speedup headline is measured on: the heaviest
# default plan the service compiles (hierarchical allreduce across
# four NDv4 nodes, 32 ranks — ~200ms to trace+compile cold).
PROBE = {"collective": "allreduce", "topology": "ndv4", "nodes": 4}

# The mixed workload the swarm draws from; a handful of families so
# in-flight dedup and table hits both show up at scale.
FAMILIES = (
    {"collective": "allreduce", "topology": "ndv4", "nodes": 1},
    {"collective": "allreduce", "topology": "ndv4", "nodes": 2},
    {"collective": "allreduce", "topology": "ndv4", "nodes": 4},
    {"collective": "allgather", "topology": "ndv4", "nodes": 1},
    {"collective": "reducescatter", "topology": "ndv4", "nodes": 1},
    {"collective": "alltoall", "topology": "ndv4", "nodes": 1},
    {"collective": "broadcast", "topology": "dgx1", "nodes": 1},
)
SIZES = tuple(32 * KiB * (1 << i) for i in range(11))  # 32 KiB..32 MiB

# Socket cap for the swarm: every client coroutine exists at once, but
# at most this many connections are open simultaneously.
MAX_OPEN_CONNECTIONS = 512


def _percentile(samples, q: float) -> float:
    ranked = sorted(samples)
    if not ranked:
        return float("nan")
    index = min(len(ranked) - 1, int(round(q * (len(ranked) - 1))))
    return ranked[index]


def cold_compile_baseline(repeats: int) -> dict:
    """Median wall time of trace+compile for the probe plan, no cache."""
    topology = presets.ndv4(PROBE["nodes"])
    runs = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        program = COLLECTIVES[PROBE["collective"]](
            PROBE["nodes"], topology.machine.gpus_per_node,
            channels=1, instances=1, protocol="Simple")
        compile_program(program, CompilerOptions(
            max_threadblocks=topology.machine.sm_count, cache=None))
        runs.append(time.perf_counter() - t0)
    return {
        "plan": dict(PROBE),
        "repeats": repeats,
        "runs_s": [round(r, 6) for r in runs],
        "median_s": statistics.median(runs),
    }


async def _client_worker(host, port, rng_seed, requests, semaphore,
                         latencies, errors):
    rng = random.Random(rng_seed)
    async with semaphore:
        try:
            async with PlanClient(host, port) as client:
                for _ in range(requests):
                    family = rng.choice(FAMILIES)
                    size = rng.choice(SIZES)
                    t0 = time.perf_counter()
                    await client.plan(
                        family["collective"], size,
                        topology=family["topology"],
                        nodes=family["nodes"], include_xml=False)
                    latencies.append(time.perf_counter() - t0)
        except (PlanServiceError, OSError) as error:
            errors.append(str(error))


async def _run_burst(host, port, clients, requests, seed) -> dict:
    semaphore = asyncio.Semaphore(MAX_OPEN_CONNECTIONS)
    latencies: list = []
    errors: list = []
    t0 = time.perf_counter()
    await asyncio.gather(*(
        _client_worker(host, port, seed * 100003 + i, requests,
                       semaphore, latencies, errors)
        for i in range(clients)))
    wall = time.perf_counter() - t0
    return {
        "clients": clients,
        "requests_per_client": requests,
        "completed": len(latencies),
        "errors": len(errors),
        "error_samples": errors[:3],
        "wall_s": round(wall, 4),
        "requests_per_s": round(len(latencies) / wall, 1) if wall else 0.0,
        "p50_us": round(_percentile(latencies, 0.50) * 1e6, 1),
        "p99_us": round(_percentile(latencies, 0.99) * 1e6, 1),
        "max_us": round(max(latencies) * 1e6, 1) if latencies else 0.0,
    }


async def _run_warm_probe(host, port, requests) -> dict:
    """Steady-state requests for the probe plan on a quiet connection.

    The first request pays the full XML transfer; the rest revalidate
    the client's cached copy by plan_id (the steady state a runtime
    sits in — plans are immutable until a promotion). Both numbers are
    reported; the headline p50 is over the steady-state requests.
    """
    latencies = []
    async with PlanClient(host, port) as client:
        t0 = time.perf_counter()
        plan = await client.plan(
            PROBE["collective"], 1 * MiB,
            topology=PROBE["topology"], nodes=PROBE["nodes"],
            include_xml=True)
        fetch = time.perf_counter() - t0
        for _ in range(requests):
            t0 = time.perf_counter()
            await client.plan(
                PROBE["collective"], 1 * MiB,
                topology=PROBE["topology"], nodes=PROBE["nodes"],
                include_xml=True)
            latencies.append(time.perf_counter() - t0)
    return {
        "plan": dict(PROBE),
        "requests": requests,
        "tuned": plan["tuned"],
        "label": plan["label"],
        "xml_bytes": len(plan["xml"]),
        "full_fetch_us": round(fetch * 1e6, 1),
        "p50_us": round(_percentile(latencies, 0.50) * 1e6, 1),
        "p99_us": round(_percentile(latencies, 0.99) * 1e6, 1),
    }


async def _serve_and_measure(args) -> dict:
    service = PlanService(autotune=not args.no_autotune,
                          tune_jobs=args.jobs)
    await service.start("127.0.0.1", 0)
    host, port = service.address
    try:
        burst = await _run_burst(host, port, args.clients,
                                 args.requests, args.seed)
        # Let background tuning land so the probe hits tuned spans —
        # steady state for a long-running service.
        await service.drain_background()
        warm = await _run_warm_probe(host, port, args.warm_requests)
        stats = service.stats()
        metrics = metrics_dict(service.tracer)
    finally:
        await service.stop()
    return {"burst": burst, "warm_probe": warm, "stats": stats,
            "metrics_serve": metrics.get("serve", {})}


def run_bench(args) -> dict:
    reset_serve_stats()
    cold = cold_compile_baseline(args.repeats)
    served = asyncio.run(_serve_and_measure(args))
    warm_p50_s = served["warm_probe"]["p50_us"] / 1e6
    report = {
        "config": {
            "clients": args.clients,
            "requests_per_client": args.requests,
            "warm_requests": args.warm_requests,
            "families": len(FAMILIES),
            "sizes": len(SIZES),
            "seed": args.seed,
            "autotune": not args.no_autotune,
            "tune_jobs": args.jobs,
        },
        "cold_compile": cold,
        "burst": served["burst"],
        "warm_probe": served["warm_probe"],
        "speedup": (cold["median_s"] / warm_p50_s
                    if warm_p50_s else float("inf")),
        "serve": served["stats"]["serve"],
        "families": served["stats"]["families"],
        "tuned_families": served["stats"]["tuned_families"],
        "compile_cache": served["stats"]["compile_cache"],
        "metrics_serve": served["metrics_serve"],
    }
    return report


def print_report(report: dict) -> None:
    cold = report["cold_compile"]
    burst = report["burst"]
    warm = report["warm_probe"]
    serve = report["serve"]
    print(f"serve: {burst['clients']} clients x "
          f"{burst['requests_per_client']} requests over "
          f"{report['config']['families']} families, "
          f"{report['config']['sizes']} sizes")
    print(f"  cold compile (no cache): "
          f"{cold['median_s'] * 1e3:8.1f} ms median of "
          f"{cold['repeats']} ({cold['plan']['collective']}, "
          f"nodes={cold['plan']['nodes']})")
    print(f"  burst: {burst['completed']} ok / {burst['errors']} err in "
          f"{burst['wall_s']:.2f}s ({burst['requests_per_s']:.0f} req/s) "
          f"p50 {burst['p50_us']:.0f}us p99 {burst['p99_us']:.0f}us")
    print(f"  warm probe: p50 {warm['p50_us']:.0f}us "
          f"p99 {warm['p99_us']:.0f}us over {warm['requests']} requests "
          f"(full fetch {warm['full_fetch_us']:.0f}us, "
          f"{warm['xml_bytes']} B xml, tuned={warm['tuned']})")
    print(f"  speedup (cold compile / warm p50): "
          f"{report['speedup']:.0f}x")
    print(f"  serve counters: {serve['requests']} requests, "
          f"{serve['plan_hits']} hits ({serve['hit_rate']:.1%}), "
          f"{serve['dedup_inflight']} dedup in flight, "
          f"{serve['cold_misses']} cold, "
          f"{serve['promotions']} promotions")
    disk = report["compile_cache"].get("disk") or {}
    print(f"  compile cache: {report['compile_cache']['hits']} hits / "
          f"{report['compile_cache']['misses']} misses "
          f"(disk: {disk.get('hits', 0)} hits)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=1000,
                        help="concurrent client connections")
    parser.add_argument("--requests", type=int, default=4,
                        help="requests per client")
    parser.add_argument("--warm-requests", type=int, default=50,
                        help="sequential probe requests once warm")
    parser.add_argument("--repeats", type=int, default=3,
                        help="cold in-process compile runs (median)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="tune_jobs for background autotuning")
    parser.add_argument("--no-autotune", action="store_true")
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="JSON report path")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless cold/warm-p50 speedup >= X")
    parser.add_argument("--assert-dedup", type=int, default=None,
                        metavar="N",
                        help="fail unless >= N in-flight dedups")
    parser.add_argument("--assert-disk-hits", type=int, default=None,
                        metavar="N",
                        help="fail unless >= N disk-tier cache hits")
    args = parser.parse_args(argv)

    report = run_bench(args)
    print_report(report)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {args.out}")

    failures = []
    if report["burst"]["errors"]:
        failures.append(
            f"{report['burst']['errors']} client errors, e.g. "
            f"{report['burst']['error_samples']}")
    if (args.assert_speedup is not None
            and report["speedup"] < args.assert_speedup):
        failures.append(
            f"speedup {report['speedup']:.1f}x "
            f"< required {args.assert_speedup:.1f}x")
    if (args.assert_dedup is not None
            and report["serve"]["dedup_inflight"] < args.assert_dedup):
        failures.append(
            f"dedup_inflight {report['serve']['dedup_inflight']} "
            f"< required {args.assert_dedup}")
    if args.assert_disk_hits is not None:
        disk = report["compile_cache"].get("disk") or {}
        if disk.get("hits", 0) < args.assert_disk_hits:
            failures.append(
                f"disk hits {disk.get('hits', 0)} "
                f"< required {args.assert_disk_hits}")
    for failure in failures:
        print(f"  FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
