"""Scaling study: collective latency vs. node count at fixed size.

The paper's deployments run at 256 GPUs; this bench shows how the
reproduced algorithms scale with node count on NDv4 clusters. Expected
shape: hierarchical AllReduce's inter-node phase grows with (N-1)/N —
nearly flat — while the flat NCCL ring's latency grows with total rank
count; Two-Step AllToAll latency grows linearly with N (each GPU's NIC
carries (N-1)/N of its buffer) but stays ahead of naive at every scale.
"""

import pytest

from repro.algorithms import hierarchical_allreduce, twostep_alltoall
from repro.analysis import ir_timer
from repro.nccl import NcclModel
from repro.topology import ndv4

from bench_common import FULL, MiB, RESULTS_DIR, compile_on

NODE_COUNTS = (1, 2, 4, 8) if FULL else (1, 2, 4)
SIZE = 64 * MiB


@pytest.fixture(scope="module")
def scaling():
    rows = {}
    for nodes in NODE_COUNTS:
        topology = ndv4(nodes)
        nccl = NcclModel(ndv4(nodes))
        entry = {"NCCL allreduce": nccl.allreduce_time(SIZE).time_us}
        if nodes > 1:
            allreduce = hierarchical_allreduce(
                nodes, 8, instances=4, protocol="Simple",
                intra_parallel=4,
            )
            entry["hierarchical allreduce"] = ir_timer(
                compile_on(topology, allreduce), topology,
                allreduce.collective,
            )(SIZE)
            alltoall = twostep_alltoall(nodes, 8, protocol="Simple")
            entry["two-step alltoall"] = ir_timer(
                compile_on(ndv4(nodes), alltoall), ndv4(nodes),
                alltoall.collective,
            )(SIZE)
            entry["NCCL alltoall"] = nccl.alltoall_time(SIZE).time_us
        rows[nodes] = entry
    return rows


def test_scaling_table(scaling):
    lines = [
        f"== Scaling study: 64MB collectives vs node count (8 GPUs/node,"
        " NDv4) ==",
        "(latency in us)",
        "",
        f"{'nodes':>6s} {'NCCL AR':>10s} {'hier AR':>10s} "
        f"{'2step A2A':>10s} {'NCCL A2A':>10s}",
    ]
    for nodes, entry in scaling.items():
        def cell(key):
            value = entry.get(key)
            return f"{value:>10.1f}" if value is not None else " " * 10

        lines.append(
            f"{nodes:>6d} {cell('NCCL allreduce')}"
            f" {cell('hierarchical allreduce')}"
            f" {cell('two-step alltoall')} {cell('NCCL alltoall')}"
        )
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scaling.txt").write_text(text + "\n")
    print("\n" + text)


def test_hierarchical_allreduce_growth_is_bounded(scaling):
    """Doubling the node count at fixed buffer size costs well under 2x
    (the inter-node wire share grows only as (N-1)/N; the extra cost is
    the longer inter-node rings' latency)."""
    two = scaling[2]["hierarchical allreduce"]
    four = scaling[4]["hierarchical allreduce"]
    assert four < two * 2.0


def test_hierarchical_matches_nccl_at_the_papers_two_node_scale(scaling):
    entry = scaling[2]
    assert entry["hierarchical allreduce"] <=         entry["NCCL allreduce"] * 1.05


def test_alltoall_aggregation_grows_more_valuable_with_scale(scaling):
    """Two-Step's edge over naive AllToAll should not shrink as nodes
    are added (per-destination messages shrink with rank count)."""
    ratios = {
        nodes: entry["NCCL alltoall"] / entry["two-step alltoall"]
        for nodes, entry in scaling.items() if nodes > 1
    }
    node_counts = sorted(ratios)
    assert ratios[node_counts[-1]] >= ratios[node_counts[0]] * 0.9


def test_benchmark_scaling_point(benchmark):
    topology = ndv4(2)
    program = hierarchical_allreduce(2, 8, instances=4,
                                     protocol="Simple", intra_parallel=4)
    ir = compile_on(topology, program)
    from repro.runtime import IrSimulator

    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=SIZE / 16)
