"""Figure 8d: 2-node 32xV100 (DGX-2) AllReduce speedup over NCCL.

Same experiment as Figure 8c on the V100 system: hierarchical AllReduce
with per-band tuning (LL r=1, LL128 r=1, Simple r=4) plus the composed
NCCL-collectives version.
"""

import pytest

from repro.algorithms import hierarchical_allreduce
from repro.analysis import ir_timer, run_sweep
from repro.baselines import ComposedHierarchicalAllReduce
from repro.nccl import NcclModel
from repro.runtime import IrSimulator
from repro.topology import dgx2

from bench_common import (
    GiB,
    KiB,
    MiB,
    band_max,
    compile_on,
    report,
    sweep_sizes,
)

BASELINE = "NCCL"
NODES, GPUS = 2, 16


@pytest.fixture(scope="module")
def sweep():
    topology = dgx2(NODES)
    nccl = NcclModel(dgx2(NODES))
    composed = ComposedHierarchicalAllReduce(dgx2(NODES))
    configs = {}
    for label, program in [
        ("MSCCLang LL r=1", hierarchical_allreduce(
            NODES, GPUS, instances=1, protocol="LL", intra_parallel=2)),
        ("MSCCLang LL128 r=1", hierarchical_allreduce(
            NODES, GPUS, instances=1, protocol="LL128", intra_parallel=2)),
        ("MSCCLang Simple r=4", hierarchical_allreduce(
            NODES, GPUS, instances=4, protocol="Simple", intra_parallel=4)),
    ]:
        ir = compile_on(topology, program)
        configs[label] = ir_timer(ir, topology, program.collective)
    configs["NCCL Hierarchical"] = composed.time_us
    configs[BASELINE] = lambda size: nccl.allreduce_time(size).time_us
    return run_sweep("fig8d", sweep_sizes(4 * KiB, 4 * GiB), configs)


def test_fig8d_table(sweep):
    report("fig8d", "Figure 8d: 2-node 32xV100 AllReduce", sweep, BASELINE)


def test_ll_wins_small_sizes(sweep):
    assert band_max(sweep, "MSCCLang LL r=1", BASELINE,
                    4 * KiB, 512 * KiB) > 1.3


def test_simple_competitive_at_large_sizes(sweep):
    speedups = sweep.speedups(BASELINE)["MSCCLang Simple r=4"]
    assert speedups[-1] > 0.95


def test_composed_loses_at_the_extremes(sweep):
    """Deviation note (see EXPERIMENTS.md): on this V100 model the
    composed baseline edges past our NCCL model in the middle band,
    unlike the paper's measurement; the launch/sync penalties still
    sink it at small and large sizes, and it never beats the fused
    MSCCLang configurations."""
    speedups = sweep.speedups(BASELINE)
    composed = speedups["NCCL Hierarchical"]
    assert composed[0] < 1.0 and composed[-1] < 1.0
    assert max(composed) < 1.35
    best_msccl = [
        max(values) for values in zip(
            speedups["MSCCLang LL r=1"],
            speedups["MSCCLang LL128 r=1"],
            speedups["MSCCLang Simple r=4"],
        )
    ]
    assert all(m > c for m, c in zip(best_msccl, composed))


def test_benchmark_hierarchical_16mb(benchmark):
    topology = dgx2(NODES)
    program = hierarchical_allreduce(NODES, GPUS, instances=1,
                                     protocol="LL128", intra_parallel=2)
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=16 * MiB / (NODES * GPUS))
