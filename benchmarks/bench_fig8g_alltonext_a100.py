"""Figure 8g: 3-node 24xA100 AllToNext, speedup over the CUDA
point-to-point baseline.

Series: the NIC-parallel AllToNext at several whole-program
parallelization factors r. The paper sweeps r in {4, 8, 16}; r=16 needs
128 thread blocks on boundary GPUs, which exceeds the A100's 108 SMs
under the cooperative-launch constraint our compiler enforces (section
6), so we use r=12 as the largest setting (a deviation recorded in
EXPERIMENTS.md).

Paper shape: slower than the baseline for small buffers (extra hops),
crossover around ~1MB, large speedups at big sizes with bigger r
winning there and smaller r winning at small sizes.
"""

import pytest

from repro.algorithms import alltonext
from repro.analysis import ir_timer, run_sweep
from repro.baselines import CudaAllToNext
from repro.runtime import IrSimulator
from repro.topology import ndv4

from bench_common import KiB, MiB, band_max, compile_on, report, sweep_sizes

BASELINE = "CUDA P2P"
NODES, GPUS = 3, 8
FACTORS = (4, 8, 12)


@pytest.fixture(scope="module")
def sweep():
    topology = ndv4(NODES)
    cuda = CudaAllToNext(ndv4(NODES))
    configs = {}
    for r in FACTORS:
        program = alltonext(NODES, GPUS, instances=r, protocol="Simple")
        ir = compile_on(topology, program)
        configs[f"MSCCLang r={r}"] = ir_timer(
            ir, topology, program.collective
        )
    configs[BASELINE] = cuda.time_us
    return run_sweep("fig8g", sweep_sizes(4 * KiB, 256 * MiB), configs)


def test_fig8g_table(sweep):
    report("fig8g", "Figure 8g: 3-node 24xA100 AllToNext", sweep, BASELINE)


def test_baseline_wins_small_sizes(sweep):
    for r in FACTORS:
        speedups = sweep.speedups(BASELINE)[f"MSCCLang r={r}"]
        assert speedups[0] < 1.0


def test_large_speedup_at_big_sizes(sweep):
    peak = band_max(sweep, f"MSCCLang r={FACTORS[-1]}", BASELINE,
                    64 * MiB, 256 * MiB)
    assert peak > 4.0  # the paper reports up to 14.5x on real hardware


def test_more_parallelism_wins_at_large_sizes(sweep):
    speedups = sweep.speedups(BASELINE)
    at_largest = {
        r: speedups[f"MSCCLang r={r}"][-1] for r in FACTORS
    }
    assert at_largest[12] > at_largest[4]


def test_less_parallelism_wins_at_small_sizes(sweep):
    speedups = sweep.speedups(BASELINE)
    at_smallest = {
        r: speedups[f"MSCCLang r={r}"][0] for r in FACTORS
    }
    assert at_smallest[4] > at_smallest[12]


def test_benchmark_alltonext_16mb(benchmark):
    topology = ndv4(NODES)
    program = alltonext(NODES, GPUS, instances=8, protocol="Simple")
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=16 * MiB / GPUS)
