"""Figure 8h: multi-node V100 (DGX-2) AllToNext, speedup over the CUDA
point-to-point baseline.

Series: r in {2, 4, 8} as in the paper. On a DGX-2 the scatter spans 8
helper GPUs — one per InfiniBand NIC (16 GPUs share 8 NICs), so wider
scattering adds hops without adding NIC bandwidth.

Scale note: the paper uses 4 nodes; the default here is 2 nodes,
REPRO_FULL=1 for 4.
"""

import pytest

from repro.algorithms import alltonext
from repro.analysis import ir_timer, run_sweep
from repro.baselines import CudaAllToNext
from repro.runtime import IrSimulator
from repro.topology import dgx2

from bench_common import (
    FULL,
    KiB,
    MiB,
    band_max,
    compile_on,
    report,
    sweep_sizes,
)

BASELINE = "CUDA P2P"
NODES = 4 if FULL else 2
GPUS = 16
HELPERS = 8  # one per NIC
FACTORS = (2, 4, 8)


@pytest.fixture(scope="module")
def sweep():
    topology = dgx2(NODES)
    cuda = CudaAllToNext(dgx2(NODES))
    configs = {}
    for r in FACTORS:
        program = alltonext(NODES, GPUS, instances=r,
                            protocol="Simple", helpers=HELPERS)
        ir = compile_on(topology, program)
        configs[f"MSCCLang r={r}"] = ir_timer(
            ir, topology, program.collective
        )
    configs[BASELINE] = cuda.time_us
    return run_sweep("fig8h", sweep_sizes(4 * KiB, 256 * MiB), configs)


def test_fig8h_table(sweep):
    report("fig8h", f"Figure 8h: {NODES}-node {NODES * GPUS}xV100 "
           "AllToNext", sweep, BASELINE)


def test_baseline_wins_small_sizes(sweep):
    speedups = sweep.speedups(BASELINE)[f"MSCCLang r={FACTORS[-1]}"]
    assert speedups[0] < 1.0


def test_speedup_at_big_sizes(sweep):
    peak = band_max(sweep, "MSCCLang r=8", BASELINE,
                    64 * MiB, 256 * MiB)
    assert peak > 2.5  # the paper reports up to ~5x on V100s


def test_parallelism_ordering_flips_with_size(sweep):
    speedups = sweep.speedups(BASELINE)
    assert speedups["MSCCLang r=8"][-1] > speedups["MSCCLang r=2"][-1]
    assert speedups["MSCCLang r=2"][0] > speedups["MSCCLang r=8"][0]


def test_benchmark_alltonext_v100_16mb(benchmark):
    topology = dgx2(NODES)
    program = alltonext(NODES, GPUS, instances=4, protocol="Simple",
                        helpers=HELPERS)
    ir = compile_on(topology, program)
    simulator = IrSimulator(ir, topology)
    benchmark(simulator.run, chunk_bytes=16 * MiB / HELPERS)
