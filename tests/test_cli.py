"""Tests for the python -m repro.tools command line."""

import json

import pytest

from repro.tools.cli import main, parse_size


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("1024", 1024),
        ("64KB", 64 * 1024),
        ("2MB", 2 * 1024 ** 2),
        ("1GB", 1024 ** 3),
        ("1.5MB", int(1.5 * 1024 ** 2)),
        ("512b", 512),
    ])
    def test_units(self, text, expected):
        assert parse_size(text) == expected


class TestCompileCommand:
    def test_summary(self, capsys):
        assert main(["compile", "ring_allreduce", "--ranks", "4"]) == 0
        out = capsys.readouterr().out
        assert "allreduce" in out and "ranks: 4" in out

    def test_xml(self, capsys):
        main(["compile", "ring_allreduce", "--ranks", "4",
              "--format", "xml"])
        out = capsys.readouterr().out
        assert out.startswith("<algo")

    def test_json_parses(self, capsys):
        main(["compile", "ring_allreduce", "--ranks", "4",
              "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert data["num_ranks"] == 4

    def test_dot(self, capsys):
        main(["compile", "tree_broadcast", "--ranks", "4",
              "--format", "dot"])
        assert capsys.readouterr().out.startswith("digraph")

    def test_check_flag_runs_executor(self, capsys):
        main(["compile", "rhd_allreduce", "--ranks", "4", "--check"])
        assert "data check passed" in capsys.readouterr().err

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["compile", "warp_allreduce"])

    def test_topology_rank_mismatch(self):
        with pytest.raises(SystemExit, match="does not match"):
            main(["compile", "ring_allreduce", "--ranks", "4",
                  "--topology", "ndv4"])


class TestSimulateCommand:
    def test_reports_latency_and_bandwidth(self, capsys):
        assert main([
            "simulate", "ring_allreduce", "--ranks", "8",
            "--topology", "ndv4", "--instances", "4", "--size", "4MB",
        ]) == 0
        out = capsys.readouterr().out
        assert "latency:" in out and "algbw:" in out

    def test_multi_node_algorithm(self, capsys):
        main([
            "simulate", "twostep_alltoall", "--ranks", "8",
            "--nodes", "2", "--size", "1MB",
        ])
        assert "latency:" in capsys.readouterr().out


class TestSweepCommand:
    def test_plain_sweep(self, capsys):
        main([
            "sweep", "ring_allreduce", "--ranks", "4",
            "--min-size", "1KB", "--max-size", "4KB",
        ])
        out = capsys.readouterr().out
        assert "1KB" in out and "4KB" in out

    def test_vs_nccl_adds_speedup_column(self, capsys):
        main([
            "sweep", "ring_allreduce", "--ranks", "8",
            "--topology", "ndv4", "--channels", "4", "--instances", "8",
            "--protocol", "LL",
            "--min-size", "64KB", "--max-size", "128KB", "--vs-nccl",
        ])
        out = capsys.readouterr().out
        assert "speedup" in out and "x" in out

    def test_jobs_flag_matches_sequential(self, capsys):
        args = [
            "sweep", "ring_allreduce", "--ranks", "4",
            "--min-size", "1KB", "--max-size", "4KB",
        ]
        main(args + ["--jobs", "1"])
        sequential = capsys.readouterr().out
        main(args + ["--jobs", "2"])
        parallel = capsys.readouterr().out
        assert parallel == sequential

    def test_repeat_invocation_hits_persistent_cache(self, capsys):
        from repro.core import reset_default_compile_cache
        from repro.core.cache import default_compile_cache

        args = [
            "sweep", "ring_allreduce", "--ranks", "4",
            "--min-size", "1KB", "--max-size", "2KB",
        ]
        reset_default_compile_cache()
        try:
            main(args)
            capsys.readouterr()
            # A fresh default cache models a second CLI invocation of
            # the same process image: only the disk tier persists.
            reset_default_compile_cache()
            main(args)
            captured = capsys.readouterr()
            stats = default_compile_cache().stats()
            assert stats["disk"]["hits"] > 0
            assert "disk tier: 1 hit(s)" in captured.err
        finally:
            reset_default_compile_cache()


class TestAllCliAlgorithms:
    """Every registered CLI algorithm compiles and passes the data check
    through the command line."""

    import pytest as _pytest

    from repro.tools.cli import ALGORITHMS as _ALGORITHMS

    @_pytest.mark.parametrize("name", sorted(_ALGORITHMS))
    def test_compile_check(self, name, capsys):
        args = ["compile", name, "--check"]
        if name in ("hierarchical_allreduce", "twostep_alltoall",
                    "hierarchical_alltoall", "naive_alltoall",
                    "alltonext"):
            args += ["--ranks", "8", "--nodes", "2"]
        else:
            args += ["--ranks", "8"]
        assert main(args) == 0
        assert "data check passed" in capsys.readouterr().err
