"""Tests for collective pre/postconditions and in-place aliasing."""

import pytest

from repro.core.buffers import Buffer
from repro.core.chunk import InputChunk, ReductionChunk, allreduce_result
from repro.core.collectives import (
    AllGather,
    AllReduce,
    AllToAll,
    AllToNext,
    Custom,
    ReduceScatter,
)
from repro.core.errors import ProgramError


class TestAllReduce:
    def test_sizes(self):
        coll = AllReduce(4, chunk_factor=8)
        assert coll.input_chunks(0) == 8
        assert coll.output_chunks(0) == 8
        assert coll.sizing_chunks() == 8

    def test_postcondition_is_full_reduction(self):
        coll = AllReduce(3, chunk_factor=2)
        post = coll.postcondition(1)
        assert post[0] == allreduce_result(3, 0)
        assert post[1] == allreduce_result(3, 1)

    def test_precondition_unique_chunks(self):
        coll = AllReduce(2, chunk_factor=2)
        assert coll.precondition(1) == {
            0: InputChunk(1, 0), 1: InputChunk(1, 1)
        }

    def test_in_place_alias_is_identity_offset(self):
        coll = AllReduce(2, chunk_factor=4, in_place=True)
        assert coll.alias(1, Buffer.INPUT, 3) == (Buffer.OUTPUT, 3)

    def test_out_of_place_alias_untouched(self):
        coll = AllReduce(2, chunk_factor=4)
        assert coll.alias(1, Buffer.INPUT, 3) == (Buffer.INPUT, 3)


class TestAllGather:
    def test_sizes(self):
        coll = AllGather(4, chunk_factor=2)
        assert coll.input_chunks(0) == 2
        assert coll.output_chunks(0) == 8
        assert coll.sizing_chunks() == 8

    def test_postcondition_places_every_input(self):
        coll = AllGather(3, chunk_factor=1)
        post = coll.postcondition(0)
        assert post == {r: InputChunk(r, 0) for r in range(3)}

    def test_in_place_offset_by_rank(self):
        coll = AllGather(4, chunk_factor=2, in_place=True)
        assert coll.alias(2, Buffer.INPUT, 1) == (Buffer.OUTPUT, 5)


class TestReduceScatter:
    def test_out_of_place_postcondition(self):
        coll = ReduceScatter(4, chunk_factor=1)
        post = coll.postcondition(2)
        assert list(post) == [0]
        assert post[0] == allreduce_result(4, 2)

    def test_in_place_postcondition_lands_at_segment(self):
        coll = ReduceScatter(4, chunk_factor=1, in_place=True)
        post = coll.postcondition(2)
        assert list(post) == [2]
        assert post[2] == allreduce_result(4, 2)


class TestAllToAll:
    def test_transpose_postcondition(self):
        coll = AllToAll(3, chunk_factor=1)
        post = coll.postcondition(2)
        assert post == {src: InputChunk(src, 2) for src in range(3)}

    def test_block_transpose_with_chunk_factor(self):
        coll = AllToAll(2, chunk_factor=2)
        post = coll.postcondition(1)
        assert post[0] == InputChunk(0, 2)  # src 0, block 1, k 0
        assert post[3] == InputChunk(1, 3)  # src 1, block 1, k 1


class TestAllToNext:
    def test_rank0_unconstrained(self):
        coll = AllToNext(3, chunk_factor=2)
        assert coll.postcondition(0) == {}

    def test_later_ranks_receive_predecessor(self):
        coll = AllToNext(3, chunk_factor=2)
        assert coll.postcondition(2) == {
            0: InputChunk(1, 0), 1: InputChunk(1, 1)
        }


class TestCustom:
    def test_custom_postcondition_function(self):
        coll = Custom(
            2,
            postcondition_fn=lambda rank: {0: InputChunk(1 - rank, 0)},
            name="swap",
        )
        assert coll.name == "swap"
        assert coll.postcondition(0) == {0: InputChunk(1, 0)}

    def test_custom_sizes(self):
        coll = Custom(
            2,
            postcondition_fn=lambda rank: {},
            input_chunks_fn=lambda rank: 3,
            output_chunks_fn=lambda rank: 5,
        )
        assert coll.input_chunks(0) == 3
        assert coll.output_chunks(0) == 5


class TestValidation:
    def test_zero_ranks_rejected(self):
        with pytest.raises(ProgramError):
            AllReduce(0)

    def test_zero_chunk_factor_rejected(self):
        with pytest.raises(ProgramError):
            AllReduce(2, chunk_factor=0)

    def test_repr_mentions_ranks(self):
        assert "ranks=4" in repr(AllReduce(4))
