"""Tests for the compile-plan service (repro.serve)."""

import asyncio
import json
import time

import pytest

from repro.core.cache import CompileCache
from repro.core.compiler import compile_program
from repro.analysis.autotune import Candidate
from repro.serve import (
    PlanClient,
    PlanRequest,
    PlanService,
    PlanServiceError,
    ServeError,
    reset_serve_stats,
    serve_stats,
)


@pytest.fixture(autouse=True)
def clean_serve_stats():
    reset_serve_stats()
    yield
    reset_serve_stats()


def small_request(**overrides):
    """A 4-rank generic-topology ask — the cheapest compile we have."""
    doc = {"collective": "allreduce", "size_bytes": 1 << 20,
           "topology": "generic", "nodes": 1, "gpus_per_node": 4}
    doc.update(overrides)
    return PlanRequest(**doc)


def make_service(**overrides):
    """A service over a private memory-only cache (test isolation)."""
    kwargs = {"cache": CompileCache(), "autotune": False}
    kwargs.update(overrides)
    return PlanService(**kwargs)


def slow_compile(delay, calls):
    """A compile_fn seam that sleeps, then compiles for real."""

    def fn(program, options):
        calls.append(program.name)
        time.sleep(delay)
        return compile_program(program, options)

    return fn


class TestRequestValidation:
    def test_unknown_collective_rejected(self):
        with pytest.raises(ServeError, match="unknown collective"):
            PlanRequest.from_doc({"collective": "allscatter", "size": 1})

    def test_missing_size_rejected(self):
        with pytest.raises(ServeError, match="integer 'size'"):
            PlanRequest.from_doc({"collective": "allreduce"})

    def test_bad_protocol_rejected(self):
        with pytest.raises(ServeError, match="unknown protocol"):
            PlanRequest.from_doc({"collective": "allreduce", "size": 1,
                                  "protocol": "TURBO"})

    def test_size_alias_and_family_key(self):
        request = PlanRequest.from_doc(
            {"collective": "allreduce", "size_bytes": 4096})
        assert request.size_bytes == 4096
        # Sizes never split families; GPU count only matters when the
        # topology is generic.
        other = PlanRequest.from_doc(
            {"collective": "allreduce", "size": 1, "gpus_per_node": 4})
        assert request.family_key() == other.family_key()


class TestDedupInFlight:
    def test_concurrent_identical_requests_share_one_compile(self):
        calls = []
        service = make_service(compile_fn=slow_compile(0.1, calls))
        request = small_request()

        async def body():
            plans = await asyncio.gather(
                *(service.plan(request) for _ in range(6)))
            await service.stop()
            return plans

        plans = asyncio.run(body())
        assert len(calls) == 1
        assert all(p == plans[0] for p in plans)
        stats = serve_stats()
        assert stats["requests"] == 6
        assert stats["cold_misses"] == 1
        assert stats["dedup_inflight"] == 5

    def test_distinct_families_do_not_dedup(self):
        calls = []
        service = make_service(compile_fn=slow_compile(0.05, calls))

        async def body():
            await asyncio.gather(
                service.plan(small_request()),
                service.plan(small_request(collective="allgather")))
            await service.stop()

        asyncio.run(body())
        assert len(calls) == 2
        assert serve_stats()["dedup_inflight"] == 0

    def test_warm_requests_hit_the_plan_table(self):
        service = make_service()
        request = small_request()

        async def body():
            first = await service.plan(request)
            second = await service.plan(request)
            await service.stop()
            return first, second

        first, second = asyncio.run(body())
        assert first["plan_id"] == second["plan_id"]
        stats = serve_stats()
        assert stats["plan_hits"] == 1
        assert stats["cold_misses"] == 1


class TestBackgroundPromotion:
    def test_cold_miss_then_promote(self):
        service = make_service(
            autotune=True,
            tune_sizes=(1 << 20,),
            tune_space=(Candidate(1, 1, "LL"), Candidate(1, 2, "LL")),
        )
        request = small_request()

        async def body():
            cold = await service.plan(request)
            await service.drain_background()
            warm = await service.plan(request)
            await service.stop()
            return cold, warm

        cold, warm = asyncio.run(body())
        assert cold["tuned"] is False
        assert warm["tuned"] is True
        assert warm["origin"] == "tuned"
        assert warm["predicted_us"] > 0
        stats = serve_stats()
        assert stats["tune_runs"] == 1
        assert stats["promotions"] == 1

    def test_pinned_protocol_restricts_the_space(self):
        service = make_service(
            autotune=True,
            tune_sizes=(1 << 20,),
            tune_space=(Candidate(1, 1, "LL"), Candidate(1, 2, "Simple")),
        )
        request = small_request(protocol="Simple")

        async def body():
            await service.plan(request)
            await service.drain_background()
            plan = await service.plan(request)
            await service.stop()
            return plan

        plan = asyncio.run(body())
        assert plan["protocol"] == "Simple"


class TestShieldedCancellation:
    def test_cancelled_waiter_does_not_kill_the_shared_compile(self):
        calls = []
        service = make_service(compile_fn=slow_compile(0.2, calls))
        request = small_request()

        async def body():
            waiter = asyncio.ensure_future(service.plan(request))
            await asyncio.sleep(0.05)
            waiter.cancel()
            try:
                await waiter
            except asyncio.CancelledError:
                pass
            # The shielded compile keeps going and lands in the table.
            await service.drain_background()
            plan = await service.plan(request)
            await service.stop()
            return plan

        plan = asyncio.run(body())
        assert plan["algorithm"]
        assert len(calls) == 1
        assert serve_stats()["plan_hits"] == 1

    def test_client_disconnect_mid_request_leaves_service_healthy(self):
        calls = []
        service = make_service(compile_fn=slow_compile(0.3, calls))
        request = small_request()

        async def body():
            await service.start("127.0.0.1", 0)
            host, port = service.address
            # A raw client that asks, then slams the connection shut
            # while the service is still compiling.
            reader, writer = await asyncio.open_connection(host, port)
            doc = {"op": "plan", "collective": "allreduce",
                   "size": 1 << 20, "topology": "generic",
                   "gpus_per_node": 4}
            writer.write(json.dumps(doc).encode() + b"\n")
            await writer.drain()
            await asyncio.sleep(0.05)
            writer.transport.abort()
            # A well-behaved client right behind it still gets served.
            async with PlanClient(host, port) as client:
                plan = await client.plan(
                    "allreduce", 1 << 20, topology="generic",
                    gpus_per_node=4)
                assert await client.ping()
            await service.stop()
            return plan

        plan = asyncio.run(body())
        assert plan["algorithm"]
        # One compile served both the aborted and the healthy client.
        assert len(calls) == 1


class TestWireProtocol:
    def run_with_server(self, coro_fn, **service_kwargs):
        service = make_service(**service_kwargs)

        async def body():
            await service.start("127.0.0.1", 0)
            host, port = service.address
            try:
                return await coro_fn(service, host, port)
            finally:
                await service.stop()

        return asyncio.run(body())

    def test_plan_roundtrip_with_raw_xml_framing(self):
        async def body(service, host, port):
            async with PlanClient(host, port) as client:
                full = await client.plan(
                    "allreduce", 1 << 20, topology="generic",
                    gpus_per_node=4)
                bare = await client.plan(
                    "allreduce", 1 << 20, topology="generic",
                    gpus_per_node=4, include_xml=False)
            return full, bare

        full, bare = self.run_with_server(body)
        assert full["xml"].startswith("<algo")
        assert "xml" not in bare and "xml_bytes" not in bare
        assert bare["plan_id"] == full["plan_id"]

    def test_revalidation_answers_with_a_match(self):
        async def body(service, host, port):
            async with PlanClient(host, port) as client:
                first = await client.plan(
                    "allreduce", 1 << 20, topology="generic",
                    gpus_per_node=4)
                second = await client.plan(
                    "allreduce", 1 << 20, topology="generic",
                    gpus_per_node=4)
            return first, second

        first, second = self.run_with_server(body)
        # The second response was a short 'match' line; the client
        # rebuilt the payload from its cache, byte-for-byte.
        assert second == first
        assert serve_stats()["not_modified"] == 1

    def test_stats_ping_and_errors_over_the_wire(self):
        async def body(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)

            async def ask(raw):
                writer.write(raw)
                await writer.drain()
                return json.loads(await reader.readline())

            pong = await ask(b'{"op":"ping"}\n')
            garbage = await ask(b'this is not json\n')
            unknown = await ask(b'{"op":"dance"}\n')
            bad = await ask(b'{"op":"plan","collective":"nope","size":1}\n')
            stats = await ask(b'{"op":"stats"}\n')
            writer.close()
            return pong, garbage, unknown, bad, stats

        pong, garbage, unknown, bad, stats = self.run_with_server(body)
        assert pong == {"ok": True, "pong": True}
        assert garbage["ok"] is False and "bad request" in garbage["error"]
        assert unknown["ok"] is False and "unknown op" in unknown["error"]
        assert bad["ok"] is False and "unknown collective" in bad["error"]
        assert stats["ok"] is True
        assert stats["stats"]["serve"]["errors"] == 3

    def test_client_raises_on_service_error(self):
        async def body(service, host, port):
            async with PlanClient(host, port) as client:
                with pytest.raises(PlanServiceError,
                                   match="unknown collective"):
                    await client.request(
                        {"op": "plan", "collective": "nope", "size": 1})

        self.run_with_server(body)

    def test_shutdown_op_stops_the_server(self):
        async def body(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            serve_task = asyncio.ensure_future(
                service.serve_until_shutdown())
            await asyncio.sleep(0)
            writer.write(b'{"op":"shutdown"}\n')
            await writer.drain()
            response = json.loads(await reader.readline())
            await asyncio.wait_for(serve_task, timeout=5)
            writer.close()
            return response

        response = self.run_with_server(body)
        assert response == {"ok": True, "stopping": True}


class TestMetricsIntegration:
    def test_serve_section_appears_in_metrics_dict(self):
        from repro.observe import metrics_dict, metrics_text

        service = make_service()

        async def body():
            await service.plan(small_request())
            await service.plan(small_request())
            await service.stop()

        asyncio.run(body())
        metrics = metrics_dict(service.tracer)
        assert metrics["serve"]["requests"] == 2
        assert metrics["serve"]["plan_hits"] == 1
        assert "serve.request" in metrics["spans"]
        assert "plan service: 2 request(s)" in metrics_text(metrics)
