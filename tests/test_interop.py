"""Tests for the XML/dict interchange layer (repro.core.interop).

Covers the reference-dialect importer (short buffer names, op aliases,
``-1`` sentinels, named parse errors), lossless round-trips as
hypothesis properties over randomly generated IRs, collective
resolution (by name and by tracing), and the alltoallv acceptance
path: a builder-authored program and a reference-dialect XML import
must both verify, simulate, and conform.
"""

from fractions import Fraction
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.build import IrBuilder
from repro.conformance import run_conformance
from repro.core import (
    AllGather,
    AllReduce,
    AllToAllV,
    Buffer,
    CompilerOptions,
    MscclIr,
    Op,
    XmlImportError,
    collective_from_name,
    compile_program,
    import_xml,
    import_xml_file,
    infer_collective,
    resolve_collective,
    trace_ir,
)
from repro.core.chunk import InputChunk
from repro.core.instructions import RECEIVING_OPS, SENDING_OPS
from repro.core.ir import GpuProgram, IrInstruction, ThreadBlock
from repro.runtime import IrExecutor, IrSimulator
from repro.topology import generic
from tests.conftest import build_ring_allreduce

XML_DIR = Path(__file__).resolve().parents[1] / "examples" / "xml"


# -- a strategy for structurally valid IRs --------------------------------

_fractions = st.builds(
    lambda n, d: Fraction(n % (d + 1), d),
    st.integers(0, 8), st.integers(1, 8),
)


@st.composite
def _instruction(draw, tb, sizes, dep_pool):
    """One instruction whose op fits ``tb``'s peers and whose spans fit
    the gpu's declared buffer ``sizes``."""
    ops = [Op.COPY, Op.REDUCE, Op.NOP]
    if tb.send_peer is not None:
        ops.append(Op.SEND)
    if tb.recv_peer is not None:
        ops += [Op.RECV, Op.RECV_REDUCE_COPY]
        if tb.send_peer is not None:
            ops += [Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND,
                    Op.RECV_REDUCE_SEND]
    op = draw(st.sampled_from(ops))

    def span():
        buffers = [b for b in (Buffer.INPUT, Buffer.OUTPUT, Buffer.SCRATCH)
                   if sizes[b] > 0]
        buf = draw(st.sampled_from(buffers))
        count = draw(st.integers(1, sizes[buf]))
        index = draw(st.integers(0, sizes[buf] - count))
        return (buf, index, count)

    uses_src = op in (Op.COPY, Op.REDUCE, Op.SEND, Op.RECV_REDUCE_COPY,
                      Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND)
    uses_dst = op in (Op.COPY, Op.REDUCE, Op.RECV, Op.RECV_REDUCE_COPY,
                      Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND)
    src = span() if uses_src else None
    dst = span() if uses_dst else None
    counts = [s[2] for s in (src, dst) if s is not None]
    lo = draw(_fractions)
    hi = draw(_fractions)
    if hi < lo:
        lo, hi = hi, lo
    lineage = None
    if draw(st.booleans()):
        lineage = tuple(sorted(draw(st.sets(
            st.tuples(st.integers(0, 3),
                      st.sampled_from(["input", "output", "scratch"]),
                      st.integers(0, 7)),
            min_size=1, max_size=3,
        ))))
    depends = sorted(draw(st.sets(st.sampled_from(dep_pool),
                                  max_size=2))) if dep_pool else []
    return IrInstruction(
        step=0,  # renumbered by the caller
        op=op,
        src=src,
        dst=dst,
        count=max(counts) if counts else 1,
        frac_lo=lo,
        frac_hi=hi if hi > lo else lo + Fraction(1, 8),
        depends=depends,
        lineage=lineage,
    )


@st.composite
def irs(draw):
    """Random IRs satisfying the importer's structural invariants:
    contiguous steps, one thread block per directed connection,
    consistent has_dep flags, program-order recv_seq tags."""
    num_ranks = draw(st.integers(2, 3))
    ir = MscclIr(
        name="generated",
        collective=draw(st.sampled_from(["custom", "allreduce"])),
        protocol=draw(st.sampled_from(["Simple", "LL"])),
        num_ranks=num_ranks,
        in_place=draw(st.booleans()),
    )
    for rank in range(num_ranks):
        sizes = {
            Buffer.INPUT: draw(st.integers(1, 5)),
            Buffer.OUTPUT: draw(st.integers(1, 5)),
            Buffer.SCRATCH: draw(st.integers(0, 3)),
        }
        gpu = GpuProgram(rank=rank, input_chunks=sizes[Buffer.INPUT],
                         output_chunks=sizes[Buffer.OUTPUT],
                         scratch_chunks=sizes[Buffer.SCRATCH])
        peers = [p for p in range(num_ranks) if p != rank]
        used = set()
        dep_pool = []
        for tb_id in range(draw(st.integers(1, 3))):
            send = draw(st.sampled_from([None] + peers))
            recv = draw(st.sampled_from([None] + peers))
            chan = draw(st.integers(0, 1))
            key_s, key_r = ("s", send, chan), ("r", recv, chan)
            if (send is not None and key_s in used) or \
                    (recv is not None and key_r in used):
                continue
            used.update({key_s, key_r})
            tb = ThreadBlock(tb_id=len(gpu.threadblocks),
                             send_peer=send, recv_peer=recv, channel=chan)
            for _ in range(draw(st.integers(1, 3))):
                instr = draw(_instruction(tb, sizes, dep_pool))
                instr.step = len(tb.instructions)
                tb.instructions.append(instr)
            dep_pool += [(tb.tb_id, i.step) for i in tb.instructions]
            gpu.threadblocks.append(tb)
        # Drop self-thread-block deps the pool construction allowed.
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                instr.depends = [d for d in instr.depends
                                 if d[0] != tb.tb_id]
        # recv_seq: program order per connection; has_dep: targets.
        by_conn = {}
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                if instr.op in RECEIVING_OPS:
                    conn = (tb.recv_peer, tb.channel)
                    instr.recv_seq = by_conn.get(conn, 0)
                    by_conn[conn] = instr.recv_seq + 1
        targets = {tuple(d) for tb in gpu.threadblocks
                   for i in tb.instructions for d in i.depends}
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                instr.has_dep = (tb.tb_id, instr.step) in targets
        ir.gpus.append(gpu)
    return ir


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(irs())
    def test_xml_round_trip(self, ir):
        assert import_xml(ir.to_xml()) == ir

    @settings(max_examples=60, deadline=None)
    @given(irs())
    def test_dict_round_trip(self, ir):
        assert MscclIr.from_dict(ir.to_dict()) == ir

    def test_compiled_ir_round_trips(self):
        algo = compile_program(build_ring_allreduce(4, instances=2),
                               CompilerOptions())
        assert import_xml(algo.ir.to_xml()) == algo.ir
        assert MscclIr.from_dict(algo.ir.to_dict()) == algo.ir

    def test_mismatched_span_counts_survive_xml(self):
        # The dst-span count must not collapse into the src count: a
        # send carrying 1 chunk into a 2-chunk landing zone round-trips.
        ir = MscclIr(name="x", collective="custom", protocol="Simple",
                     num_ranks=1, in_place=False)
        gpu = GpuProgram(rank=0, input_chunks=2, output_chunks=2,
                         scratch_chunks=0)
        tb = ThreadBlock(tb_id=0)
        tb.instructions.append(IrInstruction(
            step=0, op=Op.COPY, src=(Buffer.INPUT, 0, 1),
            dst=(Buffer.OUTPUT, 0, 2), count=2,
        ))
        gpu.threadblocks.append(tb)
        ir.gpus.append(gpu)
        back = import_xml(ir.to_xml())
        instr = back.gpus[0].threadblocks[0].instructions[0]
        assert instr.src == (Buffer.INPUT, 0, 1)
        assert instr.dst == (Buffer.OUTPUT, 0, 2)


REFERENCE_XML = """
<algo name="pingpong" proto="Simple" nchannels="1" ngpus="2"
      coll="custom" inplace="0">
  <gpu id="0" i_chunks="1" o_chunks="1" s_chunks="0">
    <tb id="0" send="1" recv="1" chan="0">
      <step s="0" type="s" srcbuf="i" srcoff="0" cnt="1"
            depid="-1" deps="-1" hasdep="0"/>
      <step s="1" type="r" dstbuf="o" dstoff="0" cnt="1"
            depid="-1" deps="-1" hasdep="1"/>
    </tb>
    <tb id="1" send="-1" recv="-1" chan="0">
      <step s="0" type="nop" depid="0" deps="1" hasdep="0"/>
    </tb>
  </gpu>
  <gpu id="1" i_chunks="1" o_chunks="1" s_chunks="0">
    <tb id="0" send="0" recv="0" chan="0">
      <step s="0" type="rcs" dstbuf="o" dstoff="0" cnt="1"
            depid="-1" deps="-1" hasdep="0"/>
    </tb>
  </gpu>
</algo>
"""


class TestReferenceDialect:
    def test_imports_reference_features(self):
        ir = import_xml(REFERENCE_XML)
        assert ir.num_ranks == 2
        tb0 = ir.gpus[0].threadblocks[0]
        assert tb0.instructions[0].op is Op.SEND
        assert tb0.instructions[0].src == (Buffer.INPUT, 0, 1)
        assert tb0.instructions[1].op is Op.RECV
        assert tb0.instructions[1].has_dep  # explicit hasdep="1"
        nop = ir.gpus[0].threadblocks[1].instructions[0]
        assert nop.op is Op.NOP
        assert nop.depends == [(0, 1)]
        assert ir.gpus[1].threadblocks[0].instructions[0].op \
            is Op.RECV_COPY_SEND

    def test_traces_to_pingpong_semantics(self):
        outputs = trace_ir(import_xml(REFERENCE_XML))
        assert outputs[1][0] == InputChunk(0, 0)  # gpu1 stored the chunk
        assert outputs[0][0] == InputChunk(0, 0)  # ...and bounced it back

    def test_long_op_aliases_and_buffer_names(self):
        xml = REFERENCE_XML.replace('type="s"', 'type="send"') \
                           .replace('type="r" ', 'type="recv" ') \
                           .replace('srcbuf="i"', 'srcbuf="input"') \
                           .replace('dstbuf="o"', 'dstbuf="out"')
        assert import_xml(xml) == import_xml(REFERENCE_XML)

    def test_recv_seq_inferred_in_program_order(self):
        ir = import_xml(REFERENCE_XML)
        # Exactly one receive per connection here: both get seq 0.
        assert ir.gpus[0].threadblocks[0].instructions[1].recv_seq == 0
        assert ir.gpus[1].threadblocks[0].instructions[0].recv_seq == 0

    @pytest.mark.parametrize("mutation, fragment", [
        # missing required attribute, named
        (lambda x: x.replace(' srcoff="0"', "", 1), "srcoff"),
        # non-integer attribute, named
        (lambda x: x.replace('cnt="1"', 'cnt="many"', 1), "cnt"),
        # unknown op name
        (lambda x: x.replace('type="rcs"', 'type="warp"'), "warp"),
        # bad root element
        (lambda x: x.replace("algo", "algorithm"), "algo"),
        # dep attributes must come in pairs
        (lambda x: x.replace('depid="0" deps="1"', 'depid="0"'), "deps"),
    ])
    def test_malformed_inputs_name_the_problem(self, mutation, fragment):
        with pytest.raises(XmlImportError) as excinfo:
            import_xml(mutation(REFERENCE_XML))
        assert fragment in str(excinfo.value)

    def test_duplicate_gpu_id_rejected(self):
        xml = REFERENCE_XML.replace('<gpu id="1"', '<gpu id="0"')
        with pytest.raises(XmlImportError, match="duplicate gpu id"):
            import_xml(xml)

    def test_not_xml_rejected(self):
        with pytest.raises(XmlImportError, match="not well-formed"):
            import_xml("{json?}")


class TestCollectiveResolution:
    def test_named_collective_reconstructed(self):
        algo = compile_program(build_ring_allreduce(4), CompilerOptions())
        coll = collective_from_name(algo.ir)
        assert isinstance(coll, AllReduce)
        assert coll.num_ranks == 4

    def test_unknown_name_falls_back_to_tracing(self):
        ir = import_xml(REFERENCE_XML)
        assert collective_from_name(ir) is None
        coll = resolve_collective(ir)
        assert coll.postcondition(1) == {0: InputChunk(0, 0)}

    def test_inferred_collective_checks_in_executor(self):
        ir = import_xml(REFERENCE_XML)
        IrExecutor(ir, infer_collective(ir)).run_and_check()


class TestSampleFiles:
    """The checked-in examples/xml files stay importable and correct."""

    @pytest.mark.parametrize("name", ["alltoallv_3gpu.xml",
                                      "allgather_ring_3gpu.xml"])
    def test_sample_imports_and_checks(self, name):
        ir = import_xml_file(XML_DIR / name)
        coll = resolve_collective(ir)
        IrExecutor(ir, coll).run_and_check()

    def test_allgather_sample_resolves_named_collective(self):
        ir = import_xml_file(XML_DIR / "allgather_ring_3gpu.xml")
        assert isinstance(resolve_collective(ir), AllGather)


class TestAllToAllVAcceptance:
    """The issue's acceptance path: one program authored twice —
    via repro.build and as reference-dialect XML — produces identical
    postcondition-verified results in executor and simulator, and both
    pass the differential conformance harness."""

    COUNTS = [[1, 2, 1], [3, 1, 2], [1, 1, 1]]

    def _built_ir(self):
        coll = AllToAllV(self.COUNTS)
        builder = IrBuilder("alltoallv_skewed", coll)
        for rank in range(3):
            gpu = builder.gpu(rank)
            gpu.threadblock().copy(
                "i", coll.send_offset(rank, rank),
                "o", coll.recv_offset(rank, rank),
                self.COUNTS[rank][rank])
            for peer in (p for p in range(3) if p != rank):
                tb = gpu.threadblock(send=peer, recv=peer)
                tb.send("i", coll.send_offset(rank, peer),
                        self.COUNTS[rank][peer])
                tb.recv("o", coll.recv_offset(peer, rank),
                        self.COUNTS[peer][rank])
        return builder.build(), coll

    def _imported_ir(self):
        return import_xml_file(XML_DIR / "alltoallv_3gpu.xml")

    def test_identical_verified_outputs(self):
        built, coll = self._built_ir()
        imported = self._imported_ir()
        results = []
        for ir in (built, imported):
            executor = IrExecutor(ir, coll, seed=7)
            executor.run_and_check()
            results.append({rank: executor.buffers[(rank, Buffer.OUTPUT)]
                            for rank in range(3)})
        for rank in range(3):
            assert (results[0][rank] == results[1][rank]).all()

    def test_both_simulate(self):
        built, _ = self._built_ir()
        imported = self._imported_ir()
        topo = generic(3)
        t_built = IrSimulator(built, topo).run(chunk_bytes=4096).time_us
        t_imported = IrSimulator(imported, topo).run(
            chunk_bytes=4096).time_us
        assert t_built > 0 and t_imported > 0

    def test_both_conform(self):
        built, coll = self._built_ir()
        imported = self._imported_ir()
        assert run_conformance(built, collective=coll).ok
        # The imported copy resolves its own oracle from the traced
        # semantics — no collective handed in.
        assert run_conformance(imported).ok

    def test_traced_oracle_matches_alltoallv(self):
        coll = AllToAllV(self.COUNTS)
        imported = self._imported_ir()
        outputs = trace_ir(imported)
        for rank in range(3):
            assert outputs[rank] == coll.postcondition(rank)
