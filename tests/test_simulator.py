"""Tests for the discrete-event MSCCL-IR simulator."""

import pytest

from repro.core import CompilerOptions, compile_program
from repro.core.errors import RuntimeConfigError, SimulationError
from repro.runtime import (
    LL,
    LL128,
    PROTOCOLS,
    SIMPLE,
    IrSimulator,
    SimConfig,
    get_protocol,
)
from repro.topology import dgx2, generic, ndv4
from tests.conftest import build_ring_allreduce

KiB = 1024
MiB = 1024 * 1024


@pytest.fixture(scope="module")
def ring8_ir():
    return compile_program(build_ring_allreduce(8), CompilerOptions())


class TestProtocols:
    def test_lookup_case_insensitive(self):
        assert get_protocol("ll128") is LL128
        assert get_protocol("SIMPLE") is SIMPLE
        assert get_protocol(LL) is LL

    def test_unknown_protocol(self):
        with pytest.raises(RuntimeConfigError, match="unknown protocol"):
            get_protocol("warp")

    def test_tradeoffs_encoded(self):
        assert LL.alpha_overhead < LL128.alpha_overhead
        assert LL128.alpha_overhead < SIMPLE.alpha_overhead
        assert LL.bandwidth_efficiency < LL128.bandwidth_efficiency
        assert LL128.bandwidth_efficiency < SIMPLE.bandwidth_efficiency
        assert set(PROTOCOLS) == {
            "Simple", "LL", "LL128", "Simple-Direct"
        }

    def test_simple_direct_is_direct_copy(self):
        from repro.runtime import SIMPLE_DIRECT

        assert SIMPLE_DIRECT.direct_copy
        assert not SIMPLE.direct_copy
        assert SIMPLE_DIRECT.alpha_overhead < SIMPLE.alpha_overhead


class TestBasicRuns:
    def test_time_is_positive_and_finite(self, ring8_ir):
        result = IrSimulator(ring8_ir, ndv4(1)).run(chunk_bytes=64 * KiB)
        assert 0 < result.time_us < 1e7

    def test_more_data_takes_longer(self, ring8_ir):
        sim = IrSimulator(ring8_ir, ndv4(1))
        small = sim.run(chunk_bytes=64 * KiB).time_us
        large = sim.run(chunk_bytes=64 * MiB).time_us
        assert large > small * 10

    def test_deterministic(self, ring8_ir):
        sim = IrSimulator(ring8_ir, ndv4(1))
        assert sim.run(chunk_bytes=MiB).time_us == \
            sim.run(chunk_bytes=MiB).time_us

    def test_rank_count_mismatch_rejected(self, ring8_ir):
        with pytest.raises(SimulationError, match="ranks"):
            IrSimulator(ring8_ir, ndv4(2))

    def test_zero_bytes_rejected(self, ring8_ir):
        with pytest.raises(SimulationError):
            IrSimulator(ring8_ir, ndv4(1)).run(chunk_bytes=0)

    def test_launch_overhead_toggle(self, ring8_ir):
        topo = ndv4(1)
        with_launch = IrSimulator(
            ring8_ir, topo, config=SimConfig(include_launch=True)
        ).run(chunk_bytes=KiB).time_us
        without = IrSimulator(
            ring8_ir, topo, config=SimConfig(include_launch=False)
        ).run(chunk_bytes=KiB).time_us
        delta = with_launch - without
        assert delta == pytest.approx(
            topo.machine.kernel_launch_overhead
        )


class TestProtocolEffects:
    def test_ll_wins_small_simple_wins_large(self, ring8_ir):
        topo = ndv4(1)
        small = {
            name: IrSimulator(ring8_ir, topo, protocol=name)
            .run(chunk_bytes=KiB).time_us
            for name in ("LL", "Simple")
        }
        assert small["LL"] < small["Simple"]
        # At bandwidth-bound sizes the wire must be the bottleneck for
        # protocol efficiency to show: parallelize enough to saturate.
        wide_ir = compile_program(
            build_ring_allreduce(8, instances=16), CompilerOptions()
        )
        large = {
            name: IrSimulator(wide_ir, topo, protocol=name)
            .run(chunk_bytes=64 * MiB).time_us
            for name in ("LL", "Simple")
        }
        assert large["Simple"] < large["LL"]

    def test_ll128_between(self, ring8_ir):
        topo = ndv4(1)
        times = {
            name: IrSimulator(ring8_ir, topo, protocol=name)
            .run(chunk_bytes=KiB).time_us
            for name in ("LL", "LL128", "Simple")
        }
        assert times["LL"] < times["LL128"] < times["Simple"]


class TestTiling:
    def test_small_chunks_are_one_tile(self, ring8_ir):
        result = IrSimulator(ring8_ir, ndv4(1)).run(chunk_bytes=KiB)
        assert result.tiles == 1

    def test_large_chunks_tile_up_to_cap(self, ring8_ir):
        config = SimConfig(max_tiles=4)
        result = IrSimulator(ring8_ir, ndv4(1), config=config).run(
            chunk_bytes=64 * MiB
        )
        assert result.tiles == 4

    def test_tile_count_respects_slot_size(self, ring8_ir):
        result = IrSimulator(ring8_ir, ndv4(1)).run(
            chunk_bytes=2 * SIMPLE.slot_bytes
        )
        assert result.tiles == 2


class TestContention:
    def test_shared_link_slower_than_private(self):
        """Two concurrent flows into one GPU (incast) are slower than two
        flows to different GPUs."""
        from repro.core import AllToAll, MSCCLProgram, chunk

        def build(dsts):
            coll = AllToAll(4, chunk_factor=1)
            with MSCCLProgram("flows", coll) as program:
                for src, dst in dsts:
                    chunk(src, "in", 0).copy(dst, "sc", src)
            return compile_program(program, CompilerOptions(verify=False))

        # Keep the link (10 GB/s) well below the thread block copy rate
        # so the wire, not the engine, is the bottleneck.
        topo = generic(4, 1, nvlink_bandwidth=10.0)
        incast = IrSimulator(build([(0, 2), (1, 2)]), topo).run(
            chunk_bytes=8 * MiB
        ).time_us
        topo2 = generic(4, 1, nvlink_bandwidth=10.0)
        spread = IrSimulator(build([(0, 2), (1, 3)]), topo2).run(
            chunk_bytes=8 * MiB
        ).time_us
        assert incast > spread * 1.3

    def test_parallelization_increases_throughput(self):
        """More instances beat one at bandwidth-bound sizes because a
        single thread block cannot saturate the link."""
        topo = ndv4(1)
        times = {}
        for instances in (1, 4):
            ir = compile_program(
                build_ring_allreduce(8, instances=instances),
                CompilerOptions(),
            )
            times[instances] = IrSimulator(ir, topo).run(
                chunk_bytes=8 * MiB
            ).time_us
        assert times[4] < times[1] * 0.5

    def test_fusion_speeds_up_execution(self):
        from repro.core import CompilerOptions as Opts

        topo = ndv4(1)
        fused_ir = compile_program(
            build_ring_allreduce(8), Opts(instr_fusion=True)
        )
        unfused_ir = compile_program(
            build_ring_allreduce(8), Opts(instr_fusion=False)
        )
        fused = IrSimulator(fused_ir, topo).run(chunk_bytes=4 * MiB).time_us
        unfused = IrSimulator(unfused_ir, topo).run(
            chunk_bytes=4 * MiB
        ).time_us
        assert fused < unfused


class TestTrace:
    def test_trace_disabled_by_default(self, ring8_ir):
        result = IrSimulator(ring8_ir, ndv4(1)).run(chunk_bytes=KiB)
        assert result.trace is None

    def test_trace_rows_cover_all_instructions(self, ring8_ir):
        config = SimConfig(collect_trace=True)
        result = IrSimulator(ring8_ir, ndv4(1), config=config).run(
            chunk_bytes=KiB
        )
        assert len(result.trace) == result.instruction_count * result.tiles
        for row in result.trace:
            assert row.end_us >= row.start_us >= 0

    def test_resource_busy_reported(self, ring8_ir):
        result = IrSimulator(ring8_ir, ndv4(1)).run(chunk_bytes=MiB)
        nvlink_busy = [
            busy for name, busy in result.resource_busy_us.items()
            if name.startswith("nvlink")
        ]
        assert nvlink_busy and max(nvlink_busy) > 0

    def test_algbw_helper(self, ring8_ir):
        result = IrSimulator(ring8_ir, ndv4(1)).run(chunk_bytes=MiB)
        assert result.algbw_gbps(8 * MiB) == pytest.approx(
            8 * MiB / result.time_us / 1e3
        )
        assert result.time_s == pytest.approx(result.time_us * 1e-6)


class TestSimResultEdgeCases:
    def test_zero_time_algbw_is_zero_not_inf(self):
        from repro.runtime import SimResult

        degenerate = SimResult(
            time_us=0.0, tiles=0, instruction_count=0, threadblocks=0,
            chunk_bytes=0.0, protocol="Simple",
        )
        assert degenerate.algbw_gbps(MiB) == 0.0
        negative = SimResult(
            time_us=-1.0, tiles=0, instruction_count=0, threadblocks=0,
            chunk_bytes=0.0, protocol="Simple",
        )
        assert negative.algbw_gbps(MiB) == 0.0


class TestConnectionFifo:
    def test_clamp_fifo_is_monotone_when_first_byte_regresses(self):
        from repro.runtime.simulator import _Connection

        conn = _Connection((0, 1, 0), slots=8, sends_per_tile=4)
        first, last = conn.clamp_fifo(10.0, 20.0)
        assert (first, last) == (10.0, 20.0)
        # A later message computed with an earlier first-byte time must
        # be clamped forward: in-order delivery cannot time-travel.
        first, last = conn.clamp_fifo(5.0, 12.0)
        assert first == 10.0
        assert last == 20.0
        # And the clamp itself keeps last >= first.
        first, last = conn.clamp_fifo(25.0, 24.0)
        assert last >= first >= 20.0


class TestHappensBefore:
    def test_execution_graph_convenience(self, ring8_ir):
        graph = IrSimulator(ring8_ir, ndv4(1)).execution_graph(
            chunk_bytes=KiB
        )
        assert graph is not None and graph.nodes

    def test_pairs_collapse_tiles_and_cover_fifo(self, ring8_ir):
        from repro.runtime import happens_before_pairs

        graph = IrSimulator(ring8_ir, ndv4(1)).execution_graph(
            chunk_bytes=KiB
        )
        pairs = happens_before_pairs(graph)
        assert pairs["fifo"], "a ring must communicate"
        for src, dst in pairs["fifo"]:
            assert len(src) == len(dst) == 3  # (rank, tb, step)
            assert src[0] != dst[0]  # fifo edges cross ranks
        assert pairs["program"]
        for src, dst in pairs["program"]:
            assert src[:2] == dst[:2] and src[2] < dst[2]
