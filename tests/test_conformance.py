"""Tests for the differential conformance + fault-injection harness."""

import json

import pytest

from repro.conformance import (
    ConformanceConfig,
    check_conformance,
    displaced_blocks,
    find_races,
    fold_into_diagnosis,
    minimize_order,
    run_conformance,
    shuffled_order,
)
from repro.conformance.witness import ConformanceReport, Witness
from repro.core import CompilerOptions, ConformanceError, compile_program
from repro.core.errors import SimulationError
from repro.algorithms import allpairs_allreduce
from repro.runtime import IrSimulator, SimConfig
from repro.tools.cli import main as cli_main
from repro.topology import generic
from tests.conftest import build_ring_allreduce


def break_dependency(algo, position: int = 0):
    """Delete the ``position``-th cross-thread-block dependency.

    Returns the ``(rank, tb, step, deleted_deps)`` site, or None when
    the IR has fewer dependencies than ``position`` + 1. Compiling with
    ``optimize=True`` first matters: the redundant-dep eliminator has
    already run, so every surviving dep is load-bearing and deleting it
    creates a real race.
    """
    seen = 0
    for gpu in algo.ir.gpus:
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                if not instr.depends:
                    continue
                if seen == position:
                    deleted = list(instr.depends)
                    instr.depends = []
                    return (gpu.rank, tb.tb_id, instr.step, deleted)
                seen += 1
    return None


@pytest.fixture
def allpairs4():
    """Compiled 4-rank allpairs allreduce (optimized: deps are live)."""
    program = allpairs_allreduce(4, protocol="Simple")
    return compile_program(program, CompilerOptions(optimize=True))


class TestCleanAlgorithms:
    def test_ring_conforms(self, ring4):
        algo = compile_program(ring4, CompilerOptions())
        report = run_conformance(algo)
        assert report.ok, report.text()
        # Every advertised check actually ran.
        assert report.rounds["order"] == 5
        assert report.rounds["race-scan"] == 1
        assert report.rounds["pop-check"] > 0
        assert report.rounds["faults"] > 0
        assert report.rounds["engine-parity"] == 1

    def test_allpairs_conforms(self, allpairs4):
        report = run_conformance(allpairs4)
        assert report.ok, report.text()

    def test_check_conformance_returns_report(self, ring4):
        algo = compile_program(ring4, CompilerOptions())
        report = check_conformance(algo)
        assert report.ok

    def test_raw_ir_resolves_collective(self, ring4_ir):
        # A raw IR's .collective is just the name string; the harness
        # now reconstructs the real collective from it (here a 4-rank
        # in-place AllReduce) instead of refusing to run.
        report = run_conformance(ring4_ir)
        assert report.ok, report.text()

    def test_undersized_slot_window_deadlock_is_accepted(self, ring4):
        # fifo_slots=1 fails the static audit for the 4-ring, so the
        # executor's DeadlockError is conforming behaviour, not a
        # witness.
        algo = compile_program(ring4, CompilerOptions())
        report = run_conformance(algo)
        assert report.ok
        assert report.rounds.get("fault-deadlock-accepted", 0) >= 1


class TestBrokenIr:
    """Acceptance: a hand-broken IR yields a minimized race witness."""

    def test_deleted_dep_names_racing_pair(self, allpairs4):
        site = break_dependency(allpairs4)
        assert site is not None
        report = run_conformance(allpairs4)
        assert not report.ok
        races = [w for w in report.witnesses if w.kind == "race"]
        assert races, report.text()
        rank, tb, step, _deleted = site
        # The broken instruction is one side of a reported racing pair.
        assert any((rank, tb, step) in witness.pair
                   for witness in races if witness.pair)

    def test_order_variance_witness_is_minimized(self):
        # Deleting the *second* dep keeps the program-order baseline
        # correct but makes shuffled schedules diverge: the witness
        # must carry a reduced schedule whose displaced blocks include
        # a racing thread block.
        program = allpairs_allreduce(4, protocol="Simple")
        algo = compile_program(program, CompilerOptions(optimize=True))
        site = break_dependency(algo, position=1)
        assert site is not None
        report = run_conformance(algo)
        variance = [w for w in report.witnesses
                    if w.kind == "order-variance"]
        assert variance, report.text()
        witness = variance[0]
        assert witness.schedule is not None
        assert witness.displaced  # some blocks remain displaced
        assert len(witness.displaced) < len(witness.schedule)
        assert witness.pair is not None  # race scan attributed it

    def test_check_conformance_raises_with_witnesses(self, allpairs4):
        break_dependency(allpairs4)
        with pytest.raises(ConformanceError) as excinfo:
            check_conformance(allpairs4)
        assert excinfo.value.witnesses
        assert "racing pair" in str(excinfo.value)


class TestRaceScan:
    def test_clean_ir_has_no_races(self, ring4):
        algo = compile_program(ring4, CompilerOptions())
        from repro.runtime import IrExecutor

        executor = IrExecutor(algo.ir, algo.collective)
        executor.run()
        assert find_races(algo.ir, executor.access_log) == []

    def test_broken_ir_reports_location(self, allpairs4):
        break_dependency(allpairs4)
        from repro.runtime import IrExecutor

        executor = IrExecutor(allpairs4.ir, allpairs4.collective)
        executor.run()
        races = find_races(allpairs4.ir, executor.access_log)
        assert races
        node_a, node_b, location = races[0]
        assert node_a != node_b
        assert "rank" in location and "[" in location


class TestEngineParity:
    """The harness certifies the batched simulator engine per IR."""

    def test_parity_round_passes_on_clean_ir(self, ring4):
        algo = compile_program(ring4, CompilerOptions())
        report = run_conformance(algo, ConformanceConfig(
            seeds=1, check_races=False, inject_faults=False,
        ))
        assert report.ok, report.text()
        assert report.rounds["engine-parity"] == 1
        assert not [w for w in report.witnesses
                    if w.kind == "engine-parity"]

    def test_parity_round_covers_allpairs(self, allpairs4):
        report = run_conformance(allpairs4, ConformanceConfig(
            seeds=1, check_races=False, inject_faults=False,
        ))
        assert report.rounds["engine-parity"] == 1
        assert not [w for w in report.witnesses
                    if w.kind == "engine-parity"], report.text()


class TestDegradationValidation:
    """A fault plan that silently matches nothing must raise.

    A typo'd prefix used to run a fault-free simulation and report
    healthy numbers — the worst failure mode for a degradation study.
    """

    def _sim(self, ring4, degradations):
        algo = compile_program(ring4, CompilerOptions())
        return IrSimulator(algo.ir, generic(4),
                           config=SimConfig(degradations=degradations))

    def test_unmatched_prefix_raises_naming_it(self, ring4):
        sim = self._sim(ring4, {"nic_out[9,9]": 0.1})
        with pytest.raises(SimulationError,
                           match=r"nic_out\[9,9\]") as excinfo:
            sim.run(chunk_bytes=65536.0)
        # The error teaches: it lists resources the run did consult.
        assert "nvlink_out[0]" in str(excinfo.value)

    def test_empty_prefix_rejected_before_running(self, ring4):
        sim = self._sim(ring4, {"": 0.5})
        with pytest.raises(SimulationError, match="empty-string"):
            sim.run(chunk_bytes=65536.0)

    def test_matched_prefix_still_degrades(self, ring4):
        healthy = self._sim(ring4, {}).run(chunk_bytes=65536.0)
        degraded = self._sim(ring4, {"nvlink_out[0]": 0.05}).run(
            chunk_bytes=65536.0)
        assert degraded.time_us > healthy.time_us


class TestScheduleTools:
    BASE = [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_shuffled_order_is_seeded_permutation(self):
        first = shuffled_order(7, self.BASE)
        again = shuffled_order(7, self.BASE)
        other = shuffled_order(8, self.BASE)
        assert first == again
        assert sorted(first) == sorted(self.BASE)
        assert first != other or len(self.BASE) <= 1

    def test_displaced_blocks(self):
        moved = [self.BASE[1], self.BASE[0], *self.BASE[2:]]
        assert displaced_blocks(self.BASE, moved) == \
            [self.BASE[1], self.BASE[0]]
        assert displaced_blocks(self.BASE, self.BASE) == []

    def test_minimize_order_keeps_only_needed_displacement(self):
        # Failure iff (1, 1) is serviced before (0, 0): minimization
        # must undo every other displacement.
        failing = [(1, 1), (1, 0), (0, 1), (0, 0)]

        def still_fails(order):
            return order.index((1, 1)) < order.index((0, 0))

        reduced = minimize_order(self.BASE, failing, still_fails)
        assert still_fails(reduced)
        displaced = displaced_blocks(self.BASE, reduced)
        assert set(displaced) <= {(1, 1), (0, 0), (0, 1), (1, 0)}
        assert len(displaced) < len(
            displaced_blocks(self.BASE, failing)) + 1

    def test_minimize_order_respects_trial_budget(self):
        calls = []

        def still_fails(order):
            calls.append(1)
            return True

        minimize_order(self.BASE, list(reversed(self.BASE)),
                       still_fails, max_trials=3)
        assert len(calls) <= 3


class TestReportAndDiagnosis:
    def test_report_serializes(self, ring4):
        algo = compile_program(ring4, CompilerOptions())
        report = run_conformance(algo)
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["algorithm"] == algo.ir.name
        json.dumps(payload)  # JSON-safe end to end

    def test_witness_summary_names_pair(self):
        witness = Witness("race", "conflict", pair=((0, 1, 2), (0, 2, 3)))
        summary = witness.summary()
        assert "r0/tb1/step2" in summary and "r0/tb2/step3" in summary

    def test_fold_into_diagnosis(self, ring4):
        from repro.observe import diagnose, diagnose_text
        from repro.runtime import IrSimulator, SimConfig
        from repro.topology import generic

        algo = compile_program(ring4, CompilerOptions())
        result = IrSimulator(
            algo.ir, generic(4), config=SimConfig(collect_trace=True)
        ).run(chunk_bytes=1024)
        diag = diagnose(result)
        report = ConformanceReport(algorithm="x", seeds=1)
        report.witnesses.append(Witness("race", "conflict at rank 0"))
        fold_into_diagnosis(diag, report)
        assert diag.witnesses == ["[race] conflict at rank 0"]
        assert "conformance witnesses:" in diagnose_text(diag)

    def test_config_toggles_skip_checks(self, ring4):
        algo = compile_program(ring4, CompilerOptions())
        report = run_conformance(algo, ConformanceConfig(
            seeds=2, check_fifo_edges=False, check_races=False,
            check_engine_parity=False, inject_faults=False,
        ))
        assert report.ok
        assert "pop-check" not in report.rounds
        assert "race-scan" not in report.rounds
        assert "faults" not in report.rounds
        assert "engine-parity" not in report.rounds
        assert report.rounds["order"] == 2


class TestCli:
    def test_conform_single_algorithm(self, capsys):
        code = cli_main(["conform", "ring_allreduce", "--ranks", "4",
                         "--seeds", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out and "1/1" in out

    def test_conform_writes_json(self, tmp_path, capsys):
        path = tmp_path / "reports.json"
        code = cli_main(["conform", "ring_allreduce", "--ranks", "4",
                         "--seeds", "1", "--no-faults",
                         "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload[0]["ok"] is True
        assert "faults" not in payload[0]["rounds"]

    def test_conform_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            cli_main(["conform", "not_an_algorithm"])
