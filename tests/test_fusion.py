"""Tests for peephole instruction fusion (rcs / rrcs / rrs)."""

from repro.core import (
    AllReduce,
    MSCCLProgram,
    Op,
    chunk,
    fuse,
    lower,
)
from tests.conftest import build_ring_allreduce


def lowered(body, num_ranks=4, chunk_factor=2):
    coll = AllReduce(num_ranks, chunk_factor=chunk_factor)
    with MSCCLProgram("t", coll) as program:
        body()
    return lower(program.dag)


def ops_of(idag):
    return [i.op for i in idag.live()]


class TestRcs:
    def test_recv_then_send_fuses(self):
        def body():
            c = chunk(0, "in", 0).copy(1, "sc", 0)
            c.copy(2, "sc", 0)

        idag = fuse(lowered(body))
        assert ops_of(idag) == [Op.SEND, Op.RECV_COPY_SEND, Op.RECV]

    def test_fused_instruction_inherits_comm_matches(self):
        def body():
            c = chunk(0, "in", 0).copy(1, "sc", 0)
            c.copy(2, "sc", 0)

        idag = fuse(lowered(body))
        send, rcs, recv = idag.live()
        assert rcs.recv_match == send.instr_id
        assert rcs.send_match == recv.instr_id
        assert recv.recv_match == rcs.instr_id

    def test_long_forwarding_chain_fuses_throughout(self):
        def body():
            c = chunk(0, "in", 0)
            for rank in (1, 2, 3):
                c = c.copy(rank, "sc", 0)

        idag = fuse(lowered(body))
        histogram = {}
        for op in ops_of(idag):
            histogram[op] = histogram.get(op, 0) + 1
        assert histogram == {Op.SEND: 1, Op.RECV_COPY_SEND: 2, Op.RECV: 1}

    def test_no_fusion_across_different_spans(self):
        def body():
            chunk(0, "in", 0).copy(1, "sc", 0)
            chunk(1, "in", 0).copy(2, "sc", 0)  # unrelated send

        idag = fuse(lowered(body))
        assert Op.RECV_COPY_SEND not in ops_of(idag)

    def test_channel_conflict_blocks_fusion(self):
        def body():
            c = chunk(0, "in", 0).copy(1, "sc", 0, ch=0)
            c.copy(2, "sc", 0, ch=1)

        idag = fuse(lowered(body))
        assert Op.RECV_COPY_SEND not in ops_of(idag)

    def test_compatible_channels_fuse(self):
        def body():
            c = chunk(0, "in", 0).copy(1, "sc", 0, ch=1)
            c.copy(2, "sc", 0, ch=1)

        idag = fuse(lowered(body))
        assert Op.RECV_COPY_SEND in ops_of(idag)

    def test_longest_path_send_wins(self):
        """Two sends depend on one recv; the one feeding more downstream
        work is fused."""

        def body():
            c = chunk(0, "in", 0).copy(1, "sc", 0)
            c.copy(3, "sc", 1)          # short branch: ends immediately
            d = c.copy(2, "sc", 0)      # long branch: keeps forwarding
            d.copy(3, "sc", 0)

        idag = fuse(lowered(body))
        fused = [i for i in idag.live() if i.op is Op.RECV_COPY_SEND
                 and i.rank == 1]
        assert len(fused) == 1
        assert fused[0].send_peer == 2  # the long branch


class TestRrcsRrs:
    def test_rrc_then_send_with_later_read_keeps_copy(self):
        def body():
            total = chunk(1, "in", 0).reduce(chunk(0, "in", 0))
            total.copy(2, "sc", 0)
            chunk(1, "in", 0).copy(3, "sc", 0)  # value is read again

        idag = fuse(lowered(body))
        assert Op.RECV_REDUCE_COPY_SEND in ops_of(idag)
        assert Op.RECV_REDUCE_SEND not in ops_of(idag)

    def test_rrs_when_result_dead_and_overwritten(self):
        def body():
            total = chunk(1, "in", 0).reduce(chunk(0, "in", 0))
            total.copy(2, "sc", 0)
            # The local partial sum is overwritten, never read again.
            chunk(0, "in", 1).copy(1, "in", 0)

        idag = fuse(lowered(body))
        assert Op.RECV_REDUCE_SEND in ops_of(idag)

    def test_rrs_not_used_when_never_overwritten(self):
        def body():
            total = chunk(1, "in", 0).reduce(chunk(0, "in", 0))
            total.copy(2, "sc", 0)

        idag = fuse(lowered(body))
        # Without a later overwrite the local result must be kept.
        assert Op.RECV_REDUCE_SEND not in ops_of(idag)
        assert Op.RECV_REDUCE_COPY_SEND in ops_of(idag)


class TestRingFusion:
    def test_ring_allreduce_uses_full_fused_repertoire(self):
        program = build_ring_allreduce(4)
        idag = fuse(lower(program.dag))
        histogram = {}
        for instr in idag.live():
            histogram[instr.op] = histogram.get(instr.op, 0) + 1
        # Per chunk: 1 send, R-2 rrs, 1 rrcs, R-2 rcs, 1 recv.
        assert histogram[Op.SEND] == 4
        assert histogram[Op.RECV_REDUCE_SEND] == 8
        assert histogram[Op.RECV_REDUCE_COPY_SEND] == 4
        assert histogram[Op.RECV_COPY_SEND] == 8
        assert histogram[Op.RECV] == 4

    def test_fusion_reduces_instruction_count(self):
        program = build_ring_allreduce(4)
        unfused = lower(program.dag)
        count_before = len(unfused)
        fused = fuse(lower(program.dag))
        assert len(fused) < count_before

    def test_fused_dependencies_remap_to_receiver(self):
        def body():
            c = chunk(0, "in", 0).copy(1, "sc", 0)
            d = c.copy(2, "sc", 0)
            d.copy(3, "sc", 0)

        idag = fuse(lowered(body))
        for instr in idag.live():
            for dep in instr.deps:
                assert idag.instructions[dep] is not None, (
                    "dependency points at a fused-away instruction"
                )
