"""Tests for the pass pipeline, per-pass validation, and the cache."""

import pytest

from repro.algorithms import allpairs_allreduce, ring_allreduce
from repro.core import (
    CompileCache,
    CompilerOptions,
    DefaultSchedulerPolicy,
    Pass,
    PassPipeline,
    PassValidationError,
    compile_program,
    default_pipeline,
    program_digest,
)
from repro.analysis.sweep import compile_for
from repro.runtime.executor import IrExecutor
from repro.topology import ndv4


def ring(**overrides):
    kwargs = dict(channels=2, instances=4, protocol="LL")
    kwargs.update(overrides)
    return ring_allreduce(8, **kwargs)


class TestPipelineShape:
    def test_default_order_matches_paper(self):
        assert default_pipeline().names() == [
            "verify", "lower", "fuse", "schedule",
            "prune_redundant_deps", "renumber_channels", "audit",
        ]

    def test_default_compile_runs_exactly_paper_passes(self):
        algo = compile_program(ring())
        assert list(algo.compile_summary) == [
            "verify", "lower", "fuse", "schedule", "audit",
        ]

    def test_optimize_adds_the_two_ir_passes(self):
        algo = compile_program(ring(), CompilerOptions(optimize=True))
        assert list(algo.compile_summary) == [
            "verify", "lower", "fuse", "schedule",
            "prune_redundant_deps", "renumber_channels", "audit",
        ]

    def test_disabled_passes_are_skipped(self):
        algo = compile_program(
            ring(), CompilerOptions(instr_fusion=False, verify=False)
        )
        names = list(algo.compile_summary)
        assert "fuse" not in names
        assert "verify" not in names

    def test_duplicate_pass_names_rejected(self):
        pipeline = default_pipeline()
        with pytest.raises(ValueError, match="duplicate"):
            PassPipeline(pipeline.passes + [pipeline.passes[0]])

    def test_composition_helpers(self):
        class Marker(Pass):
            name = "marker"

            def run(self, state):
                pass

        pipeline = default_pipeline()
        pipeline.insert_after("schedule", Marker())
        names = pipeline.names()
        assert names.index("marker") == names.index("schedule") + 1
        pipeline.remove("marker")
        assert "marker" not in pipeline.names()
        with pytest.raises(KeyError):
            pipeline.get("marker")

    def test_custom_pipeline_option_is_used(self):
        class Counting(Pass):
            name = "counting"
            calls = 0

            def run(self, state):
                Counting.calls += 1

        pipeline = default_pipeline().insert_before("lower", Counting())
        compile_program(ring(), CompilerOptions(pipeline=pipeline))
        assert Counting.calls == 1


class BreakLineage(Pass):
    """Deliberately corrupt one instruction's chunk lineage."""

    name = "break_lineage"
    invariants = ("lineage",)

    def run(self, state):
        instr = state.ir.gpus[0].threadblocks[0].instructions[0]
        instr.lineage = ((-5, "input", 0),)


class TestPerPassValidation:
    def test_broken_pass_is_named(self):
        pipeline = default_pipeline().insert_after(
            "schedule", BreakLineage()
        )
        with pytest.raises(PassValidationError) as exc_info:
            compile_program(ring(), CompilerOptions(
                pipeline=pipeline, validate_each=True,
            ))
        error = exc_info.value
        assert error.pass_name == "break_lineage"
        assert error.invariant == "lineage"
        assert "break_lineage" in str(error)

    def test_same_corruption_undetected_without_validation(self):
        # The point of validate_each: this compiles "fine" otherwise.
        pipeline = default_pipeline().insert_after(
            "schedule", BreakLineage()
        )
        algo = compile_program(ring(), CompilerOptions(
            pipeline=pipeline, validate_each=False,
        ))
        assert algo.ir.instruction_count() > 0

    def test_env_var_enables_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE_PASSES", "1")
        pipeline = default_pipeline().insert_after(
            "schedule", BreakLineage()
        )
        with pytest.raises(PassValidationError):
            compile_program(ring(), CompilerOptions(pipeline=pipeline))

    def test_explicit_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE_PASSES", "1")
        pipeline = default_pipeline().insert_after(
            "schedule", BreakLineage()
        )
        compile_program(ring(), CompilerOptions(
            pipeline=pipeline, validate_each=False,
        ))

    def test_clean_compile_validates_everywhere(self):
        algo = compile_program(ring(), CompilerOptions(
            validate_each=True, optimize=True,
        ))
        IrExecutor(algo.ir, algo.collective).run_and_check()


class TestDumps:
    def test_dump_after_all_snapshots_every_ran_pass(self):
        algo = compile_program(ring(), CompilerOptions(dump_after="all"))
        assert set(algo.dumps) == {
            "verify", "lower", "fuse", "schedule", "audit",
        }
        # Post-scheduling snapshots are the XML; pre-scheduling ones
        # are instruction listings.
        assert algo.dumps["schedule"].startswith("<algo")
        assert algo.dumps["schedule"] == algo.ir.to_xml()
        assert "lower" in algo.dumps and algo.dumps["lower"]

    def test_dump_after_selected_names(self):
        algo = compile_program(
            ring(), CompilerOptions(dump_after=["schedule"])
        )
        assert list(algo.dumps) == ["schedule"]

    def test_no_dumps_by_default(self):
        assert compile_program(ring()).dumps == {}


class TestCompileCache:
    def test_hit_is_byte_identical_to_cold_compile(self):
        cache = CompileCache()
        options = CompilerOptions(max_threadblocks=80, cache=cache)
        cold = compile_program(ring(), options)
        hit = compile_program(ring(), options)
        assert not cold.cache_hit
        assert hit.cache_hit
        assert hit.ir.to_xml() == cold.ir.to_xml()
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_hits_never_alias(self):
        cache = CompileCache()
        options = CompilerOptions(cache=cache)
        compile_program(ring(), options)
        first = compile_program(ring(), options)
        second = compile_program(ring(), options)
        first.ir.gpus[0].threadblocks[0].instructions.clear()
        assert second.ir.gpus[0].threadblocks[0].instructions
        assert (compile_program(ring(), options).ir
                .gpus[0].threadblocks[0].instructions)

    def test_option_changes_miss(self):
        cache = CompileCache()
        compile_program(ring(), CompilerOptions(cache=cache))
        compile_program(
            ring(), CompilerOptions(cache=cache, instr_fusion=False)
        )
        compile_program(
            ring(), CompilerOptions(cache=cache, max_threadblocks=8)
        )
        assert cache.stats()["misses"] == 3
        assert cache.stats()["hits"] == 0

    def test_different_programs_miss(self):
        cache = CompileCache()
        options = CompilerOptions(cache=cache)
        compile_program(ring(), options)
        compile_program(allpairs_allreduce(8, instances=4,
                                           protocol="LL"), options)
        assert cache.stats()["misses"] == 2

    def test_program_digest_stable_across_retrace(self):
        assert program_digest(ring()) == program_digest(ring())
        assert program_digest(ring()) != program_digest(
            ring(channels=1)
        )

    def test_sweep_recompiles_become_hits(self):
        # The acceptance bar: 6 sweep compiles of the same point must
        # do one cold compile, not six (>= 5x fewer cold compiles).
        topology = ndv4(1)
        cache = CompileCache()
        results = [
            compile_for(topology, ring(), CompilerOptions(
                max_threadblocks=topology.machine.sm_count,
                cache=cache,
            ))
            for _ in range(6)
        ]
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 5
        xml = results[0].ir.to_xml()
        assert all(r.ir.to_xml() == xml for r in results)

    def test_tracer_counters_record_hits_and_misses(self):
        from repro.observe import Tracer

        cache = CompileCache()
        tracer = Tracer()
        options = CompilerOptions(cache=cache, trace=tracer)
        compile_program(ring(), options)
        compile_program(ring(), options)
        assert tracer.counters["compile_cache.misses"] == 1
        assert tracer.counters["compile_cache.hits"] == 1

    def test_metrics_dict_exports_default_cache_stats(self):
        from repro.observe import Tracer, metrics_dict

        metrics = metrics_dict(Tracer())
        cache = metrics["compile_cache"]
        assert set(cache) >= {"hits", "misses", "entries", "hit_rate"}

    def test_lru_bound_evicts_oldest(self):
        cache = CompileCache(maxsize=1)
        compile_program(ring(), CompilerOptions(cache=cache))
        compile_program(ring(channels=1),
                        CompilerOptions(cache=cache))
        assert len(cache) == 1
        # The first entry was evicted; compiling it again misses.
        compile_program(ring(), CompilerOptions(cache=cache))
        assert cache.stats()["hits"] == 0


class TestSchedulerPolicy:
    def test_custom_policy_key_never_aliases_default(self):
        class Renamed(DefaultSchedulerPolicy):
            policy_key = "renamed-default"

        cache = CompileCache()
        compile_program(ring(), CompilerOptions(cache=cache))
        other = compile_program(ring(), CompilerOptions(
            cache=cache, scheduler=Renamed(),
        ))
        assert not other.cache_hit
        assert cache.stats()["misses"] == 2

    def test_delegating_policy_matches_default_output(self):
        class Renamed(DefaultSchedulerPolicy):
            policy_key = "renamed-default"

        default = compile_program(ring())
        custom = compile_program(
            ring(), CompilerOptions(scheduler=Renamed())
        )
        assert custom.ir.to_xml() == default.ir.to_xml()


class TestOptimizeMatrix:
    @pytest.mark.parametrize("instr_fusion", [True, False])
    @pytest.mark.parametrize("max_threadblocks", [None, 32])
    def test_optimized_ir_stays_correct(self, instr_fusion,
                                        max_threadblocks):
        algo = compile_program(ring(), CompilerOptions(
            optimize=True, instr_fusion=instr_fusion,
            max_threadblocks=max_threadblocks,
        ))
        IrExecutor(algo.ir, algo.collective).run_and_check()
        summary = algo.compile_summary
        assert "prune_redundant_deps" in summary
        assert "renumber_channels" in summary
        if max_threadblocks is not None:
            assert algo.ir.threadblock_count() <= \
                max_threadblocks * algo.ir.num_ranks
