"""Tests for the step-level IR builder (repro.build).

The builder is the programmatic twin of the XML importer: it must
produce IRs indistinguishable from imported ones (round-trippable,
auditable, postcondition-verified) and reject structural misuse with
errors that name the offending step.
"""

import pytest

from repro.build import IrBuilder, StepRef
from repro.core import (
    AllGather,
    AllToAllV,
    Buffer,
    BuildError,
    CompilerOptions,
    MSCCLProgram,
    Op,
    VerificationError,
    chunk,
    compile_program,
    import_xml,
)
from repro.runtime import IrExecutor


def _pingpong():
    """Rank 0 sends its chunk to rank 1, which stores and returns it."""
    builder = IrBuilder("pingpong", num_ranks=2)
    g0 = builder.gpu(0, input_chunks=1, output_chunks=1)
    t0 = g0.threadblock(send=1, recv=1)
    t0.send("i", 0)
    t0.recv("o", 0)
    g1 = builder.gpu(1, input_chunks=1, output_chunks=1)
    t1 = g1.threadblock(send=0, recv=0)
    t1.rcs("o", 0)
    return builder


class TestBasics:
    def test_ops_return_step_refs(self):
        builder = IrBuilder("x", num_ranks=2)
        tb = builder.gpu(0, input_chunks=2,
                         output_chunks=2).threadblock(send=1)
        first = tb.send("i", 0)
        second = tb.send("i", 1, depends=())
        assert first == StepRef(0, 0)
        assert second == StepRef(0, 1)

    def test_buffer_aliases_normalize(self):
        builder = _pingpong()
        ir = builder.build()
        instr = ir.gpus[0].threadblocks[0].instructions[0]
        assert instr.src == (Buffer.INPUT, 0, 1)

    def test_pingpong_builds_and_round_trips(self):
        ir = _pingpong().build()
        assert import_xml(ir.to_xml()) == ir

    def test_recv_seq_inferred_per_connection(self):
        builder = IrBuilder("x", num_ranks=2)
        g0 = builder.gpu(0, input_chunks=2, output_chunks=2)
        t0 = g0.threadblock(send=1, recv=1)
        t0.send("i", 0)
        t0.send("i", 1)
        t0.recv("o", 0)
        t0.recv("o", 1)
        g1 = builder.gpu(1, input_chunks=2, output_chunks=2)
        t1 = g1.threadblock(send=0, recv=0)
        t1.rcs("o", 0)
        t1.rcs("o", 1)
        ir = builder.build()
        seqs = [i.recv_seq for i in ir.gpus[0].threadblocks[0].instructions
                if i.op is Op.RECV]
        assert seqs == [0, 1]

    def test_scratch_grows_to_cover_use(self):
        builder = IrBuilder("x", num_ranks=2)
        g0 = builder.gpu(0, input_chunks=1, output_chunks=1)
        g0.threadblock().copy("i", 0, "s", 4)
        builder.gpu(1, input_chunks=1, output_chunks=1)
        # validate=False: rank 1 is empty and rank 0 writes scratch
        # nothing reads — structurally fine, semantically nothing.
        ir = builder.build(validate=False)
        assert ir.gpus[0].scratch_chunks == 5

    def test_has_dep_computed_from_targets(self):
        builder = IrBuilder("x", num_ranks=2)
        g0 = builder.gpu(0, input_chunks=1, output_chunks=1)
        tb_a = g0.threadblock(send=1)
        sent = tb_a.send("i", 0)
        tb_b = g0.threadblock()
        tb_b.nop(depends=[sent])
        g1 = builder.gpu(1, input_chunks=1, output_chunks=1)
        g1.threadblock(recv=0).recv("o", 0)
        ir = builder.build()
        assert ir.gpus[0].threadblocks[0].instructions[0].has_dep
        assert not ir.gpus[0].threadblocks[1].instructions[0].has_dep


class TestValidation:
    def test_send_requires_send_peer(self):
        tb = IrBuilder("x", num_ranks=2).gpu(
            0, input_chunks=1, output_chunks=1).threadblock(recv=1)
        with pytest.raises(BuildError, match="no send peer"):
            tb.send("i", 0)

    def test_recv_requires_recv_peer(self):
        tb = IrBuilder("x", num_ranks=2).gpu(
            0, input_chunks=1, output_chunks=1).threadblock(send=1)
        with pytest.raises(BuildError, match="no recv peer"):
            tb.recv("o", 0)

    def test_duplicate_connection_rejected(self):
        gpu = IrBuilder("x", num_ranks=2).gpu(
            0, input_chunks=1, output_chunks=1)
        gpu.threadblock(send=1)
        with pytest.raises(BuildError, match="already belongs to tb 0"):
            gpu.threadblock(send=1)

    def test_same_connection_ok_on_other_channel(self):
        gpu = IrBuilder("x", num_ranks=2).gpu(
            0, input_chunks=1, output_chunks=1)
        gpu.threadblock(send=1, chan=0)
        gpu.threadblock(send=1, chan=1)  # no error

    def test_span_out_of_bounds_names_step(self):
        builder = IrBuilder("x", num_ranks=1)
        builder.gpu(0, input_chunks=2,
                    output_chunks=1).threadblock().copy("i", 1, "o", 0, 2)
        with pytest.raises(BuildError,
                           match=r"gpu 0 tb 0 step 0.*exceeds"):
            builder.build()

    def test_dangling_dependency_rejected(self):
        builder = IrBuilder("x", num_ranks=1)
        builder.gpu(0, input_chunks=1,
                    output_chunks=1).threadblock().nop(depends=[(3, 0)])
        with pytest.raises(BuildError, match="does not exist"):
            builder.build()

    def test_same_threadblock_dependency_rejected(self):
        builder = IrBuilder("x", num_ranks=1)
        tb = builder.gpu(0, input_chunks=1,
                         output_chunks=1).threadblock()
        first = tb.copy("i", 0, "o", 0)
        tb.nop(depends=[first])
        with pytest.raises(BuildError, match="own thread block"):
            builder.build()

    def test_missing_gpu_rejected(self):
        builder = IrBuilder("x", num_ranks=2)
        builder.gpu(0, input_chunks=1, output_chunks=1)
        with pytest.raises(BuildError, match=r"gpu\(s\) \[1\]"):
            builder.build()

    def test_sizes_required_without_collective(self):
        builder = IrBuilder("x", num_ranks=1)
        with pytest.raises(BuildError, match="input_chunks"):
            builder.gpu(0)

    def test_needs_collective_or_num_ranks(self):
        with pytest.raises(BuildError, match="num_ranks"):
            IrBuilder("x")


class TestCollectiveVerification:
    def test_correct_allgather_verifies(self):
        coll = AllGather(2, chunk_factor=1, in_place=False)
        builder = IrBuilder("ag", coll)
        for rank in range(2):
            gpu = builder.gpu(rank)  # sizes from the collective
            gpu.threadblock().copy("i", 0, "o", rank)
            tb = gpu.threadblock(send=1 - rank, recv=1 - rank)
            tb.send("i", 0)
            tb.recv("o", 1 - rank)
        ir = builder.check()  # build + executor run_and_check
        assert ir.collective == "allgather"

    def test_wrong_program_fails_postcondition(self):
        coll = AllGather(2, chunk_factor=1, in_place=False)
        builder = IrBuilder("bad", coll)
        for rank in range(2):
            gpu = builder.gpu(rank)
            # Stores its own chunk in the *wrong* slot.
            gpu.threadblock().copy("i", 0, "o", 1 - rank)
            tb = gpu.threadblock(send=1 - rank, recv=1 - rank)
            tb.send("i", 0)
            tb.recv("o", rank)
        with pytest.raises(VerificationError,
                           match="does not implement allgather"):
            builder.build()

    def test_mismatched_payload_fails_audit(self):
        builder = IrBuilder("x", num_ranks=2)
        g0 = builder.gpu(0, input_chunks=2, output_chunks=2)
        g0.threadblock(send=1).send("i", 0, 2)
        g1 = builder.gpu(1, input_chunks=2, output_chunks=2)
        g1.threadblock(recv=0).recv("o", 0, 1)  # expects 1, gets 2
        with pytest.raises(VerificationError, match="carries 2 chunk"):
            builder.build()

    def test_check_requires_collective(self):
        with pytest.raises(BuildError, match="needs a collective"):
            _pingpong().check()

    def test_alltoallv_with_collective_defaults(self):
        counts = [[0, 2], [1, 0]]
        coll = AllToAllV(counts)
        builder = IrBuilder("a2av", coll)
        g0 = builder.gpu(0)
        t0 = g0.threadblock(send=1, recv=1)
        t0.send("i", 0, 2)
        t0.recv("o", 0, 1)
        g1 = builder.gpu(1)
        t1 = g1.threadblock(send=0, recv=0)
        t1.send("i", 0, 1)
        t1.recv("o", 0, 2)
        ir = builder.check()
        assert ir.gpus[0].input_chunks == 2   # sum(counts[0])
        assert ir.gpus[0].output_chunks == 1  # counts[1][0]


class TestFusionChainRegression:
    """Fusing a recv with a send must respect *transitive* channel
    chains: two hops whose far ends pin different explicit channels
    must not fuse into one rcs (the scheduler unions fused chains and
    would reject the conflicting directives)."""

    def _conflicted_program(self):
        from repro.core import Custom
        from repro.core.chunk import InputChunk

        def post(rank):
            return {0: InputChunk(0, 0)} if rank == 2 else {}

        coll = Custom(3, post, chunk_factor=1, name="relay")
        with MSCCLProgram("relay", coll) as program:
            # 0 -> 1 pinned to channel 0; 1 -> 2 pinned to channel 1.
            via = chunk(0, "in", 0).copy(1, "sc", 0, ch=0)
            via.copy(2, "out", 0, ch=1)
        return program

    def test_conflicting_chain_compiles_and_verifies(self):
        program = self._conflicted_program()
        algo = compile_program(program, CompilerOptions())
        IrExecutor(algo.ir, algo.collective).run_and_check()
        # The relay hop must have stayed unfused: an rcs would have
        # unioned the ch=0 and ch=1 chains.
        ops = [i.op for gpu in algo.ir.gpus for tb in gpu.threadblocks
               for i in tb.instructions]
        assert Op.RECV_COPY_SEND not in ops

    def test_compatible_chain_still_fuses(self):
        from repro.core import Custom
        from repro.core.chunk import InputChunk

        def post(rank):
            return {0: InputChunk(0, 0)} if rank == 2 else {}

        coll = Custom(3, post, chunk_factor=1, name="relay")
        with MSCCLProgram("relay_ok", coll) as program:
            via = chunk(0, "in", 0).copy(1, "sc", 0, ch=0)
            via.copy(2, "out", 0, ch=0)  # same directive: fusible
        algo = compile_program(program, CompilerOptions())
        ops = [i.op for gpu in algo.ir.gpus for tb in gpu.threadblocks
               for i in tb.instructions]
        assert Op.RECV_COPY_SEND in ops
