"""Deterministic timing-semantics tests for the interpreter.

These pin the cost model analytically on hand-built IRs: a single
transfer costs exactly alpha + payload/bottleneck (+ fixed overheads);
same-connection messages serialize on the wire; slot back-pressure
stalls senders; cross-node senders detach after staging; fused chains
stream cut-through. If a refactor changes any pricing rule, these fail
with numbers instead of vibes.
"""

import pytest

from repro.core import Buffer, Op
from repro.core.ir import GpuProgram, IrInstruction, MscclIr, ThreadBlock
from repro.runtime import IrSimulator, SimConfig
from repro.runtime.protocols import Protocol
from repro.topology import MachineSpec, Topology

# A machine with round numbers: NVLink 100 GB/s (= 0.1 MB/us), thread
# block engine 10 GB/s, NIC 10 GB/s, zero launch cost.
SPEC = MachineSpec(
    name="unit",
    gpus_per_node=4,
    sm_count=64,
    nvlink_bandwidth=100.0,
    nvlink_alpha=1.0,
    ib_bandwidth=10.0,
    ib_alpha=5.0,
    gpus_per_nic=1,
    ib_message_overhead=0.0,
    threadblock_bandwidth=10.0,
    reduce_bandwidth=10.0,
    kernel_launch_overhead=0.0,
)

PROTO = Protocol(name="unit", slot_bytes=1 << 30, num_slots=2,
                 bandwidth_efficiency=1.0, alpha_overhead=0.0)

CONFIG = SimConfig(max_tiles=1, instruction_overhead=0.0,
                   semaphore_overhead=0.0, include_launch=False)

NBYTES = 100_000  # 100 KB: 10us at 10 GB/s, 1us at 100 GB/s


def build_ir(num_ranks, tb_specs, chunks=4):
    """IR from {(rank, tb): (send, recv, channel, [(op, recv_seq)])}."""
    ir = MscclIr(name="unit", collective="custom", protocol="unit",
                 num_ranks=num_ranks, in_place=False)
    for rank in range(num_ranks):
        gpu = GpuProgram(rank=rank, input_chunks=chunks,
                         output_chunks=chunks, scratch_chunks=0)
        for (r, tb_id), (send, recv, channel, ops) in sorted(
                tb_specs.items()):
            if r != rank:
                continue
            tb = ThreadBlock(tb_id=tb_id, send_peer=send, recv_peer=recv,
                             channel=channel)
            for step, (op, seq) in enumerate(ops):
                tb.instructions.append(IrInstruction(
                    step=step, op=op,
                    src=(Buffer.INPUT, 0, 1), dst=(Buffer.INPUT, 0, 1),
                    recv_seq=seq,
                ))
            gpu.threadblocks.append(tb)
        ir.gpus.append(gpu)
    return ir


ONE_GPU_SPEC = MachineSpec(
    name="unit1", gpus_per_node=1, sm_count=64,
    nvlink_bandwidth=100.0, nvlink_alpha=1.0,
    ib_bandwidth=10.0, ib_alpha=5.0, gpus_per_nic=1,
    ib_message_overhead=0.0,
    threadblock_bandwidth=10.0, reduce_bandwidth=10.0,
    kernel_launch_overhead=0.0,
)


def simulate(ir, num_nodes=1, config=CONFIG):
    if num_nodes > 1:
        topology = Topology(ONE_GPU_SPEC, ir.num_ranks)
    else:
        topology = Topology(SPEC, 1)
        assert ir.num_ranks <= topology.num_ranks
        # Trim: the simulator requires exact rank counts.
        spec = MachineSpec(
            name="unit", gpus_per_node=ir.num_ranks, sm_count=64,
            nvlink_bandwidth=100.0, nvlink_alpha=1.0,
            ib_bandwidth=10.0, ib_alpha=5.0, gpus_per_nic=1,
            ib_message_overhead=0.0,
            threadblock_bandwidth=10.0, reduce_bandwidth=10.0,
            kernel_launch_overhead=0.0,
        )
        topology = Topology(spec, 1)
    simulator = IrSimulator(ir, topology, protocol=PROTO, config=config)
    return simulator.run(chunk_bytes=NBYTES)


class TestSingleTransfer:
    def test_intra_node_send_recv_price(self):
        """Unfused send: engine pass (10us) runs concurrently with the
        wire (1us) -> bottleneck 10us; + alpha 1; recv consume another
        10us engine pass overlapping arrival tail."""
        ir = build_ir(2, {
            (0, 0): (1, None, 0, [(Op.SEND, None)]),
            (1, 0): (None, 0, 0, [(Op.RECV, 0)]),
        })
        result = simulate(ir)
        # send: max(engine 10, wire 1) = 10; first byte at 1us (alpha);
        # consume engine starts at 1us, 10us -> 11; data_ready =
        # max(11, last_byte 10+1=11) = 11.
        assert result.time_us == pytest.approx(11.0)

    def test_alpha_added_once_per_hop(self):
        ir = build_ir(2, {
            (0, 0): (1, None, 0, [(Op.SEND, None)]),
            (1, 0): (None, 0, 0, [(Op.RECV, 0)]),
        })
        spec_alpha = SPEC.nvlink_alpha
        base = simulate(ir).time_us
        # Doubling the protocol's alpha overhead adds exactly 1 us more
        # (the added overhead appears once in first/last byte times).
        slow_proto = Protocol(name="u2", slot_bytes=1 << 30, num_slots=2,
                              bandwidth_efficiency=1.0,
                              alpha_overhead=spec_alpha)
        topology = Topology(MachineSpec(
            name="unit", gpus_per_node=2, sm_count=64,
            nvlink_bandwidth=100.0, nvlink_alpha=1.0,
            ib_bandwidth=10.0, ib_alpha=5.0, gpus_per_nic=1,
            ib_message_overhead=0.0,
            threadblock_bandwidth=10.0, reduce_bandwidth=10.0,
            kernel_launch_overhead=0.0,
        ), 1)
        slow = IrSimulator(ir, topology, protocol=slow_proto,
                           config=CONFIG).run(chunk_bytes=NBYTES).time_us
        assert slow - base == pytest.approx(spec_alpha)

    def test_cross_node_sender_detaches(self):
        """IB sends release the thread block after the staging pass; the
        NIC transfer (10us at 10 GB/s) proceeds asynchronously."""
        ir = build_ir(2, {
            (0, 0): (1, None, 0, [(Op.SEND, None)]),
            (1, 0): (None, 0, 0, [(Op.RECV, 0)]),
        })
        result = simulate(ir, num_nodes=2)
        # staging 10us; wire 10us from t0; last_byte = 10 + 5 = 15;
        # consume starts at first byte 5, engine 10 -> 15.
        assert result.time_us == pytest.approx(15.0)


class TestSerialization:
    def test_same_connection_messages_pipeline(self):
        """Two sends through one NVLink: the sender's engine serializes
        them (10+10), but the receiver's consume of message 1 overlaps
        the production of message 2 — classic two-stage pipeline:
        produce1 [0..10], consume1 [1..11], produce2 [10..20],
        consume2 [11..21]."""
        ir = build_ir(2, {
            (0, 0): (1, None, 0, [(Op.SEND, None), (Op.SEND, None)]),
            (1, 0): (None, 0, 0, [(Op.RECV, 0), (Op.RECV, 1)]),
        })
        result = simulate(ir)
        assert result.time_us == pytest.approx(21.0)

    def test_parallel_connections_overlap(self):
        """The same two transfers on different target ranks proceed in
        parallel (separate engines, separate links)."""
        ir = build_ir(3, {
            (0, 0): (1, None, 0, [(Op.SEND, None)]),
            (0, 1): (2, None, 0, [(Op.SEND, None)]),
            (1, 0): (None, 0, 0, [(Op.RECV, 0)]),
            (2, 0): (None, 0, 0, [(Op.RECV, 0)]),
        })
        result = simulate(ir)
        assert result.time_us == pytest.approx(11.0)

    def test_shared_egress_link_contends(self):
        """Same two transfers, but the wire is the bottleneck: shrink
        the engine's share by using a fat engine via fused ops? Simpler:
        verify the nvlink_out resource accumulated both payloads."""
        ir = build_ir(3, {
            (0, 0): (1, None, 0, [(Op.SEND, None)]),
            (0, 1): (2, None, 0, [(Op.SEND, None)]),
            (1, 0): (None, 0, 0, [(Op.RECV, 0)]),
            (2, 0): (None, 0, 0, [(Op.RECV, 0)]),
        })
        result = simulate(ir)
        assert result.resource_busy_us["nvlink_out[0]"] == pytest.approx(
            2 * NBYTES / 100e3
        )


class TestSlotBackpressure:
    def test_sender_stalls_when_slots_full(self):
        """Three sends, two slots, and a receiver that only drains after
        its own slow local work: the third send must wait."""
        ir = build_ir(2, {
            (0, 0): (1, None, 0, [(Op.SEND, None)] * 3),
            (1, 0): (None, 0, 0, [
                (Op.COPY, None),  # 10us of local work first
                (Op.RECV, 0), (Op.RECV, 1), (Op.RECV, 2),
            ]),
        })
        result = simulate(ir)
        # Receiver: copy 10, then three consumes of 10 -> 40+.
        # Sender: sends 1,2 fill slots by 20; send 3 waits for recv 0's
        # drain (at ~21) before its engine pass.
        assert result.time_us == pytest.approx(41.0, abs=1.0)

    def test_more_slots_remove_the_stall(self):
        ir = build_ir(2, {
            (0, 0): (1, None, 0, [(Op.SEND, None)] * 3),
            (1, 0): (None, 0, 0, [
                (Op.COPY, None),
                (Op.RECV, 0), (Op.RECV, 1), (Op.RECV, 2),
            ]),
        })
        wide = Protocol(name="u8", slot_bytes=1 << 30, num_slots=8,
                        bandwidth_efficiency=1.0, alpha_overhead=0.0)
        topology = Topology(SPEC, 1)
        narrow_time = simulate(ir).time_us
        topology2 = Topology(MachineSpec(
            name="unit", gpus_per_node=2, sm_count=64,
            nvlink_bandwidth=100.0, nvlink_alpha=1.0,
            ib_bandwidth=10.0, ib_alpha=5.0, gpus_per_nic=1,
            ib_message_overhead=0.0,
            threadblock_bandwidth=10.0, reduce_bandwidth=10.0,
            kernel_launch_overhead=0.0,
        ), 1)
        wide_time = IrSimulator(ir, topology2, protocol=wide,
                                config=CONFIG).run(
            chunk_bytes=NBYTES).time_us
        assert wide_time <= narrow_time


class TestCutThrough:
    def test_fused_chain_adds_only_alpha_per_hop(self):
        """send -> rcs -> recv across 3 ranks: the middle hop forwards
        from registers, so the chain costs ~one payload + 2 alphas, not
        two payloads."""
        ir = build_ir(3, {
            (0, 0): (1, None, 0, [(Op.SEND, None)]),
            (1, 0): (2, 0, 0, [(Op.RECV_COPY_SEND, 0)]),
            (2, 0): (None, 1, 0, [(Op.RECV, 0)]),
        })
        result = simulate(ir)
        # hop1: engine 10 / wire 1, first byte at 1. rcs consume 10
        # starting at 1 (data_ready 11) and its forward streams from 1:
        # second first-byte ~2; final consume 10 from 2 -> ~12-13.
        assert result.time_us < 16.0

    def test_unfused_relay_pays_extra_pass(self):
        """The same route with recv-then-send (no fusion) costs a full
        extra memory pass at the relay."""
        ir = build_ir(3, {
            (0, 0): (1, None, 0, [(Op.SEND, None)]),
            (1, 0): (2, 0, 0, [(Op.RECV, 0), (Op.SEND, None)]),
            (2, 0): (None, 1, 0, [(Op.RECV, 0)]),
        })
        fused_ir = build_ir(3, {
            (0, 0): (1, None, 0, [(Op.SEND, None)]),
            (1, 0): (2, 0, 0, [(Op.RECV_COPY_SEND, 0)]),
            (2, 0): (None, 1, 0, [(Op.RECV, 0)]),
        })
        assert simulate(ir).time_us > simulate(fused_ir).time_us + 5.0


class TestTiling:
    def test_tiles_multiply_instruction_occurrences(self):
        ir = build_ir(2, {
            (0, 0): (1, None, 0, [(Op.SEND, None)]),
            (1, 0): (None, 0, 0, [(Op.RECV, 0)]),
        })
        proto = Protocol(name="tiny", slot_bytes=NBYTES // 4,
                         num_slots=8, bandwidth_efficiency=1.0,
                         alpha_overhead=0.0)
        topology = Topology(MachineSpec(
            name="unit", gpus_per_node=2, sm_count=64,
            nvlink_bandwidth=100.0, nvlink_alpha=1.0,
            ib_bandwidth=10.0, ib_alpha=5.0, gpus_per_nic=1,
            ib_message_overhead=0.0,
            threadblock_bandwidth=10.0, reduce_bandwidth=10.0,
            kernel_launch_overhead=0.0,
        ), 1)
        config = SimConfig(max_tiles=16, instruction_overhead=0.0,
                           semaphore_overhead=0.0, include_launch=False,
                           collect_trace=True)
        result = IrSimulator(ir, topology, protocol=proto,
                             config=config).run(chunk_bytes=NBYTES)
        assert result.tiles == 4
        assert len(result.trace) == 2 * 4

    def test_recv_seq_matches_across_tiles(self):
        """Out-of-program-order receives still pair correctly per tile:
        the receiver drains message 1 before message 0."""
        ir = build_ir(2, {
            (0, 0): (1, None, 0, [(Op.SEND, None), (Op.SEND, None)]),
            (1, 0): (None, 0, 0, [(Op.RECV, 1), (Op.RECV, 0)]),
        })
        proto = Protocol(name="t2", slot_bytes=NBYTES // 2, num_slots=8,
                         bandwidth_efficiency=1.0, alpha_overhead=0.0)
        topology = Topology(MachineSpec(
            name="unit", gpus_per_node=2, sm_count=64,
            nvlink_bandwidth=100.0, nvlink_alpha=1.0,
            ib_bandwidth=10.0, ib_alpha=5.0, gpus_per_nic=1,
            ib_message_overhead=0.0,
            threadblock_bandwidth=10.0, reduce_bandwidth=10.0,
            kernel_launch_overhead=0.0,
        ), 1)
        result = IrSimulator(ir, topology, protocol=proto,
                             config=CONFIG).run(chunk_bytes=NBYTES)
        assert result.time_us > 0  # completes without deadlock
