"""Tests for sweeps, tables, the registry, and the end-to-end model."""

import pytest

from repro.analysis import (
    GiB,
    KiB,
    MiB,
    Series,
    SweepResult,
    WorkloadModel,
    CollectiveCall,
    chunk_bytes_for,
    format_size,
    inference_serving_step,
    ir_timer,
    latency_table,
    moe_training_step,
    run_sweep,
    size_grid,
    speedup_table,
    summary_lines,
)
from repro.core import CompilerOptions, compile_program
from repro.runtime import AlgorithmRegistry
from repro.core.errors import RuntimeConfigError
from repro.topology import ndv4
from tests.conftest import build_ring_allreduce


class TestSizeGrid:
    def test_powers_of_two(self):
        assert size_grid(KiB, 8 * KiB) == [KiB, 2 * KiB, 4 * KiB, 8 * KiB]

    def test_inverted_bounds_name_both_ends(self):
        with pytest.raises(ValueError) as err:
            size_grid(8 * KiB, KiB)
        message = str(err.value)
        assert str(8 * KiB) in message and str(KiB) in message

    def test_nonpositive_start_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            size_grid(0, KiB)
        with pytest.raises(ValueError, match="positive"):
            size_grid(-KiB, KiB)

    def test_format_size(self):
        assert format_size(KiB) == "1KB"
        assert format_size(512 * KiB) == "512KB"
        assert format_size(3 * MiB) == "3MB"
        assert format_size(2 * GiB) == "2GB"

    def test_format_size_bytes_branch(self):
        assert format_size(512) == "512B"
        assert format_size(1) == "1B"
        assert format_size(0) == "0B"

    def test_format_size_unit_boundaries(self):
        assert format_size(KiB - 1) == "1023B"
        assert format_size(MiB - KiB) == "1023KB"
        assert format_size(MiB) == "1MB"
        assert format_size(GiB - MiB) == "1023MB"
        assert format_size(GiB) == "1GB"


class TestChunkBytesFor:
    def test_exact_division(self):
        assert chunk_bytes_for(1024, 8) == 128

    def test_rounds_up_not_down(self):
        # 970 bytes over 8 chunks: the runtime moves 8x122, never
        # fractional 121.25-byte chunks.
        assert chunk_bytes_for(970, 8) == 122

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            chunk_bytes_for(1024, 0)
        with pytest.raises(ValueError):
            chunk_bytes_for(-1.0, 4)


class TestSweep:
    def _sweep(self):
        sizes = [KiB, 2 * KiB]
        return run_sweep("t", sizes, {
            "fast": lambda s: s / 1000,
            "slow": lambda s: s / 500,
        })

    def test_series_recorded(self):
        result = self._sweep()
        assert set(result.series) == {"fast", "slow"}
        assert result.series["fast"].times_us == [1.024, 2.048]

    def test_speedups(self):
        result = self._sweep()
        speedups = result.speedups("slow")
        assert speedups["fast"] == pytest.approx([2.0, 2.0])

    def test_best_speedup(self):
        result = self._sweep()
        assert result.best_speedup("fast", "slow") == pytest.approx(2.0)

    def test_mismatched_grid_rejected(self):
        result = self._sweep()
        with pytest.raises(ValueError):
            result.add(Series("x", [KiB], [1.0]))

    def test_speedup_grid_mismatch_rejected(self):
        a = Series("a", [KiB], [1.0])
        b = Series("b", [2 * KiB], [1.0])
        with pytest.raises(ValueError):
            a.speedup_over(b)


class TestTables:
    def test_latency_table_renders_all_cells(self):
        table = latency_table(self._sweep())
        assert "fast" in table and "slow" in table
        assert "1KB" in table and "2KB" in table

    def test_speedup_table_has_baseline_column(self):
        table = speedup_table(self._sweep(), "slow")
        assert "2.00x" in table and "1.00x" in table

    def test_summary_lines(self):
        lines = summary_lines(self._sweep(), "slow")
        assert any("fast" in line and "2.00x" in line for line in lines)

    def _sweep(self):
        return run_sweep("t", [KiB, 2 * KiB], {
            "fast": lambda s: s / 1000,
            "slow": lambda s: s / 500,
        })


class TestIrTimer:
    def test_timer_runs_simulation(self):
        program = build_ring_allreduce(4)
        ir = compile_program(program, CompilerOptions())
        topo = ndv4(1)

        # A 4-rank program on an 8-GPU node is fine: pad via generic.
        from repro.topology import generic
        timer = ir_timer(ir, generic(4, 1), program.collective)
        assert timer(MiB) > 0
        assert timer(16 * MiB) > timer(MiB)


class TestRegistry:
    def _registry(self):
        program = build_ring_allreduce(4)
        algo = compile_program(program, CompilerOptions())
        registry = AlgorithmRegistry("allreduce")
        registry.register(algo, min_bytes=0, max_bytes=MiB, label="small")
        return registry, algo

    def test_selects_by_size(self):
        registry, algo = self._registry()
        assert registry.select(512 * KiB) is algo.ir
        assert registry.selected_label(512 * KiB) == "small"

    def test_sizing_adopted_from_compiled_algorithm(self):
        registry, algo = self._registry()
        entry = registry.algorithms[0]
        assert entry.sizing_chunks == algo.sizing_chunks()

    def test_fallback_used_outside_ranges(self):
        registry, ir = self._registry()
        sentinel = object()
        registry.fallback = lambda nbytes: sentinel
        assert registry.select(8 * MiB) is sentinel
        assert registry.selected_label(8 * MiB) == "fallback"

    def test_no_match_no_fallback_raises(self):
        registry, _ = self._registry()
        with pytest.raises(RuntimeConfigError):
            registry.select(8 * MiB)

    def test_wrong_collective_rejected(self):
        registry, ir = self._registry()
        bad = AlgorithmRegistry("alltoall")
        with pytest.raises(RuntimeConfigError):
            bad.register(ir)

    def test_empty_range_rejected(self):
        registry, ir = self._registry()
        with pytest.raises(RuntimeConfigError):
            registry.register(ir, min_bytes=10, max_bytes=5)

    def test_first_match_wins(self):
        registry, algo = self._registry()
        program2 = build_ring_allreduce(4, instances=2)
        algo2 = compile_program(program2, CompilerOptions())
        registry.register(algo2, min_bytes=0, max_bytes=MiB,
                          label="later")
        assert registry.select(KiB) is algo.ir


class TestEndToEndModel:
    def _timers(self, scale):
        return {
            "allreduce": lambda nbytes: scale * nbytes / 1000,
            "alltoall": lambda nbytes: scale * nbytes / 1000,
        }

    def test_speedup_follows_amdahl(self):
        model = WorkloadModel("w", compute_us=1000, calls=[
            CollectiveCall("allreduce", 1_000_000, calls_per_step=1),
        ])
        # Communication halves: step speedup is bounded by comm share.
        speedup = model.speedup(self._timers(1.0), self._timers(0.5))
        comm_fraction = model.communication_fraction(self._timers(1.0))
        assert 1 < speedup < 2
        assert speedup == pytest.approx(
            1 / (1 - comm_fraction + comm_fraction / 2)
        )

    def test_overlap_shrinks_comm_cost(self):
        model = WorkloadModel("w", compute_us=1000, calls=[
            CollectiveCall("allreduce", 1_000_000),
        ])
        full = model.step_time_us(self._timers(1.0))
        overlapped = model.step_time_us(self._timers(1.0), overlap=0.5)
        assert overlapped < full

    def test_overlap_out_of_range_rejected(self):
        model = WorkloadModel("w", compute_us=1000, calls=[])
        with pytest.raises(ValueError):
            model.step_time_us({}, overlap=1.0)
        with pytest.raises(ValueError):
            model.step_time_us({}, overlap=-0.1)

    def test_degenerate_model_has_zero_comm_fraction(self):
        model = WorkloadModel("w", compute_us=0.0, calls=[])
        assert model.communication_fraction({}) == 0.0

    def test_prebuilt_workloads(self):
        moe = moe_training_step(16)
        serving = inference_serving_step()
        assert any(c.name == "alltoall" for c in moe.calls)
        assert all(c.name == "allreduce" for c in serving.calls)
        assert moe.step_time_us(self._timers(1.0)) > moe.compute_us
