"""Tests for the evaluation report assembler."""

from pathlib import Path

from repro.analysis import build_report, collect_results, efficiency_audit
from repro.tools.cli import main


class TestCollect:
    def test_missing_directory_is_empty(self, tmp_path):
        assert collect_results(tmp_path / "nope") == {}

    def test_collects_txt_files(self, tmp_path):
        (tmp_path / "fig8a.txt").write_text("table A\n")
        (tmp_path / "extra.txt").write_text("table B\n")
        tables = collect_results(tmp_path)
        assert tables == {"fig8a": "table A", "extra": "table B"}


class TestBuildReport:
    def test_orders_known_sections_first(self, tmp_path):
        (tmp_path / "zzz_custom.txt").write_text("custom\n")
        (tmp_path / "fig8c.txt").write_text("c\n")
        (tmp_path / "fig8a.txt").write_text("a\n")
        report = build_report(tmp_path, include_audit=False)
        a = report.index("## fig8a")
        c = report.index("## fig8c")
        z = report.index("## zzz_custom")
        assert a < c < z

    def test_empty_results_notes_how_to_generate(self, tmp_path):
        report = build_report(tmp_path, include_audit=False)
        assert "pytest benchmarks/" in report

    def test_audit_included_when_requested(self, tmp_path):
        report = build_report(tmp_path, include_audit=True)
        assert "Efficiency audit" in report
        assert "%" in report


class TestEfficiencyAudit:
    def test_bandwidth_bound_sizes_are_efficient(self):
        table = efficiency_audit(sizes=[128 * 1024 * 1024])
        # The tuned ring should be close to the floor at 128MB.
        percent = int(table.rsplit("|", 2)[-2].strip().rstrip("%"))
        assert percent >= 80


class TestCliReport:
    def test_report_subcommand(self, tmp_path, capsys):
        (tmp_path / "fig8a.txt").write_text("hello table\n")
        assert main(["report", "--results", str(tmp_path),
                     "--no-audit"]) == 0
        out = capsys.readouterr().out
        assert "hello table" in out
        assert "evaluation report" in out
