"""The diagnose engine: exact critical-path attribution and journeys.

Acceptance-level checks: on a traced run the backward walk's steps
exactly tile ``[0, elapsed]`` (so per-category attribution sums to the
simulated time — the ISSUE's 1% criterion is met by construction), the
diagnosis names a dominant bottleneck with hints, and chunk journeys
follow lineage hop by hop.
"""

import json

import pytest

from repro.algorithms import alltonext, ring_allreduce
from repro.core.compiler import CompilerOptions, compile_program
from repro.core.errors import RuntimeConfigError
from repro.observe import (
    chunk_journey,
    diagnose,
    diagnose_text,
    diagnosis_dict,
    journey_text,
)
from repro.observe.graph import CATEGORIES
from repro.runtime.simulator import IrSimulator, SimConfig
from repro.tools.cli import main as cli_main
from repro.topology import generic

MiB = 1 << 20


def _run(program, topology, chunk_bytes=MiB, **config):
    algo = compile_program(program, CompilerOptions(
        max_threadblocks=topology.machine.sm_count
    ))
    return IrSimulator(
        algo.ir, topology,
        config=SimConfig(collect_trace=True, **config),
    ).run(chunk_bytes=chunk_bytes / algo.sizing_chunks())


@pytest.fixture(scope="module")
def ring4_result():
    return _run(ring_allreduce(4), generic(4, 1))


class TestAttributionExact:
    def test_sums_to_elapsed_within_1pct(self, ring4_result):
        graph = ring4_result.graph
        attribution = graph.attribution()
        total = sum(attribution.values())
        assert total == pytest.approx(ring4_result.time_us, rel=0.01)
        assert graph.path_total_us() == pytest.approx(
            ring4_result.time_us, rel=0.01
        )

    def test_path_tiles_elapsed_contiguously(self, ring4_result):
        path = sorted(ring4_result.graph.critical_path(),
                      key=lambda s: s.start_us)
        assert path[0].start_us == pytest.approx(0.0, abs=1e-6)
        assert path[-1].end_us == pytest.approx(
            ring4_result.time_us, abs=1e-6
        )
        for prev, nxt in zip(path, path[1:]):
            assert nxt.start_us == pytest.approx(prev.end_us, abs=1e-6)

    def test_attribution_covers_known_categories(self, ring4_result):
        attribution = ring4_result.graph.attribution()
        assert set(attribution) == set(CATEGORIES)
        assert all(us >= 0 for us in attribution.values())

    @pytest.mark.parametrize("ranks,channels,size", [
        (4, 1, 512), (8, 2, MiB), (8, 4, 4 * MiB),
    ])
    def test_exact_across_regimes(self, ranks, channels, size):
        result = _run(ring_allreduce(ranks, channels=channels),
                      generic(ranks, 1), chunk_bytes=size)
        assert result.graph.path_total_us() == pytest.approx(
            result.time_us, rel=0.01
        )

    def test_exact_cross_node(self):
        result = _run(alltonext(2, 2), generic(2, 2))
        assert result.graph.path_total_us() == pytest.approx(
            result.time_us, rel=0.01
        )


class TestDiagnose:
    def test_names_dominant_with_hints(self, ring4_result):
        diag = diagnose(ring4_result)
        assert diag.dominant in CATEGORIES
        assert diag.attribution[diag.dominant] == max(
            diag.attribution.values()
        )
        assert 0 < diag.dominant_share <= 1.0
        assert diag.hints
        text = diagnose_text(diag)
        assert "<- dominant" in text
        assert "hints:" in text

    def test_diagnosis_dict_json_safe(self, ring4_result):
        payload = diagnosis_dict(diagnose(ring4_result))
        assert json.loads(json.dumps(payload)) == payload
        assert payload["dominant"] in CATEGORIES
        assert payload["path_steps"] >= len(payload["path"]) > 0

    def test_untraced_run_raises(self):
        algo = compile_program(ring_allreduce(4), CompilerOptions())
        result = IrSimulator(algo.ir, generic(4, 1)).run(
            chunk_bytes=MiB / algo.sizing_chunks()
        )
        with pytest.raises(RuntimeConfigError, match="trace"):
            diagnose(result)


class TestChunkJourney:
    def test_follows_chunk_across_ranks(self, ring4_result):
        hops = chunk_journey(ring4_result, 0, "output", 0)
        assert hops
        ranks_visited = [hop.rank for hop in hops]
        # An allreduce broadcasts every contribution to all ranks.
        assert set(ranks_visited) == {0, 1, 2, 3}
        for prev, nxt in zip(hops, hops[1:]):
            assert nxt.start_us >= prev.start_us
        assert "r0" in journey_text(hops)

    def test_input_alias_resolves(self, ring4_result):
        # In-place allreduce canonicalizes input -> output at trace
        # time; asking for the input name must follow the alias.
        assert chunk_journey(ring4_result, 0, "input", 0)

    def test_unknown_chunk_is_empty(self, ring4_result):
        assert chunk_journey(ring4_result, 0, "output", 999) == []
        assert "no instruction" in journey_text([])


class TestDiagnoseCli:
    def test_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "ring.diagnose.json"
        rc = cli_main([
            "diagnose", "ring_allreduce", "--ranks", "4",
            "--size", "64KB", "--chunk", "0:input:0",
            "--json", str(out),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "critical path covers" in printed
        assert "journey of chunk(0, input, 0)" in printed
        payload = json.loads(out.read_text())
        assert payload["dominant"] in CATEGORIES
        assert payload["algorithm"].startswith("ring_allreduce")

    def test_report_folds_diagnosis_in(self, tmp_path):
        from repro.analysis.report import build_report, collect_diagnoses

        (tmp_path / "demo.diagnose.json").write_text(json.dumps({
            "time_us": 100.0,
            "attribution": {"link": 60.0, "compute": 40.0},
            "dominant": "link",
            "hints": ["use more channels"],
            "channel_share": {"0": 1.0},
        }))
        (tmp_path / "broken.diagnose.json").write_text("{nope")
        assert list(collect_diagnoses(tmp_path)) == ["demo"]
        report = build_report(tmp_path, include_audit=False)
        assert "demo — bottleneck diagnosis" in report
        assert "**(dominant)**" in report
        assert "use more channels" in report
