"""Tests for MSCCL-IR structure and serialization."""

from xml.etree import ElementTree

from repro.core import CompilerOptions, MscclIr, compile_program
from tests.conftest import build_ring_allreduce


class TestQueries:
    def test_counts(self, ring4_ir):
        assert ring4_ir.num_ranks == 4
        assert ring4_ir.threadblock_count() == 4
        assert ring4_ir.max_threadblocks_per_gpu() == 1
        # 4 chunks x 7 hops = 28 fused instructions.
        assert ring4_ir.instruction_count() == 28

    def test_histogram_totals(self, ring4_ir):
        histogram = ring4_ir.op_histogram()
        assert sum(histogram.values()) == ring4_ir.instruction_count()

    def test_connections_form_the_ring(self, ring4_ir):
        conns = ring4_ir.connections()
        pairs = {(src, dst) for src, dst, _ in conns}
        assert pairs == {(i, (i + 1) % 4) for i in range(4)}

    def test_buffer_sizes_recorded(self, ring4_ir):
        gpu = ring4_ir.gpus[0]
        assert gpu.input_chunks == 0  # in place: aliases output
        assert gpu.output_chunks == 4
        assert gpu.scratch_chunks == 0


class TestJsonRoundTrip:
    def test_roundtrip_preserves_everything(self, ring4_ir):
        text = ring4_ir.to_json()
        back = MscclIr.from_json(text)
        assert back.to_dict() == ring4_ir.to_dict()

    def test_roundtrip_with_instances_and_deps(self):
        program = build_ring_allreduce(4, instances=2, channels=2)
        ir = compile_program(program, CompilerOptions())
        back = MscclIr.from_json(ir.to_json())
        assert back.to_dict() == ir.to_dict()
        assert back.channels_used() == ir.channels_used()

    def test_metadata_survives(self, ring4_ir):
        back = MscclIr.from_json(ring4_ir.to_json(indent=2))
        assert back.name == ring4_ir.name
        assert back.collective == "allreduce"
        assert back.protocol == ring4_ir.protocol
        assert back.in_place


class TestXml:
    def test_xml_is_well_formed(self, ring4_ir):
        root = ElementTree.fromstring(ring4_ir.to_xml())
        assert root.tag == "algo"
        assert root.get("ngpus") == "4"
        gpus = root.findall("gpu")
        assert len(gpus) == 4

    def test_xml_steps_match_instruction_count(self, ring4_ir):
        root = ElementTree.fromstring(ring4_ir.to_xml())
        steps = root.findall(".//step")
        assert len(steps) == ring4_ir.instruction_count()

    def test_xml_records_peers(self, ring4_ir):
        root = ElementTree.fromstring(ring4_ir.to_xml())
        tb = root.find("gpu/tb")
        assert tb.get("send") != "-1"
        assert tb.get("recv") != "-1"
