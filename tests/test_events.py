"""Tests for the discrete-event engine."""

import pytest

from repro.core.errors import SimulationError
from repro.runtime.events import EventLoop, Signal


class TestEventLoop:
    def test_delays_accumulate(self):
        loop = EventLoop()
        log = []

        def process():
            yield ("delay", 5)
            log.append(loop.now)
            yield ("delay", 10)
            log.append(loop.now)

        loop.spawn(process())
        assert loop.run() == 15
        assert log == [5, 15]

    def test_at_absolute_time(self):
        loop = EventLoop()
        seen = []

        def process():
            yield ("at", 42)
            seen.append(loop.now)

        loop.spawn(process())
        loop.run()
        assert seen == [42]

    def test_at_in_the_past_clamps_to_now(self):
        loop = EventLoop()
        seen = []

        def process():
            yield ("delay", 10)
            yield ("at", 3)  # already passed
            seen.append(loop.now)

        loop.spawn(process())
        loop.run()
        assert seen == [10]

    def test_processes_interleave_by_time(self):
        loop = EventLoop()
        order = []

        def proc(name, delay):
            yield ("delay", delay)
            order.append(name)

        loop.spawn(proc("slow", 10))
        loop.spawn(proc("fast", 1))
        loop.run()
        assert order == ["fast", "slow"]

    def test_signal_wakes_waiter(self):
        loop = EventLoop()
        signal = Signal()
        woken = []

        def waiter():
            yield ("wait", signal)
            woken.append(loop.now)

        def notifier():
            yield ("delay", 7)
            loop.notify(signal)

        loop.spawn(waiter())
        loop.spawn(notifier())
        loop.run()
        assert woken == [7]

    def test_signal_broadcasts(self):
        loop = EventLoop()
        signal = Signal()
        woken = []

        def waiter(name):
            yield ("wait", signal)
            woken.append(name)

        def notifier():
            yield ("delay", 1)
            loop.notify(signal)

        for name in "abc":
            loop.spawn(waiter(name))
        loop.spawn(notifier())
        loop.run()
        assert sorted(woken) == ["a", "b", "c"]

    def test_orphaned_waiter_is_a_deadlock(self):
        loop = EventLoop()
        signal = Signal()

        def waiter():
            yield ("wait", signal)

        loop.spawn(waiter())
        with pytest.raises(SimulationError, match="deadlock"):
            loop.run()

    def test_unknown_request_rejected(self):
        loop = EventLoop()

        def bad():
            yield ("sleep", 10)

        loop.spawn(bad())
        with pytest.raises(SimulationError, match="unknown wait request"):
            loop.run()

    def test_scheduling_in_the_past_rejected(self):
        loop = EventLoop()

        def mover():
            yield ("delay", 5)

        loop.spawn(mover())
        loop.run()
        with pytest.raises(SimulationError):
            loop.spawn(iter(()), at=1)

    def test_empty_run_finishes_at_zero(self):
        assert EventLoop().run() == 0.0
