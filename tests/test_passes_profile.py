"""Tests for IR optimization passes, XML import, profiling, and fault
injection."""

import pytest

from repro.algorithms import alltonext, hierarchical_allreduce
from repro.core import (
    CompilerOptions,
    MscclIr,
    audit_ir,
    compile_program,
    ir_stats,
    optimize_ir,
    prune_redundant_deps,
    renumber_channels,
)
from repro.core.errors import RuntimeConfigError, SimulationError
from repro.runtime import (
    IrExecutor,
    IrSimulator,
    SimConfig,
    critical_path,
    profile_threadblocks,
    slowest_threadblocks,
    timeline,
    utilization_report,
)
from repro.topology import generic, ndv4
from tests.conftest import build_ring_allreduce

MiB = 1024 * 1024


@pytest.fixture(scope="module")
def hierarchical_ir():
    program = hierarchical_allreduce(2, 4, intra_parallel=2)
    return compile_program(program, CompilerOptions()), program


class TestPrunedDeps:
    def test_pruning_preserves_correctness(self, hierarchical_ir):
        ir, program = hierarchical_ir
        fresh = MscclIr.from_json(ir.to_json())
        prune_redundant_deps(fresh)
        audit_ir(fresh)
        IrExecutor(fresh, program.collective).run_and_check()

    def test_pruning_never_adds_deps(self, hierarchical_ir):
        ir, _ = hierarchical_ir
        fresh = MscclIr.from_json(ir.to_json())
        before = ir_stats(fresh)["dep_entries"]
        prune_redundant_deps(fresh)
        after = ir_stats(fresh)["dep_entries"]
        assert after <= before

    def test_has_dep_flags_refreshed(self, hierarchical_ir):
        ir, _ = hierarchical_ir
        fresh = MscclIr.from_json(ir.to_json())
        prune_redundant_deps(fresh)
        needed = {
            (gpu.rank, dep_tb, dep_step)
            for gpu in fresh.gpus
            for tb in gpu.threadblocks
            for instr in tb.instructions
            for dep_tb, dep_step in instr.depends
        }
        flagged = {
            (gpu.rank, tb.tb_id, instr.step)
            for gpu in fresh.gpus
            for tb in gpu.threadblocks
            for instr in tb.instructions
            if instr.has_dep
        }
        assert flagged == needed

    def test_duplicate_dep_removed(self, hierarchical_ir):
        """Injecting a duplicate of an existing dep must be pruned."""
        ir, _ = hierarchical_ir
        fresh = MscclIr.from_json(ir.to_json())
        target = None
        for gpu in fresh.gpus:
            for tb in gpu.threadblocks:
                for instr in tb.instructions:
                    if instr.depends:
                        target = instr
                        break
        if target is None:
            pytest.skip("no cross-TB deps in this schedule")
        target.depends = target.depends + [target.depends[0]]
        prune_redundant_deps(fresh)
        assert len(target.depends) == len(set(target.depends))


class TestRenumberChannels:
    def test_channels_become_dense(self):
        program = build_ring_allreduce(4, channels=2, instances=2)
        ir = compile_program(program)
        for tb in ir.gpus[0].threadblocks:
            tb.channel += 7  # make them sparse
        renumber_channels(ir)
        channels = sorted({
            tb.channel for gpu in ir.gpus for tb in gpu.threadblocks
        })
        assert channels == list(range(len(channels)))

    def test_optimize_pipeline_runs(self, hierarchical_ir):
        ir, program = hierarchical_ir
        fresh = MscclIr.from_json(ir.to_json())
        optimize_ir(fresh)
        IrExecutor(fresh, program.collective).run_and_check()


class TestXmlImport:
    def test_roundtrip_equals_original(self, hierarchical_ir):
        ir, _ = hierarchical_ir
        back = MscclIr.from_xml(ir.to_xml())
        assert back.to_dict() == ir.to_dict()

    def test_imported_ir_executes(self, hierarchical_ir):
        ir, program = hierarchical_ir
        back = MscclIr.from_xml(ir.to_xml())
        IrExecutor(back, program.collective).run_and_check()

    def test_imported_ir_simulates(self, hierarchical_ir):
        ir, _ = hierarchical_ir
        back = MscclIr.from_xml(ir.to_xml())
        result = IrSimulator(back, generic(4, 2)).run(chunk_bytes=4096)
        assert result.time_us > 0


@pytest.fixture(scope="module")
def traced_result():
    program = build_ring_allreduce(4, channels=2)
    ir = compile_program(program)
    simulator = IrSimulator(ir, generic(4, 1),
                            config=SimConfig(collect_trace=True))
    return simulator.run(chunk_bytes=256 * 1024)


class TestProfiling:
    def test_profiles_cover_all_threadblocks(self, traced_result):
        profiles = profile_threadblocks(traced_result)
        assert len(profiles) == traced_result.threadblocks
        for profile in profiles:
            assert profile.active_us > 0
            assert 0 < profile.utilization <= 1.0

    def test_slowest_sorted(self, traced_result):
        slowest = slowest_threadblocks(traced_result, top=3)
        ends = [p.last_end_us for p in slowest]
        assert ends == sorted(ends, reverse=True)

    def test_report_renders_every_block(self, traced_result):
        report = utilization_report(traced_result)
        assert report.count("r0/") == 2  # 2 channels -> 2 TBs on rank 0

    def test_critical_path_entries(self, traced_result):
        entries = critical_path(traced_result, top=4)
        assert len(entries) == 4
        assert all("us" in e for e in entries)

    def test_timeline_ascii(self, traced_result):
        art = timeline(traced_result, rank=0, width=32)
        assert "#" in art and "tb0" in art

    def test_requires_trace(self):
        program = build_ring_allreduce(4)
        ir = compile_program(program)
        result = IrSimulator(ir, generic(4, 1)).run(chunk_bytes=1024)
        with pytest.raises(RuntimeConfigError, match="trace"):
            profile_threadblocks(result)


class TestFaultInjection:
    def test_degraded_nic_slows_execution(self):
        program = alltonext(2, 4, instances=2)
        ir = compile_program(program, CompilerOptions())
        healthy = IrSimulator(ir, generic(4, 2)).run(
            chunk_bytes=8 * MiB).time_us
        degraded = IrSimulator(
            ir, generic(4, 2),
            config=SimConfig(degradations={"nic_out[0,1]": 0.1}),
        ).run(chunk_bytes=8 * MiB).time_us
        assert degraded > healthy * 1.3

    def test_striped_algorithm_degrades_less_than_single_path(self):
        """AllToNext spreads over all NICs, the naive baseline uses one:
        degrading that one NIC hurts the baseline far more."""
        from repro.algorithms import naive_alltonext

        def slowdown(program, prefix):
            ir = compile_program(program, CompilerOptions())
            base = IrSimulator(ir, generic(4, 2)).run(
                chunk_bytes=8 * MiB).time_us
            hurt = IrSimulator(
                ir, generic(4, 2),
                config=SimConfig(degradations={prefix: 0.1}),
            ).run(chunk_bytes=8 * MiB).time_us
            return hurt / base

        # The naive baseline's single boundary flow uses GPU 3's NIC.
        naive_hit = slowdown(naive_alltonext(2, 4), "nic_out[0,3]")
        striped_hit = slowdown(alltonext(2, 4, instances=2),
                               "nic_out[0,3]")
        assert naive_hit > striped_hit

    def test_unmatched_prefix_raises(self):
        # A typo'd prefix used to silently run a fault-free simulation;
        # now the run completes and then reports the dead prefix.
        program = build_ring_allreduce(4)
        ir = compile_program(program)
        with pytest.raises(SimulationError, match=r"nic_out\[9,9\]"):
            IrSimulator(
                ir, generic(4, 1),
                config=SimConfig(degradations={"nic_out[9,9]": 0.01}),
            ).run(chunk_bytes=MiB)
