"""Tests for Broadcast/Reduce/Gather/Scatter collectives and their
chain/tree algorithm implementations."""

import pytest

from repro.algorithms import (
    chain_broadcast,
    chain_reduce,
    tree_broadcast,
    tree_reduce,
)
from repro.core import (
    Broadcast,
    CompilerOptions,
    Gather,
    InputChunk,
    MSCCLProgram,
    ProgramError,
    Reduce,
    Scatter,
    UninitializedChunkError,
    chunk,
    compile_program,
)
from repro.core.chunk import allreduce_result
from repro.runtime import IrExecutor


class TestBroadcastCollective:
    def test_only_root_has_input_data(self):
        coll = Broadcast(4, chunk_factor=2, root=1)
        assert coll.precondition(1) == {
            0: InputChunk(1, 0), 1: InputChunk(1, 1)
        }
        assert coll.precondition(0) == {}

    def test_postcondition_references_root(self):
        coll = Broadcast(4, chunk_factor=1, root=2)
        for rank in range(4):
            assert coll.postcondition(rank) == {0: InputChunk(2, 0)}

    def test_nonroot_input_is_uninitialized(self):
        coll = Broadcast(2, chunk_factor=1, root=0)
        with MSCCLProgram("t", coll):
            with pytest.raises(UninitializedChunkError):
                chunk(1, "in", 0)

    def test_bad_root_rejected(self):
        with pytest.raises(ProgramError):
            Broadcast(4, root=4)


class TestReduceCollective:
    def test_only_root_output_constrained(self):
        coll = Reduce(3, chunk_factor=1, root=1)
        assert coll.postcondition(0) == {}
        assert coll.postcondition(1) == {0: allreduce_result(3, 0)}


class TestGatherScatter:
    def test_gather_sizes_and_postcondition(self):
        coll = Gather(3, chunk_factor=2, root=0)
        assert coll.input_chunks(1) == 2
        assert coll.output_chunks(0) == 6
        post = coll.postcondition(0)
        assert post[3] == InputChunk(1, 1)
        assert coll.postcondition(2) == {}

    def test_scatter_sizes_and_postcondition(self):
        coll = Scatter(3, chunk_factor=2, root=1)
        assert coll.input_chunks(0) == 6
        assert coll.precondition(0) == {}
        assert len(coll.precondition(1)) == 6
        assert coll.postcondition(2) == {
            0: InputChunk(1, 4), 1: InputChunk(1, 5)
        }

    def test_gather_scatter_roundtrip_program(self):
        """Scatter from root then gather back: verified end to end."""
        coll = Scatter(3, chunk_factor=1, root=0)
        with MSCCLProgram("scatter", coll) as program:
            for rank in range(3):
                chunk(0, "in", rank).copy(rank, "out", 0)
        ir = compile_program(program)
        IrExecutor(ir, coll).run_and_check()


@pytest.mark.parametrize("builder,ranks,root", [
    (chain_broadcast, 6, 0),
    (chain_broadcast, 5, 3),
    (tree_broadcast, 8, 0),
    (tree_broadcast, 7, 2),
    (chain_reduce, 6, 0),
    (chain_reduce, 5, 4),
    (tree_reduce, 8, 0),
    (tree_reduce, 6, 1),
])
def test_rooted_algorithms_verify(builder, ranks, root):
    program = builder(ranks, root=root)
    ir = compile_program(program, CompilerOptions())
    IrExecutor(ir, program.collective).run_and_check()


class TestAlgorithmShape:
    def test_tree_broadcast_is_log_depth(self):
        program = tree_broadcast(8)
        ir = compile_program(program)
        max_steps = max(
            sum(len(tb.instructions) for tb in gpu.threadblocks)
            for gpu in ir.gpus
        )
        assert max_steps <= 3  # root sends to 2 children, others <= 3 ops

    def test_chain_broadcast_pipelines_chunks(self):
        """Chunked chain: interior ranks forward via fused rcs."""
        from repro.core import Op

        program = chain_broadcast(4, chunk_factor=4)
        ir = compile_program(program)
        histogram = ir.op_histogram()
        assert histogram.get(Op.RECV_COPY_SEND.value, 0) >= 8

    def test_tree_faster_than_chain_small_tree_slower_large(self):
        from repro.analysis import ir_timer
        from repro.topology import ndv4

        topology = ndv4(1)
        chain_ir = compile_program(chain_broadcast(8, chunk_factor=8))
        tree_ir = compile_program(tree_broadcast(8, chunk_factor=1))
        chain_coll = chain_broadcast(8, chunk_factor=8).collective
        tree_coll = tree_broadcast(8, chunk_factor=1).collective
        chain = ir_timer(chain_ir, topology, chain_coll)
        tree = ir_timer(tree_ir, ndv4(1), tree_coll)
        assert tree(4 * 1024) < chain(4 * 1024)  # latency-bound
        assert chain(64 * 1024 * 1024) < tree(64 * 1024 * 1024)
