"""Tests for lowering the Chunk DAG into the Instruction DAG."""

from fractions import Fraction

import pytest

from repro.core import AllReduce, MSCCLProgram, Op, chunk, lower, parallelize
from repro.core.instructions import (
    fraction_covers,
    fractions_overlap,
)
from repro.core.lowering import _overlaps, _subtract


def trace(body, num_ranks=3, chunk_factor=2, instances=1):
    coll = AllReduce(num_ranks, chunk_factor=chunk_factor)
    with MSCCLProgram("t", coll, instances=instances) as program:
        body()
    return program


class TestExpansion:
    def test_remote_copy_becomes_send_recv(self):
        program = trace(lambda: chunk(0, "in", 0).copy(1, "sc", 0))
        idag = lower(program.dag)
        ops = [i.op for i in idag.live()]
        assert ops == [Op.SEND, Op.RECV]
        send, recv = idag.live()
        assert send.send_match == recv.instr_id
        assert recv.recv_match == send.instr_id
        assert send.rank == 0 and recv.rank == 1

    def test_remote_reduce_becomes_send_rrc(self):
        def body():
            incoming = chunk(1, "in", 0)
            chunk(0, "in", 0).reduce(incoming)

        program = trace(body)
        idag = lower(program.dag)
        ops = [i.op for i in idag.live()]
        assert ops == [Op.SEND, Op.RECV_REDUCE_COPY]
        rrc = idag.live()[1]
        assert rrc.src == rrc.dst  # accumulates in place

    def test_local_copy_single_instruction(self):
        program = trace(lambda: chunk(0, "in", 0).copy(0, "sc", 3))
        idag = lower(program.dag)
        (instr,) = idag.live()
        assert instr.op is Op.COPY
        assert instr.send_peer is None and instr.recv_peer is None

    def test_local_reduce_single_instruction(self):
        def body():
            chunk(0, "in", 0).copy(0, "sc", 0)
            chunk(0, "in", 1).reduce(chunk(0, "sc", 0))

        program = trace(body)
        idag = lower(program.dag)
        assert [i.op for i in idag.live()] == [Op.COPY, Op.REDUCE]

    def test_processing_edge_recomputed_at_instruction_level(self):
        def body():
            a = chunk(0, "in", 0).copy(1, "sc", 0)
            a.copy(2, "sc", 0)

        program = trace(body)
        idag = lower(program.dag)
        send0, recv0, send1, recv1 = idag.live()
        # The second send (on rank 1) reads what the first recv wrote.
        assert recv0.instr_id in send1.true_deps


class TestInstances:
    def test_program_instances_replicate_ops(self):
        program = trace(
            lambda: chunk(0, "in", 0).copy(1, "sc", 0), instances=3
        )
        idag = lower(program.dag, instances=3)
        sends = [i for i in idag.live() if i.op is Op.SEND]
        assert len(sends) == 3
        fracs = sorted((s.frac_lo, s.frac_hi) for s in sends)
        assert fracs == [
            (Fraction(0), Fraction(1, 3)),
            (Fraction(1, 3), Fraction(2, 3)),
            (Fraction(2, 3), Fraction(1)),
        ]

    def test_parallelize_multiplies_with_instances(self):
        def body():
            with parallelize(2):
                chunk(0, "in", 0).copy(1, "sc", 0)

        program = trace(body, instances=2)
        idag = lower(program.dag, instances=2)
        sends = [i for i in idag.live() if i.op is Op.SEND]
        assert len(sends) == 4
        assert all(s.instance[1] == 4 for s in sends)

    def test_instances_partition_exactly(self):
        program = trace(
            lambda: chunk(0, "in", 0).copy(1, "sc", 0), instances=4
        )
        idag = lower(program.dag, instances=4)
        sends = sorted(
            (i for i in idag.live() if i.op is Op.SEND),
            key=lambda s: s.frac_lo,
        )
        assert sends[0].frac_lo == 0 and sends[-1].frac_hi == 1
        for a, b in zip(sends, sends[1:]):
            assert a.frac_hi == b.frac_lo

    def test_cross_parallelism_dependencies_by_overlap(self):
        """A 2-way parallel producer feeding an unparallelized consumer:
        the consumer must depend on both instances."""

        def body():
            with parallelize(2):
                chunk(0, "in", 0).copy(1, "sc", 0)
            chunk(1, "sc", 0).copy(2, "sc", 0)

        program = trace(body)
        idag = lower(program.dag)
        recvs = [i for i in idag.live()
                 if i.op is Op.RECV and i.rank == 1]
        consumer_send = [i for i in idag.live()
                         if i.op is Op.SEND and i.rank == 1][0]
        assert {r.instr_id for r in recvs} <= consumer_send.true_deps

    def test_same_instance_dependencies_stay_disjoint(self):
        """Matching instances of two parallelized ops depend pairwise,
        not all-to-all."""

        def body():
            with parallelize(2):
                a = chunk(0, "in", 0).copy(1, "sc", 0)
                a.copy(2, "sc", 0)

        program = trace(body)
        idag = lower(program.dag)
        live = idag.live()
        second_sends = [i for i in live if i.op is Op.SEND and i.rank == 1]
        for send in second_sends:
            producing_recvs = [
                live_i for live_i in live
                if live_i.instr_id in send.true_deps
            ]
            assert all(
                r.fraction == send.fraction for r in producing_recvs
            )


class TestOverwrittenTracking:
    def test_fully_overwritten_flag(self):
        def body():
            chunk(0, "in", 0).copy(1, "sc", 0)
            chunk(0, "in", 1).copy(1, "sc", 0)

        program = trace(body)
        idag = lower(program.dag)
        first_recv = [i for i in idag.live() if i.op is Op.RECV][0]
        assert first_recv.overwritten

    def test_partial_overwrite_not_flagged(self):
        """Only half the fraction range is overwritten."""

        def body():
            chunk(0, "in", 0).copy(1, "sc", 0)
            with parallelize(2):
                chunk(0, "in", 1).copy(1, "sc", 0)

        program = trace(body)
        idag = lower(program.dag)
        # Both parallel instances together DO cover the location.
        first_recv = [i for i in idag.live() if i.op is Op.RECV][0]
        assert first_recv.overwritten

    def test_never_overwritten_not_flagged(self):
        program = trace(lambda: chunk(0, "in", 0).copy(1, "sc", 0))
        idag = lower(program.dag)
        recv = [i for i in idag.live() if i.op is Op.RECV][0]
        assert not recv.overwritten


class TestIntervalHelpers:
    def test_subtract_middle(self):
        got = _subtract([(Fraction(0), Fraction(1))],
                        Fraction(1, 4), Fraction(1, 2))
        assert got == [(Fraction(0), Fraction(1, 4)),
                       (Fraction(1, 2), Fraction(1))]

    def test_subtract_disjoint(self):
        intervals = [(Fraction(0), Fraction(1, 4))]
        assert _subtract(intervals, Fraction(1, 2), Fraction(1)) == intervals

    def test_subtract_everything(self):
        assert _subtract([(Fraction(0), Fraction(1))],
                         Fraction(0), Fraction(1)) == []

    def test_overlaps(self):
        assert _overlaps([(Fraction(0), Fraction(1, 2))],
                         Fraction(1, 4), Fraction(3, 4))
        assert not _overlaps([(Fraction(0), Fraction(1, 2))],
                             Fraction(1, 2), Fraction(1))

    def test_fraction_utils(self):
        assert fractions_overlap(Fraction(0), Fraction(1, 2),
                                 Fraction(1, 4), Fraction(1))
        assert not fractions_overlap(Fraction(0), Fraction(1, 2),
                                     Fraction(1, 2), Fraction(1))
        assert fraction_covers(Fraction(0), Fraction(1),
                               Fraction(1, 4), Fraction(1, 2))
        assert not fraction_covers(Fraction(1, 4), Fraction(1, 2),
                                   Fraction(0), Fraction(1))
