"""Tests for the hand-written baseline cost models."""

import pytest

from repro.baselines import (
    ComposedHierarchicalAllReduce,
    CudaAllToNext,
    CudaTwoStepAllToAll,
    ScclRuntimeAllGather,
    extra_kernel_cost,
    simulate_phases,
)
from repro.core import CompilerOptions, compile_program
from repro.runtime import IrSimulator
from repro.topology import dgx1, generic, ndv4
from repro.algorithms import (
    alltonext,
    hierarchical_allreduce,
    sccl_allgather_122,
    twostep_alltoall,
)
from repro.analysis import ir_timer

MiB = 1024 * 1024


class TestComposedHierarchical:
    def test_monotone_in_size(self):
        composed = ComposedHierarchicalAllReduce(ndv4(2))
        assert composed.time_us(64 * MiB) > composed.time_us(1 * MiB)

    def test_slower_than_single_kernel_version(self):
        """The composed implementation pays launches and loses cross-
        phase pipelining; the fused MSCCLang program must win (Fig 8c's
        red line sits below the MSCCLang lines)."""
        topo = ndv4(2)
        program = hierarchical_allreduce(2, 8, instances=2,
                                         protocol="LL128",
                                         intra_parallel=2)
        ir = compile_program(
            program, CompilerOptions(max_threadblocks=108)
        )
        fused_timer = ir_timer(ir, topo, program.collective)
        composed = ComposedHierarchicalAllReduce(ndv4(2))
        for size in (4 * MiB, 64 * MiB, 512 * MiB):
            assert composed.time_us(size) > fused_timer(size)

    def test_phase_cache_reused(self):
        composed = ComposedHierarchicalAllReduce(ndv4(2))
        composed.time_us(2 * MiB)
        n_cached = len(composed._cache)
        composed.time_us(4 * MiB)  # same protocol bucket (Simple)
        assert len(composed._cache) == n_cached


class TestCudaTwoStep:
    def test_pays_rearrangement_kernel(self):
        topo = ndv4(2)
        cuda = CudaTwoStepAllToAll(topo)
        base = cuda.time_us(16 * MiB)
        # The rearrangement cost alone:
        staged = 16 * MiB * 1 / 2
        assert base > extra_kernel_cost(topo, staged)

    def test_msccl_twostep_wins_at_large_sizes(self):
        topo = ndv4(2)
        program = twostep_alltoall(2, 8, protocol="Simple")
        ir = compile_program(
            program, CompilerOptions(max_threadblocks=108)
        )
        msccl_timer = ir_timer(ir, topo, program.collective)
        cuda = CudaTwoStepAllToAll(ndv4(2))
        size = 256 * MiB
        assert msccl_timer(size) < cuda.time_us(size)


class TestCudaAllToNext:
    def test_optimized_wins_at_large_sizes(self):
        topo = ndv4(2)
        program = alltonext(2, 8, instances=4, protocol="Simple")
        ir = compile_program(
            program, CompilerOptions(max_threadblocks=108)
        )
        timer = ir_timer(ir, topo, program.collective)
        cuda = CudaAllToNext(ndv4(2))
        size = 64 * MiB
        assert timer(size) < cuda.time_us(size) / 2

    def test_baseline_wins_at_small_sizes(self):
        """Figure 8g: the extra scatter/gather steps hurt for tiny
        buffers."""
        topo = ndv4(2)
        program = alltonext(2, 8, instances=4, protocol="Simple")
        ir = compile_program(
            program, CompilerOptions(max_threadblocks=108)
        )
        timer = ir_timer(ir, topo, program.collective)
        cuda = CudaAllToNext(ndv4(2))
        size = 8 * 1024
        assert timer(size) > cuda.time_us(size)


class TestScclRuntime:
    def test_ll_wins_small_sccl_wins_middle(self):
        """Figure 11's two crossovers."""
        topo = dgx1(1)
        sccl = ScclRuntimeAllGather(dgx1(1))
        ll_prog = sccl_allgather_122(8, protocol="LL")
        ll_ir = compile_program(
            ll_prog, CompilerOptions(max_threadblocks=80)
        )
        ll_timer = ir_timer(ll_ir, topo, ll_prog.collective)
        simple_prog = sccl_allgather_122(8, protocol="Simple")
        simple_ir = compile_program(
            simple_prog, CompilerOptions(max_threadblocks=80)
        )
        simple_timer = ir_timer(simple_ir, topo, simple_prog.collective)

        small = 32 * 1024
        assert ll_timer(small) < sccl.time_us(small)
        middle = 4 * MiB
        assert sccl.time_us(middle) < simple_timer(middle)
        assert sccl.time_us(middle) < ll_timer(middle)


class TestMultikernelHelpers:
    def test_simulate_phases_sums(self):
        from tests.conftest import build_ring_allreduce

        topo = generic(4, 1)
        ir = compile_program(build_ring_allreduce(4))
        single = IrSimulator(ir, topo).run(chunk_bytes=1024).time_us
        total = simulate_phases(
            [("a", ir, 1024), ("fixed", 100.0), ("b", ir, 1024)],
            generic(4, 1),
        )
        assert total == pytest.approx(2 * single + 100.0, rel=0.05)

    def test_extra_kernel_cost_scales_with_bytes(self):
        topo = ndv4(1)
        assert extra_kernel_cost(topo, 1e9) > extra_kernel_cost(topo, 1e6)
        assert extra_kernel_cost(topo, 0) == pytest.approx(
            topo.machine.kernel_launch_overhead
        )
