"""Tests for the NCCL-like Communicator facade."""

import pytest

from repro.algorithms import ring_allgather, ring_allreduce
from repro.core import CompilerOptions, compile_program
from repro.core.errors import RuntimeConfigError
from repro.runtime import Communicator
from repro.topology import ndv4

KiB = 1024
MiB = 1024 * 1024


@pytest.fixture
def communicator():
    comm = Communicator(ndv4(1))
    program = ring_allreduce(8, channels=4, instances=8, protocol="LL")
    algo = compile_program(program, CompilerOptions(max_threadblocks=108))
    comm.register(algo, min_bytes=0, max_bytes=2 * MiB, label="ring-ll")
    return comm


class TestSelection:
    def test_registered_program_used_in_range(self, communicator):
        communicator.all_reduce(256 * KiB)
        assert communicator.history[-1].algorithm == "ring-ll"

    def test_fallback_outside_range(self, communicator):
        communicator.all_reduce(64 * MiB)
        assert communicator.history[-1].algorithm == "nccl-fallback"

    def test_fallback_without_any_registration(self):
        comm = Communicator(ndv4(1))
        result = comm.all_reduce(MiB)
        assert result.time_us > 0
        assert comm.history[-1].algorithm == "nccl-fallback"

    def test_no_fallback_collective_raises(self):
        comm = Communicator(ndv4(1))
        with pytest.raises(RuntimeConfigError):
            comm.all_gather(MiB)

    def test_allgather_served_when_registered(self):
        comm = Communicator(ndv4(1))
        program = ring_allgather(8, channels=2, instances=4)
        algo = compile_program(
            program, CompilerOptions(max_threadblocks=108)
        )
        comm.register(algo, label="ag")
        result = comm.all_gather(4 * MiB)
        assert result.time_us > 0
        assert comm.history[-1].algorithm == "ag"

    def test_rank_mismatch_rejected(self):
        comm = Communicator(ndv4(2))
        program = ring_allreduce(8)
        algo = compile_program(program)
        with pytest.raises(RuntimeConfigError, match="ranks"):
            comm.register(algo)

    def test_bare_ir_rejected(self, communicator):
        program = ring_allreduce(8)
        algo = compile_program(program)
        with pytest.raises(RuntimeConfigError, match="CompiledAlgorithm"):
            communicator.register(algo.ir)

    def test_old_pair_shape_removed(self):
        # The PR-1 deprecation cycle is complete: the (ir, collective)
        # pair is no longer accepted, positionally or otherwise.
        comm = Communicator(ndv4(1))
        program = ring_allreduce(8, channels=4, instances=8,
                                 protocol="LL")
        algo = compile_program(
            program, CompilerOptions(max_threadblocks=108)
        )
        with pytest.raises(TypeError):
            comm.register(algo.ir, program.collective)
        with pytest.raises(RuntimeConfigError,
                           match="CompiledAlgorithm"):
            comm.register(algo.ir)


class TestHistory:
    def test_every_call_recorded(self, communicator):
        communicator.all_reduce(KiB)
        communicator.all_reduce(64 * MiB)
        communicator.all_to_all(MiB)
        assert len(communicator.history) == 3
        assert communicator.history[2].collective == "alltoall"

    def test_total_time_accumulates(self, communicator):
        a = communicator.all_reduce(KiB).time_us
        b = communicator.all_reduce(MiB).time_us
        assert communicator.total_time_us() == pytest.approx(a + b)

    def test_summary_groups_by_algorithm(self, communicator):
        communicator.all_reduce(KiB)
        communicator.all_reduce(2 * KiB)
        communicator.all_reduce(64 * MiB)
        summary = communicator.summary()
        row = summary["allreduce"]
        assert row["calls"] == 3
        assert row["total_us"] == pytest.approx(
            communicator.total_time_us()
        )
        algos = row["algorithms"]
        assert algos["ring-ll"]["calls"] == 2
        assert algos["nccl-fallback"]["calls"] == 1

    def test_summary_text_renders_table(self, communicator):
        communicator.all_reduce(KiB)
        communicator.all_reduce(64 * MiB)
        text = communicator.summary_text()
        assert "ring-ll" in text
        assert "nccl-fallback" in text
        assert "allreduce" in text


class TestAutotuneIntegration:
    def test_registry_from_autotuner_plugs_in(self):
        from repro.analysis import Candidate, build_registry, tune

        def builder(channels, instances, protocol):
            return ring_allreduce(8, channels=channels,
                                  instances=instances, protocol=protocol)

        outcome = tune(
            builder, ndv4(1), [32 * KiB, 8 * MiB],
            collective_sizing_chunks=8,
            space=[Candidate(1, 2, "LL"), Candidate(1, 24, "Simple")],
        )
        registry = build_registry(outcome, "allreduce")
        comm = Communicator(ndv4(1))
        comm.register_registry(registry, sizing_chunks=8)
        comm.all_reduce(32 * KiB)
        comm.all_reduce(8 * MiB)
        labels = [record.algorithm for record in comm.history]
        assert labels[0] != labels[1]  # different winners per band
