"""Tests for the parallel evaluation layer: determinism above all.

The contract under test: ``run_sweep``/``tune`` with ``jobs=N`` must be
bitwise-identical to their sequential runs, unpicklable work degrades
to inline execution instead of crashing, and the pool's counters show
up in :func:`repro.observe.metrics_dict`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ring_allreduce
from repro.analysis import (
    Candidate,
    KiB,
    MiB,
    ir_timer,
    parallel_map,
    pool_stats,
    reset_pool_stats,
    resolve_jobs,
    run_sweep,
    tune,
)
from repro.core import CompilerOptions, compile_program
from repro.observe import Tracer, metrics_dict
from repro.topology import ndv4
from tests.conftest import build_ring_allreduce


def _double(task):
    """Module-level so worker processes can import it."""
    return task * 2


def _type_name(task):
    return type(task).__name__


class LinearTimer:
    """A picklable synthetic latency model: alpha + beta * bytes."""

    def __init__(self, alpha_us, beta_us_per_byte):
        self.alpha_us = alpha_us
        self.beta_us_per_byte = beta_us_per_byte

    def __call__(self, nbytes):
        return self.alpha_us + self.beta_us_per_byte * nbytes


class TestResolveJobs:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs()

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestParallelMap:
    def test_results_come_back_in_task_order(self):
        tasks = list(range(20))
        assert parallel_map(_double, tasks, jobs=4) == \
            [task * 2 for task in tasks]

    def test_jobs_one_runs_inline(self):
        reset_pool_stats()
        assert parallel_map(_double, [1, 2, 3], jobs=1) == [2, 4, 6]
        stats = pool_stats()
        assert stats["parallel_tasks"] == 0
        assert stats["inline_tasks"] == 3

    def test_unpicklable_task_falls_back_inline(self):
        reset_pool_stats()
        tasks = [7, lambda: None]  # the lambda cannot cross a process
        assert parallel_map(_type_name, tasks, jobs=2) == \
            ["int", "function"]
        stats = pool_stats()
        assert stats["parallel_tasks"] == 1
        assert stats["inline_tasks"] == 1

    def test_unpicklable_fn_falls_back_inline(self):
        reset_pool_stats()
        assert parallel_map(lambda t: t + 1, [1, 2], jobs=2) == [2, 3]
        assert pool_stats()["parallel_tasks"] == 0

    def test_empty_tasks(self):
        assert parallel_map(_double, [], jobs=4) == []


class TestSweepParity:
    def _configs(self):
        return {
            "fast": LinearTimer(5.0, 1e-3),
            "slow": LinearTimer(9.0, 2e-3),
        }

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_bitwise_equal_to_sequential(self, jobs):
        sizes = [KiB, 2 * KiB, 4 * KiB, 8 * KiB]
        seq = run_sweep("t", sizes, self._configs(), jobs=1)
        par = run_sweep("t", sizes, self._configs(), jobs=jobs)
        assert {k: s.times_us for k, s in par.series.items()} == \
            {k: s.times_us for k, s in seq.series.items()}
        assert par.sizes == seq.sizes

    def test_real_ir_timer_parity(self):
        program = build_ring_allreduce(8)
        topo = ndv4(1)
        algo = compile_program(program, CompilerOptions(
            max_threadblocks=topo.machine.sm_count))
        timer = ir_timer(algo, topo, program.collective)
        sizes = [KiB, 64 * KiB, MiB]
        seq = run_sweep("ring", sizes, {"ring": timer}, jobs=1)
        par = run_sweep("ring", sizes, {"ring": timer}, jobs=2)
        assert par.series["ring"].times_us == seq.series["ring"].times_us

    def test_worker_spans_and_metrics(self):
        reset_pool_stats()
        tracer = Tracer()
        sizes = [KiB, 2 * KiB, 4 * KiB]
        run_sweep("t", sizes, self._configs(), jobs=2, tracer=tracer)
        names = {span.name for span in tracer.spans()}
        assert "sweep.pool" in names
        assert "sweep.task" in names
        stats = pool_stats()
        assert stats["pools"] == 1
        assert stats["tasks"] == 6
        assert stats["max_jobs"] == 2
        assert sum(stats["per_worker_tasks"].values()) == 6
        metrics = metrics_dict(tracer)
        assert metrics["workers"]["tasks"] == 6


@settings(max_examples=8, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=1 << 30),
                   min_size=1, max_size=5, unique=True),
    alpha=st.floats(min_value=0.0, max_value=100.0,
                    allow_nan=False, allow_infinity=False),
    jobs=st.sampled_from([2, 3, 4]),
)
def test_parallel_sweep_matches_sequential_property(sizes, alpha, jobs):
    configs = {
        "a": LinearTimer(alpha, 1e-3),
        "b": LinearTimer(2.0 * alpha + 1.0, 5e-4),
    }
    seq = run_sweep("p", sizes, configs, jobs=1)
    par = run_sweep("p", sizes, configs, jobs=jobs)
    for label in configs:
        assert par.series[label].times_us == seq.series[label].times_us


class TestTuneParity:
    def test_parallel_tune_matches_sequential(self):
        space = [
            Candidate(1, 2, "LL"),
            Candidate(4, 8, "LL"),
            Candidate(1, 4, "Simple"),
        ]
        sizes = [64 * KiB, MiB]

        def build(channels, instances, protocol):
            return ring_allreduce(8, channels=channels,
                                  instances=instances,
                                  protocol=protocol)

        seq = tune(build, ndv4(1), sizes, collective_sizing_chunks=8,
                   space=space, jobs=1)
        par = tune(build, ndv4(1), sizes, collective_sizing_chunks=8,
                   space=space, jobs=2)
        assert par.times == seq.times
        assert par.best == seq.best
        assert par.table() == seq.table()
