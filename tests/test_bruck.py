"""Tests for Bruck's any-rank-count AllGather."""

import math

import pytest

from repro.algorithms import bruck_allgather, ring_allgather
from repro.core import CompilerOptions, Op, compile_program
from repro.runtime import IrExecutor, IrSimulator
from repro.topology import generic


@pytest.mark.parametrize("ranks", [2, 3, 5, 6, 7, 8, 11, 13, 16])
def test_correct_for_any_rank_count(ranks):
    program = bruck_allgather(ranks)
    ir = compile_program(program, CompilerOptions())
    IrExecutor(ir, program.collective).run_and_check()


@pytest.mark.parametrize("ranks", [5, 8, 13])
def test_log_rounds(ranks):
    """Each rank sends in at most ceil(log2 R) rounds, i.e. to that many
    distinct peers."""
    program = bruck_allgather(ranks)
    ir = compile_program(program)
    rounds = math.ceil(math.log2(ranks))
    for gpu in ir.gpus:
        peers = {
            tb.send_peer for tb in gpu.threadblocks
            if tb.send_peer is not None
        }
        assert len(peers) <= rounds


def test_total_traffic_matches_allgather_lower_bound():
    """Bruck moves exactly R-1 blocks into each rank — no resends."""
    ranks = 7
    program = bruck_allgather(ranks)
    ir = compile_program(program)
    recv_ops = (Op.RECV, Op.RECV_COPY_SEND)
    for gpu in ir.gpus:
        received = sum(
            instr.count
            for tb in gpu.threadblocks
            for instr in tb.instructions
            if instr.op in recv_ops
        )
        assert received == ranks - 1


def test_faster_than_ring_at_small_sizes():
    ranks = 12
    topology = generic(ranks, 1)
    bruck = compile_program(bruck_allgather(ranks))
    ring = compile_program(ring_allgather(ranks))
    bruck_time = IrSimulator(bruck, topology).run(chunk_bytes=512).time_us
    ring_time = IrSimulator(ring, generic(ranks, 1)).run(
        chunk_bytes=512).time_us
    assert bruck_time < ring_time


def test_tiny_cluster_rejected():
    with pytest.raises(ValueError):
        bruck_allgather(1)
