"""Tests for channel assignment, thread block assignment, and cross-TB
dependency insertion."""

import pytest

from repro.core import (
    AllReduce,
    CompilerOptions,
    MSCCLProgram,
    Op,
    SchedulingError,
    chunk,
    compile_program,
    parallelize,
)
from tests.conftest import build_ring_allreduce


def compiled(body, num_ranks=4, chunk_factor=2, instances=1, **opts):
    opts.setdefault("verify", False)  # toy routings, not real collectives
    coll = AllReduce(num_ranks, chunk_factor=chunk_factor)
    with MSCCLProgram("t", coll, instances=instances) as program:
        body()
    return compile_program(program, CompilerOptions(**opts))


class TestThreadBlockInvariants:
    def _check_invariants(self, ir):
        for gpu in ir.gpus:
            send_conns = set()
            recv_conns = set()
            for tb in gpu.threadblocks:
                if tb.send_peer is not None:
                    conn = (tb.send_peer, tb.channel)
                    assert conn not in send_conns, (
                        "two thread blocks own one send connection"
                    )
                    send_conns.add(conn)
                if tb.recv_peer is not None:
                    conn = (tb.recv_peer, tb.channel)
                    assert conn not in recv_conns
                    recv_conns.add(conn)
                for instr in tb.instructions:
                    if instr.op in (Op.SEND, Op.RECV_COPY_SEND,
                                    Op.RECV_REDUCE_COPY_SEND,
                                    Op.RECV_REDUCE_SEND):
                        assert tb.send_peer is not None
                    if instr.op in (Op.RECV, Op.RECV_REDUCE_COPY,
                                    Op.RECV_COPY_SEND,
                                    Op.RECV_REDUCE_COPY_SEND,
                                    Op.RECV_REDUCE_SEND):
                        assert tb.recv_peer is not None

    def test_ring_invariants(self, ring4_ir):
        self._check_invariants(ring4_ir)

    def test_multi_instance_invariants(self):
        program = build_ring_allreduce(4, instances=3, channels=2)
        ir = compile_program(program)
        self._check_invariants(ir)

    def test_steps_are_sequential(self, ring4_ir):
        for gpu in ring4_ir.gpus:
            for tb in gpu.threadblocks:
                assert [i.step for i in tb.instructions] == list(
                    range(len(tb.instructions))
                )


class TestChannelAssignment:
    def test_default_single_channel(self, ring4_ir):
        assert ring4_ir.channels_used() == 1

    def test_directives_separate_channels(self):
        def body():
            chunk(0, "in", 0).copy(1, "sc", 0, ch=0)
            chunk(0, "in", 1).copy(1, "sc", 1, ch=1)

        ir = compiled(body)
        channels = {tb.channel for g in ir.gpus for tb in g.threadblocks}
        assert len(channels) == 2

    def test_parallel_instances_get_disjoint_channels(self):
        def body():
            with parallelize(3):
                chunk(0, "in", 0).copy(1, "sc", 0)

        ir = compiled(body)
        assert ir.channels_used() == 3

    def test_program_instances_get_disjoint_channels(self):
        program = build_ring_allreduce(4, instances=4)
        ir = compile_program(program)
        assert ir.channels_used() == 4

    def test_fused_chain_shares_one_channel(self):
        def body():
            c = chunk(0, "in", 0)
            for rank in (1, 2, 3):
                c = c.copy(rank, "sc", 0)

        ir = compiled(body)
        assert ir.channels_used() == 1

    def test_conflicting_pairings_probe_new_channels(self):
        """Two fused chains through rank 1 with the same send peer but
        different recv peers cannot share (send, recv) on one thread
        block; the scheduler must separate their channels."""

        def body():
            a = chunk(0, "in", 0).copy(1, "sc", 0)
            a.copy(3, "sc", 0)
            b = chunk(2, "in", 0).copy(1, "sc", 1)
            b.copy(3, "sc", 1)

        ir = compiled(body)
        rank1 = ir.gpus[1]
        fused = [
            tb for tb in rank1.threadblocks
            if tb.send_peer is not None and tb.recv_peer is not None
        ]
        pairings = {(tb.recv_peer, tb.send_peer, tb.channel)
                    for tb in fused}
        assert len(pairings) == 2
        channels = {tb.channel for tb in fused}
        assert len(channels) == 2


class TestLocalOpPlacement:
    def test_local_ops_get_a_thread_block(self):
        def body():
            chunk(0, "in", 0).copy(0, "sc", 0)

        ir = compiled(body)
        gpu0 = ir.gpus[0]
        assert sum(len(tb.instructions) for tb in gpu0.threadblocks) == 1

    def test_local_ops_balance_across_blocks(self):
        def body():
            chunk(0, "in", 0).copy(1, "sc", 0, ch=0)
            chunk(0, "in", 1).copy(1, "sc", 1, ch=1)
            chunk(1, "sc", 0).copy(1, "sc", 2)
            chunk(1, "sc", 1).copy(1, "sc", 3)

        ir = compiled(body)
        gpu1 = ir.gpus[1]
        local_hosts = [
            tb.tb_id for tb in gpu1.threadblocks
            for i in tb.instructions if i.op is Op.COPY
        ]
        assert len(set(local_hosts)) == 2  # spread, not piled on one


class TestSmLimit:
    def test_within_limit_passes(self):
        program = build_ring_allreduce(4, instances=2)
        compile_program(program, CompilerOptions(max_threadblocks=4))

    def test_exceeding_limit_raises(self):
        program = build_ring_allreduce(4, instances=8)
        with pytest.raises(SchedulingError, match="thread blocks"):
            compile_program(program, CompilerOptions(max_threadblocks=4))


class TestCrossTbDeps:
    def test_phase_boundary_emits_dep(self):
        """An op whose input was produced on another thread block of the
        same rank must carry a dep entry."""

        def body():
            staged = chunk(0, "in", 0).copy(1, "sc", 0, ch=0)
            chunk(1, "sc", 0).copy(2, "sc", 0, ch=1)

        ir = compiled(body)
        deps = [
            (gpu.rank, instr.depends)
            for gpu in ir.gpus
            for tb in gpu.threadblocks
            for instr in tb.instructions
            if instr.depends
        ]
        assert deps, "expected at least one cross-TB dependency"
        rank, depends = deps[0]
        assert rank == 1

    def test_has_dep_flag_set_on_producer(self):
        def body():
            chunk(0, "in", 0).copy(1, "sc", 0, ch=0)
            chunk(1, "sc", 0).copy(2, "sc", 0, ch=1)

        ir = compiled(body)
        flagged = [
            instr
            for gpu in ir.gpus
            for tb in gpu.threadblocks
            for instr in tb.instructions
            if instr.has_dep
        ]
        assert flagged

    def test_same_tb_deps_are_implicit(self, ring4_ir):
        """The plain ring schedules each rank onto one thread block, so
        no explicit dep entries should appear."""
        for gpu in ring4_ir.gpus:
            for tb in gpu.threadblocks:
                for instr in tb.instructions:
                    assert not instr.depends

    def test_dep_points_to_earlier_step(self):
        program = build_ring_allreduce(6, channels=2)
        ir = compile_program(program)
        for gpu in ir.gpus:
            lengths = {
                tb.tb_id: len(tb.instructions) for tb in gpu.threadblocks
            }
            for tb in gpu.threadblocks:
                for instr in tb.instructions:
                    for dep_tb, dep_step in instr.depends:
                        assert dep_tb in lengths
                        assert 0 <= dep_step < lengths[dep_tb]
