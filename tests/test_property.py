"""Property-based tests (hypothesis) for compiler and runtime invariants.

The centerpiece: for *arbitrary* randomly generated chunk-routing
programs, the compiled IR must (a) pass the deadlock audit, and (b)
produce, on real data, exactly the values the abstract trace semantics
promise at every initialized location. This exercises tracing, lowering,
fusion, scheduling, and the executor end to end far beyond the
hand-written algorithms.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AllReduce,
    Buffer,
    CompilerOptions,
    Custom,
    MSCCLProgram,
    audit_ir,
    chunk,
    compile_program,
)
from repro.core.buffers import BufferState
from repro.core.chunk import InputChunk, ReductionChunk, reduce_chunks
from repro.core.lowering import _overlaps, _subtract
from repro.runtime import IrExecutor
from tests.conftest import build_ring_allreduce

# -- strategies -----------------------------------------------------------

fractions = st.builds(
    lambda n, d: Fraction(n % d, d),
    st.integers(0, 100), st.integers(1, 100),
)


@st.composite
def interval_lists(draw):
    points = sorted(draw(st.lists(fractions, min_size=2, max_size=8,
                                  unique=True)))
    return [(a, b) for a, b in zip(points[::2], points[1::2]) if a < b]


@st.composite
def random_programs(draw):
    """A random but *valid* chunk-routing program description.

    Ops may span multiple chunks (count > 1), sit inside a
    ``parallelize`` region, and carry channel directives — the whole
    surface the compiler must get right.
    """
    num_ranks = draw(st.integers(2, 4))
    num_chunks = draw(st.integers(1, 3))
    n_ops = draw(st.integers(1, 12))
    ops = []
    for _ in range(n_ops):
        count = draw(st.integers(1, num_chunks))
        ops.append((
            draw(st.sampled_from(["copy", "reduce"])),
            draw(st.integers(0, num_ranks - 1)),      # src rank
            draw(st.integers(0, num_chunks - count)),  # src index
            draw(st.sampled_from(["in", "sc"])),      # src buffer
            draw(st.integers(0, num_ranks - 1)),      # dst rank
            draw(st.integers(0, num_chunks - count)),  # dst index
            draw(st.sampled_from(["out", "sc"])),     # dst buffer
            count,
            draw(st.sampled_from([None, 0, 1])),      # channel directive
            draw(st.booleans()),                      # inside parallelize
        ))
    instances = draw(st.integers(1, 2))
    group = draw(st.integers(1, 3))
    return (num_ranks, num_chunks, ops, instances, group)


def trace_random_program(description):
    """Replay a random description, skipping ops that would be invalid
    (uninitialized reads are skipped; that is part of the semantics)."""
    from repro.core import parallelize
    from repro.core.errors import UninitializedChunkError

    num_ranks, num_chunks, ops, instances, group = description
    collective = Custom(
        num_ranks,
        postcondition_fn=lambda rank: {},
        input_chunks_fn=lambda rank: num_chunks,
        output_chunks_fn=lambda rank: num_chunks,
        name="gossip",
    )
    applied = 0

    def apply_op(op) -> int:
        (kind, s_rank, s_idx, s_buf, d_rank, d_idx, d_buf,
         count, channel, _grouped) = op
        try:
            source = chunk(s_rank, s_buf, s_idx, count=count)
        except UninitializedChunkError:
            return 0
        if kind == "copy":
            source.copy(d_rank, d_buf, d_idx, ch=channel)
            return 1
        try:
            dest = chunk(d_rank, d_buf, d_idx, count=count)
        except UninitializedChunkError:
            return 0
        if (dest.rank, dest.buffer, dest.index) == (
                source.rank, source.buffer, source.index):
            return 0  # self-reduce is not meaningful
        dest.reduce(source, ch=channel)
        return 1

    with MSCCLProgram("random", collective,
                      instances=instances) as program:
        for op in ops:
            if op[-1] and group > 1:
                with parallelize(group):
                    applied += apply_op(op)
            else:
                applied += apply_op(op)
    return program, applied


# -- the end-to-end property ------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(random_programs())
def test_random_programs_compile_and_compute_correctly(description):
    program, applied = trace_random_program(description)
    ir = compile_program(program, CompilerOptions(verify=False))
    audit_ir(ir, num_slots=8)

    executor = IrExecutor(ir, program.collective, elements_per_chunk=8)
    executor.run()
    # Every initialized abstract location must hold exactly the data the
    # trace semantics promise (inputs and sums of inputs).
    for rank in range(program.num_ranks):
        for buffer in (Buffer.OUTPUT, Buffer.SCRATCH):
            state = program.buffer_state(rank, buffer)
            for index, value in state.snapshot().items():
                expected = executor.expected_chunk(rank, value)
                actual = executor.buffers[(rank, buffer)][index]
                np.testing.assert_allclose(
                    actual, expected, rtol=1e-9, atol=1e-9,
                    err_msg=f"rank {rank} {buffer} [{index}]",
                )


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 8), st.integers(1, 3), st.integers(1, 3))
def test_ring_allreduce_verifies_at_any_size(num_ranks, factor, instances):
    program = build_ring_allreduce(num_ranks, instances=instances)
    ir = compile_program(program, CompilerOptions())
    IrExecutor(ir, program.collective,
               elements_per_chunk=6).run_and_check()


# -- data-structure properties -------------------------------------------------


@settings(max_examples=100)
@given(interval_lists(), fractions, fractions)
def test_subtract_removes_exactly_the_range(intervals, a, b):
    lo, hi = min(a, b), max(a, b)
    result = _subtract(intervals, lo, hi)
    # Nothing of [lo, hi) remains.
    assert not _overlaps(result, lo, hi) or lo == hi
    # Everything outside [lo, hi) is preserved, measured by total length.
    def measure(ivs):
        return sum(h - l for l, h in ivs)

    removed = sum(
        max(0, min(h, hi) - max(l, lo)) for l, h in intervals
    )
    assert measure(result) == measure(intervals) - removed


@settings(max_examples=100)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 7)),
                min_size=1, max_size=10))
def test_reduction_identity_is_permutation_invariant(pairs):
    chunks = [InputChunk(r, i) for r, i in pairs]
    forward = chunks[0]
    for c in chunks[1:]:
        forward = reduce_chunks(forward, c)
    backward = chunks[-1]
    for c in reversed(chunks[:-1]):
        backward = reduce_chunks(backward, c)
    if len(chunks) > 1:
        assert forward == backward


@settings(max_examples=50)
@given(st.integers(1, 12), st.integers(1, 12))
def test_instance_fractions_partition_unit_interval(r, g):
    total = r * g
    cuts = [Fraction(k, total) for k in range(total + 1)]
    assert cuts[0] == 0 and cuts[-1] == 1
    assert all(a < b for a, b in zip(cuts, cuts[1:]))


@settings(max_examples=60)
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 20)),
                min_size=1, max_size=30))
def test_bufferstate_versions_monotone(writes):
    state = BufferState(Buffer.SCRATCH, rank=0, size=None)
    seen = {}
    for index, stamp in writes:
        state.write(index, [InputChunk(0, stamp)])
        version = state.versions(index, 1)[0]
        assert version == seen.get(index, 0) + 1
        seen[index] = version
        assert state.read(index, 1) == [InputChunk(0, stamp)]
