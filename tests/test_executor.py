"""Tests for the numpy data-level executor."""

import numpy as np
import pytest

from repro.core import (
    AllReduce,
    Buffer,
    CompilerOptions,
    DeadlockError,
    MSCCLProgram,
    Op,
    VerificationError,
    chunk,
    compile_program,
)
from repro.core.chunk import InputChunk, ReductionChunk
from repro.core.ir import GpuProgram, IrInstruction, MscclIr, ThreadBlock
from repro.runtime import FaultPlan, IrExecutor
from tests.conftest import build_ring_allreduce


class TestRingExecution:
    def test_ring_produces_correct_sums(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        executor.run_and_check()

    def test_parallel_instances_still_correct(self):
        program = build_ring_allreduce(4, instances=3, channels=2)
        ir = compile_program(program, CompilerOptions())
        IrExecutor(ir, program.collective).run_and_check()

    def test_unfused_ir_also_correct(self):
        program = build_ring_allreduce(4)
        ir = compile_program(program, CompilerOptions(instr_fusion=False))
        IrExecutor(ir, program.collective).run_and_check()

    def test_outputs_match_numpy_reference(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        executor.run()
        expected = sum(executor.initial_inputs[r] for r in range(4))
        for rank in range(4):
            actual = executor.buffers[(rank, Buffer.OUTPUT)]
            np.testing.assert_allclose(actual, expected)

    def test_different_seeds_give_different_data(self, ring4_ir, ring4):
        a = IrExecutor(ring4_ir, ring4.collective, seed=0)
        b = IrExecutor(ring4_ir, ring4.collective, seed=1)
        assert not np.allclose(a.initial_inputs[0], b.initial_inputs[0])


class TestExpectedChunk:
    def test_input_chunk_expectation(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        expected = executor.expected_chunk(0, InputChunk(2, 1))
        np.testing.assert_array_equal(
            expected, executor.initial_inputs[2][1]
        )

    def test_reduction_expectation_with_multiplicity(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        doubled = ReductionChunk.of(
            InputChunk(0, 0), InputChunk(0, 0), InputChunk(1, 0)
        )
        expected = executor.expected_chunk(0, doubled)
        np.testing.assert_allclose(
            expected,
            2 * executor.initial_inputs[0][0]
            + executor.initial_inputs[1][0],
        )

    def test_unknown_value_rejected(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        with pytest.raises(VerificationError):
            executor.expected_chunk(0, "garbage")


class TestFailureDetection:
    def _broken_ir(self):
        """Rank 1 expects a message nobody sends."""
        ir = MscclIr(name="broken", collective="allreduce",
                     protocol="Simple", num_ranks=2, in_place=True)
        for rank in range(2):
            gpu = GpuProgram(rank=rank, input_chunks=0, output_chunks=2,
                             scratch_chunks=0)
            tb = ThreadBlock(tb_id=0, send_peer=None, recv_peer=1 - rank,
                             channel=0)
            tb.instructions.append(IrInstruction(
                step=0, op=Op.RECV, dst=(Buffer.OUTPUT, 0, 1),
            ))
            gpu.threadblocks.append(tb)
            ir.gpus.append(gpu)
        return ir

    def test_stuck_execution_raises_deadlock(self):
        coll = AllReduce(2, chunk_factor=2, in_place=True)
        with pytest.raises(DeadlockError, match="stuck"):
            IrExecutor(self._broken_ir(), coll).run()

    def test_wrong_data_detected(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        executor.run()
        executor.buffers[(2, Buffer.OUTPUT)][1, :] = 0.0
        with pytest.raises(VerificationError, match="data-level"):
            executor.check()

    def test_nan_poison_detected(self, ring4_ir, ring4):
        """Output buffers start as NaN; an unwritten constrained slot
        must fail the check even against an accidental zero sum."""
        executor = IrExecutor(ring4_ir, ring4.collective)
        executor.run()
        executor.buffers[(0, Buffer.OUTPUT)][0, 0] = np.nan
        with pytest.raises(VerificationError):
            executor.check()


class TestDeadlockDiagnostics:
    def _recv_without_sender_ir(self):
        """Rank 0 expects a message rank 1 never sends."""
        ir = MscclIr(name="no_sender", collective="allreduce",
                     protocol="Simple", num_ranks=2, in_place=True)
        for rank in range(2):
            gpu = GpuProgram(rank=rank, input_chunks=0, output_chunks=2,
                             scratch_chunks=0)
            if rank == 0:
                tb = ThreadBlock(tb_id=0, send_peer=None, recv_peer=1,
                                 channel=0)
                tb.instructions.append(IrInstruction(
                    step=0, op=Op.RECV, dst=(Buffer.OUTPUT, 0, 1),
                    recv_seq=0,
                ))
                gpu.threadblocks.append(tb)
            ir.gpus.append(gpu)
        return ir

    def _unmet_dep_ir(self):
        """tb 1 waits on tb 0, which itself waits on a missing recv."""
        ir = self._recv_without_sender_ir()
        tb = ThreadBlock(tb_id=1, send_peer=None, recv_peer=None,
                         channel=0)
        tb.instructions.append(IrInstruction(
            step=0, op=Op.COPY, src=(Buffer.OUTPUT, 0, 1),
            dst=(Buffer.OUTPUT, 1, 1), depends=[(0, 0)],
        ))
        ir.gpus[0].threadblocks.append(tb)
        return ir

    def test_deadlock_names_missing_fifo_seq(self):
        coll = AllReduce(2, chunk_factor=2, in_place=True)
        with pytest.raises(DeadlockError) as excinfo:
            IrExecutor(self._recv_without_sender_ir(), coll).run()
        message = str(excinfo.value)
        assert "rank 0 tb 0 step 0" in message
        assert "missing FIFO seq 0" in message
        assert "1->0 ch0" in message  # the starved connection

    def test_deadlock_names_unmet_dependency(self):
        coll = AllReduce(2, chunk_factor=2, in_place=True)
        with pytest.raises(DeadlockError) as excinfo:
            IrExecutor(self._unmet_dep_ir(), coll).run()
        message = str(excinfo.value)
        assert "unmet dep on tb 0 step 0" in message
        # Structured form carries one entry per blocked thread block.
        blocked = excinfo.value.blocked
        assert {(rank, tb_id) for rank, tb_id, _, _ in blocked} == \
            {(0, 0), (0, 1)}

    def test_unknown_dep_threadblock_is_verification_error(self):
        ir = self._unmet_dep_ir()
        ir.gpus[0].threadblocks[1].instructions[0].depends = [(7, 0)]
        coll = AllReduce(2, chunk_factor=2, in_place=True)
        with pytest.raises(VerificationError) as excinfo:
            IrExecutor(ir, coll).run()
        message = str(excinfo.value)
        assert "rank 0 tb 1 step 0" in message
        assert "thread block 7" in message


class TestSweepOrder:
    def test_any_order_is_bitwise_identical(self, ring4_ir, ring4):
        baseline = IrExecutor(ring4_ir, ring4.collective)
        baseline.run()
        reordered = IrExecutor(ring4_ir, ring4.collective)
        reordered.run(order=lambda sweep, keys: list(reversed(keys)))
        for key, array in baseline.buffers.items():
            np.testing.assert_array_equal(
                array, reordered.buffers[key]
            )

    def test_non_permutation_order_rejected(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        with pytest.raises(VerificationError, match="permutation"):
            executor.run(order=lambda sweep, keys: list(keys)[:-1])


class TestFaultInjection:
    def test_deliver_delay_still_correct(self, ring4_ir, ring4):
        IrExecutor(ring4_ir, ring4.collective).run_and_check(
            faults=FaultPlan(deliver_delay=3)
        )

    def test_dropped_sends_are_retried(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        # Drop the first two messages of the 0->1 connection twice each.
        executor.run_and_check(faults=FaultPlan(
            drop_sends={(0, 1, 0, 0): 2, (0, 1, 0, 1): 2}
        ))

    def test_semaphore_skew_still_correct(self):
        from repro.algorithms import allpairs_allreduce
        from repro.core import compile_program as compile_

        program = allpairs_allreduce(4, protocol="Simple")
        algo = compile_(program, CompilerOptions(optimize=True))
        assert any(instr.depends for gpu in algo.ir.gpus
                   for tb in gpu.threadblocks
                   for instr in tb.instructions)
        IrExecutor(algo.ir, algo.collective).run_and_check(
            faults=FaultPlan(semaphore_skew=2)
        )

    def test_undersized_slot_window_raises_typed_deadlock(
            self, ring4_ir, ring4):
        # The 4-ring needs more than one in-flight message per
        # connection; a 1-slot window must fail as a DeadlockError
        # naming the full slot window, never hang or corrupt data.
        executor = IrExecutor(ring4_ir, ring4.collective)
        with pytest.raises(DeadlockError, match="slot window full"):
            executor.run(faults=FaultPlan(fifo_slots=1))

    def test_audited_slot_window_completes(self, ring4_ir, ring4):
        IrExecutor(ring4_ir, ring4.collective).run_and_check(
            faults=FaultPlan(fifo_slots=2)
        )

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(fifo_slots=0)
        with pytest.raises(ValueError):
            FaultPlan(deliver_delay=-1)
        with pytest.raises(ValueError):
            FaultPlan(semaphore_skew=-2)

    def test_describe_lists_active_faults(self):
        plan = FaultPlan(fifo_slots=2, deliver_delay=1,
                         drop_sends={(0, 1, 0, 3): 2})
        text = plan.describe()
        assert "fifo_slots=2" in text
        assert "deliver_delay=1" in text
        assert "0->1 ch0 seq3 x2" in text
        assert FaultPlan().describe() == "no faults"


class TestEventLogs:
    def test_every_pop_has_a_known_producer(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        executor.run()
        assert executor.pop_log
        assert all(event.producer is not None
                   for event in executor.pop_log)
        # Each pop consumed exactly the message its seq tag names.
        assert all(
            executor.push_log[(event.conn, event.seq)] == event.producer
            for event in executor.pop_log
        )

    def test_access_log_covers_reads_and_writes(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        executor.run()
        kinds = {row[1] for row in executor.access_log}
        assert kinds == {"r", "w"}


class TestFractionSlicing:
    def test_parallel_instances_partition_elements(self):
        program = build_ring_allreduce(4, instances=3)
        ir = compile_program(program, CompilerOptions())
        executor = IrExecutor(ir, program.collective,
                              elements_per_chunk=10)
        executor.run_and_check()  # 10 elements split 3 ways still works

    def test_single_element_chunks(self):
        program = build_ring_allreduce(4)
        ir = compile_program(program, CompilerOptions())
        IrExecutor(ir, program.collective,
                   elements_per_chunk=1).run_and_check()


class TestScratchPrograms:
    def test_scratch_buffer_flow(self):
        coll = AllReduce(2, chunk_factor=1, in_place=True)
        with MSCCLProgram("via_scratch", coll) as program:
            staged = chunk(0, "in", 0).copy(1, "sc", 0)
            total = chunk(1, "in", 0).reduce(staged)
            total.copy(0, "in", 0)
        ir = compile_program(program)
        assert ir.gpus[1].scratch_chunks == 1
        IrExecutor(ir, coll).run_and_check()
