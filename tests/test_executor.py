"""Tests for the numpy data-level executor."""

import numpy as np
import pytest

from repro.core import (
    AllReduce,
    Buffer,
    CompilerOptions,
    DeadlockError,
    MSCCLProgram,
    Op,
    VerificationError,
    chunk,
    compile_program,
)
from repro.core.chunk import InputChunk, ReductionChunk
from repro.core.ir import GpuProgram, IrInstruction, MscclIr, ThreadBlock
from repro.runtime import IrExecutor
from tests.conftest import build_ring_allreduce


class TestRingExecution:
    def test_ring_produces_correct_sums(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        executor.run_and_check()

    def test_parallel_instances_still_correct(self):
        program = build_ring_allreduce(4, instances=3, channels=2)
        ir = compile_program(program, CompilerOptions())
        IrExecutor(ir, program.collective).run_and_check()

    def test_unfused_ir_also_correct(self):
        program = build_ring_allreduce(4)
        ir = compile_program(program, CompilerOptions(instr_fusion=False))
        IrExecutor(ir, program.collective).run_and_check()

    def test_outputs_match_numpy_reference(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        executor.run()
        expected = sum(executor.initial_inputs[r] for r in range(4))
        for rank in range(4):
            actual = executor.buffers[(rank, Buffer.OUTPUT)]
            np.testing.assert_allclose(actual, expected)

    def test_different_seeds_give_different_data(self, ring4_ir, ring4):
        a = IrExecutor(ring4_ir, ring4.collective, seed=0)
        b = IrExecutor(ring4_ir, ring4.collective, seed=1)
        assert not np.allclose(a.initial_inputs[0], b.initial_inputs[0])


class TestExpectedChunk:
    def test_input_chunk_expectation(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        expected = executor.expected_chunk(0, InputChunk(2, 1))
        np.testing.assert_array_equal(
            expected, executor.initial_inputs[2][1]
        )

    def test_reduction_expectation_with_multiplicity(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        doubled = ReductionChunk.of(
            InputChunk(0, 0), InputChunk(0, 0), InputChunk(1, 0)
        )
        expected = executor.expected_chunk(0, doubled)
        np.testing.assert_allclose(
            expected,
            2 * executor.initial_inputs[0][0]
            + executor.initial_inputs[1][0],
        )

    def test_unknown_value_rejected(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        with pytest.raises(VerificationError):
            executor.expected_chunk(0, "garbage")


class TestFailureDetection:
    def _broken_ir(self):
        """Rank 1 expects a message nobody sends."""
        ir = MscclIr(name="broken", collective="allreduce",
                     protocol="Simple", num_ranks=2, in_place=True)
        for rank in range(2):
            gpu = GpuProgram(rank=rank, input_chunks=0, output_chunks=2,
                             scratch_chunks=0)
            tb = ThreadBlock(tb_id=0, send_peer=None, recv_peer=1 - rank,
                             channel=0)
            tb.instructions.append(IrInstruction(
                step=0, op=Op.RECV, dst=(Buffer.OUTPUT, 0, 1),
            ))
            gpu.threadblocks.append(tb)
            ir.gpus.append(gpu)
        return ir

    def test_stuck_execution_raises_deadlock(self):
        coll = AllReduce(2, chunk_factor=2, in_place=True)
        with pytest.raises(DeadlockError, match="stuck"):
            IrExecutor(self._broken_ir(), coll).run()

    def test_wrong_data_detected(self, ring4_ir, ring4):
        executor = IrExecutor(ring4_ir, ring4.collective)
        executor.run()
        executor.buffers[(2, Buffer.OUTPUT)][1, :] = 0.0
        with pytest.raises(VerificationError, match="data-level"):
            executor.check()

    def test_nan_poison_detected(self, ring4_ir, ring4):
        """Output buffers start as NaN; an unwritten constrained slot
        must fail the check even against an accidental zero sum."""
        executor = IrExecutor(ring4_ir, ring4.collective)
        executor.run()
        executor.buffers[(0, Buffer.OUTPUT)][0, 0] = np.nan
        with pytest.raises(VerificationError):
            executor.check()


class TestFractionSlicing:
    def test_parallel_instances_partition_elements(self):
        program = build_ring_allreduce(4, instances=3)
        ir = compile_program(program, CompilerOptions())
        executor = IrExecutor(ir, program.collective,
                              elements_per_chunk=10)
        executor.run_and_check()  # 10 elements split 3 ways still works

    def test_single_element_chunks(self):
        program = build_ring_allreduce(4)
        ir = compile_program(program, CompilerOptions())
        IrExecutor(ir, program.collective,
                   elements_per_chunk=1).run_and_check()


class TestScratchPrograms:
    def test_scratch_buffer_flow(self):
        coll = AllReduce(2, chunk_factor=1, in_place=True)
        with MSCCLProgram("via_scratch", coll) as program:
            staged = chunk(0, "in", 0).copy(1, "sc", 0)
            total = chunk(1, "in", 0).reduce(staged)
            total.copy(0, "in", 0)
        ir = compile_program(program)
        assert ir.gpus[1].scratch_chunks == 1
        IrExecutor(ir, coll).run_and_check()
