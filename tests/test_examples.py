"""Smoke tests: the example scripts run and tell their stories.

The quick examples run on every test invocation; the slower sweeps run
only when REPRO_EXAMPLES=1 (they re-simulate dozens of sizes).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"
RUN_SLOW = bool(os.environ.get("REPRO_EXAMPLES"))


def run_example(name: str, timeout: int = 600) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "numeric check" in out
    assert "speedup" in out


def test_inspect_compilation():
    out = run_example("inspect_compilation.py")
    assert "Chunk DAG" in out
    assert "After peephole fusion" in out
    assert "<algo" in out or "MSCCL-IR" in out


@pytest.mark.skipif(not RUN_SLOW, reason="set REPRO_EXAMPLES=1")
@pytest.mark.parametrize("name", [
    "hierarchical_allreduce.py",
    "custom_collective.py",
    "moe_training.py",
    "autotune_registry.py",
    "synthesize_for_topology.py",
    "profile_and_faults.py",
])
def test_slow_examples(name):
    run_example(name)
