"""Tests for DOT exports and IR descriptions."""

from repro.core import compile_program, fuse, lower
from repro.core.visualize import (
    chunk_dag_dot,
    describe_ir,
    instruction_dag_dot,
    ir_dot,
)
from tests.conftest import build_ring_allreduce


def _balanced(text: str) -> bool:
    depth = 0
    for char in text:
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


class TestChunkDagDot:
    def test_contains_all_operations(self, ring4):
        dot = chunk_dag_dot(ring4.dag)
        assert dot.startswith("digraph")
        assert _balanced(dot)
        for op in ring4.dag.operations():
            assert f"op{op.op_id}" in dot

    def test_false_deps_dashed(self, ring4):
        dot = chunk_dag_dot(ring4.dag)
        assert "style=dashed" in dot

    def test_start_nodes_dotted(self, ring4):
        dot = chunk_dag_dot(ring4.dag)
        assert "style=dotted" in dot


class TestInstructionDagDot:
    def test_comm_edges_colored(self, ring4):
        idag = fuse(lower(ring4.dag))
        dot = instruction_dag_dot(idag)
        assert _balanced(dot)
        assert "color=blue" in dot
        assert dot.count("label=") >= len(idag)


class TestIrDot:
    def test_clusters_per_gpu_and_tb(self, ring4_ir):
        dot = ir_dot(ring4_ir)
        assert _balanced(dot)
        for gpu in ring4_ir.gpus:
            assert f"cluster_gpu{gpu.rank}" in dot

    def test_cross_tb_deps_rendered(self):
        program = build_ring_allreduce(6, channels=2)
        ir = compile_program(program)
        dot = ir_dot(ir)
        has_deps = any(
            instr.depends
            for gpu in ir.gpus for tb in gpu.threadblocks
            for instr in tb.instructions
        )
        assert ("color=red" in dot) == has_deps


class TestDescribeIr:
    def test_mentions_key_facts(self, ring4_ir):
        text = describe_ir(ring4_ir)
        assert "allreduce" in text
        assert "ranks: 4" in text
        assert "instructions: 28" in text
        assert "channels: 1" in text
