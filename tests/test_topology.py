"""Tests for topology models, presets, and bandwidth resources."""

import pytest

from repro.core.errors import RuntimeConfigError
from repro.topology import (
    DGX2_V100,
    NDV4_A100,
    MachineSpec,
    Resource,
    Topology,
    dgx1,
    dgx2,
    generic,
    ndv4,
)


class TestRankGeometry:
    def test_rank_node_mapping(self):
        topo = ndv4(2)
        assert topo.num_ranks == 16
        assert topo.node_of(0) == 0
        assert topo.node_of(8) == 1
        assert topo.local_index(11) == 3
        assert topo.rank_of(1, 3) == 11

    def test_same_node(self):
        topo = ndv4(2)
        assert topo.same_node(0, 7)
        assert not topo.same_node(7, 8)

    def test_out_of_range_rank(self):
        topo = ndv4(1)
        with pytest.raises(RuntimeConfigError):
            topo.node_of(8)

    def test_zero_nodes_rejected(self):
        with pytest.raises(RuntimeConfigError):
            Topology(NDV4_A100, 0)


class TestPresets:
    def test_ndv4_shape(self):
        topo = ndv4(1)
        assert topo.machine.gpus_per_node == 8
        assert topo.machine.nics_per_node == 8  # one NIC per GPU

    def test_dgx2_shares_nics(self):
        topo = dgx2(1)
        assert topo.machine.gpus_per_node == 16
        assert topo.machine.nics_per_node == 8  # one per GPU pair

    def test_dgx1(self):
        assert dgx1(1).num_ranks == 8

    def test_generic_parameters(self):
        topo = generic(4, 2, nvlink_bandwidth=123.0)
        assert topo.num_ranks == 8
        assert topo.machine.nvlink_bandwidth == 123.0


class TestPaths:
    def test_intra_node_path_uses_nvlink(self):
        topo = ndv4(2)
        resources, alpha, cross = topo.path(0, 1)
        assert not cross
        assert alpha == topo.machine.nvlink_alpha
        names = [r.name for r in resources]
        assert names == ["nvlink_out[0]", "nvlink_in[1]"]

    def test_cross_node_path_uses_nics(self):
        topo = ndv4(2)
        resources, alpha, cross = topo.path(0, 8)
        assert cross
        assert alpha == topo.machine.ib_alpha
        names = [r.name for r in resources]
        assert names == ["nic_out[0,0]", "nic_in[1,0]"]

    def test_nics_are_full_duplex(self):
        topo = ndv4(2)
        assert topo.nic_out(0) is not topo.nic_in(0)

    def test_shared_nic_for_gpu_pairs(self):
        topo = dgx2(2)
        assert topo.nic_out(0) is topo.nic_out(1)
        assert topo.nic_out(0) is not topo.nic_out(2)

    def test_self_path_is_free(self):
        topo = ndv4(1)
        resources, alpha, cross = topo.path(3, 3)
        assert resources == [] and alpha == 0 and not cross

    def test_link_summaries(self):
        topo = ndv4(2)
        assert topo.link_bandwidth(0, 1) == topo.machine.nvlink_bandwidth
        assert topo.link_bandwidth(0, 8) == topo.machine.ib_bandwidth
        assert topo.link_alpha(0, 0) == 0


class TestResource:
    def test_fcfs_serialization(self):
        res = Resource("r", bandwidth_gbps=1.0)  # 1000 bytes/us
        first = res.reserve(0.0, 1000)
        second = res.reserve(0.0, 1000)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_idle_gap_respected(self):
        res = Resource("r", bandwidth_gbps=1.0)
        res.reserve(0.0, 1000)
        late = res.reserve(10.0, 1000)
        assert late == pytest.approx(11.0)

    def test_efficiency_scales_duration(self):
        res = Resource("r", bandwidth_gbps=1.0)
        finish = res.reserve(0.0, 1000, efficiency=0.5)
        assert finish == pytest.approx(2.0)

    def test_busy_time_accumulates(self):
        res = Resource("r", bandwidth_gbps=1.0)
        res.reserve(0.0, 500)
        res.reserve(100.0, 500)
        assert res.busy_time == pytest.approx(1.0)

    def test_reset(self):
        topo = ndv4(1)
        topo.nvlink_out(0).reserve(0.0, 1e6)
        topo.reset_resources()
        assert topo.nvlink_out(0).next_free == 0.0

    def test_resources_are_cached(self):
        topo = ndv4(1)
        assert topo.nvlink_out(0) is topo.nvlink_out(0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(RuntimeConfigError):
            Resource("bad", 0.0)
