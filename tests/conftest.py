"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import tempfile

import pytest

# Isolate the persistent compile-cache tier: tests must never read or
# pollute the developer's ~/.cache/repro. The default cache is created
# lazily (first default_compile_cache() call), so setting the env var
# at conftest import is early enough. setdefault keeps an explicit
# REPRO_CACHE_DIR (e.g. a CI warm-cache job) in charge.
os.environ.setdefault(
    "REPRO_CACHE_DIR", tempfile.mkdtemp(prefix="repro-test-cache-")
)

from repro.core import (
    AllReduce,
    CompilerOptions,
    MSCCLProgram,
    chunk,
    compile_program,
)


def build_ring_allreduce(num_ranks: int, *, instances: int = 1,
                         protocol: str = "Simple",
                         channels: int = 1) -> MSCCLProgram:
    """A minimal in-place Ring AllReduce used across many tests."""
    collective = AllReduce(num_ranks, chunk_factor=num_ranks, in_place=True)
    with MSCCLProgram("test_ring", collective, protocol=protocol,
                      instances=instances) as program:
        for index in range(num_ranks):
            ch = index % channels
            c = chunk((index + 1) % num_ranks, "in", index)
            for step in range(1, num_ranks):
                nxt = (index + 1 + step) % num_ranks
                c = chunk(nxt, "in", index).reduce(c, ch=ch)
            for step in range(num_ranks - 1):
                nxt = (index + 1 + step) % num_ranks
                c = c.copy(nxt, "in", index, ch=ch)
    return program


@pytest.fixture
def ring4():
    """A traced 4-rank ring AllReduce program."""
    return build_ring_allreduce(4)


@pytest.fixture
def ring4_ir(ring4):
    """The compiled IR of the 4-rank ring."""
    return compile_program(ring4, CompilerOptions()).ir
