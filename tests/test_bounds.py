"""Tests for the analytic alpha-beta lower bounds."""

import pytest

from repro.algorithms import (
    ring_allgather,
    ring_allreduce,
    twostep_alltoall,
)
from repro.analysis import (
    allgather_bound,
    allreduce_bound,
    alltoall_bound,
    bound_for,
    efficiency,
    ir_timer,
)
from repro.core import CompilerOptions, compile_program
from repro.topology import ndv4

KiB = 1024
MiB = 1024 * 1024


class TestBoundArithmetic:
    def test_allreduce_bound_components(self):
        topology = ndv4(1)
        bound = allreduce_bound(topology, 8 * MiB)
        # 2 * (R-1)/R of the buffer over the best per-rank port.
        assert bound.wire_bytes_per_rank == pytest.approx(
            2 * 8 * MiB * 7 / 8
        )
        assert bound.latency_us == pytest.approx(
            3 * topology.machine.nvlink_alpha
        )
        assert bound.time_us() == pytest.approx(
            bound.latency_us + bound.bandwidth_us
        )

    def test_multi_node_uses_nic_cut(self):
        """With 2 nodes the NIC cut is tighter than NVLink injection."""
        single = allreduce_bound(ndv4(1), 64 * MiB)
        double = allreduce_bound(ndv4(2), 64 * MiB)
        assert double.time_us() > single.time_us()
        assert double.bandwidth_gbps == ndv4(2).machine.ib_bandwidth

    def test_allgather_is_half_of_allreduce_wire(self):
        topology = ndv4(1)
        ar = allreduce_bound(topology, MiB)
        ag = allgather_bound(topology, MiB)
        assert ag.wire_bytes_per_rank == pytest.approx(
            ar.wire_bytes_per_rank / 2
        )

    def test_alltoall_single_latency_step(self):
        bound = alltoall_bound(ndv4(1), MiB)
        assert bound.latency_us == ndv4(1).machine.nvlink_alpha

    def test_dispatch_by_name(self):
        assert bound_for("allreduce", ndv4(1), MiB).time_us() > 0
        with pytest.raises(ValueError, match="no analytic bound"):
            bound_for("alltonext", ndv4(1), MiB)

    def test_efficiency_clamps_to_one(self):
        bound = allreduce_bound(ndv4(1), MiB)
        assert efficiency(bound.time_us() / 2, bound) == 1.0
        assert 0 < efficiency(bound.time_us() * 4, bound) < 0.3


class TestSimulatorRespectsBounds:
    """No simulated algorithm may beat the analytic floor."""

    @pytest.mark.parametrize("size", [4 * KiB, 256 * KiB, 16 * MiB])
    @pytest.mark.parametrize("builder,bound_fn", [
        (lambda: ring_allreduce(8, channels=4, instances=8,
                                protocol="Simple"), allreduce_bound),
        (lambda: ring_allgather(8, channels=4, instances=8),
         allgather_bound),
    ])
    def test_single_node(self, builder, bound_fn, size):
        topology = ndv4(1)
        program = builder()
        ir = compile_program(
            program, CompilerOptions(max_threadblocks=108)
        )
        timer = ir_timer(ir, topology, program.collective)
        measured = timer(size)
        floor = bound_fn(ndv4(1), size).time_us()
        assert measured >= floor * 0.999

    @pytest.mark.parametrize("size", [MiB, 64 * MiB])
    def test_multi_node_alltoall(self, size):
        topology = ndv4(2)
        program = twostep_alltoall(2, 8, protocol="Simple")
        ir = compile_program(
            program, CompilerOptions(max_threadblocks=108)
        )
        timer = ir_timer(ir, topology, program.collective)
        floor = alltoall_bound(ndv4(2), size).time_us()
        assert timer(size) >= floor * 0.999

    def test_good_algorithms_get_reasonably_close(self):
        """The tuned ring should be within an order of magnitude of the
        floor at bandwidth-bound sizes (sanity on the bound itself)."""
        topology = ndv4(1)
        program = ring_allreduce(8, channels=1, instances=24,
                                 protocol="Simple")
        ir = compile_program(
            program, CompilerOptions(max_threadblocks=108)
        )
        timer = ir_timer(ir, topology, program.collective)
        size = 64 * MiB
        bound = allreduce_bound(ndv4(1), size)
        assert efficiency(timer(size), bound) > 0.3
