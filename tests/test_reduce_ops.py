"""Tests for non-sum reduction operators (MPI_MAX / MIN / PROD)."""

import numpy as np
import pytest

from repro.core import (
    AllReduce,
    Buffer,
    CompilerOptions,
    MSCCLProgram,
    ProgramError,
    Reduce,
    ReduceScatter,
    chunk,
    compile_program,
)
from repro.runtime import IrExecutor


def ring_allreduce_with_op(num_ranks, reduce_op):
    collective = AllReduce(num_ranks, chunk_factor=num_ranks,
                           in_place=True, reduce_op=reduce_op)
    with MSCCLProgram("ring_op", collective) as program:
        for index in range(num_ranks):
            c = chunk((index + 1) % num_ranks, "in", index)
            for step in range(1, num_ranks):
                nxt = (index + 1 + step) % num_ranks
                c = chunk(nxt, "in", index).reduce(c)
            for step in range(num_ranks - 1):
                nxt = (index + 1 + step) % num_ranks
                c = c.copy(nxt, "in", index)
    return program


@pytest.mark.parametrize("reduce_op", ["sum", "max", "min", "prod"])
def test_ring_allreduce_with_every_operator(reduce_op):
    program = ring_allreduce_with_op(4, reduce_op)
    ir = compile_program(program, CompilerOptions())
    IrExecutor(ir, program.collective).run_and_check()


@pytest.mark.parametrize("reduce_op,reference", [
    ("max", np.maximum), ("min", np.minimum),
])
def test_result_matches_numpy_reference(reduce_op, reference):
    program = ring_allreduce_with_op(4, reduce_op)
    ir = compile_program(program, CompilerOptions())
    executor = IrExecutor(ir, program.collective)
    executor.run()
    expected = executor.initial_inputs[0]
    for rank in range(1, 4):
        expected = reference(expected, executor.initial_inputs[rank])
    for rank in range(4):
        np.testing.assert_allclose(
            executor.buffers[(rank, Buffer.OUTPUT)], expected
        )


def test_prod_respects_multiplicity():
    """Reducing the same chunk twice squares it under prod (and the
    executor's expectation agrees)."""
    from repro.core import Custom

    collective = Custom(
        2, postcondition_fn=lambda rank: {},
        input_chunks_fn=lambda rank: 1, output_chunks_fn=lambda rank: 1,
        reduce_op="prod", name="square",
    )
    with MSCCLProgram("square", collective) as program:
        staged = chunk(0, "in", 0).copy(1, "sc", 0)
        acc = chunk(1, "in", 0).copy(1, "out", 0)
        acc = acc.reduce(chunk(1, "sc", 0))
        acc.reduce(chunk(1, "sc", 0))  # same contribution again
    ir = compile_program(program, CompilerOptions(verify=False))
    executor = IrExecutor(ir, collective)
    executor.run()
    value = program.output_state(1)[0]
    expected = executor.expected_chunk(1, value)
    np.testing.assert_allclose(
        executor.buffers[(1, Buffer.OUTPUT)][0], expected
    )
    manual = (executor.initial_inputs[1][0]
              * executor.initial_inputs[0][0] ** 2)
    np.testing.assert_allclose(expected, manual)


def test_max_is_idempotent_under_multiplicity():
    from repro.core.chunk import InputChunk, ReductionChunk

    collective = AllReduce(2, chunk_factor=1, reduce_op="max")
    program_ir = None  # only the executor's expectation matters here
    from repro.core import MSCCLProgram as P

    with P("t", collective) as program:
        chunk(0, "in", 0).copy(0, "out", 0)
        chunk(1, "in", 0).copy(1, "out", 0)
    ir = compile_program(program, CompilerOptions(verify=False))
    executor = IrExecutor(ir, collective)
    doubled = ReductionChunk.of(
        InputChunk(0, 0), InputChunk(0, 0), InputChunk(1, 0)
    )
    once = ReductionChunk.of(InputChunk(0, 0), InputChunk(1, 0))
    np.testing.assert_allclose(
        executor.expected_chunk(0, doubled),
        executor.expected_chunk(0, once),
    )


def test_rooted_reduce_with_max():
    collective = Reduce(3, chunk_factor=1, root=1, reduce_op="max")
    with MSCCLProgram("tree_max", collective) as program:
        acc = chunk(1, "in", 0)
        acc = acc.reduce(chunk(0, "in", 0))
        acc = acc.reduce(chunk(2, "in", 0))
        acc.copy(1, "out", 0)
    ir = compile_program(program)
    IrExecutor(ir, collective).run_and_check()


def test_unknown_operator_rejected():
    with pytest.raises(ProgramError, match="reduce_op"):
        AllReduce(4, reduce_op="xor")
