"""Differential parity: the batched event loop vs the reference loop.

The batched engine's contract is *bitwise identity*: any IR simulated
by both engines must produce the same ``SimResult`` fields, the same
span stream, and the same happens-before projection. These tests
drive the contract over generated IRs from three families — ring
allreduce, double binary tree allreduce, and builder-authored
alltoallv with variable counts — crossed with protocols and config
variants, plus the escape hatches (``REPRO_SIM_REFERENCE``,
``REPRO_SIM_INTERP``) the triage path relies on.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.build import IrBuilder
from repro.core import AllToAllV, compile_program
from repro.core.errors import SimulationError
from repro.algorithms import double_binary_tree_allreduce, ring_allreduce
from repro.runtime.protocols import LL, LL128, SIMPLE
from repro.runtime.simulator import (IrSimulator, SimConfig,
                                     happens_before_pairs,
                                     sim_parity_diffs)
from repro.topology import generic, ndv4

KiB = 1024


def _alltoallv_ir(counts):
    coll = AllToAllV(counts)
    builder = IrBuilder("alltoallv_parity", coll)
    for rank in range(coll.num_ranks):
        gpu = builder.gpu(rank)
        local = gpu.threadblock()
        local.copy("input", coll.send_offset(rank, rank),
                   "output", coll.recv_offset(rank, rank),
                   counts[rank][rank])
        for peer in range(coll.num_ranks):
            if peer == rank:
                continue
            tb = gpu.threadblock(send=peer, recv=peer)
            if counts[rank][peer]:
                tb.send("input", coll.send_offset(rank, peer),
                        counts[rank][peer])
            if counts[peer][rank]:
                tb.recv("output", coll.recv_offset(peer, rank),
                        counts[peer][rank])
    return builder.check()


_IR_CACHE = {}


def _family_ir(family, size, seed):
    key = (family, size, seed)
    ir = _IR_CACHE.get(key)
    if ir is not None:
        return ir
    if family == "ring":
        ir = compile_program(
            ring_allreduce(size, channels=1 + seed % 2)).ir
    elif family == "tree":
        ir = compile_program(double_binary_tree_allreduce(size)).ir
    else:  # alltoallv with seed-skewed counts
        n = 4
        counts = [[1 + (seed + i * n + j) % 3 for j in range(n)]
                  for i in range(n)]
        ir = _alltoallv_ir(counts)
    _IR_CACHE[key] = ir
    return ir


def _assert_parity(ir, topo, proto, chunk_bytes, **cfg_kwargs):
    """Both engines, traced and untraced, must be indistinguishable."""
    def run(engine, traced):
        cfg = SimConfig(engine=engine, collect_trace=traced,
                        **cfg_kwargs)
        return IrSimulator(ir, topo, proto, cfg).run(chunk_bytes)

    fast_b, fast_r = run("batched", False), run("reference", False)
    diffs = sim_parity_diffs(fast_b, fast_r)
    assert not diffs, diffs
    traced_b, traced_r = run("batched", True), run("reference", True)
    diffs = sim_parity_diffs(traced_b, traced_r)
    assert not diffs, diffs
    assert traced_b.time_us == fast_b.time_us
    assert (happens_before_pairs(traced_b.graph)
            == happens_before_pairs(traced_r.graph))


@settings(max_examples=12, deadline=None)
@given(
    family=st.sampled_from(["ring", "tree", "alltoallv"]),
    size=st.sampled_from([4, 8]),
    seed=st.integers(min_value=0, max_value=5),
    proto=st.sampled_from([SIMPLE, LL, LL128]),
    chunk_kib=st.sampled_from([16, 256, 4096]),
)
def test_engines_bitwise_identical(family, size, seed, proto, chunk_kib):
    if family == "alltoallv":
        size = 4  # counts matrix is fixed at 4 ranks
    ir = _family_ir(family, size, seed)
    topo = generic(ir.num_ranks)
    _assert_parity(ir, topo, proto, float(chunk_kib * KiB))


class TestConfigVariants:
    """Parity must survive every SimConfig knob the fast path reads."""

    def _ir(self):
        return _family_ir("ring", 8, 0)

    def test_direct_copy(self):
        ir = self._ir()
        _assert_parity(ir, generic(8), SIMPLE, 256.0 * KiB,
                       direct_copy=True)

    def test_no_launch_overhead(self):
        ir = self._ir()
        _assert_parity(ir, generic(8), SIMPLE, 256.0 * KiB,
                       include_launch=False)

    def test_degradations(self):
        ir = _family_ir("ring", 16, 1)
        _assert_parity(ir, ndv4(2), SIMPLE, 256.0 * KiB,
                       degradations={"nic_out": 0.25})

    def test_multi_node(self):
        ir = _family_ir("tree", 16, 0)
        _assert_parity(ir, ndv4(2), LL, 64.0 * KiB)


class TestEscapeHatches:
    def test_reference_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_REFERENCE", "1")
        sim = IrSimulator(self_ir := _family_ir("ring", 4, 0),
                          generic(self_ir.num_ranks))
        assert sim._resolve_engine() == "reference"
        monkeypatch.setenv("REPRO_SIM_REFERENCE", "0")
        assert sim._resolve_engine() == "batched"

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_REFERENCE", "1")
        ir = _family_ir("ring", 4, 0)
        sim = IrSimulator(ir, generic(ir.num_ranks), None,
                          SimConfig(engine="batched"))
        assert sim._resolve_engine() == "batched"

    def test_unknown_engine_raises(self):
        ir = _family_ir("ring", 4, 0)
        sim = IrSimulator(ir, generic(ir.num_ranks), None,
                          SimConfig(engine="warp"))
        with pytest.raises(SimulationError, match="warp"):
            sim.run(chunk_bytes=64.0 * KiB)

    def test_interpreter_fallback_matches_codegen(self, monkeypatch):
        # REPRO_SIM_INTERP=1 turns off source specialization; the
        # interpreter fast path must stay bitwise-identical too.
        ir = _family_ir("alltoallv", 4, 2)
        topo = generic(ir.num_ranks)
        specialized = IrSimulator(ir, topo).run(chunk_bytes=512.0 * KiB)
        monkeypatch.setenv("REPRO_SIM_INTERP", "1")
        interpreted = IrSimulator(ir, topo).run(chunk_bytes=512.0 * KiB)
        diffs = sim_parity_diffs(interpreted, specialized,
                                 labels=("interp", "codegen"))
        assert not diffs, diffs


class TestTileCountBasis:
    """Regression: tiles must be sized from span-count bytes.

    ``_tile_count`` used to size tiles from ``chunk_bytes * frac``
    alone while ``_instr_bytes`` scales payloads by span counts, so an
    alltoallv instruction with count > 1 under-tiled and mis-amortized
    alpha.
    """

    def test_variable_counts_tile_against_moved_bytes(self):
        skew = [[1, 2, 1, 3], [2, 1, 4, 1], [1, 1, 1, 1], [3, 2, 1, 2]]
        ones = [[1] * 4 for _ in range(4)]
        chunk = float(SIMPLE.slot_bytes)  # one slot per unit count
        skew_res = IrSimulator(_alltoallv_ir(skew), generic(4)).run(chunk)
        ones_res = IrSimulator(_alltoallv_ir(ones), generic(4)).run(chunk)
        # Uniform counts fill exactly one slot; the skewed matrix's
        # largest instruction moves 4 chunks and must pipeline 4 tiles.
        assert ones_res.tiles == 1
        assert skew_res.tiles == 4

    def test_tile_count_matches_instr_bytes_basis(self):
        skew = [[1, 2, 1, 3], [2, 1, 4, 1], [1, 1, 1, 1], [3, 2, 1, 2]]
        ir = _alltoallv_ir(skew)
        sim = IrSimulator(ir, generic(4))
        chunk = 96.0 * KiB
        largest = max(
            chunk * float(instr.frac_hi - instr.frac_lo)
            * max((span[2] for span in (instr.src, instr.dst)
                   if span is not None), default=0)
            for gpu in ir.gpus for tb in gpu.threadblocks
            for instr in tb.instructions
        )
        expected = min(sim.config.max_tiles,
                       max(1, math.ceil(largest / SIMPLE.slot_bytes)))
        assert sim.run(chunk).tiles == expected

    def test_parity_on_variable_counts(self):
        skew = [[1, 2, 1, 3], [2, 1, 4, 1], [1, 1, 1, 1], [3, 2, 1, 2]]
        _assert_parity(_alltoallv_ir(skew), generic(4), SIMPLE,
                       512.0 * KiB)
