"""Tests for the observability layer: tracer, exporters, metrics, and
the CompiledAlgorithm API it rides behind."""

import json

import pytest

from repro.core import CompilerOptions, compile_program
from repro.core.compiler import CompiledAlgorithm
from repro.core.errors import RuntimeConfigError
from repro.observe import (
    Span,
    Tracer,
    chrome_trace,
    flame_text,
    maybe_span,
    metrics_dict,
    metrics_text,
    write_chrome_trace,
)
from repro.runtime import (
    AlgorithmRegistry,
    IrSimulator,
    SimConfig,
    critical_path,
    profile_threadblocks,
    slowest_threadblocks,
    timeline,
    utilization_report,
)
from repro.topology import generic, ndv4
from tests.conftest import build_ring_allreduce

KiB = 1024
MiB = 1024 * 1024


class TestTracer:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        assert tracer.roots == [outer]
        assert [c.name for c in outer.children] == ["inner"]

    def test_span_args_attach_results(self):
        tracer = Tracer()
        with tracer.span("pass", nodes_in=10) as span:
            span.args["nodes_out"] = 7
        assert span.args == {"nodes_in": 10, "nodes_out": 7}

    def test_emit_records_explicit_times(self):
        tracer = Tracer()
        span = tracer.emit("send", 3.0, 8.0, track=("rank 0", "tb 1"),
                           track_ids=(0, 1), step=2)
        assert span.duration_us == pytest.approx(5.0)
        assert tracer.roots == [span]

    def test_counters_accumulate_and_sample(self):
        tracer = Tracer()
        tracer.add_counter("stall_us", 2.0, t_us=1.0)
        total = tracer.add_counter("stall_us", 3.0, t_us=4.0)
        assert total == pytest.approx(5.0)
        assert tracer.counters["stall_us"] == pytest.approx(5.0)
        assert [s.value for s in tracer.counter_samples] == [2.0, 5.0]

    def test_summary_aggregates_by_name(self):
        tracer = Tracer()
        tracer.emit("op", 0.0, 2.0)
        tracer.emit("op", 2.0, 5.0)
        row = tracer.summary()["op"]
        assert row["count"] == 2
        assert row["total_us"] == pytest.approx(5.0)

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        root = tracer.roots[0]
        assert root.find("b").name == "b"
        assert [s.name for s in tracer.walk()] == ["a", "b"]

    def test_maybe_span_tolerates_none(self):
        with maybe_span(None, "x") as span:
            assert span is None
        tracer = Tracer()
        with maybe_span(tracer, "x") as span:
            assert isinstance(span, Span)


class TestCompiledAlgorithm:
    def _compile(self, **options):
        program = build_ring_allreduce(4)
        return compile_program(program, CompilerOptions(**options))

    def test_compile_returns_compiled_algorithm(self):
        algo = self._compile()
        assert isinstance(algo, CompiledAlgorithm)
        assert algo.ir.name == "test_ring"
        assert algo.sizing_chunks() == algo.collective.sizing_chunks()

    def test_delegates_to_ir(self):
        algo = self._compile()
        assert algo.instruction_count() == algo.ir.instruction_count()
        assert algo.num_ranks == 4
        json.loads(algo.to_json())  # delegated method works end to end

    def test_no_dunder_delegation(self):
        # Pickle/copy probe __reduce__ etc.; delegating those to the IR
        # would corrupt the wrapper, so dunders must not resolve.
        algo = self._compile()
        with pytest.raises(AttributeError):
            algo.__reduce_ex__ = None  # __slots__ rejects unknown names
        with pytest.raises(AttributeError):
            getattr(algo, "__wrapped__")

    def test_compile_summary_has_every_pass(self):
        algo = self._compile()
        summary = algo.compile_summary
        assert list(summary) == ["verify", "lower", "fuse", "schedule",
                                 "audit"]
        for row in summary.values():
            assert row["duration_us"] >= 0.0
        assert summary["lower"]["chunk_ops_in"] > 0
        assert summary["fuse"]["nodes_out"] <= summary["fuse"]["nodes_in"]
        assert (summary["schedule"]["instructions_out"]
                == algo.ir.instruction_count())

    def test_disabled_passes_drop_out_of_summary(self):
        algo = self._compile(verify=False, instr_fusion=False,
                             audit=False)
        assert list(algo.compile_summary) == ["lower", "schedule"]

    def test_external_tracer_receives_compile_spans(self):
        program = build_ring_allreduce(4)
        tracer = Tracer()
        algo = compile_program(program, CompilerOptions(trace=tracer))
        assert algo.tracer is tracer
        assert tracer.roots[0].name == "compile"
        assert tracer.roots[0] is algo.compile_span


class TestRegisterApi:
    def test_registry_sizing_set_at_construction(self):
        program = build_ring_allreduce(4)
        algo = compile_program(program, CompilerOptions())
        registry = AlgorithmRegistry("allreduce")
        registry.register(algo, label="x")
        entry = registry.algorithms[0]
        assert entry.sizing_chunks == algo.sizing_chunks()

    def test_size_args_are_keyword_only(self):
        program = build_ring_allreduce(4)
        algo = compile_program(program, CompilerOptions())
        registry = AlgorithmRegistry("allreduce")
        with pytest.raises(TypeError):
            registry.register(algo, 0, MiB)

    def test_bare_ir_needs_explicit_sizing(self):
        program = build_ring_allreduce(4)
        algo = compile_program(program, CompilerOptions())
        registry = AlgorithmRegistry("allreduce")
        registry.register(algo.ir, sizing_chunks=7)
        assert registry.algorithms[0].sizing_chunks == 7

    def test_wrong_collective_still_rejected(self):
        program = build_ring_allreduce(4)
        algo = compile_program(program, CompilerOptions())
        with pytest.raises(RuntimeConfigError):
            AlgorithmRegistry("alltoall").register(algo)


class TestSimulatorTracing:
    def _run(self, ranks=8, tracer=None, **config):
        program = build_ring_allreduce(ranks)
        algo = compile_program(program, CompilerOptions())
        if tracer is not None:
            config["tracer"] = tracer
        result = IrSimulator(
            algo.ir, generic(ranks, 1), config=SimConfig(**config)
        ).run(chunk_bytes=MiB / algo.sizing_chunks())
        return algo, result

    def test_span_per_executed_instruction(self):
        algo, result = self._run(tracer=Tracer())
        executed = algo.ir.instruction_count() * result.tiles
        assert len(result.spans) == executed

    def test_instruction_spans_carry_coordinates(self):
        _, result = self._run(tracer=Tracer())
        for span in result.spans:
            assert span.cat == "instr"
            assert span.track_ids == (span.args["rank"], span.args["tb"])
            for key in ("rank", "tb", "channel", "step", "tile",
                        "nbytes"):
                assert key in span.args
            assert span.end_us >= span.start_us

    def test_root_sim_span_matches_elapsed(self):
        tracer = Tracer()
        _, result = self._run(tracer=tracer)
        root = next(s for s in tracer.roots if s.name == "simulate")
        assert root.duration_us == pytest.approx(result.time_us)

    def test_collect_trace_without_tracer_still_works(self):
        _, result = self._run(collect_trace=True)
        assert result.spans
        assert result.tracer is not None

    def test_trace_property_matches_spans(self):
        _, result = self._run(tracer=Tracer())
        rows = result.trace
        assert len(rows) == len(result.spans)
        for row, span in zip(rows, result.spans):
            assert row.op == span.name
            assert row.rank == span.args["rank"]
            assert row.start_us == span.start_us

    def test_no_tracer_no_spans(self):
        _, result = self._run()
        assert result.spans is None
        assert result.trace is None

    def test_wait_counters_sampled_from_event_loop(self):
        # The plain conftest ring never blocks; the multi-channel LL
        # ring stalls its receivers on FIFO arrivals.
        from repro.algorithms import ring_allreduce

        program = ring_allreduce(8, channels=4, instances=8,
                                 protocol="LL")
        tracer = Tracer()
        algo = compile_program(
            program, CompilerOptions(max_threadblocks=108)
        )
        IrSimulator(
            algo.ir, ndv4(1), config=SimConfig(tracer=tracer)
        ).run(chunk_bytes=MiB / algo.sizing_chunks())
        waits = [n for n in tracer.counters if n.startswith("wait.")]
        assert "wait.fifo_arrival_us" in waits
        assert all(tracer.counters[n] >= 0 for n in waits)

    def test_link_busy_counters_recorded(self):
        tracer = Tracer()
        _, result = self._run(tracer=tracer)
        links = {n: v for n, v in tracer.counters.items()
                 if n.startswith("link.")}
        assert links
        for name, value in links.items():
            resource = name[len("link."):-len(".busy_us")]
            assert value == pytest.approx(
                result.resource_busy_us[resource]
            )


class TestChromeTrace:
    def _traced(self):
        program = build_ring_allreduce(4)
        tracer = Tracer()
        algo = compile_program(program, CompilerOptions(trace=tracer))
        result = IrSimulator(
            algo.ir, generic(4, 1), config=SimConfig(tracer=tracer)
        ).run(chunk_bytes=MiB / algo.sizing_chunks())
        return tracer, algo, result

    def test_valid_json_round_trip(self, tmp_path):
        tracer, _, _ = self._traced()
        path = write_chrome_trace(tmp_path / "t.json", tracer)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_complete_event_per_instruction(self):
        tracer, algo, result = self._traced()
        doc = chrome_trace(tracer)
        instr_events = [e for e in doc["traceEvents"]
                        if e["ph"] == "X" and e["cat"] == "instr"]
        assert (len(instr_events)
                == algo.ir.instruction_count() * result.tiles)

    def test_pid_tid_map_to_rank_and_tb(self):
        tracer, _, _ = self._traced()
        doc = chrome_trace(tracer)
        for event in doc["traceEvents"]:
            if event.get("cat") != "instr":
                continue
            assert event["pid"] == event["args"]["rank"]
            assert event["tid"] == event["args"]["tb"]

    def test_metadata_names_tracks(self):
        tracer, _, _ = self._traced()
        doc = chrome_trace(tracer)
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert "rank 0" in names

    def test_counter_events_present(self):
        tracer, _, _ = self._traced()
        doc = chrome_trace(tracer)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert all("value" in e["args"] for e in counters)

    def test_flame_text_merges_siblings(self):
        tracer, _, result = self._traced()
        text = flame_text(tracer)
        assert "compile" in text
        assert "simulate" in text
        # thousands of instruction spans collapse to one row per opcode
        assert any("x" in line and "us" in line
                   for line in text.splitlines())
        assert len(text.splitlines()) < len(result.spans)


class TestMetrics:
    def test_metrics_dict_sections(self):
        program = build_ring_allreduce(4)
        tracer = Tracer()
        algo = compile_program(program, CompilerOptions(trace=tracer))
        result = IrSimulator(
            algo.ir, generic(4, 1), config=SimConfig(tracer=tracer)
        ).run(chunk_bytes=MiB / algo.sizing_chunks())
        metrics = metrics_dict(tracer, result)
        assert metrics["sim"]["time_us"] == pytest.approx(
            result.time_us, abs=1e-3
        )
        assert metrics["sim"]["instructions"] == result.instruction_count
        assert metrics["links"]
        for row in metrics["links"].values():
            assert 0 <= row["occupancy"] <= 1.0
            assert row["busy_us"] >= 0
        # Every simulated resource appears, including idle ones.
        assert set(metrics["links"]) == set(result.resource_busy_us)
        assert json.loads(json.dumps(metrics)) == metrics
        text = metrics_text(metrics)
        assert "simulated" in text and "busiest links" in text

    def test_metrics_occupancy_clamped(self):
        # A busy total above elapsed time (overlapping cut-through
        # reservations) must clamp to 1.0 and be flagged, not leak >1.
        class FakeResult:
            time_us = 100.0
            resource_busy_us = {"hot": 250.0, "idle": 0.0, "ok": 40.0}
            instruction_count = 1
            threadblocks = 1
            tiles = 1
            protocol = "Simple"

        metrics = metrics_dict(Tracer(), FakeResult())
        links = metrics["links"]
        assert links["hot"]["occupancy"] == 1.0
        assert links["hot"]["saturated"] is True
        assert links["idle"] == {"busy_us": 0.0, "occupancy": 0.0}
        assert links["ok"]["occupancy"] == pytest.approx(0.4)
        assert "saturated" not in links["ok"]

    def test_report_renders_metrics(self, tmp_path):
        from repro.analysis import collect_metrics, metrics_markdown
        from repro.analysis.report import build_report

        (tmp_path / "demo.metrics.json").write_text(json.dumps({
            "counters": {"wait.fifo_arrival_us": 12.5},
            "sim": {"time_us": 99.0, "instructions": 10,
                    "threadblocks": 4, "tiles": 1,
                    "protocol": "Simple"},
            "links": {"nvlink[0,1]": {"busy_us": 50.0,
                                      "occupancy": 0.505}},
        }))
        (tmp_path / "broken.metrics.json").write_text("{nope")
        found = collect_metrics(tmp_path)
        assert list(found) == ["demo"]
        report = build_report(tmp_path, include_audit=False)
        assert "demo — observability metrics" in report
        assert "wait.fifo_arrival_us" in report
        assert metrics_markdown(found["demo"]).startswith("10 instr")


class TestProfileOnSpans:
    def _result(self):
        program = build_ring_allreduce(8)
        algo = compile_program(program, CompilerOptions())
        return IrSimulator(
            algo.ir, generic(8, 1),
            config=SimConfig(collect_trace=True),
        ).run(chunk_bytes=MiB / algo.sizing_chunks())

    def test_profiles_cover_every_threadblock(self):
        result = self._result()
        profiles = profile_threadblocks(result)
        assert len(profiles) == result.threadblocks
        for profile in profiles:
            assert 0 < profile.utilization <= 1.0
            assert profile.last_end_us <= result.time_us + 1e-9

    def test_slowest_and_critical_path(self):
        result = self._result()
        slow = slowest_threadblocks(result, top=3)
        assert len(slow) == 3
        assert (slow[0].last_end_us
                >= slow[-1].last_end_us)
        lines = critical_path(result, top=4)
        assert len(lines) == 4

    def test_timeline_and_utilization_render(self):
        result = self._result()
        assert timeline(result, rank=0)
        assert utilization_report(result)


class TestTraceCli:
    def test_trace_subcommand_writes_loadable_json(self, tmp_path,
                                                   capsys):
        from repro.tools.cli import main

        out = tmp_path / "ring.json"
        metrics_path = tmp_path / "ring.metrics.json"
        code = main([
            "trace", "ring_allreduce", "--ranks", "8",
            "--size", "1MB", "--out", str(out),
            "--metrics", str(metrics_path),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        instr = [e for e in doc["traceEvents"]
                 if e.get("cat") == "instr"]
        assert instr
        ranks = {e["pid"] for e in instr}
        assert ranks == set(range(8))
        metrics = json.loads(metrics_path.read_text())
        assert metrics["sim"]["instructions"] > 0
        text = capsys.readouterr().out
        assert "compiler passes" in text
        assert "chrome trace written" in text
