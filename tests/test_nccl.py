"""Tests for the NCCL baseline model."""

import pytest

from repro.core import CompilerOptions, compile_program
from repro.nccl import (
    MAX_NCCL_CHANNELS,
    NcclModel,
    default_rings,
    nccl_ring_allreduce,
    nccl_tree_allreduce,
    select_instances,
    select_protocol,
)
from repro.runtime import IrExecutor, IrSimulator
from repro.topology import ndv4

KiB = 1024
MiB = 1024 * 1024


class TestSelection:
    def test_protocol_thresholds(self):
        assert select_protocol(1 * KiB) == "LL"
        assert select_protocol(32 * KiB) == "LL"
        assert select_protocol(64 * KiB) == "LL128"
        assert select_protocol(1 * MiB) == "LL128"
        assert select_protocol(2 * MiB) == "Simple"
        assert select_protocol(4 * 1024 * MiB) == "Simple"

    def test_instances_split_across_rings(self):
        assert select_instances(MiB, rings=1) == MAX_NCCL_CHANNELS
        assert select_instances(MiB, rings=8) == 3

    def test_default_rings(self):
        assert default_rings(1, 8) == 1
        assert default_rings(2, 8) == 8
        assert default_rings(2, 16) == 8


class TestRingSchedule:
    def test_single_node_is_one_logical_ring(self):
        program = nccl_ring_allreduce(8, instances=4)
        ir = compile_program(program)
        assert ir.channels_used() == 4

    def test_correctness_single_node(self):
        program = nccl_ring_allreduce(8, instances=2)
        ir = compile_program(program)
        IrExecutor(ir, program.collective).run_and_check()

    def test_correctness_multi_node_rings(self):
        program = nccl_ring_allreduce(
            8, gpus_per_node=4, rings=4, instances=1
        )
        ir = compile_program(program)
        IrExecutor(ir, program.collective).run_and_check()

    def test_rings_cross_on_different_nics(self):
        """Each rotated ring must cross the node boundary on a different
        GPU pair, spreading inter-node traffic over the NICs."""
        program = nccl_ring_allreduce(
            8, gpus_per_node=4, rings=4, instances=1
        )
        ir = compile_program(program)
        boundary_senders = {
            src for src, dst, _ in ir.connections()
            if src // 4 != dst // 4
        }
        assert len(boundary_senders) == 8  # every GPU crosses for a ring

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            nccl_ring_allreduce(8, gpus_per_node=3)
        with pytest.raises(ValueError):
            nccl_ring_allreduce(8, rings=3)


class TestTreeSchedule:
    @pytest.mark.parametrize("ranks", [2, 3, 7, 8])
    def test_tree_correctness(self, ranks):
        program = nccl_tree_allreduce(ranks, instances=1)
        ir = compile_program(program)
        IrExecutor(ir, program.collective).run_and_check()

    def test_tree_depth_bounds_steps(self):
        """Log-depth: no rank executes more than O(log R) instructions."""
        program = nccl_tree_allreduce(8, instances=1)
        ir = compile_program(program)
        max_steps = max(
            sum(len(tb.instructions) for tb in gpu.threadblocks)
            for gpu in ir.gpus
        )
        assert max_steps <= 8


class TestNcclModel:
    def test_allreduce_time_monotone_in_size(self):
        model = NcclModel(ndv4(1))
        small = model.allreduce_time(64 * KiB).time_us
        large = model.allreduce_time(64 * MiB).time_us
        assert large > small

    def test_protocol_override(self):
        model = NcclModel(ndv4(1))
        result = model.allreduce_time(1 * MiB, protocol="Simple")
        assert result.protocol == "Simple"

    def test_ir_cache_reused(self):
        model = NcclModel(ndv4(1))
        model.allreduce_time(1 * KiB)
        cached = dict(model._ir_cache)
        model.allreduce_time(2 * KiB)  # same protocol/instances bucket
        assert dict(model._ir_cache) == cached

    def test_alltoall_time(self):
        model = NcclModel(ndv4(2))
        result = model.alltoall_time(16 * MiB)
        assert result.time_us > 0

    def test_unknown_kind_rejected(self):
        model = NcclModel(ndv4(1))
        with pytest.raises(ValueError):
            model._compile("allgather", "Simple", 1)
