"""Tests for named buffers and tracing-time buffer state."""

import pytest

from repro.core.buffers import Buffer, BufferState, as_buffer
from repro.core.chunk import InputChunk, UNINITIALIZED
from repro.core.errors import ProgramError, UninitializedChunkError


class TestBufferNames:
    @pytest.mark.parametrize("alias,expected", [
        ("in", Buffer.INPUT), ("input", Buffer.INPUT), ("i", Buffer.INPUT),
        ("out", Buffer.OUTPUT), ("output", Buffer.OUTPUT),
        ("sc", Buffer.SCRATCH), ("scratch", Buffer.SCRATCH),
        ("IN", Buffer.INPUT), ("Out", Buffer.OUTPUT),
    ])
    def test_aliases(self, alias, expected):
        assert as_buffer(alias) is expected

    def test_buffer_passthrough(self):
        assert as_buffer(Buffer.SCRATCH) is Buffer.SCRATCH

    def test_unknown_name(self):
        with pytest.raises(ProgramError, match="unknown buffer"):
            as_buffer("remote")

    def test_wrong_type(self):
        with pytest.raises(ProgramError):
            as_buffer(42)


class TestBufferState:
    def test_fixed_size_read_write(self):
        state = BufferState(Buffer.INPUT, rank=0, size=4)
        state.write(1, [InputChunk(0, 1)])
        assert state.read(1, 1) == [InputChunk(0, 1)]

    def test_uninitialized_read_raises(self):
        state = BufferState(Buffer.OUTPUT, rank=2, size=4)
        with pytest.raises(UninitializedChunkError, match="rank 2"):
            state.read(0, 1)

    def test_partial_uninitialized_span_raises(self):
        state = BufferState(Buffer.OUTPUT, rank=0, size=4)
        state.write(0, [InputChunk(0, 0)])
        with pytest.raises(UninitializedChunkError):
            state.read(0, 2)

    def test_out_of_range_rejected(self):
        state = BufferState(Buffer.INPUT, rank=0, size=4)
        with pytest.raises(ProgramError, match="out of range"):
            state.read(3, 2)

    def test_negative_index_rejected(self):
        state = BufferState(Buffer.INPUT, rank=0, size=4)
        with pytest.raises(ProgramError):
            state.read(-1, 1)

    def test_zero_count_rejected(self):
        state = BufferState(Buffer.INPUT, rank=0, size=4)
        with pytest.raises(ProgramError):
            state.read(0, 0)

    def test_scratch_grows_on_demand(self):
        state = BufferState(Buffer.SCRATCH, rank=0, size=None)
        assert state.size == 0
        state.write(5, [InputChunk(0, 0)])
        assert state.size == 6
        assert state.peek(3, 1) == [UNINITIALIZED]

    def test_versions_bump_on_write(self):
        state = BufferState(Buffer.INPUT, rank=0, size=2)
        before = state.versions(0, 2)
        state.write(0, [InputChunk(0, 0)])
        after = state.versions(0, 2)
        assert after[0] == before[0] + 1
        assert after[1] == before[1]

    def test_snapshot_skips_uninitialized(self):
        state = BufferState(Buffer.OUTPUT, rank=0, size=3)
        state.write(1, [InputChunk(0, 9)])
        assert state.snapshot() == {1: InputChunk(0, 9)}

    def test_multi_chunk_write(self):
        state = BufferState(Buffer.INPUT, rank=0, size=4)
        chunks = [InputChunk(0, i) for i in range(3)]
        state.write(1, chunks)
        assert state.read(1, 3) == chunks
