"""Tests for the spanning-tree algorithm synthesizer."""

import pytest

from repro.algorithms import ring_allgather, sccl_allgather_122
from repro.core import CompilerOptions, compile_program
from repro.runtime import IrExecutor, IrSimulator
from repro.synth import (
    broadcast_tree,
    synthesize_allgather,
    synthesize_broadcast,
)
from repro.topology import dgx1_mesh, generic, ndv4

MiB = 1024 * 1024


class TestBroadcastTree:
    def test_tree_spans_all_ranks(self):
        topology = dgx1_mesh()
        tree = broadcast_tree(topology, root=0, load={})
        assert set(tree) == set(range(8))
        assert tree[0] is None
        roots = [rank for rank, parent in tree.items() if parent is None]
        assert roots == [0]

    def test_tree_respects_link_graph(self):
        """Every parent-child edge is a real NVLink pair on the mesh."""
        topology = dgx1_mesh()
        tree = broadcast_tree(topology, root=2, load={})
        for child, parent in tree.items():
            if parent is None:
                continue
            assert topology.link_width(parent, child) > 0

    def test_load_penalty_spreads_trees(self):
        """Packing all 8 roots, no edge should carry everything."""
        topology = dgx1_mesh()
        load = {}
        for root in range(8):
            broadcast_tree(topology, root, load)
        assert max(load.values()) < 8  # some spreading happened

    def test_no_tree_on_disconnected_graph(self):
        class Island(type(generic(2, 1))):
            pass

        topology = generic(2, 1)
        # Make the two ranks unreachable by reporting no neighbors.
        topology.neighbors = lambda rank: []
        with pytest.raises(ValueError, match="disconnected"):
            broadcast_tree(topology, 0, {})


class TestSynthesizedAllGather:
    @pytest.fixture(scope="class")
    def synthesized(self):
        topology = dgx1_mesh()
        result = synthesize_allgather(topology)
        ir = compile_program(
            result.program, CompilerOptions(max_threadblocks=80)
        )
        return result, ir, topology

    def test_verifies_and_executes(self, synthesized):
        result, ir, _ = synthesized
        IrExecutor(ir, result.program.collective).run_and_check()

    def test_one_tree_per_source(self, synthesized):
        result, _, _ = synthesized
        assert set(result.trees) == set(range(8))

    def test_beats_link_oblivious_algorithms_on_the_mesh(self, synthesized):
        """The xor-partner (1,2,2) schedule relays over missing links;
        the ring ignores double-width pairs. The synthesized trees use
        only real links and spread load, so they win on this topology."""
        result, ir, topology = synthesized
        chunk_bytes = 4 * MiB / 8
        synth_time = IrSimulator(ir, topology).run(chunk_bytes).time_us

        sccl_ir = compile_program(
            sccl_allgather_122(8), CompilerOptions(max_threadblocks=80)
        )
        sccl_time = IrSimulator(sccl_ir, dgx1_mesh()).run(
            chunk_bytes).time_us
        ring_ir = compile_program(
            ring_allgather(8), CompilerOptions(max_threadblocks=80)
        )
        ring_time = IrSimulator(ring_ir, dgx1_mesh()).run(
            chunk_bytes).time_us
        assert synth_time < sccl_time
        assert synth_time < ring_time

    def test_works_on_switch_topologies_too(self):
        result = synthesize_allgather(ndv4(1))
        ir = compile_program(
            result.program, CompilerOptions(max_threadblocks=108)
        )
        IrExecutor(ir, result.program.collective).run_and_check()


class TestSynthesizedBroadcast:
    @pytest.mark.parametrize("root", [0, 3, 7])
    def test_verifies_from_any_root(self, root):
        result = synthesize_broadcast(dgx1_mesh(), root=root,
                                      chunk_factor=2)
        ir = compile_program(
            result.program, CompilerOptions(max_threadblocks=80)
        )
        IrExecutor(ir, result.program.collective).run_and_check()

    def test_instances_supported(self):
        result = synthesize_broadcast(ndv4(1), instances=4)
        ir = compile_program(
            result.program, CompilerOptions(max_threadblocks=108)
        )
        IrExecutor(ir, result.program.collective).run_and_check()
