"""Tests for the two-level hierarchical AllGather / ReduceScatter."""

import pytest

from repro.algorithms import (
    hierarchical_allgather,
    hierarchical_reducescatter,
    ring_allgather,
    ring_reducescatter,
)
from repro.core import CompilerOptions, compile_program
from repro.runtime import IrExecutor, IrSimulator
from repro.topology import ndv4

MiB = 1024 * 1024


@pytest.mark.parametrize("builder", [hierarchical_allgather,
                                     hierarchical_reducescatter])
@pytest.mark.parametrize("nodes,gpus", [(2, 2), (2, 4), (3, 3), (4, 2)])
def test_correct(builder, nodes, gpus):
    program = builder(nodes, gpus)
    ir = compile_program(program, CompilerOptions())
    IrExecutor(ir, program.collective).run_and_check()


@pytest.mark.parametrize("builder", [hierarchical_allgather,
                                     hierarchical_reducescatter])
def test_two_phase_channel_plan(builder):
    program = builder(2, 4)
    ir = compile_program(program)
    assert ir.channels_used() == 2


def test_inter_node_traffic_stays_on_gpu_index_rails():
    program = hierarchical_allgather(2, 4)
    ir = compile_program(program)
    for src, dst, _ in ir.connections():
        if src // 4 != dst // 4:
            assert src % 4 == dst % 4


@pytest.mark.parametrize("builder,flat_builder", [
    (hierarchical_allgather, ring_allgather),
    (hierarchical_reducescatter, ring_reducescatter),
])
def test_beats_flat_ring_on_two_nodes(builder, flat_builder):
    """The flat R-rank ring funnels every byte through one NIC pair per
    direction; the hierarchical version engages all of them."""
    nodes, gpus = 2, 8
    topology = ndv4(nodes)
    hier_program = builder(nodes, gpus, instances=4)
    hier = compile_program(
        hier_program, CompilerOptions(max_threadblocks=108)
    )
    flat_program = flat_builder(nodes * gpus, channels=1, instances=4)
    flat = compile_program(
        flat_program, CompilerOptions(max_threadblocks=108)
    )
    size = 64 * MiB
    hier_chunks = hier_program.collective.sizing_chunks()
    flat_chunks = flat_program.collective.sizing_chunks()
    hier_time = IrSimulator(hier, topology).run(
        chunk_bytes=size / hier_chunks).time_us
    flat_time = IrSimulator(flat, ndv4(nodes)).run(
        chunk_bytes=size / flat_chunks).time_us
    assert hier_time < flat_time


def test_reducescatter_lands_each_rank_its_own_segment():
    """The distribution is the standard one (rank r owns segment r),
    not the transposed layout the fused AllReduce tolerates."""
    program = hierarchical_reducescatter(2, 3)
    # The trace-level verifier enforces exactly this; compiling with
    # verification on is the assertion.
    compile_program(program, CompilerOptions(verify=True))
