"""Tests for the persistent on-disk compile-cache tier."""

import json
import threading

import pytest

from repro.core import (
    CompileCache,
    CompilerOptions,
    DiskCacheTier,
    compile_program,
)
from repro.core.cache import (
    CacheEntry,
    collective_to_doc,
    default_cache_dir,
    default_compile_cache,
    reset_default_compile_cache,
)
from repro.core.collectives import AllReduce, Custom
from tests.conftest import build_ring_allreduce


def _compile_cached(cache):
    """Compile the 4-rank ring through ``cache``; returns the algo."""
    program = build_ring_allreduce(4)
    return compile_program(program, CompilerOptions(cache=cache))


class TestDiskRoundTrip:
    def test_survives_across_cache_instances(self, tmp_path):
        first = CompileCache(disk=DiskCacheTier(tmp_path))
        cold = _compile_cached(first)
        assert first.misses == 1 and first.hits == 0
        assert first.disk.entry_count() == 1

        # A brand-new cache over the same directory models a fresh
        # process: the memory tier is empty, the disk tier serves.
        second = CompileCache(disk=DiskCacheTier(tmp_path))
        warm = _compile_cached(second)
        assert second.hits == 1 and second.misses == 0
        assert second.last_hit_tier == "disk"
        assert warm.ir.to_xml() == cold.ir.to_xml()

    def test_hit_promotes_into_memory(self, tmp_path):
        cache = CompileCache(disk=DiskCacheTier(tmp_path))
        _compile_cached(cache)
        fresh = CompileCache(disk=DiskCacheTier(tmp_path))
        _compile_cached(fresh)  # disk hit, promoted
        _compile_cached(fresh)  # now a memory hit
        assert fresh.last_hit_tier == "memory"
        assert fresh.disk.hits == 1

    def test_default_cache_reset_models_fresh_process(self):
        reset_default_compile_cache()
        try:
            cache = default_compile_cache()
            assert cache.disk is not None, (
                "conftest points REPRO_CACHE_DIR at a tmpdir, so the "
                "default cache must carry a disk tier"
            )
            _compile_cached(cache)
            reset_default_compile_cache()
            again = default_compile_cache()
            _compile_cached(again)
            assert again.last_hit_tier == "disk"
        finally:
            reset_default_compile_cache()


class TestCorruptEntries:
    def _entry_path(self, tmp_path):
        cache = CompileCache(disk=DiskCacheTier(tmp_path))
        _compile_cached(cache)
        (path,) = list(tmp_path.glob("*.json"))
        return path

    def test_garbage_file_is_a_miss_not_a_crash(self, tmp_path):
        path = self._entry_path(tmp_path)
        path.write_text("not json {{{")
        cache = CompileCache(disk=DiskCacheTier(tmp_path))
        _compile_cached(cache)
        assert cache.misses == 1
        assert cache.disk.misses == 1
        # The damaged entry was dropped and re-stored by the compile.
        assert json.loads(path.read_text())["ir_json"]

    def test_truncated_file_is_a_miss(self, tmp_path):
        path = self._entry_path(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        cache = CompileCache(disk=DiskCacheTier(tmp_path))
        _compile_cached(cache)
        assert cache.disk.misses == 1

    def test_valid_json_damaged_ir_is_a_miss(self, tmp_path):
        path = self._entry_path(tmp_path)
        doc = json.loads(path.read_text())
        doc["ir_json"] = "{\"definitely\": \"not an IR\"}"
        path.write_text(json.dumps(doc))
        cache = CompileCache(disk=DiskCacheTier(tmp_path))
        _compile_cached(cache)
        assert cache.disk.misses == 1

    def test_key_mismatch_is_a_miss(self, tmp_path):
        path = self._entry_path(tmp_path)
        doc = json.loads(path.read_text())
        doc["key"] = "someone-else's-key"
        path.write_text(json.dumps(doc))
        tier = DiskCacheTier(tmp_path)
        cache = CompileCache(disk=tier)
        _compile_cached(cache)
        assert tier.misses == 1


class TestEviction:
    def _entry(self, tag):
        ir_json = json.dumps({"tag": tag, "pad": "x" * 2000})
        return CacheEntry(ir_json, AllReduce(4, chunk_factor=4,
                                             in_place=True))

    def test_oldest_entries_evicted_to_fit_budget(self, tmp_path):
        tier = DiskCacheTier(tmp_path, max_bytes=5000)
        for index in range(4):
            tier.store(f"key-{index}", self._entry(index))
        assert tier.total_bytes() <= 5000
        assert tier.evictions >= 1
        # The most recent store always survives.
        assert tier.path_for("key-3").exists()

    def test_budget_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCacheTier(tmp_path, max_bytes=0)


class TestConcurrentWriters:
    def test_racing_stores_never_tear(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        # Lookups validate the IR payload, so the raced entry must be a
        # real one.
        algo = compile_program(build_ring_allreduce(4),
                               CompilerOptions())
        entry = CacheEntry(
            algo.ir.to_json(),
            AllReduce(4, chunk_factor=4, in_place=True),
        )
        errors = []

        def hammer():
            try:
                for _ in range(25):
                    tier.store("shared-key", entry)
                    looked = tier.lookup("shared-key")
                    assert looked is not None
                    assert looked.ir_json == entry.ir_json
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # No .part temp files left behind.
        assert not list(tmp_path.glob("*.part"))


class TestPartFileSweep:
    def _entry(self, tag):
        ir_json = json.dumps({"tag": tag, "pad": "x" * 2000})
        return CacheEntry(ir_json, AllReduce(4, chunk_factor=4,
                                             in_place=True))

    def _backdate(self, path, seconds):
        import os
        import time
        stamp = time.time() - seconds
        os.utime(path, (stamp, stamp))

    def test_stale_orphans_swept_on_eviction(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        orphan = tmp_path / ".write-dead00.part"
        orphan.write_text("z" * 500)
        self._backdate(orphan, 3600)  # far past the grace period
        tier.store("key-live", self._entry("live"))
        assert not orphan.exists()
        assert tier.orphans_removed == 1
        assert tier.stats()["orphans_removed"] == 1
        # The real entry is untouched.
        assert tier.path_for("key-live").exists()

    def test_fresh_part_files_survive_and_count(self, tmp_path):
        tier = DiskCacheTier(tmp_path, max_bytes=5000)
        inflight = tmp_path / ".write-busy00.part"
        inflight.write_text("z" * 4000)  # mtime == now: a live writer
        tier.store("key-a", self._entry("a"))
        tier.store("key-b", self._entry("b"))
        # The live temp file was never reaped, but its bytes pressed
        # the budget: an entry had to go to make room.
        assert inflight.exists()
        assert tier.orphans_removed == 0
        assert tier.evictions >= 1
        assert tier.path_for("key-b").exists()
        assert tier.total_bytes() >= 4000

    def test_clear_removes_part_files(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        (tmp_path / ".write-dead00.part").write_text("z")
        tier.store("key", self._entry("x"))
        tier.clear()
        assert tier.total_bytes() == 0
        assert not list(tmp_path.glob(".write-*.part"))

    def test_negative_grace_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCacheTier(tmp_path, part_grace_seconds=-1.0)


class TestCompileCacheThreadSafety:
    def test_threaded_hammer_keeps_counters_exact(self):
        algo = compile_program(build_ring_allreduce(4), CompilerOptions())
        collective = AllReduce(4, chunk_factor=4, in_place=True)
        cache = CompileCache(maxsize=64)
        threads, iters, keyspace = 8, 50, 8
        errors = []

        def hammer(seed):
            try:
                for i in range(iters):
                    key = f"key-{(seed + i) % keyspace}"
                    if cache.lookup(key) is None:
                        cache.store(key, algo.ir, collective)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        workers = [threading.Thread(target=hammer, args=(n,))
                   for n in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        # Every lookup was either a hit or a miss — nothing lost to a
        # counter race.
        assert cache.hits + cache.misses == threads * iters
        assert len(cache) == keyspace

    def test_last_hit_tier_is_thread_local(self):
        algo = compile_program(build_ring_allreduce(4), CompilerOptions())
        collective = AllReduce(4, chunk_factor=4, in_place=True)
        cache = CompileCache()
        cache.store("present", algo.ir, collective)
        cache.lookup("present")
        assert cache.last_hit_tier == "memory"
        seen = {}

        def other_thread():
            cache.lookup("absent")
            seen["tier"] = cache.last_hit_tier

        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
        # The other thread's miss never clobbered this thread's view.
        assert seen["tier"] is None
        assert cache.last_hit_tier == "memory"

    def test_default_cache_creation_is_race_free(self):
        reset_default_compile_cache()
        try:
            barrier = threading.Barrier(8)
            instances = []

            def grab():
                barrier.wait()
                instances.append(default_compile_cache())

            workers = [threading.Thread(target=grab) for _ in range(8)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            assert len(instances) == 8
            assert all(c is instances[0] for c in instances)
        finally:
            reset_default_compile_cache()


class TestCustomCollectives:
    def _custom(self):
        return Custom(
            num_ranks=2, chunk_factor=1,
            postcondition_fn=lambda rank: {0: {0}},
        )

    def test_custom_collective_stays_memory_only(self, tmp_path):
        assert collective_to_doc(self._custom()) is None
        tier = DiskCacheTier(tmp_path)
        entry = CacheEntry("{}", self._custom())
        assert tier.store("custom-key", entry) is False
        assert tier.entry_count() == 0

    def test_plain_collective_is_storable(self):
        doc = collective_to_doc(AllReduce(8, chunk_factor=8,
                                          in_place=True))
        assert doc["kind"] == "AllReduce"


class TestDefaultDirectory:
    def test_env_var_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cachedir"))
        assert default_cache_dir() == tmp_path / "cachedir"
