"""Tests for the DSL tracing context, ChunkRef semantics, and directives."""

import pytest

from repro.core import (
    AllGather,
    AllReduce,
    AllToAll,
    MSCCLProgram,
    ProgramError,
    StaleReferenceError,
    UninitializedChunkError,
    chunk,
    current_program,
    parallelize,
)
from repro.core.chunk import InputChunk, allreduce_result


def simple_program(num_ranks=2, **kwargs):
    return MSCCLProgram(
        "t", AllReduce(num_ranks, chunk_factor=1), **kwargs
    )


class TestProgramContext:
    def test_chunk_outside_program_fails(self):
        with pytest.raises(ProgramError, match="no MSCCLProgram"):
            chunk(0, "in", 0)

    def test_nested_programs_rejected(self):
        with simple_program():
            with pytest.raises(ProgramError, match="already active"):
                with simple_program():
                    pass

    def test_current_program_inside_context(self):
        with simple_program() as program:
            assert current_program() is program

    def test_operations_after_exit_rejected(self):
        with simple_program() as program:
            ref = chunk(0, "in", 0)
        with pytest.raises(ProgramError, match="left its 'with' block"):
            ref.copy(1, "in", 0)

    def test_context_resets_after_exception(self):
        with pytest.raises(ValueError):
            with simple_program():
                raise ValueError("boom")
        # A fresh program can be opened afterwards.
        with simple_program():
            chunk(0, "in", 0)


class TestAddressing:
    def test_tuple_rank_addressing(self):
        coll = AllReduce(4, chunk_factor=1)
        with MSCCLProgram("t", coll, gpus_per_node=2):
            ref = chunk((1, 1), "in", 0)
            assert ref.rank == 3

    def test_tuple_index_addressing(self):
        coll = AllToAll(4, chunk_factor=1)
        with MSCCLProgram("t", coll, gpus_per_node=2):
            ref = chunk(0, "in", (1, 0))
            assert ref.index == 2

    def test_tuple_rank_without_geometry_fails(self):
        with simple_program():
            with pytest.raises(ProgramError, match="gpus_per_node"):
                chunk((0, 0), "in", 0)

    def test_rank_out_of_range(self):
        with simple_program():
            with pytest.raises(ProgramError, match="out of range"):
                chunk(5, "in", 0)

    def test_gpu_index_out_of_range(self):
        coll = AllReduce(4, chunk_factor=1)
        with MSCCLProgram("t", coll, gpus_per_node=2):
            with pytest.raises(ProgramError):
                chunk((0, 3), "in", 0)


class TestCopyReduceSemantics:
    def test_copy_moves_value(self):
        with simple_program() as program:
            chunk(0, "in", 0).copy(1, "sc", 0)
            assert chunk(1, "sc", 0).values() == [InputChunk(0, 0)]
        assert len(program.dag.operations()) == 1

    def test_copy_returns_destination_ref(self):
        with simple_program():
            ref = chunk(0, "in", 0).copy(1, "sc", 2)
            assert (ref.rank, ref.index) == (1, 2)

    def test_self_copy_is_noop(self):
        with simple_program() as program:
            ref = chunk(0, "in", 0)
            assert ref.copy(0, "in", 0) is ref
        assert not program.dag.operations()

    def test_reduce_accumulates_in_destination(self):
        with simple_program():
            mine = chunk(0, "in", 0)
            incoming = chunk(1, "in", 0).copy(0, "sc", 0)
            total = mine.reduce(incoming)
            assert total.values() == [allreduce_result(2, 0)]

    def test_reduce_count_mismatch(self):
        coll = AllReduce(2, chunk_factor=2)
        with MSCCLProgram("t", coll):
            a = chunk(0, "in", 0, count=2)
            b = chunk(1, "in", 0).copy(0, "sc", 0)
            with pytest.raises(ProgramError, match="equal counts"):
                a.reduce(b)

    def test_reduce_non_ref_rejected(self):
        with simple_program():
            with pytest.raises(ProgramError, match="ChunkRef"):
                chunk(0, "in", 0).reduce(42)

    def test_copy_count_must_match(self):
        coll = AllReduce(2, chunk_factor=2)
        with MSCCLProgram("t", coll):
            with pytest.raises(ProgramError, match="count"):
                chunk(0, "in", 0, count=2).copy(1, "in", 0, 1)

    def test_paper_style_copy_with_count(self):
        coll = AllReduce(2, chunk_factor=2)
        with MSCCLProgram("t", coll):
            chunk(0, "in", 0, count=2).copy(1, "sc", 0, 2)


class TestStaleReferences:
    def test_overwritten_source_is_stale(self):
        with simple_program():
            old = chunk(1, "in", 0)
            chunk(0, "in", 0).copy(1, "in", 0)  # overwrites rank 1
            assert old.is_stale()
            with pytest.raises(StaleReferenceError):
                old.copy(0, "sc", 0)

    def test_reduce_invalidates_destination_refs(self):
        with simple_program():
            old = chunk(0, "in", 0)
            incoming = chunk(1, "in", 0).copy(0, "sc", 0)
            chunk(0, "in", 0).reduce(incoming)
            with pytest.raises(StaleReferenceError):
                old.values()

    def test_fresh_reacquire_after_overwrite(self):
        with simple_program():
            chunk(0, "in", 0).copy(1, "in", 0)
            again = chunk(1, "in", 0)  # latest reference is fine
            again.copy(0, "sc", 1)

    def test_reading_does_not_invalidate(self):
        with simple_program():
            ref = chunk(0, "in", 0)
            ref.copy(1, "sc", 0)
            ref.copy(1, "sc", 1)  # source may be copied repeatedly
            assert not ref.is_stale()


class TestUninitializedAccess:
    def test_reading_uninitialized_scratch(self):
        with simple_program():
            with pytest.raises(UninitializedChunkError):
                chunk(0, "sc", 0)

    def test_reading_uninitialized_output(self):
        coll = AllReduce(2, chunk_factor=1)  # out of place
        with MSCCLProgram("t", coll):
            with pytest.raises(UninitializedChunkError):
                chunk(0, "out", 0)


class TestScratchDeduction:
    def test_scratch_size_tracks_highest_index(self):
        with simple_program() as program:
            chunk(0, "in", 0).copy(0, "sc", 7)
            assert program.scratch_chunks(0) == 8
            assert program.scratch_chunks(1) == 0


class TestParallelize:
    def test_ops_inside_get_group(self):
        with simple_program() as program:
            with parallelize(2):
                chunk(0, "in", 0).copy(1, "sc", 0)
            chunk(0, "in", 0).copy(1, "sc", 1)
        ops = program.dag.operations()
        assert ops[0].parallel is not None
        assert ops[0].parallel.instances == 2
        assert ops[1].parallel is None

    def test_nesting_rejected(self):
        with simple_program():
            with parallelize(2):
                with pytest.raises(ProgramError, match="nest"):
                    with parallelize(2):
                        pass

    def test_zero_factor_rejected(self):
        with simple_program():
            with pytest.raises(ProgramError):
                with parallelize(0):
                    pass

    def test_outside_program_rejected(self):
        with pytest.raises(ProgramError):
            with parallelize(2):
                pass


class TestInPlacePrograms:
    def test_input_alias_reads_output_storage(self):
        coll = AllGather(2, chunk_factor=1, in_place=True)
        with MSCCLProgram("t", coll):
            ref = chunk(1, "in", 0)
            assert ref.index == 1  # aliased to output[rank]

    def test_input_buffer_absent_when_in_place(self):
        coll = AllReduce(2, chunk_factor=1, in_place=True)
        with MSCCLProgram("t", coll) as program:
            from repro.core.buffers import Buffer
            with pytest.raises(ProgramError, match="does not exist"):
                program.buffer_state(0, Buffer.INPUT)

    def test_bad_instances_rejected(self):
        with pytest.raises(ProgramError):
            MSCCLProgram("t", AllReduce(2, chunk_factor=1), instances=0)
