"""Tests for Chunk DAG construction and dependency edges."""

from repro.core import AllReduce, MSCCLProgram, chunk
from repro.core.buffers import Buffer


def trace(body, num_ranks=3, chunk_factor=2):
    coll = AllReduce(num_ranks, chunk_factor=chunk_factor)
    with MSCCLProgram("t", coll) as program:
        body()
    return program.dag


class TestTrueDependencies:
    def test_chained_copies_depend(self):
        def body():
            a = chunk(0, "in", 0).copy(1, "sc", 0)
            a.copy(2, "sc", 0)

        dag = trace(body)
        ops = dag.operations()
        assert ops[1].true_deps == {ops[0].op_id}

    def test_reduce_depends_on_both_sources(self):
        def body():
            staged = chunk(1, "in", 0).copy(0, "sc", 0)
            moved = chunk(0, "in", 1).copy(0, "sc", 1)
            chunk(0, "sc", 1).reduce(chunk(0, "sc", 0))

        dag = trace(body)
        ops = dag.operations()
        assert {ops[0].op_id, ops[1].op_id} <= ops[2].true_deps

    def test_independent_ops_have_no_edges(self):
        def body():
            chunk(0, "in", 0).copy(1, "sc", 0)
            chunk(2, "in", 0).copy(1, "sc", 1)

        dag = trace(body)
        ops = dag.operations()
        assert not ops[1].deps & {ops[0].op_id}


class TestFalseDependencies:
    def test_overwrite_creates_waw_edge(self):
        def body():
            chunk(0, "in", 0).copy(1, "sc", 0)
            chunk(0, "in", 1).copy(1, "sc", 0)

        dag = trace(body)
        ops = dag.operations()
        assert ops[0].op_id in ops[1].deps
        assert ops[0].op_id not in ops[1].true_deps

    def test_read_then_overwrite_creates_war_edge(self):
        def body():
            chunk(0, "in", 0).copy(1, "sc", 0)
            chunk(1, "sc", 0).copy(2, "sc", 0)   # reads sc[0] on rank 1
            chunk(0, "in", 1).copy(1, "sc", 0)   # overwrites it

        dag = trace(body)
        ops = dag.operations()
        assert ops[1].op_id in ops[2].deps


class TestStructure:
    def test_start_nodes_for_inputs(self):
        dag = trace(lambda: None, num_ranks=2, chunk_factor=3)
        starts = [op for op in dag.ops if op.kind == "start"]
        assert len(starts) == 6  # 2 ranks x 3 chunks

    def test_locality_flag(self):
        def body():
            chunk(0, "in", 0).copy(0, "sc", 0)
            chunk(0, "in", 1).copy(1, "sc", 0)

        dag = trace(body)
        local, remote = dag.operations()
        assert local.is_local and not remote.is_local

    def test_dependents_reverse_adjacency(self):
        def body():
            a = chunk(0, "in", 0).copy(1, "sc", 0)
            a.copy(2, "sc", 0)

        dag = trace(body)
        ops = dag.operations()
        assert ops[1].op_id in dag.dependents()[ops[0].op_id]

    def test_trace_order_is_monotone(self):
        def body():
            c = chunk(0, "in", 0)
            for rank in (1, 2):
                c = c.copy(rank, "sc", 0)

        dag = trace(body)
        ops = dag.operations()
        indices = [op.trace_index for op in ops]
        assert indices == sorted(indices)
        # Every dependency points backwards in trace order.
        for op in dag.ops:
            for dep in op.deps:
                assert dep < op.op_id

    def test_channel_recorded(self):
        def body():
            chunk(0, "in", 0).copy(1, "sc", 0, ch=3)

        dag = trace(body)
        assert dag.operations()[0].channel == 3
