"""Tests for the schedule autotuner and registry building."""

import pytest

from repro.algorithms import ring_allreduce
from repro.analysis import (
    Candidate,
    build_registry,
    default_space,
    tune,
)
from repro.topology import ndv4

KiB = 1024
MiB = 1024 * 1024


def ring_builder(channels, instances, protocol):
    return ring_allreduce(8, channels=channels, instances=instances,
                          protocol=protocol)


@pytest.fixture(scope="module")
def result():
    space = [
        Candidate(1, 2, "LL"),
        Candidate(4, 8, "LL"),
        Candidate(1, 24, "Simple"),
    ]
    sizes = [32 * KiB, 1 * MiB, 64 * MiB]
    return tune(ring_builder, ndv4(1), sizes,
                collective_sizing_chunks=8, space=space)


class TestTune:
    def test_all_candidates_timed_on_all_sizes(self, result):
        assert len(result.times) == 3 * 3

    def test_winner_is_actually_fastest(self, result):
        for size in result.sizes:
            winner_time = result.best_time(size)
            for candidate in result.candidates:
                assert winner_time <= result.times[(candidate, size)]

    def test_protocol_winners_follow_size(self, result):
        """LL configs win small, the wide Simple config wins large."""
        assert result.best[32 * KiB].protocol == "LL"
        assert result.best[64 * MiB].protocol == "Simple"

    def test_table_renders(self, result):
        table = result.table()
        assert "best config" in table
        for size in result.sizes:
            assert str(size) in table

    def test_infeasible_candidates_skipped(self):
        space = [
            Candidate(1, 2, "LL"),
            Candidate(8, 24, "Simple"),  # 192 TBs > 108 SMs
        ]
        outcome = tune(ring_builder, ndv4(1), [32 * KiB],
                       collective_sizing_chunks=8, space=space)
        assert len(outcome.candidates) == 1
        assert len(outcome.skipped) == 1
        assert "thread blocks" in outcome.skipped[0][1]

    def test_non_divisible_size_regression(self):
        """Sizes that don't divide by sizing_chunks go through the
        shared ceil-division helper, so tune and a standalone timer
        agree exactly (they used to disagree via float division)."""
        from repro.analysis import IrTimer

        space = [Candidate(1, 2, "LL")]
        size = 1000  # 1000 / 8 chunks is not integral
        outcome = tune(ring_builder, ndv4(1), [size],
                       collective_sizing_chunks=8, space=space)
        (candidate,) = outcome.candidates
        timer = IrTimer(outcome._compiled[candidate], ndv4(1), 8)
        assert outcome.times[(candidate, size)] == timer(size)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            tune(ring_builder, ndv4(1), [KiB],
                 collective_sizing_chunks=8,
                 space=[Candidate(8, 24, "Simple")])

    def test_default_space_shape(self):
        space = default_space(max_channels=4, max_instances=8)
        assert all(c.channels <= 4 and c.instances <= 8 for c in space)
        protocols = {c.protocol for c in space}
        assert protocols == {"LL", "LL128", "Simple"}


class TestBuildRegistry:
    def test_ranges_are_contiguous_and_cover_everything(self, result):
        registry = build_registry(result, "allreduce")
        # Every size (including ones between grid points) selects some
        # registered program.
        for size in (1, 32 * KiB, 100 * KiB, 1 * MiB, 10 * MiB,
                     64 * MiB, 10 ** 12):
            assert registry.select(size) is not None

    def test_selection_matches_winners(self, result):
        registry = build_registry(result, "allreduce")
        for size in result.sizes:
            assert registry.selected_label(size) == \
                result.best[size].label

    def test_adjacent_same_winner_merges(self):
        space = [Candidate(1, 2, "LL")]
        outcome = tune(ring_builder, ndv4(1),
                       [KiB, 2 * KiB, 4 * KiB],
                       collective_sizing_chunks=8, space=space)
        registry = build_registry(outcome, "allreduce")
        assert len(registry.algorithms) == 1
