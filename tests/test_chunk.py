"""Tests for abstract chunk identities (repro.core.chunk)."""

import pytest

from repro.core.chunk import (
    UNINITIALIZED,
    InputChunk,
    ReductionChunk,
    Uninitialized,
    allreduce_result,
    is_initialized,
    reduce_chunks,
)


class TestInputChunk:
    def test_identity_is_rank_and_index(self):
        assert InputChunk(1, 2) == InputChunk(1, 2)
        assert InputChunk(1, 2) != InputChunk(2, 1)

    def test_hashable(self):
        assert len({InputChunk(0, 0), InputChunk(0, 0)}) == 1

    def test_repr_mentions_coordinates(self):
        assert "1" in repr(InputChunk(1, 7)) and "7" in repr(InputChunk(1, 7))


class TestReductionChunk:
    def test_reduce_two_inputs(self):
        r = reduce_chunks(InputChunk(0, 0), InputChunk(1, 0))
        assert isinstance(r, ReductionChunk)
        assert r.inputs == {InputChunk(0, 0), InputChunk(1, 0)}

    def test_order_insensitive(self):
        a = reduce_chunks(InputChunk(0, 0), InputChunk(1, 0))
        b = reduce_chunks(InputChunk(1, 0), InputChunk(0, 0))
        assert a == b

    def test_associative_composition(self):
        ab = reduce_chunks(InputChunk(0, 0), InputChunk(1, 0))
        abc1 = reduce_chunks(ab, InputChunk(2, 0))
        bc = reduce_chunks(InputChunk(1, 0), InputChunk(2, 0))
        abc2 = reduce_chunks(InputChunk(0, 0), bc)
        assert abc1 == abc2

    def test_multiplicity_matters(self):
        once = reduce_chunks(InputChunk(0, 0), InputChunk(1, 0))
        twice = reduce_chunks(once, InputChunk(1, 0))
        assert once != twice
        contributions = dict(twice.contributions)
        assert contributions[InputChunk(1, 0)] == 2

    def test_reducing_uninitialized_rejected(self):
        with pytest.raises(TypeError):
            reduce_chunks(InputChunk(0, 0), UNINITIALIZED)

    def test_repr_shows_terms(self):
        r = reduce_chunks(InputChunk(0, 0), InputChunk(1, 0))
        text = repr(r)
        assert "c[0,0]" in text and "c[1,0]" in text


class TestAllreduceResult:
    def test_contains_every_rank_once(self):
        r = allreduce_result(4, 2)
        assert r.inputs == {InputChunk(i, 2) for i in range(4)}
        assert all(mult == 1 for _, mult in r.contributions)

    def test_matches_incremental_reduction(self):
        acc = InputChunk(0, 5)
        for rank in range(1, 6):
            acc = reduce_chunks(acc, InputChunk(rank, 5))
        assert acc == allreduce_result(6, 5)


class TestUninitialized:
    def test_is_not_initialized(self):
        assert not is_initialized(UNINITIALIZED)
        assert not is_initialized(Uninitialized())

    def test_inputs_and_reductions_are_initialized(self):
        assert is_initialized(InputChunk(0, 0))
        assert is_initialized(allreduce_result(2, 0))
