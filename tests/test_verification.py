"""Tests for postcondition checking and the IR deadlock audit."""

import pytest

from repro.core import (
    AllGather,
    AllReduce,
    Buffer,
    CompilerOptions,
    DeadlockError,
    MSCCLProgram,
    Op,
    VerificationError,
    audit_ir,
    check_postcondition,
    chunk,
    compile_program,
)
from repro.core.ir import GpuProgram, IrInstruction, MscclIr, ThreadBlock
from tests.conftest import build_ring_allreduce


class TestPostcondition:
    def test_correct_ring_passes(self, ring4):
        check_postcondition(ring4)

    def test_incomplete_program_fails(self):
        coll = AllGather(2, chunk_factor=1, in_place=True)
        with MSCCLProgram("partial", coll) as program:
            chunk(0, "in", 0).copy(1, "out", 0)
            # rank 0 never receives rank 1's chunk
        with pytest.raises(VerificationError, match="uninitialized"):
            check_postcondition(program)

    def test_wrong_value_fails(self):
        coll = AllGather(2, chunk_factor=1, in_place=True)
        with MSCCLProgram("wrong", coll) as program:
            chunk(0, "in", 0).copy(1, "out", 0)
            # Rank 0's output[1] gets rank 0's chunk instead of rank 1's.
            chunk(0, "out", 0).copy(0, "out", 1)
        with pytest.raises(VerificationError, match="expected"):
            check_postcondition(program)

    def test_partial_reduction_fails(self):
        coll = AllReduce(3, chunk_factor=1, in_place=True)
        with MSCCLProgram("partial_sum", coll) as program:
            # Only two of three ranks contribute.
            c = chunk(0, "in", 0)
            c = chunk(1, "in", 0).reduce(c)
            for dst in (0, 2):
                c.copy(dst, "in", 0)
        with pytest.raises(VerificationError):
            check_postcondition(program)

    def test_compile_rejects_incorrect_by_default(self):
        coll = AllGather(2, chunk_factor=1, in_place=True)
        with MSCCLProgram("partial", coll) as program:
            chunk(0, "in", 0).copy(1, "out", 0)
        with pytest.raises(VerificationError):
            compile_program(program)
        # ... unless verification is explicitly disabled.
        compile_program(program, CompilerOptions(verify=False))


def _hand_ir(tb_specs):
    """Build a 2-rank IR from {(rank, tb_id): (send, recv, ops)} specs.

    Receives are tagged with in-order sequence numbers per connection
    (the natural pairing for these straight-line examples).
    """
    ir = MscclIr(name="hand", collective="custom", protocol="Simple",
                 num_ranks=2, in_place=False)
    recv_counters = {}
    for rank in range(2):
        gpu = GpuProgram(rank=rank, input_chunks=4, output_chunks=4,
                         scratch_chunks=0)
        for (r, tb_id), (send, recv, ops) in sorted(tb_specs.items()):
            if r != rank:
                continue
            tb = ThreadBlock(tb_id=tb_id, send_peer=send, recv_peer=recv,
                             channel=0)
            for step, op in enumerate(ops):
                recv_seq = None
                if op in (Op.RECV, Op.RECV_REDUCE_COPY, Op.RECV_COPY_SEND,
                          Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND):
                    conn = (recv, rank, 0)
                    recv_seq = recv_counters.get(conn, 0)
                    recv_counters[conn] = recv_seq + 1
                tb.instructions.append(IrInstruction(
                    step=step, op=op,
                    src=(Buffer.INPUT, 0, 1), dst=(Buffer.INPUT, 0, 1),
                    recv_seq=recv_seq,
                ))
            gpu.threadblocks.append(tb)
        ir.gpus.append(gpu)
    return ir


class TestAudit:
    def test_compiled_programs_pass(self, ring4_ir):
        audit_ir(ring4_ir, num_slots=8)
        audit_ir(ring4_ir, num_slots=2)

    def test_ring_needs_more_than_one_slot(self, ring4_ir):
        """A ring pipeline with one FIFO slot per connection wedges:
        the audit's slot back-pressure edges expose the cycle."""
        with pytest.raises(DeadlockError):
            audit_ir(ring4_ir, num_slots=1)

    def test_mismatched_traffic_detected(self):
        ir = _hand_ir({
            (0, 0): (1, None, [Op.SEND, Op.SEND]),
            (1, 0): (None, 0, [Op.RECV]),
        })
        with pytest.raises(DeadlockError, match="2 sends but 1"):
            audit_ir(ir)

    def test_recv_before_send_cycle_detected(self):
        """Rank 0 receives before sending; rank 1 mirrors it: a classic
        head-to-head deadlock."""
        ir = _hand_ir({
            (0, 0): (1, 1, [Op.RECV, Op.SEND]),
            (1, 0): (0, 0, [Op.RECV, Op.SEND]),
        })
        with pytest.raises(DeadlockError, match="cycle"):
            audit_ir(ir)

    def test_opposite_order_is_fine(self):
        ir = _hand_ir({
            (0, 0): (1, 1, [Op.SEND, Op.RECV]),
            (1, 0): (0, 0, [Op.SEND, Op.RECV]),
        })
        audit_ir(ir)

    def test_slot_exhaustion_cycle(self):
        """With one FIFO slot, two pipelined sends before the matching
        receives deadlock; with two slots they are fine."""
        ir = _hand_ir({
            (0, 0): (1, 1, [Op.SEND, Op.SEND, Op.RECV, Op.RECV]),
            (1, 0): (0, 0, [Op.SEND, Op.SEND, Op.RECV, Op.RECV]),
        })
        with pytest.raises(DeadlockError):
            audit_ir(ir, num_slots=1)
        audit_ir(ir, num_slots=2)

    def test_send_without_peer_detected(self):
        ir = _hand_ir({(0, 0): (None, None, [Op.SEND])})
        with pytest.raises(DeadlockError, match="no send peer"):
            audit_ir(ir)

    def test_recv_without_peer_detected(self):
        ir = _hand_ir({(0, 0): (None, None, [Op.RECV])})
        with pytest.raises(DeadlockError, match="no recv peer"):
            audit_ir(ir)

    def test_bad_slot_count_rejected(self, ring4_ir):
        with pytest.raises(ValueError):
            audit_ir(ring4_ir, num_slots=0)

    def test_cross_tb_dep_cycle_detected(self):
        ir = _hand_ir({(0, 0): (None, None, []), (0, 1): (None, None, [])})
        tb0 = ir.gpus[0].threadblocks[0]
        tb1 = ir.gpus[0].threadblocks[1]
        tb0.instructions.append(IrInstruction(
            step=0, op=Op.COPY, src=(Buffer.INPUT, 0, 1),
            dst=(Buffer.INPUT, 1, 1), depends=[(1, 0)],
        ))
        tb1.instructions.append(IrInstruction(
            step=0, op=Op.COPY, src=(Buffer.INPUT, 1, 1),
            dst=(Buffer.INPUT, 0, 1), depends=[(0, 0)],
        ))
        with pytest.raises(DeadlockError, match="cycle"):
            audit_ir(ir)
