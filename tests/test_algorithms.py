"""Integration tests: every algorithm compiles, audits, executes
correctly, and exhibits the structure the paper describes."""

import pytest

from repro.algorithms import (
    allpairs_allreduce,
    alltonext,
    hierarchical_allreduce,
    naive_alltoall,
    naive_alltonext,
    ring_allgather,
    ring_allreduce,
    ring_reducescatter,
    sccl_allgather_122,
    twostep_alltoall,
)
from repro.core import CompilerOptions, Op, compile_program
from repro.runtime import IrExecutor, IrSimulator
from repro.topology import dgx1, generic, ndv4

ALL_ALGORITHMS = [
    pytest.param(lambda: ring_allreduce(8), id="ring_allreduce"),
    pytest.param(lambda: ring_allreduce(8, channels=4, instances=2,
                                        protocol="LL"),
                 id="ring_allreduce_ch4_r2"),
    pytest.param(lambda: ring_allreduce(6, chunks_per_rank=12),
                 id="ring_allreduce_multichunk"),
    pytest.param(lambda: allpairs_allreduce(8), id="allpairs"),
    pytest.param(lambda: allpairs_allreduce(4, instances=2),
                 id="allpairs_r2"),
    pytest.param(lambda: hierarchical_allreduce(2, 4),
                 id="hierarchical_2x4"),
    pytest.param(lambda: hierarchical_allreduce(2, 4, intra_parallel=2),
                 id="hierarchical_parallelized"),
    pytest.param(lambda: hierarchical_allreduce(3, 2, instances=2),
                 id="hierarchical_3x2_r2"),
    pytest.param(lambda: twostep_alltoall(2, 4), id="twostep_2x4"),
    pytest.param(lambda: twostep_alltoall(3, 3), id="twostep_3x3"),
    pytest.param(lambda: naive_alltoall(8), id="naive_alltoall"),
    pytest.param(lambda: alltonext(2, 4), id="alltonext_2x4"),
    pytest.param(lambda: alltonext(3, 4, instances=2),
                 id="alltonext_3x4_r2"),
    pytest.param(lambda: naive_alltonext(2, 4), id="naive_alltonext"),
    pytest.param(lambda: ring_allgather(8, channels=2), id="allgather"),
    pytest.param(lambda: ring_reducescatter(8, channels=2),
                 id="reducescatter"),
    pytest.param(lambda: sccl_allgather_122(8), id="sccl_122"),
    pytest.param(lambda: sccl_allgather_122(4), id="sccl_122_small"),
]


@pytest.mark.parametrize("builder", ALL_ALGORITHMS)
def test_compiles_and_computes_correctly(builder):
    """The gold gauntlet: verify the trace, audit the IR for deadlocks,
    execute real data, check every output element."""
    program = builder()
    ir = compile_program(program, CompilerOptions())
    IrExecutor(ir, program.collective).run_and_check()


@pytest.mark.parametrize("builder", ALL_ALGORITHMS)
def test_simulates_to_completion(builder):
    program = builder()
    ir = compile_program(program, CompilerOptions())
    ranks = program.num_ranks
    topo = generic(ranks // 2, 2) if ranks % 2 == 0 else generic(ranks, 1)
    result = IrSimulator(ir, topo).run(chunk_bytes=32 * 1024)
    assert result.time_us > 0


class TestRingStructure:
    def test_ring_line_count_is_paper_small(self):
        """The paper: all programs need < 30 lines. Our ring body is a
        handful of statements; check instruction shape instead: each
        GPU executes 2R-1 fused steps per logical ring."""
        program = ring_allreduce(8)
        ir = compile_program(program)
        for gpu in ir.gpus:
            assert sum(len(tb.instructions)
                       for tb in gpu.threadblocks) == 15

    def test_channels_stripe_chunks(self):
        program = ring_allreduce(8, channels=4)
        ir = compile_program(program)
        assert ir.channels_used() == 4

    def test_chunks_per_rank_must_divide(self):
        with pytest.raises(ValueError):
            ring_allreduce(4, chunks_per_rank=6)


class TestAllPairsStructure:
    def test_two_communication_steps(self):
        """All Pairs does gather + broadcast: every chunk crosses the
        wire exactly twice, so 2*R*(R-1) point-to-point messages."""
        program = allpairs_allreduce(4)
        ir = compile_program(program)
        hist = ir.op_histogram()
        sends = sum(hist.get(op.value, 0) for op in
                    (Op.SEND, Op.RECV_COPY_SEND,
                     Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND))
        assert sends == 2 * 4 * 3

    def test_local_reductions_present(self):
        program = allpairs_allreduce(4)
        ir = compile_program(program)
        assert ir.op_histogram().get(Op.REDUCE.value, 0) == 4 * 3


class TestHierarchicalStructure:
    def test_three_channel_plan(self):
        """Paper section 5.1: intra-RS on ch0, inter phases on ch1,
        intra-AG on ch2."""
        program = hierarchical_allreduce(2, 4)
        ir = compile_program(program)
        assert ir.channels_used() == 3

    def test_parallelize_adds_channels(self):
        program = hierarchical_allreduce(2, 4, intra_parallel=2)
        ir = compile_program(program)
        assert ir.channels_used() > 3

    def test_aggregated_intra_sends(self):
        """Intra-node phases move N chunks per send (aggregation)."""
        program = hierarchical_allreduce(2, 4)
        ir = compile_program(program)
        counts = {
            instr.count
            for gpu in ir.gpus
            for tb in gpu.threadblocks
            for instr in tb.instructions
        }
        assert 2 in counts  # N = 2 aggregated chunks

    def test_cross_node_traffic_only_between_peers(self):
        program = hierarchical_allreduce(2, 4)
        ir = compile_program(program)
        for src, dst, _ in ir.connections():
            same_node = (src // 4) == (dst // 4)
            if not same_node:
                assert src % 4 == dst % 4, (
                    "inter-node traffic must stay within a GPU-index group"
                )


class TestTwoStepStructure:
    def test_aggregated_ib_sends(self):
        """Step 2 sends G chunks per message."""
        program = twostep_alltoall(2, 4)
        ir = compile_program(program)
        counts = [
            instr.count
            for gpu in ir.gpus
            for tb in gpu.threadblocks
            for instr in tb.instructions
            if instr.count > 1
        ]
        assert counts and set(counts) == {4}

    def test_fewer_cross_node_messages_than_naive(self):
        topo_nodes, g = 2, 4

        def cross_messages(ir):
            total = 0
            for gpu in ir.gpus:
                for tb in gpu.threadblocks:
                    if tb.send_peer is None:
                        continue
                    if gpu.rank // g == tb.send_peer // g:
                        continue
                    total += sum(
                        1 for i in tb.instructions
                        if i.op in (Op.SEND, Op.RECV_COPY_SEND,
                                    Op.RECV_REDUCE_COPY_SEND)
                    )
            return total

        twostep = compile_program(twostep_alltoall(topo_nodes, g))
        naive = compile_program(naive_alltoall(
            topo_nodes * g, gpus_per_node=g
        ))
        assert cross_messages(twostep) < cross_messages(naive)


class TestAllToNextStructure:
    def test_uses_every_nic(self):
        """The whole point: a boundary crossing engages all NICs."""
        program = alltonext(2, 4)
        ir = compile_program(program)
        topo = generic(4, 2)
        sim = IrSimulator(ir, topo)
        result = sim.run(chunk_bytes=1024 * 1024)
        busy_nics = [
            name for name, busy in result.resource_busy_us.items()
            if name.startswith("nic_out") and busy > 0
        ]
        assert len(busy_nics) == 4  # all of node 0's NICs

    def test_naive_uses_one_nic(self):
        program = naive_alltonext(2, 4)
        ir = compile_program(program)
        topo = generic(4, 2)
        result = IrSimulator(ir, topo).run(chunk_bytes=1024 * 1024)
        busy_nics = [
            name for name, busy in result.resource_busy_us.items()
            if name.startswith("nic_out") and busy > 0
        ]
        assert len(busy_nics) == 1

    def test_beats_naive_at_large_sizes(self):
        optimized = compile_program(alltonext(2, 4, instances=2))
        baseline = compile_program(naive_alltonext(2, 4))
        topo = generic(4, 2)
        chunk_bytes = 16 * 1024 * 1024
        fast = IrSimulator(optimized, topo).run(chunk_bytes).time_us
        topo2 = generic(4, 2)
        slow = IrSimulator(baseline, topo2).run(chunk_bytes).time_us
        assert fast < slow


class TestScclStructure:
    def test_two_step_depth(self):
        """(1,2,2): every chunk reaches every rank within two hops."""
        program = sccl_allgather_122(8)
        ir = compile_program(program)
        for gpu in ir.gpus:
            for tb in gpu.threadblocks:
                assert len(tb.instructions) <= 4

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            sccl_allgather_122(6)
        with pytest.raises(ValueError):
            sccl_allgather_122(2)


class TestOutOfPlace:
    def test_out_of_place_ring_preserves_inputs(self):
        import numpy as np

        from repro.runtime import IrExecutor

        program = ring_allreduce(4, in_place=False)
        ir = compile_program(program, CompilerOptions())
        executor = IrExecutor(ir, program.collective)
        executor.run_and_check()
        from repro.core import Buffer

        for rank in range(4):
            np.testing.assert_array_equal(
                executor.buffers[(rank, Buffer.INPUT)],
                executor.initial_inputs[rank],
            )

    def test_out_of_place_with_channels_and_instances(self):
        from repro.runtime import IrExecutor

        program = ring_allreduce(4, channels=2, instances=2,
                                 in_place=False)
        ir = compile_program(program, CompilerOptions())
        IrExecutor(ir, program.collective).run_and_check()
