"""Tests for the DGX-1 hybrid cube-mesh topology."""

import pytest

from repro.algorithms import ring_allgather, sccl_allgather_122
from repro.core import CompilerOptions, compile_program
from repro.core.errors import RuntimeConfigError
from repro.runtime import IrSimulator
from repro.topology import DGX1_LINKS, Dgx1MeshTopology, dgx1_mesh

MiB = 1024 * 1024


class TestWiring:
    def test_six_bricks_per_gpu(self):
        """Every V100 has exactly 6 NVLink bricks."""
        for gpu in range(8):
            total = sum(
                width for pair, width in DGX1_LINKS.items()
                if gpu in pair
            )
            assert total == 6, f"GPU {gpu} has {total} bricks"

    def test_neighbors_are_symmetric(self):
        topo = dgx1_mesh()
        for a in range(8):
            for b in topo.neighbors(a):
                assert a in topo.neighbors(b)
                assert topo.link_width(a, b) == topo.link_width(b, a)

    def test_mesh_is_not_fully_connected(self):
        topo = dgx1_mesh()
        unlinked = [
            (a, b) for a in range(8) for b in range(a + 1, 8)
            if topo.link_width(a, b) == 0
        ]
        assert unlinked  # the cube mesh has non-neighbor pairs

    def test_self_link_is_zero(self):
        assert dgx1_mesh().link_width(3, 3) == 0


class TestRouting:
    def test_direct_pairs_single_hop(self):
        topo = dgx1_mesh()
        resources, alpha, cross = topo.path(0, 3)
        assert len(resources) == 1 and not cross
        assert alpha == topo.machine.nvlink_alpha

    def test_unlinked_pairs_relay(self):
        topo = dgx1_mesh()
        resources, alpha, cross = topo.path(0, 5)
        assert len(resources) == 2
        assert alpha == 2 * topo.machine.nvlink_alpha

    def test_relay_picks_widest_bottleneck(self):
        topo = dgx1_mesh()
        relay = topo.best_relay(0, 5)
        width = min(topo.link_width(0, relay), topo.link_width(relay, 5))
        for other in range(8):
            if other in (0, 5):
                continue
            other_width = min(topo.link_width(0, other),
                              topo.link_width(other, 5))
            assert width >= other_width

    def test_double_links_twice_the_bandwidth(self):
        topo = dgx1_mesh()
        double = topo.link_bandwidth(0, 3)
        single = topo.link_bandwidth(0, 1)
        assert double == pytest.approx(2 * single)

    def test_link_alpha_counts_hops(self):
        topo = dgx1_mesh()
        assert topo.link_alpha(0, 3) == topo.machine.nvlink_alpha
        assert topo.link_alpha(0, 5) == 2 * topo.machine.nvlink_alpha
        assert topo.link_alpha(2, 2) == 0


class TestSimulationOnMesh:
    def test_sccl_allgather_runs(self):
        program = sccl_allgather_122(8, protocol="LL")
        ir = compile_program(
            program, CompilerOptions(max_threadblocks=80)
        )
        result = IrSimulator(ir, dgx1_mesh()).run(chunk_bytes=64 * 1024)
        assert result.time_us > 0

    def test_per_pair_links_contend_independently(self):
        """The ring allgather saturates pair links; the mesh's per-pair
        bandwidth (25-50 GB/s) makes it slower than the flat model's
        per-GPU 150 GB/s ports at bandwidth-bound sizes."""
        from repro.topology import dgx1

        program = ring_allgather(8, channels=2, instances=4)
        ir = compile_program(
            program, CompilerOptions(max_threadblocks=80)
        )
        mesh_time = IrSimulator(ir, dgx1_mesh()).run(
            chunk_bytes=32 * MiB).time_us
        flat_time = IrSimulator(ir, dgx1(1)).run(
            chunk_bytes=32 * MiB).time_us
        assert mesh_time > flat_time

    def test_wrong_gpu_count_rejected(self):
        from repro.topology import DGX2_V100

        with pytest.raises(RuntimeConfigError):
            Dgx1MeshTopology(DGX2_V100)
