"""Tests for the recursive, double-tree, and hierarchical-AllToAll
algorithms."""

import pytest

from repro.algorithms import (
    double_binary_tree_allreduce,
    hierarchical_alltoall,
    naive_alltoall,
    recursive_doubling_allgather,
    recursive_halving_doubling_allreduce,
    ring_allreduce,
    tree_structure,
    twostep_alltoall,
)
from repro.core import CompilerOptions, Op, ProgramError, compile_program
from repro.runtime import IrExecutor, IrSimulator
from repro.topology import generic, ndv4

MiB = 1024 * 1024


class TestRecursiveHalvingDoubling:
    @pytest.mark.parametrize("ranks", [2, 4, 8, 16])
    def test_correct_at_powers_of_two(self, ranks):
        program = recursive_halving_doubling_allreduce(ranks)
        ir = compile_program(program, CompilerOptions())
        IrExecutor(ir, program.collective).run_and_check()

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ProgramError):
            recursive_halving_doubling_allreduce(6)

    def test_log_step_count(self):
        """Each rank sends in 2*log2(R) communication rounds: far fewer
        sends per rank than Ring's 2(R-1)."""
        ranks = 8
        rhd = compile_program(
            recursive_halving_doubling_allreduce(ranks)
        )
        ring = compile_program(ring_allreduce(ranks))

        def max_sends(ir):
            send_ops = (Op.SEND, Op.RECV_COPY_SEND,
                        Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND)
            return max(
                sum(1 for tb in gpu.threadblocks
                    for i in tb.instructions if i.op in send_ops)
                for gpu in ir.gpus
            )

        assert max_sends(rhd) == 6   # 2 * log2(8)
        assert max_sends(ring) == 14  # 2 * (8 - 1)

    def test_faster_than_ring_at_latency_bound_sizes(self):
        topology = ndv4(1)
        rhd = compile_program(recursive_halving_doubling_allreduce(8))
        ring = compile_program(ring_allreduce(8))
        rhd_time = IrSimulator(rhd, topology).run(chunk_bytes=512).time_us
        ring_time = IrSimulator(ring, ndv4(1)).run(
            chunk_bytes=512).time_us
        assert rhd_time < ring_time


class TestRecursiveDoublingAllgather:
    @pytest.mark.parametrize("ranks", [2, 4, 8, 16])
    def test_correct(self, ranks):
        program = recursive_doubling_allgather(ranks)
        ir = compile_program(program, CompilerOptions())
        IrExecutor(ir, program.collective).run_and_check()

    def test_log_rounds(self):
        program = recursive_doubling_allgather(8)
        ir = compile_program(program)
        # Each rank exchanges with log2(8)=3 partners.
        peers = {
            (gpu.rank, tb.send_peer)
            for gpu in ir.gpus for tb in gpu.threadblocks
            if tb.send_peer is not None
        }
        for rank in range(8):
            assert len([p for r, p in peers if r == rank]) == 3


class TestDoubleBinaryTree:
    @pytest.mark.parametrize("ranks", [2, 3, 7, 8, 12])
    def test_correct(self, ranks):
        program = double_binary_tree_allreduce(ranks)
        ir = compile_program(program, CompilerOptions())
        IrExecutor(ir, program.collective).run_and_check()

    def test_two_channels(self):
        ir = compile_program(double_binary_tree_allreduce(8))
        assert ir.channels_used() == 2

    def test_odd_chunk_factor_rejected(self):
        with pytest.raises(ValueError):
            double_binary_tree_allreduce(8, chunk_factor=3)

    def test_trees_are_complementary(self):
        """The point of the second tree: ranks that are leaves in one
        tree do interior work in the other (except at tiny scale)."""
        roles = tree_structure(8)
        leaf_in_both = [
            rank for rank, tree_roles in roles.items()
            if not tree_roles["tree0"] and not tree_roles["tree1"]
        ]
        assert len(leaf_in_both) <= 1

    def test_beats_single_tree_at_bandwidth_sizes(self):
        from repro.nccl import nccl_tree_allreduce

        topology = ndv4(1)
        double = compile_program(
            double_binary_tree_allreduce(8, chunk_factor=2)
        )
        single = compile_program(nccl_tree_allreduce(8, instances=1))
        chunk_bytes = 8 * MiB
        double_time = IrSimulator(double, topology).run(
            chunk_bytes=chunk_bytes).time_us
        single_time = IrSimulator(single, ndv4(1)).run(
            chunk_bytes=chunk_bytes * 2).time_us  # same total buffer
        assert double_time < single_time


class TestHierarchicalAllToAll:
    @pytest.mark.parametrize("nodes,gpus", [(2, 2), (2, 4), (3, 3)])
    def test_correct(self, nodes, gpus):
        program = hierarchical_alltoall(nodes, gpus)
        ir = compile_program(program, CompilerOptions())
        IrExecutor(ir, program.collective).run_and_check()

    def test_fewest_cross_node_messages(self):
        """3-step < 2-step < naive in cross-node message count."""
        nodes, gpus = 2, 4

        def cross_sends(ir):
            total = 0
            for gpu in ir.gpus:
                for tb in gpu.threadblocks:
                    if tb.send_peer is None:
                        continue
                    if gpu.rank // gpus == tb.send_peer // gpus:
                        continue
                    total += sum(
                        1 for i in tb.instructions
                        if i.op in (Op.SEND, Op.RECV_COPY_SEND,
                                    Op.RECV_REDUCE_COPY_SEND)
                    )
            return total

        three = cross_sends(compile_program(
            hierarchical_alltoall(nodes, gpus)))
        two = cross_sends(compile_program(
            twostep_alltoall(nodes, gpus)))
        naive = cross_sends(compile_program(
            naive_alltoall(nodes * gpus, gpus_per_node=gpus)))
        assert three < two < naive

    def test_rail_transfers_are_aggregated(self):
        program = hierarchical_alltoall(2, 4)
        ir = compile_program(program)
        counts = {
            instr.count
            for gpu in ir.gpus for tb in gpu.threadblocks
            for instr in tb.instructions
        }
        assert 16 in counts  # G*G chunks in one rail message
