"""Chunk lineage: provenance through tracing, lowering, and fusion.

The compiler threads each chunk's origin set (rank, buffer, index of
the input chunks whose data it carries) from the Chunk DAG through
lowering into the Instruction DAG and through peephole fusion into the
MSCCL-IR. The key invariant checked here, property-style across
algorithms and rank counts: **a fused instruction's lineage is exactly
the union of its pre-fusion constituents' lineages** — fusion rewrites
the instruction stream but never invents or loses provenance.
"""

import pytest

from repro.algorithms import (
    double_binary_tree_allreduce,
    hierarchical_allreduce,
    ring_allreduce,
)
from repro.core.compiler import CompilerOptions, compile_program
from repro.core.fusion import fuse
from repro.core.lowering import lower

# (label, program builder) x (4, 8 ranks) — the property must hold for
# linear, tree-shaped, and hierarchical dataflow alike.
PROGRAMS = [
    ("ring4", lambda: ring_allreduce(4)),
    ("ring8", lambda: ring_allreduce(8)),
    ("tree4", lambda: double_binary_tree_allreduce(4)),
    ("tree8", lambda: double_binary_tree_allreduce(8)),
    ("hier4", lambda: hierarchical_allreduce(2, 2)),
    ("hier8", lambda: hierarchical_allreduce(2, 4)),
]


def _lowered(program):
    return lower(program.dag, instances=program.instances)


@pytest.mark.parametrize(
    "label,build", PROGRAMS, ids=[p[0] for p in PROGRAMS]
)
class TestFusionPreservesLineage:
    def test_fused_lineage_is_union_of_constituents(self, label, build):
        program = build()
        idag = _lowered(program)
        before = {
            instr.instr_id: instr.lineage for instr in idag.live()
        }
        fuse(idag)
        fused_any = False
        for instr in idag.live():
            constituents = [instr.instr_id, *instr.fused_ids]
            expected = frozenset().union(
                *(before[i] for i in constituents)
            )
            assert instr.lineage == expected, (
                f"{label}: instruction {instr.instr_id} lineage "
                f"diverged from its constituents {constituents}"
            )
            fused_any = fused_any or bool(instr.fused_ids)
        assert fused_any, f"{label}: fusion fired on no instruction"

    def test_fused_ids_are_absorbed_instructions(self, label, build):
        program = build()
        idag = _lowered(program)
        all_ids = {instr.instr_id for instr in idag.live()}
        fuse(idag)
        live_ids = {instr.instr_id for instr in idag.live()}
        for instr in idag.live():
            for absorbed in instr.fused_ids:
                assert absorbed in all_ids
                assert absorbed not in live_ids

    def test_every_origin_survives_to_ir(self, label, build):
        # Nothing along the pipeline drops provenance: the union of
        # lineage over the final IR equals the union before fusion.
        program = build()
        idag = _lowered(program)
        before = frozenset().union(
            *(instr.lineage for instr in idag.live())
        )
        algo = compile_program(build(), CompilerOptions())
        after = set()
        for gpu in algo.ir.gpus:
            for tb in gpu.threadblocks:
                for instr in tb.instructions:
                    after |= set(instr.lineage or ())
        assert after == set(before)
        # Allreduce touches every rank's contribution.
        assert {origin[0] for origin in after} == set(
            range(program.num_ranks)
        )


def test_lineage_roundtrips_through_xml_and_json():
    algo = compile_program(ring_allreduce(4), CompilerOptions())
    from repro.core.ir import MscclIr

    xml_back = MscclIr.from_xml(algo.ir.to_xml())
    json_back = MscclIr.from_json(algo.ir.to_json())
    assert xml_back.to_dict() == algo.ir.to_dict()
    assert json_back.to_dict() == algo.ir.to_dict()
