"""Witnesses: minimized evidence of a runtime conformance failure.

A :class:`Witness` is what the harness hands back when a check fails:
the kind of divergence, the seed and (minimized) schedule that
triggered it, the racing instruction pair when one was identified, and
the fault plan if faults were injected. :func:`minimize_order` is the
schedule reducer: starting from a failing thread-block permutation it
greedily moves blocks back to their program-order positions while the
failure persists, so the surviving displacements are exactly the
ordering decisions the bug needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# (rank, tb_id) and (rank, tb_id, step) — same keys the executor uses.
TbKey = Tuple[int, int]
InstrKey = Tuple[int, int, int]


@dataclass
class Witness:
    """One minimized piece of evidence for a conformance failure."""

    kind: str  # "order-variance" | "race" | "unjustified-pop" | "fault"
    detail: str
    seed: Optional[int] = None
    # The minimized failing sweep order, and which thread blocks remain
    # displaced from program order in it (empty for non-schedule kinds).
    schedule: Optional[List[TbKey]] = None
    displaced: Optional[List[TbKey]] = None
    # The racing instruction pair, when the race scan identified one.
    pair: Optional[Tuple[InstrKey, InstrKey]] = None
    faults: Optional[str] = None  # FaultPlan.describe(), if injected

    def summary(self) -> str:
        parts = [f"[{self.kind}] {self.detail}"]
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        if self.displaced:
            moved = ", ".join(f"r{r}/tb{t}" for r, t in self.displaced)
            parts.append(f"minimized schedule displaces {moved}")
        if self.pair is not None:
            (ra, ta, sa), (rb, tb, sb) = self.pair
            parts.append(
                f"racing pair r{ra}/tb{ta}/step{sa} <-> "
                f"r{rb}/tb{tb}/step{sb}"
            )
        if self.faults:
            parts.append(f"faults: {self.faults}")
        return "; ".join(parts)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "seed": self.seed,
            "schedule": ([list(key) for key in self.schedule]
                         if self.schedule else None),
            "displaced": ([list(key) for key in self.displaced]
                          if self.displaced else None),
            "pair": ([list(node) for node in self.pair]
                     if self.pair else None),
            "faults": self.faults,
        }


@dataclass
class ConformanceReport:
    """Everything one conformance run established about an algorithm."""

    algorithm: str
    seeds: int
    # Check name -> number of rounds that ran it (e.g. how many
    # shuffled schedules, how many fault plans, how many pops checked).
    rounds: Dict[str, int] = field(default_factory=dict)
    witnesses: List[Witness] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.witnesses

    def add_round(self, check: str, count: int = 1) -> None:
        self.rounds[check] = self.rounds.get(check, 0) + count

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "seeds": self.seeds,
            "ok": self.ok,
            "rounds": dict(self.rounds),
            "witnesses": [w.to_dict() for w in self.witnesses],
        }

    def text(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        checks = "  ".join(
            f"{name}={count}" for name, count in sorted(self.rounds.items())
        )
        lines = [f"{status} {self.algorithm}  ({checks})"]
        for witness in self.witnesses:
            lines.append(f"  - {witness.summary()}")
        return "\n".join(lines)


def displaced_blocks(base: Sequence[TbKey],
                     order: Sequence[TbKey]) -> List[TbKey]:
    """Thread blocks not at their program-order position in ``order``."""
    return [key for key, ref in zip(order, base) if key != ref]


def minimize_order(base: Sequence[TbKey], failing: Sequence[TbKey],
                   still_fails: Callable[[List[TbKey]], bool],
                   max_trials: int = 48) -> List[TbKey]:
    """Reduce a failing permutation toward program order.

    Greedy 1-minimal reduction: for each thread block, try moving it
    back to its program-order position; keep the move when the reduced
    schedule still fails. The result is a failing order whose remaining
    displacements are each individually necessary (within the trial
    budget) — the minimized failing schedule reported in a witness.
    """
    base = list(base)
    current = list(failing)
    trials = 0
    changed = True
    while changed and trials < max_trials:
        changed = False
        for key in base:
            if trials >= max_trials:
                break
            candidate = [k for k in current if k != key]
            candidate.insert(base.index(key), key)
            if candidate == current:
                continue
            trials += 1
            if still_fails(candidate):
                current = candidate
                changed = True
    return current


def fold_into_diagnosis(diagnosis, report: ConformanceReport):
    """Attach a report's witnesses to a :class:`~repro.observe.Diagnosis`.

    The diagnose engine explains *why a schedule is slow*; conformance
    witnesses explain *why it is wrong*. Folding them into the same
    object lets ``repro-tools``/reporting render one verdict per
    algorithm.
    """
    diagnosis.witnesses.extend(w.summary() for w in report.witnesses)
    return diagnosis
