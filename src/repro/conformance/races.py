"""Race scan: conflicting buffer accesses unordered by happens-before.

The executor logs every local buffer read and write it performs (see
``IrExecutor.access_log``). Two accesses *conflict* when they touch an
overlapping region — same rank and buffer, intersecting chunk-index
ranges, intersecting element fractions — they come from different
thread blocks, and at least one is a write. A conflict is a **race**
when neither instruction reaches the other in the IR's happens-before
graph (:func:`repro.core.verification.dependence_edges`: program
order, cross-thread-block deps, send->recv communication edges, and
FIFO slot back-pressure). MSCCLang programs are race-free by
construction (paper section 3.3), so any hit here is compiler or
hand-edited-IR breakage, and the pair it names is the witness the
conformance harness reports.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core.ir import MscclIr
from ..core.verification import dependence_edges

InstrKey = Tuple[int, int, int]

#: One detected race: the two unordered instructions plus a description
#: of the contested location.
RacePair = Tuple[InstrKey, InstrKey, str]


class _Reachability:
    """Memoized forward reachability over the dependence graph."""

    def __init__(self, ir: MscclIr, num_slots: int):
        self._adjacency: Dict[InstrKey, List[InstrKey]] = {}
        for src, dst, _kind in dependence_edges(ir, num_slots):
            self._adjacency.setdefault(src, []).append(dst)
        self._closure: Dict[InstrKey, Set[InstrKey]] = {}

    def ordered(self, a: InstrKey, b: InstrKey) -> bool:
        return b in self._reach(a) or a in self._reach(b)

    def _reach(self, node: InstrKey) -> Set[InstrKey]:
        cached = self._closure.get(node)
        if cached is not None:
            return cached
        seen: Set[InstrKey] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            for succ in self._adjacency.get(current, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        self._closure[node] = seen
        return seen


def find_races(ir: MscclIr, access_log, num_slots: int = 8,
               limit: int = 8) -> List[RacePair]:
    """Scan one run's access log for happens-before violations.

    ``access_log`` rows are the executor's ``(node, kind, buffer,
    index, count, frac_lo, frac_hi)`` tuples. Returns up to ``limit``
    distinct racing pairs, each with a human-readable location string;
    an empty list means every conflicting access pair is ordered.
    """
    reach = _Reachability(ir, num_slots)

    # Bucket accesses per touched chunk so only same-location pairs are
    # compared; one access spans ``count`` chunks starting at ``index``.
    buckets: Dict[tuple, List[tuple]] = {}
    for node, kind, buffer, index, count, lo, hi in access_log:
        if hi <= lo:
            continue  # empty element range can't conflict
        for chunk_index in range(index, index + count):
            buckets.setdefault((node[0], buffer, chunk_index), []).append(
                (node, kind, lo, hi)
            )

    races: List[RacePair] = []
    seen_pairs: Set[frozenset] = set()
    for (rank, buffer, chunk_index), rows in sorted(
            buckets.items(), key=lambda kv: str(kv[0])):
        for i, (node_a, kind_a, lo_a, hi_a) in enumerate(rows):
            for node_b, kind_b, lo_b, hi_b in rows[i + 1:]:
                if node_a[:2] == node_b[:2]:
                    continue  # same thread block: program order
                if kind_a == "r" and kind_b == "r":
                    continue
                if max(lo_a, lo_b) >= min(hi_a, hi_b):
                    continue  # disjoint element fractions
                pair_key = frozenset((node_a, node_b))
                if pair_key in seen_pairs:
                    continue
                seen_pairs.add(pair_key)
                if reach.ordered(node_a, node_b):
                    continue
                first, second = sorted((node_a, node_b))
                races.append((first, second,
                              f"rank {rank} {buffer.value}[{chunk_index}]"))
                if len(races) >= limit:
                    return races
    return races
