"""The differential conformance + fault-injection harness.

:func:`run_conformance` takes a compiled algorithm and stress-tests the
two runtimes against each other:

* **Order invariance** — the executor is run under
  randomized-but-seeded thread-block sweep orders; a race-free IR's
  output must be *bitwise* identical under every order, because the
  data each instruction computes depends only on the dataflow (fixed
  per-thread-block program order plus sequence-tagged FIFO messages),
  never on which runnable block the scheduler happened to service
  first.
* **FIFO pop justification** — every executor FIFO pop (which send's
  payload a receive consumed) must correspond to a ``fifo``
  happens-before edge recorded by the simulator's
  :class:`~repro.observe.ExecutionGraph`; a pop with no matching edge
  means the two runtimes disagree about the message pairing — a race
  witness.
* **Engine parity** — the simulator's batched event loop must produce
  a bitwise-identical :class:`~repro.runtime.SimResult` (and the same
  happens-before projection) as the reference generator loop on this
  IR; any divergence is an ``engine-parity`` witness.
* **Race scan** — conflicting buffer accesses unordered by the IR's
  dependence graph (:mod:`repro.conformance.races`), which names the
  exact racing instruction pair.
* **Fault injection** — perturbed FIFO slot windows, delayed
  deliveries, dropped-then-retried sends, and semaphore skew
  (:class:`~repro.runtime.FaultPlan`). Every fault is a legal timing
  perturbation, so each run must either complete with bitwise-correct
  data or raise a typed :class:`~repro.core.errors.DeadlockError` —
  and a slot window the deadlock audit itself accepts must never
  deadlock.

Failures come back as minimized :class:`~repro.conformance.Witness`
objects; :func:`check_conformance` raises a
:class:`~repro.core.errors.ConformanceError` carrying them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import (ConformanceError, DeadlockError, MscclError,
                           VerificationError)
from ..core.ir import MscclIr
from ..core.verification import audit_ir
from ..runtime.executor import FaultPlan, IrExecutor
from ..runtime.simulator import (IrSimulator, SimConfig,
                                 happens_before_pairs, sim_parity_diffs)
from ..topology import generic
from .races import find_races
from .witness import (ConformanceReport, TbKey, Witness, displaced_blocks,
                      minimize_order)


@dataclass
class ConformanceConfig:
    """Knobs for one conformance run."""

    seeds: int = 5  # shuffled-schedule rounds
    elements_per_chunk: int = 8
    data_seed: int = 1234  # input data; fixed so outputs are comparable
    check_order_invariance: bool = True
    check_fifo_edges: bool = True
    check_engine_parity: bool = True
    check_races: bool = True
    inject_faults: bool = True
    topology: Optional[object] = field(default=None, repr=False)
    num_slots: int = 8  # FIFO depth the deadlock audit assumed
    max_minimize_trials: int = 48
    max_witnesses: int = 8


def shuffled_order(seed: int, keys: Sequence[TbKey]) -> List[TbKey]:
    """The seeded random sweep permutation used for round ``seed``."""
    perm = list(keys)
    random.Random(seed).shuffle(perm)
    return perm


def _constant_order(perm: Sequence[TbKey]):
    """A sweep-order hook servicing thread blocks in one fixed order."""
    perm = list(perm)
    return lambda sweep_index, keys: perm


def _first_line(exc: BaseException) -> str:
    return str(exc).splitlines()[0] if str(exc) else type(exc).__name__


def _send_space(ir: MscclIr) -> List[Tuple[int, int, int, int]]:
    """Every (src, dst, channel, seq) message the IR sends."""
    from ..runtime.executor import SEND_OPS

    counters: Dict[Tuple[int, int, int], int] = {}
    sends: List[Tuple[int, int, int, int]] = []
    for gpu in ir.gpus:
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                if instr.op in SEND_OPS:
                    conn = (gpu.rank, tb.send_peer, tb.channel)
                    seq = counters.get(conn, 0)
                    counters[conn] = seq + 1
                    sends.append((*conn, seq))
    return sends


def _fault_plans(ir: MscclIr, cfg: ConformanceConfig):
    """The fault matrix: (label, plan, deadlock_acceptable) triples.

    A reduced slot window is only allowed to deadlock when the static
    audit *also* rejects that window — if ``audit_ir`` proves the IR
    cycle-free at ``k`` slots, the executor must complete at ``k``
    slots too.
    """
    plans = []
    for slots in (1, 2, cfg.num_slots):
        try:
            audit_ir(ir, num_slots=slots)
            may_deadlock = False
        except DeadlockError:
            may_deadlock = True
        plans.append((f"fifo_slots={slots}", FaultPlan(fifo_slots=slots),
                      may_deadlock))
    for delay in (1, 3):
        plans.append((f"deliver_delay={delay}",
                      FaultPlan(deliver_delay=delay), False))
    sends = _send_space(ir)
    rng = random.Random(cfg.data_seed)
    if sends:
        for round_index in range(2):
            chosen = rng.sample(sends, min(3, len(sends)))
            drops = {key: rng.randint(1, 2) for key in chosen}
            plans.append((f"dropped sends #{round_index}",
                          FaultPlan(drop_sends=drops), False))
    for skew in (1, 2):
        plans.append((f"semaphore_skew={skew}",
                      FaultPlan(semaphore_skew=skew), False))
    combined = FaultPlan(
        fifo_slots=cfg.num_slots, deliver_delay=1, semaphore_skew=1,
        drop_sends={sends[0]: 1} if sends else {},
    )
    plans.append(("combined", combined, False))
    return plans


def run_conformance(algo, config: Optional[ConformanceConfig] = None, *,
                    collective=None) -> ConformanceReport:
    """Differentially test one compiled algorithm; returns the report.

    ``algo`` is a :class:`~repro.core.CompiledAlgorithm` (or anything
    with ``.ir``/``.collective``; a raw :class:`MscclIr` works when
    ``collective`` is passed explicitly). When neither supplies a real
    :class:`~repro.core.Collective` — a raw IR's ``.collective`` is
    just a name string, the usual case for imported XML — one is
    resolved via :func:`repro.core.interop.resolve_collective`: a
    standard collective reconstructed from the name when possible,
    otherwise the IR's traced program-order semantics, which is exactly
    the oracle the differential checks below need.
    """
    ir = getattr(algo, "ir", algo)
    coll = collective if collective is not None \
        else getattr(algo, "collective", None)
    if coll is None or isinstance(coll, str):
        from ..core.interop import resolve_collective
        coll = resolve_collective(ir)
    cfg = config or ConformanceConfig()
    report = ConformanceReport(algorithm=ir.name, seeds=cfg.seeds)
    keys = [(gpu.rank, tb.tb_id) for gpu in ir.gpus
            for tb in gpu.threadblocks]

    def new_executor() -> IrExecutor:
        return IrExecutor(ir, coll,
                          elements_per_chunk=cfg.elements_per_chunk,
                          seed=cfg.data_seed)

    def snapshot(executor: IrExecutor):
        return {key: array.copy()
                for key, array in executor.buffers.items()}

    def state_equal(a, b) -> bool:
        return all(np.array_equal(a[key], b[key], equal_nan=True)
                   for key in a)

    def full() -> bool:
        return len(report.witnesses) >= cfg.max_witnesses

    # -- baseline: program order, no faults ---------------------------
    base = new_executor()
    try:
        base.run()
    except MscclError as exc:
        report.witnesses.append(Witness(
            "baseline", f"program-order run failed: {_first_line(exc)}"
        ))
        return report  # nothing to differ against
    report.add_round("baseline")
    base_state = snapshot(base)
    try:
        base.check()
    except VerificationError as exc:
        report.witnesses.append(Witness(
            "postcondition", _first_line(exc)
        ))

    # -- static race scan over the baseline access log ----------------
    race_pair = None
    if cfg.check_races:
        report.add_round("race-scan")
        for node_a, node_b, location in find_races(
                ir, base.access_log, cfg.num_slots,
                limit=cfg.max_witnesses):
            if race_pair is None:
                race_pair = (node_a, node_b)
            if not full():
                report.witnesses.append(Witness(
                    "race",
                    f"unordered conflicting accesses to {location}",
                    pair=(node_a, node_b),
                ))

    # -- the simulator's happens-before relation ----------------------
    fifo_pairs = None
    if cfg.check_fifo_edges:
        topology = cfg.topology or generic(ir.num_ranks, 1)
        graph = IrSimulator(ir, topology).execution_graph()
        fifo_pairs = happens_before_pairs(graph)["fifo"]
        _check_pops(base, fifo_pairs, report, seed=None, full=full)

    # -- batched vs reference simulator engine parity ------------------
    # The batched event loop's contract is bitwise identity with the
    # reference loop; check it on this IR so every algorithm that goes
    # through conformance also certifies the engine rewrite.
    if cfg.check_engine_parity:
        topology = cfg.topology or generic(ir.num_ranks, 1)
        report.add_round("engine-parity")
        runs = {}
        for engine in ("batched", "reference"):
            sim = IrSimulator(ir, topology, None,
                              SimConfig(engine=engine,
                                        collect_trace=True))
            runs[engine] = sim.run(chunk_bytes=65536.0)
        diffs = sim_parity_diffs(runs["batched"], runs["reference"],
                                 labels=("batched", "reference"))
        if not diffs and (
                happens_before_pairs(runs["batched"].graph)
                != happens_before_pairs(runs["reference"].graph)):
            diffs = ["engines disagree on the happens-before "
                     "projection of the execution graph"]
        for diff in diffs:
            if not full():
                report.witnesses.append(Witness("engine-parity", diff))

    def run_with(perm, faults=None) -> IrExecutor:
        executor = new_executor()
        executor.run(order=_constant_order(perm) if perm else None,
                     faults=faults)
        return executor

    def order_fails(perm) -> bool:
        try:
            executor = run_with(perm)
        except MscclError:
            return True
        return not state_equal(snapshot(executor), base_state)

    def minimized_witness(kind, detail, seed, perm) -> Witness:
        reduced = minimize_order(keys, perm, order_fails,
                                 cfg.max_minimize_trials)
        return Witness(kind, detail, seed=seed, schedule=reduced,
                       displaced=displaced_blocks(keys, reduced),
                       pair=race_pair)

    # -- order invariance under shuffled sweep schedules --------------
    if cfg.check_order_invariance:
        for seed in range(cfg.seeds):
            if full():
                break
            perm = shuffled_order(seed, keys)
            report.add_round("order")
            try:
                executor = run_with(perm)
            except MscclError as exc:
                report.witnesses.append(minimized_witness(
                    "order-variance",
                    f"shuffled schedule failed: {_first_line(exc)}",
                    seed, perm,
                ))
                continue
            if fifo_pairs is not None:
                _check_pops(executor, fifo_pairs, report, seed=seed,
                            full=full)
            if not state_equal(snapshot(executor), base_state):
                report.witnesses.append(minimized_witness(
                    "order-variance",
                    "outputs differ from the program-order run",
                    seed, perm,
                ))

    # -- fault injection ----------------------------------------------
    if cfg.inject_faults:
        for plan_index, (label, plan, may_deadlock) in enumerate(
                _fault_plans(ir, cfg)):
            if full():
                break
            perm = shuffled_order(plan_index, keys)
            report.add_round("faults")
            try:
                executor = run_with(perm, faults=plan)
            except DeadlockError as exc:
                if may_deadlock:
                    report.add_round("fault-deadlock-accepted")
                else:
                    report.witnesses.append(Witness(
                        "fault",
                        f"{label}: unexpected deadlock: "
                        f"{_first_line(exc)}",
                        seed=plan_index, faults=plan.describe(),
                        pair=race_pair,
                    ))
                continue
            except MscclError as exc:
                report.witnesses.append(Witness(
                    "fault", f"{label}: {_first_line(exc)}",
                    seed=plan_index, faults=plan.describe(),
                    pair=race_pair,
                ))
                continue
            if not state_equal(snapshot(executor), base_state):
                report.witnesses.append(Witness(
                    "fault",
                    f"{label}: outputs differ from the fault-free run",
                    seed=plan_index, faults=plan.describe(),
                    pair=race_pair,
                ))

    return report


def _check_pops(executor: IrExecutor, fifo_pairs, report, seed,
                full) -> None:
    """Every executor FIFO pop must match a simulator ``fifo`` edge."""
    report.add_round("pop-check", len(executor.pop_log))
    for pop in executor.pop_log:
        justified = (pop.producer is not None
                     and (pop.producer, pop.consumer) in fifo_pairs)
        if justified:
            continue
        if not full():
            src, dst, channel = pop.conn
            report.witnesses.append(Witness(
                "unjustified-pop",
                f"FIFO pop of seq {pop.seq} on {src}->{dst} "
                f"ch{channel} has no matching simulator "
                f"happens-before edge",
                seed=seed,
                pair=((pop.producer, pop.consumer)
                      if pop.producer is not None else None),
            ))
        return  # one witness per run is enough; avoid flooding


def check_conformance(algo, config: Optional[ConformanceConfig] = None,
                      *, collective=None) -> ConformanceReport:
    """:func:`run_conformance`, raising on any witness."""
    report = run_conformance(algo, config, collective=collective)
    if not report.ok:
        details = "\n".join(
            f"  {witness.summary()}" for witness in report.witnesses
        )
        raise ConformanceError(
            f"{report.algorithm}: {len(report.witnesses)} conformance "
            f"witness(es):\n{details}",
            witnesses=report.witnesses,
        )
    return report
