"""Differential conformance + fault-injection harness for the runtime.

Checks that the executor and simulator agree with each other and with
the IR's static happens-before graph: order-invariant outputs under
shuffled schedules, FIFO pops justified by simulator edges, no
unordered conflicting buffer accesses, and correct-or-typed-deadlock
behaviour under injected timing faults. See
:mod:`repro.conformance.harness` for the semantics.
"""

from .harness import (ConformanceConfig, check_conformance, run_conformance,
                      shuffled_order)
from .races import RacePair, find_races
from .witness import (ConformanceReport, Witness, displaced_blocks,
                      fold_into_diagnosis, minimize_order)

__all__ = [
    "ConformanceConfig",
    "ConformanceReport",
    "RacePair",
    "Witness",
    "check_conformance",
    "displaced_blocks",
    "find_races",
    "fold_into_diagnosis",
    "minimize_order",
    "run_conformance",
    "shuffled_order",
]
