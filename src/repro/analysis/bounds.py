"""Analytic alpha-beta lower bounds for collectives on a topology.

Classic results (Chan et al., "Collective communication: theory,
practice, and experience"): any AllReduce needs ceil(log2 R) latency
steps and moves at least 2*(R-1)/R of the buffer through each rank's
slowest port; AllGather/ReduceScatter need half of that, AllToAll needs
(R-1)/R per rank. The bounds serve two purposes:

* sanity: the simulator can never beat them (tested property), and
* insight: `efficiency()` says how close an algorithm gets, the same
  judgment the paper applies when comparing schedules.

These are machine bounds, not algorithm models: latency uses the
fastest relevant hop, bandwidth the tightest cut (node egress NVLink
for single node, NIC aggregate for multi-node).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..topology.model import Topology


@dataclass(frozen=True)
class Bound:
    """A latency + bandwidth lower bound: time >= latency + bytes/rate."""

    latency_us: float
    wire_bytes_per_rank: float
    bandwidth_gbps: float

    @property
    def bandwidth_us(self) -> float:
        return self.wire_bytes_per_rank / (self.bandwidth_gbps * 1e3)

    def time_us(self) -> float:
        return self.latency_us + self.bandwidth_us


def _min_alpha(topology: Topology) -> float:
    if topology.num_nodes > 1:
        # Some step must cross nodes for a global collective.
        return topology.machine.nvlink_alpha
    return topology.machine.nvlink_alpha


def _rank_bandwidth(topology: Topology) -> float:
    """Best-case per-rank injection bandwidth (GB/s)."""
    return topology.machine.nvlink_bandwidth


def _cross_node_bandwidth_per_rank(topology: Topology) -> float:
    """Per-rank share of a node's aggregate NIC bandwidth (GB/s)."""
    machine = topology.machine
    total = machine.nics_per_node * machine.ib_bandwidth
    return total / machine.gpus_per_node


def allreduce_bound(topology: Topology, buffer_bytes: float) -> Bound:
    """Lower bound for AllReduce of a per-rank buffer."""
    ranks = topology.num_ranks
    latency = math.ceil(math.log2(max(ranks, 2))) * _min_alpha(topology)
    wire = 2 * buffer_bytes * (ranks - 1) / ranks
    bandwidth = _rank_bandwidth(topology)
    if topology.num_nodes > 1:
        # The node boundary is the tighter cut: 2B/G per rank must cross.
        per_rank_cross = 2 * buffer_bytes * (
            topology.num_nodes - 1) / topology.num_nodes
        cross_rate = _cross_node_bandwidth_per_rank(topology)
        if per_rank_cross / cross_rate > wire / bandwidth:
            return Bound(latency, per_rank_cross, cross_rate)
    return Bound(latency, wire, bandwidth)


def allgather_bound(topology: Topology, buffer_bytes: float) -> Bound:
    """Lower bound for AllGather producing ``buffer_bytes`` per rank."""
    ranks = topology.num_ranks
    latency = math.ceil(math.log2(max(ranks, 2))) * _min_alpha(topology)
    wire = buffer_bytes * (ranks - 1) / ranks
    return Bound(latency, wire, _rank_bandwidth(topology))


def reducescatter_bound(topology: Topology,
                        buffer_bytes: float) -> Bound:
    """Lower bound for ReduceScatter of a per-rank input buffer."""
    return allgather_bound(topology, buffer_bytes)


def alltoall_bound(topology: Topology, buffer_bytes: float) -> Bound:
    """Lower bound for AllToAll of a per-rank buffer."""
    ranks = topology.num_ranks
    latency = _min_alpha(topology)  # one step suffices in principle
    wire = buffer_bytes * (ranks - 1) / ranks
    bandwidth = _rank_bandwidth(topology)
    if topology.num_nodes > 1:
        per_rank_cross = buffer_bytes * (
            topology.num_nodes - 1) / topology.num_nodes
        cross_rate = _cross_node_bandwidth_per_rank(topology)
        if per_rank_cross / cross_rate > wire / bandwidth:
            return Bound(latency, per_rank_cross, cross_rate)
    return Bound(latency, wire, bandwidth)


BOUNDS = {
    "allreduce": allreduce_bound,
    "allgather": allgather_bound,
    "reducescatter": reducescatter_bound,
    "alltoall": alltoall_bound,
}


def bound_for(collective_name: str, topology: Topology,
              buffer_bytes: float) -> Bound:
    """Dispatch on the collective's name (as stored in the IR)."""
    try:
        fn = BOUNDS[collective_name]
    except KeyError:
        raise ValueError(
            f"no analytic bound for collective {collective_name!r}; "
            f"known: {sorted(BOUNDS)}"
        ) from None
    return fn(topology, buffer_bytes)


def efficiency(measured_us: float, bound: Bound) -> float:
    """Fraction of the lower bound achieved (1.0 = optimal)."""
    floor = bound.time_us()
    if measured_us <= 0:
        return 0.0
    return min(1.0, floor / measured_us)
