"""Assemble a single evaluation report from the benchmark results.

``pytest benchmarks/`` drops one table per figure into
``benchmarks/results/``; :func:`build_report` stitches them into a
markdown document with a header, an efficiency audit (how close the
headline algorithms get to the analytic alpha-beta floors), and the
tables in paper order. Observability metrics dumped by
``repro-tools trace --metrics results/<name>.metrics.json`` and
diagnoses dumped by ``repro-tools diagnose --json
results/<name>.diagnose.json`` are folded in as markdown tables. Also
exposed as ``repro-tools report``.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Dict, List, Optional

from ..core.cache import default_compile_cache
from ..core.compiler import CompilerOptions, compile_program
from ..topology import ndv4
from .bounds import allreduce_bound, efficiency
from .parallel import parallel_map
from .sweep import MiB, format_size, ir_timer

# Paper order for known result files; anything else is appended after.
SECTION_ORDER = [
    "fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f", "fig8g",
    "fig8h", "fig11", "e2e_workloads", "allreduce_zoo",
    "ablation_fusion", "ablation_pipelining", "ablation_aggregation",
    "ablation_parallelization",
]


def efficiency_audit(sizes: Optional[List[int]] = None,
                     jobs: Optional[int] = None) -> str:
    """How close the tuned Ring AllReduce gets to the analytic floor.

    The compile goes through the process-wide two-tier cache and the
    per-size simulations shard across ``jobs`` worker processes
    (default: ``$REPRO_JOBS``, else sequential).
    """
    from ..algorithms import ring_allreduce

    sizes = sizes or [1 * MiB, 16 * MiB, 128 * MiB]
    topology = ndv4(1)
    program = ring_allreduce(8, channels=1, instances=24,
                             protocol="Simple")
    ir = compile_program(
        program, CompilerOptions(max_threadblocks=108,
                                 cache=default_compile_cache())
    )
    timer = ir_timer(ir, topology, program.collective)
    measured_us = parallel_map(timer, sizes, jobs=jobs, label="audit")
    lines = [
        "| buffer | measured (us) | alpha-beta floor (us) | efficiency |",
        "|---|---|---|---|",
    ]
    for size, measured in zip(sizes, measured_us):
        bound = allreduce_bound(ndv4(1), size)
        lines.append(
            f"| {format_size(size)} | {measured:.1f} | "
            f"{bound.time_us():.1f} | "
            f"{efficiency(measured, bound):.0%} |"
        )
    return "\n".join(lines)


def collect_results(results_dir: Path) -> Dict[str, str]:
    """name -> table text for every result file present."""
    tables: Dict[str, str] = {}
    if not results_dir.is_dir():
        return tables
    for path in sorted(results_dir.glob("*.txt")):
        tables[path.stem] = path.read_text().rstrip()
    return tables


def metrics_markdown(metrics: Dict) -> str:
    """An observability metrics dict (see
    :func:`repro.observe.metrics_dict`) as markdown tables."""
    lines: List[str] = []
    sim = metrics.get("sim")
    if sim:
        lines += [
            f"{sim['instructions']} instructions / "
            f"{sim['threadblocks']} thread blocks, "
            f"{sim['time_us']:.1f} us simulated "
            f"({sim['protocol']}, {sim['tiles']} tiles).",
            "",
        ]
    counters = metrics.get("counters", {})
    if counters:
        lines += ["| counter | total |", "|---|---|"]
        lines += [
            f"| `{name}` | {value:.1f} |"
            for name, value in sorted(counters.items())
        ]
        lines.append("")
    links = metrics.get("links", {})
    if links:
        lines += ["| link | busy (us) | occupancy |", "|---|---|---|"]
        ranked = sorted(links.items(),
                        key=lambda kv: -kv[1]["occupancy"])
        lines += [
            f"| `{name}` | {row['busy_us']:.1f} | "
            f"{row['occupancy']:.0%} |"
            for name, row in ranked
        ]
        lines.append("")
    return "\n".join(lines).rstrip()


def diagnosis_markdown(diag: Dict) -> str:
    """A diagnosis dict (see :func:`repro.observe.diagnosis_dict`) as a
    markdown bottleneck table with hints."""
    from ..observe.diagnose import CATEGORY_LABELS

    lines: List[str] = []
    time_us = diag.get("time_us", 0.0)
    header = f"Critical path: {time_us:.1f} us"
    if diag.get("algorithm"):
        header += f" for `{diag['algorithm']}`"
    if diag.get("size_bytes"):
        header += f" at {format_size(diag['size_bytes'])}"
    lines += [header + ".", ""]
    attribution = diag.get("attribution", {})
    if attribution:
        total = max(time_us, 1e-12)
        lines += ["| bottleneck | us | share |", "|---|---|---|"]
        ranked = sorted(attribution.items(), key=lambda kv: -kv[1])
        for kind, us in ranked:
            if us <= 0:
                continue
            marker = " **(dominant)**" if kind == diag.get(
                "dominant") else ""
            lines.append(
                f"| {CATEGORY_LABELS.get(kind, kind)}{marker} | "
                f"{us:.1f} | {us / total:.0%} |"
            )
        lines.append("")
    channel_share = diag.get("channel_share", {})
    if channel_share:
        shares = ", ".join(
            f"ch{ch}: {share:.0%}"
            for ch, share in sorted(channel_share.items())
        )
        lines += [f"Critical-path time by channel: {shares}.", ""]
    hints = diag.get("hints", [])
    if hints:
        lines += [f"- {hint}" for hint in hints]
        lines.append("")
    return "\n".join(lines).rstrip()


def collect_diagnoses(results_dir: Path) -> Dict[str, Dict]:
    """name -> parsed diagnosis dict for every ``*.diagnose.json``."""
    found: Dict[str, Dict] = {}
    if not results_dir.is_dir():
        return found
    for path in sorted(results_dir.glob("*.diagnose.json")):
        try:
            found[path.name[: -len(".diagnose.json")]] = json.loads(
                path.read_text()
            )
        except (OSError, json.JSONDecodeError):
            continue  # a malformed dump should not sink the report
    return found


def collect_metrics(results_dir: Path) -> Dict[str, Dict]:
    """name -> parsed metrics dict for every ``*.metrics.json``."""
    found: Dict[str, Dict] = {}
    if not results_dir.is_dir():
        return found
    for path in sorted(results_dir.glob("*.metrics.json")):
        try:
            found[path.name[: -len(".metrics.json")]] = json.loads(
                path.read_text()
            )
        except (OSError, json.JSONDecodeError):
            continue  # a malformed dump should not sink the report
    return found


def build_report(results_dir: Path,
                 include_audit: bool = True,
                 jobs: Optional[int] = None) -> str:
    """The full markdown report."""
    tables = collect_results(results_dir)
    lines = [
        "# MSCCLang reproduction — evaluation report",
        "",
        f"Generated on {platform.platform()} / Python "
        f"{platform.python_version()}.",
        "",
        f"{len(tables)} result tables found in `{results_dir}`."
        if tables else
        f"No result tables in `{results_dir}`; run `pytest benchmarks/` "
        "first.",
        "",
    ]
    if include_audit:
        lines += [
            "## Efficiency audit",
            "",
            "Tuned Ring AllReduce (8xA100, ch=1 r=24 Simple) against the",
            "machine's alpha-beta lower bound:",
            "",
            efficiency_audit(jobs=jobs),
            "",
        ]
    ordered = [name for name in SECTION_ORDER if name in tables]
    ordered += [name for name in sorted(tables) if name not in ordered]
    for name in ordered:
        lines += [f"## {name}", "", "```", tables[name], "```", ""]
    for name, metrics in collect_metrics(results_dir).items():
        lines += [f"## {name} — observability metrics", "",
                  metrics_markdown(metrics), ""]
    for name, diag in collect_diagnoses(results_dir).items():
        lines += [f"## {name} — bottleneck diagnosis", "",
                  diagnosis_markdown(diag), ""]
    return "\n".join(lines)
