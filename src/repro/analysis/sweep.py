"""Buffer-size sweeps: the workhorse behind every figure bench.

A sweep takes named *configurations* (compiled IRs or arbitrary
``time_us(buffer_bytes)`` callables), runs them over a geometric grid of
buffer sizes on one topology, and returns a :class:`SweepResult` with
per-size latencies, ready for speedup computation and table rendering.

Sweeps parallelize: ``run_sweep(..., jobs=N)`` (or ``REPRO_JOBS=N``)
shards the (configuration x size) points across the
:mod:`repro.analysis.parallel` worker pool, with results merged in task
order so the parallel table is bitwise-identical to the sequential one.
"""

from __future__ import annotations

import asyncio
import functools
import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.cache import default_compile_cache
from ..core.collectives import Collective
from ..core.compiler import (CompiledAlgorithm, CompilerOptions,
                             compile_program)
from ..core.ir import MscclIr
from ..runtime.simulator import IrSimulator, SimConfig
from ..topology.model import Topology
from .parallel import parallel_map, resolve_jobs

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024


def size_grid(start_bytes: int, end_bytes: int) -> List[int]:
    """Powers of two from start to end inclusive (the figures' x axes)."""
    if start_bytes <= 0:
        raise ValueError(
            f"start_bytes must be positive, got {start_bytes}"
        )
    if start_bytes > end_bytes:
        raise ValueError(
            f"empty size grid: start_bytes={start_bytes} exceeds "
            f"end_bytes={end_bytes}"
        )
    sizes = []
    size = start_bytes
    while size <= end_bytes:
        sizes.append(size)
        size *= 2
    return sizes


def format_size(nbytes: float) -> str:
    """1KB-style labels matching the paper's axis ticks."""
    if nbytes >= GiB:
        return f"{nbytes / GiB:g}GB"
    if nbytes >= MiB:
        return f"{nbytes / MiB:g}MB"
    if nbytes >= KiB:
        return f"{nbytes / KiB:g}KB"
    return f"{nbytes:g}B"


def chunk_bytes_for(buffer_bytes: float, chunks: int) -> int:
    """Bytes per chunk when a call buffer divides into ``chunks``.

    Rounded *up*, matching how the runtime tiles real buffers: a
    970-byte buffer over 8 chunks moves 8 chunks of 122 bytes, not
    fractional 121.25-byte chunks. Every byte->chunk sizing in the
    evaluation path (sweeps, tuning, the CLI) goes through here so
    they can never disagree.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    if buffer_bytes < 0:
        raise ValueError(f"buffer_bytes must be >= 0, got {buffer_bytes}")
    return int(math.ceil(buffer_bytes / chunks))


@dataclass
class Series:
    """One line of a figure: latency per buffer size."""

    label: str
    sizes: List[int]
    times_us: List[float]

    def speedup_over(self, baseline: "Series") -> List[float]:
        if self.sizes != baseline.sizes:
            raise ValueError(
                f"size grids differ between {self.label!r} and "
                f"{baseline.label!r}"
            )
        return [
            b / t for t, b in zip(self.times_us, baseline.times_us)
        ]


@dataclass
class SweepResult:
    """All series of one experiment over a common size grid."""

    title: str
    sizes: List[int]
    series: Dict[str, Series] = field(default_factory=dict)

    def add(self, series: Series) -> None:
        if series.sizes != self.sizes:
            raise ValueError("series grid does not match sweep grid")
        self.series[series.label] = series

    def speedups(self, baseline_label: str) -> Dict[str, List[float]]:
        baseline = self.series[baseline_label]
        return {
            label: s.speedup_over(baseline)
            for label, s in self.series.items()
            if label != baseline_label
        }

    def best_speedup(self, label: str, baseline_label: str) -> float:
        return max(self.series[label].speedup_over(
            self.series[baseline_label]
        ))


TimeFn = Callable[[float], float]
Config = Union[MscclIr, TimeFn]


def compile_for(topology: Topology, program,
                options: Optional[CompilerOptions] = None,
                ) -> CompiledAlgorithm:
    """Compile with the topology's SM limit applied.

    Sweeps re-trace and recompile the same configurations over and
    over (every figure bench, every tuning pass), so compiles here go
    through the process-wide content-addressed compile cache — memory
    tier plus the persistent disk tier, so repeat *invocations* hit
    too: the second identical (program trace, options) pair is a hit,
    not a recompile. Explicit ``options`` are used as given — set
    ``options.cache`` yourself to opt in.
    """
    options = options or CompilerOptions(
        max_threadblocks=topology.machine.sm_count,
        cache=default_compile_cache(),
    )
    return compile_program(program, options)


class IrTimer:
    """A picklable ``time_us(buffer_bytes)`` callable for a compiled IR.

    What :func:`ir_timer` returns. Instances survive pickling — the IR
    crosses process boundaries as its JSON serialization, and tracers
    (which cannot be pickled) are dropped from the sim config — so
    sweep points can be sharded across the
    :mod:`repro.analysis.parallel` worker pool.
    """

    def __init__(self, ir: Union[MscclIr, CompiledAlgorithm],
                 topology: Topology, chunks: int,
                 config: Optional[SimConfig] = None):
        self.ir = ir.ir if isinstance(ir, CompiledAlgorithm) else ir
        self.topology = topology
        self.chunks = chunks
        self.config = config or SimConfig()

    def __call__(self, buffer_bytes: float) -> float:
        sim = IrSimulator(self.ir, self.topology, config=self.config)
        return sim.run(
            chunk_bytes=chunk_bytes_for(buffer_bytes, self.chunks)
        ).time_us

    def __getstate__(self):
        config = self.config
        if config.tracer is not None:
            config = replace(config, tracer=None)
        return {"ir_json": self.ir.to_json(), "topology": self.topology,
                "chunks": self.chunks, "config": config}

    def __setstate__(self, state):
        self.ir = MscclIr.from_json(state["ir_json"])
        self.topology = state["topology"]
        self.chunks = state["chunks"]
        self.config = state["config"]


def ir_timer(ir: Union[MscclIr, CompiledAlgorithm], topology: Topology,
             collective: Collective,
             sim_config: Optional[SimConfig] = None) -> IrTimer:
    """A ``time_us(buffer_bytes)`` function for a compiled IR."""
    return IrTimer(ir, topology, collective.sizing_chunks(), sim_config)


def _eval_point(task) -> float:
    """One (timer, size) sweep point; module-level for the pool."""
    timer, size = task
    return timer(size)


def run_sweep(title: str, sizes: Sequence[int],
              configs: Dict[str, TimeFn], *,
              jobs: Optional[int] = None,
              tracer=None) -> SweepResult:
    """Evaluate every configuration's timer over the size grid.

    ``jobs`` > 1 (default: ``$REPRO_JOBS``, else 1) shards the
    (configuration x size) points across worker processes; results are
    merged in configuration-then-size order, so the parallel result is
    bitwise-identical to the sequential one. Timers that cannot be
    pickled (ad-hoc lambdas) are evaluated inline in the parent.
    """
    jobs = resolve_jobs(jobs)
    sizes = list(sizes)
    result = SweepResult(title=title, sizes=sizes)
    labels = list(configs)
    if jobs == 1:
        for label in labels:
            timer = configs[label]
            times = [timer(size) for size in sizes]
            result.add(Series(label=label, sizes=list(sizes),
                              times_us=times))
        return result
    tasks = [(configs[label], size) for label in labels for size in sizes]
    flat = parallel_map(_eval_point, tasks, jobs=jobs, tracer=tracer,
                        label="sweep")
    for offset, label in enumerate(labels):
        times = flat[offset * len(sizes):(offset + 1) * len(sizes)]
        result.add(Series(label=label, sizes=list(sizes),
                          times_us=list(times)))
    return result


async def run_sweep_async(title: str, sizes: Sequence[int],
                          configs: Dict[str, TimeFn], *,
                          jobs: Optional[int] = None,
                          tracer=None, executor=None) -> SweepResult:
    """:func:`run_sweep` without blocking the event loop.

    Hands the whole sweep to ``executor`` (default: the loop's default
    thread pool) so an asyncio caller — the plan service, a dashboard
    — stays responsive while points evaluate, including in worker
    processes when ``jobs`` > 1. Awaiting it yields the same
    deterministic :class:`SweepResult` as the synchronous call.
    """
    loop = asyncio.get_running_loop()
    fn = functools.partial(run_sweep, title, sizes, configs,
                           jobs=jobs, tracer=tracer)
    return await loop.run_in_executor(executor, fn)
