"""Buffer-size sweeps: the workhorse behind every figure bench.

A sweep takes named *configurations* (compiled IRs or arbitrary
``time_us(buffer_bytes)`` callables), runs them over a geometric grid of
buffer sizes on one topology, and returns a :class:`SweepResult` with
per-size latencies, ready for speedup computation and table rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.cache import default_compile_cache
from ..core.collectives import Collective
from ..core.compiler import (CompiledAlgorithm, CompilerOptions,
                             compile_program)
from ..core.ir import MscclIr
from ..core.program import MSCCLProgram
from ..runtime.simulator import IrSimulator, SimConfig
from ..topology.model import Topology

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024


def size_grid(start_bytes: int, end_bytes: int) -> List[int]:
    """Powers of two from start to end inclusive (the figures' x axes)."""
    sizes = []
    size = start_bytes
    while size <= end_bytes:
        sizes.append(size)
        size *= 2
    return sizes


def format_size(nbytes: float) -> str:
    """1KB-style labels matching the paper's axis ticks."""
    if nbytes >= GiB:
        return f"{nbytes / GiB:g}GB"
    if nbytes >= MiB:
        return f"{nbytes / MiB:g}MB"
    return f"{nbytes / KiB:g}KB"


@dataclass
class Series:
    """One line of a figure: latency per buffer size."""

    label: str
    sizes: List[int]
    times_us: List[float]

    def speedup_over(self, baseline: "Series") -> List[float]:
        if self.sizes != baseline.sizes:
            raise ValueError(
                f"size grids differ between {self.label!r} and "
                f"{baseline.label!r}"
            )
        return [
            b / t for t, b in zip(self.times_us, baseline.times_us)
        ]


@dataclass
class SweepResult:
    """All series of one experiment over a common size grid."""

    title: str
    sizes: List[int]
    series: Dict[str, Series] = field(default_factory=dict)

    def add(self, series: Series) -> None:
        if series.sizes != self.sizes:
            raise ValueError("series grid does not match sweep grid")
        self.series[series.label] = series

    def speedups(self, baseline_label: str) -> Dict[str, List[float]]:
        baseline = self.series[baseline_label]
        return {
            label: s.speedup_over(baseline)
            for label, s in self.series.items()
            if label != baseline_label
        }

    def best_speedup(self, label: str, baseline_label: str) -> float:
        return max(self.series[label].speedup_over(
            self.series[baseline_label]
        ))


TimeFn = Callable[[float], float]
Config = Union[MscclIr, TimeFn]


def compile_for(topology: Topology, program: MSCCLProgram,
                options: Optional[CompilerOptions] = None,
                ) -> CompiledAlgorithm:
    """Compile with the topology's SM limit applied.

    Sweeps re-trace and recompile the same configurations over and
    over (every figure bench, every tuning pass), so compiles here go
    through the process-wide content-addressed compile cache: the
    second identical (program trace, options) pair is a hit, not a
    recompile. Explicit ``options`` are used as given — set
    ``options.cache`` yourself to opt in.
    """
    options = options or CompilerOptions(
        max_threadblocks=topology.machine.sm_count,
        cache=default_compile_cache(),
    )
    return compile_program(program, options)


def ir_timer(ir: Union[MscclIr, CompiledAlgorithm], topology: Topology,
             collective: Collective,
             sim_config: Optional[SimConfig] = None) -> TimeFn:
    """A ``time_us(buffer_bytes)`` function for a compiled IR."""
    chunks = collective.sizing_chunks()
    config = sim_config or SimConfig()

    def time_us(buffer_bytes: float) -> float:
        sim = IrSimulator(ir, topology, config=config)
        return sim.run(chunk_bytes=buffer_bytes / chunks).time_us

    return time_us


def run_sweep(title: str, sizes: Sequence[int],
              configs: Dict[str, TimeFn]) -> SweepResult:
    """Evaluate every configuration's timer over the size grid."""
    result = SweepResult(title=title, sizes=list(sizes))
    for label, timer in configs.items():
        times = [timer(size) for size in sizes]
        result.add(Series(label=label, sizes=list(sizes), times_us=times))
    return result
