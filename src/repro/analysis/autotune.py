"""Schedule autotuning: automate the paper's manual optimization loop.

Section 7 repeatedly says "we tune the number of channels per ring,
parallelization, and protocol for the system" and that each program
"took 15 minutes to an hour to write and manually optimize". The
autotuner runs that loop automatically: give it a program *builder*
parameterized by (channels, instances, protocol), a topology, and a
size grid; it compiles every candidate the SM budget admits, simulates
each size, and returns the best configuration per size — optionally
packaged as an :class:`~repro.runtime.config.AlgorithmRegistry` with
contiguous size ranges, ready for the runtime's dynamic selection.
"""

from __future__ import annotations

import asyncio
import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.cache import default_compile_cache
from ..core.compiler import CompilerOptions, compile_program
from ..core.errors import MscclError
from ..core.ir import MscclIr
from ..core.program import MSCCLProgram
from ..runtime.config import AlgorithmRegistry
from ..runtime.simulator import IrSimulator, SimConfig
from ..topology.model import Topology
from .parallel import parallel_map, resolve_jobs
from .sweep import IrTimer, _eval_point, chunk_bytes_for

# builder(channels=..., instances=..., protocol=...) -> MSCCLProgram
Builder = Callable[..., MSCCLProgram]


@dataclass(frozen=True)
class Candidate:
    """One point of the tuning space."""

    channels: int
    instances: int
    protocol: str

    @property
    def label(self) -> str:
        return (
            f"ch={self.channels} r={self.instances} {self.protocol}"
        )


@dataclass
class TuningResult:
    """Everything the sweep learned."""

    candidates: List[Candidate]
    sizes: List[int]
    # (candidate, size) -> simulated latency in us
    times: Dict[Tuple[Candidate, int], float]
    best: Dict[int, Candidate] = field(default_factory=dict)
    skipped: List[Tuple[Candidate, str]] = field(default_factory=list)
    # Chunks a call buffer divides into for the tuned collective;
    # build_registry stamps it onto every registry entry.
    sizing_chunks: int = 1

    def best_time(self, size: int) -> float:
        return self.times[(self.best[size], size)]

    def table(self) -> str:
        """Size -> winning configuration summary."""
        lines = [f"{'size (B)':>12s}  {'best config':<24s} {'us':>10s}"]
        for size in self.sizes:
            winner = self.best[size]
            lines.append(
                f"{size:>12d}  {winner.label:<24s} "
                f"{self.times[(winner, size)]:>10.1f}"
            )
        return "\n".join(lines)


def default_space(max_channels: int = 8,
                  max_instances: int = 24) -> List[Candidate]:
    """The grid the paper's tuning effectively explored."""
    channels = [c for c in (1, 2, 4, 8) if c <= max_channels]
    instances = [r for r in (1, 2, 4, 8, 16, 24) if r <= max_instances]
    protocols = ["LL", "LL128", "Simple"]
    return [
        Candidate(c, r, p)
        for c in channels for r in instances for p in protocols
    ]


def _compile_candidate(task):
    """Compile one tuning candidate; module-level for the worker pool.

    Runs in a worker process (or inline in the parent when the builder
    cannot pickle). Workers consult their own process-wide compile
    cache, and because they inherit ``REPRO_CACHE_DIR`` they share the
    persistent disk tier with the parent and each other — a candidate
    compiled by any worker is a disk hit everywhere else. Returns
    ``("ok", ir_json)`` or ``("skip", reason)``; the parent merges
    these back in candidate-space order, so the sharded compile phase
    is bitwise-identical to the sequential one.
    """
    builder, candidate, max_threadblocks = task
    options = CompilerOptions(max_threadblocks=max_threadblocks,
                              cache=default_compile_cache())
    try:
        program = builder(
            channels=candidate.channels,
            instances=candidate.instances,
            protocol=candidate.protocol,
        )
        algo = compile_program(program, options)
    except MscclError as error:
        return "skip", str(error)
    return "ok", algo.ir.to_json()


def tune(builder: Builder, topology: Topology, sizes: Sequence[int],
         collective_sizing_chunks: int, *,
         space: Optional[List[Candidate]] = None,
         sim_config: Optional[SimConfig] = None,
         jobs: Optional[int] = None, tracer=None) -> TuningResult:
    """Explore the space and pick the fastest candidate per size.

    ``jobs`` > 1 (default: ``$REPRO_JOBS``, else 1) shards *both*
    phases across the worker pool: candidate compiles (workers share
    the persistent disk cache tier, so nothing compiles twice across
    the pool) and then the (candidate x size) simulations. Results
    merge in the sequential order — compile outcomes in
    candidate-space order; simulations sizes outer, candidates inner,
    first strictly-faster candidate winning — so the parallel
    :class:`TuningResult` is bitwise-identical to the sequential one.
    """
    space = space if space is not None else default_space()
    config = sim_config or SimConfig()
    jobs = resolve_jobs(jobs)
    compiled: Dict[Candidate, MscclIr] = {}
    result = TuningResult(candidates=[], sizes=list(sizes), times={},
                          sizing_chunks=collective_sizing_chunks)
    if jobs == 1:
        # Tuning loops re-run with overlapping candidate spaces; the
        # compile cache turns every previously-seen candidate into a
        # hit.
        options = CompilerOptions(
            max_threadblocks=topology.machine.sm_count,
            cache=default_compile_cache(),
        )
        for candidate in space:
            try:
                program = builder(
                    channels=candidate.channels,
                    instances=candidate.instances,
                    protocol=candidate.protocol,
                )
                compiled[candidate] = compile_program(program, options)
                result.candidates.append(candidate)
            except MscclError as error:
                result.skipped.append((candidate, str(error)))
    else:
        tasks = [(builder, candidate, topology.machine.sm_count)
                 for candidate in space]
        outcomes = parallel_map(_compile_candidate, tasks, jobs=jobs,
                                tracer=tracer, label="tune.compile")
        for candidate, (status, payload) in zip(space, outcomes):
            if status == "ok":
                compiled[candidate] = MscclIr.from_json(payload)
                result.candidates.append(candidate)
            else:
                result.skipped.append((candidate, payload))

    if not compiled:
        raise ValueError(
            "no candidate configuration compiled; the space may exceed "
            "the SM budget everywhere"
        )

    if jobs == 1:
        times = {}
        for size in result.sizes:
            for candidate, ir in compiled.items():
                simulator = IrSimulator(ir, topology, config=config)
                times[(candidate, size)] = simulator.run(
                    chunk_bytes=chunk_bytes_for(
                        size, collective_sizing_chunks)
                ).time_us
    else:
        timers = {
            candidate: IrTimer(ir, topology, collective_sizing_chunks,
                               config)
            for candidate, ir in compiled.items()
        }
        tasks = [
            (timers[candidate], size)
            for size in result.sizes for candidate in result.candidates
        ]
        flat = iter(parallel_map(_eval_point, tasks, jobs=jobs,
                                 tracer=tracer, label="tune"))
        times = {
            (candidate, size): next(flat)
            for size in result.sizes for candidate in result.candidates
        }

    for size in result.sizes:
        best_candidate = None
        best_time = float("inf")
        for candidate in result.candidates:
            elapsed = times[(candidate, size)]
            result.times[(candidate, size)] = elapsed
            if elapsed < best_time:
                best_time = elapsed
                best_candidate = candidate
        result.best[size] = best_candidate
    result._compiled = compiled  # kept for build_registry
    return result


async def tune_async(builder: Builder, topology: Topology,
                     sizes: Sequence[int],
                     collective_sizing_chunks: int, *,
                     space: Optional[List[Candidate]] = None,
                     sim_config: Optional[SimConfig] = None,
                     jobs: Optional[int] = None, tracer=None,
                     executor=None) -> TuningResult:
    """:func:`tune` without blocking the event loop.

    The non-blocking entry point the plan service's background
    autotuner uses: the whole tuning run is handed to ``executor``
    (default: the loop's default thread pool), so an asyncio server
    keeps answering requests while candidates compile and simulate —
    including in worker processes when ``jobs`` > 1. Awaiting it yields
    the same bitwise-deterministic :class:`TuningResult` as the
    synchronous call.
    """
    loop = asyncio.get_running_loop()
    fn = functools.partial(
        tune, builder, topology, sizes, collective_sizing_chunks,
        space=space, sim_config=sim_config, jobs=jobs, tracer=tracer,
    )
    return await loop.run_in_executor(executor, fn)


def build_registry(result: TuningResult,
                   collective_name: str) -> AlgorithmRegistry:
    """Package the winners as contiguous size-range registrations.

    Adjacent sizes won by the same candidate merge into one range; the
    last range extends to infinity (the runtime may still fall back to
    NCCL by setting ``registry.fallback``).
    """
    registry = AlgorithmRegistry(collective_name)
    compiled = result._compiled
    spans: List[Tuple[int, int, Candidate]] = []
    for size in result.sizes:
        winner = result.best[size]
        if spans and spans[-1][2] == winner:
            lo, _hi, _ = spans[-1]
            spans[-1] = (lo, size, winner)
        else:
            spans.append((size, size, winner))
    for index, (lo, _hi, winner) in enumerate(spans):
        lower = 0 if index == 0 else lo
        if index == len(spans) - 1:
            upper = float("inf")
        else:
            # Extend up to (but excluding) the next winner's first size,
            # so the ranges tile the whole axis with no gaps.
            upper = spans[index + 1][0] - 1
        registry.register(
            compiled[winner], min_bytes=lower, max_bytes=upper,
            label=winner.label, sizing_chunks=result.sizing_chunks,
        )
    return registry
