"""Sweeps, speedups, tables, bounds, tuning, and workload models."""

from .autotune import (
    Candidate,
    TuningResult,
    build_registry,
    default_space,
    tune,
)
from .bounds import (
    Bound,
    allgather_bound,
    allreduce_bound,
    alltoall_bound,
    bound_for,
    efficiency,
    reducescatter_bound,
)
from .report import (build_report, collect_diagnoses, collect_metrics,
                     collect_results, diagnosis_markdown,
                     efficiency_audit, metrics_markdown)
from .end_to_end import (
    CollectiveCall,
    WorkloadModel,
    inference_serving_step,
    moe_training_step,
)
from .sweep import (
    GiB,
    KiB,
    MiB,
    Series,
    SweepResult,
    compile_for,
    format_size,
    ir_timer,
    run_sweep,
    size_grid,
)
from .tables import latency_table, speedup_table, summary_lines

__all__ = [
    "Bound",
    "Candidate",
    "CollectiveCall",
    "TuningResult",
    "allgather_bound",
    "allreduce_bound",
    "alltoall_bound",
    "bound_for",
    "build_report",
    "collect_diagnoses",
    "collect_metrics",
    "diagnosis_markdown",
    "metrics_markdown",
    "collect_results",
    "efficiency_audit",
    "build_registry",
    "default_space",
    "efficiency",
    "reducescatter_bound",
    "tune",
    "GiB",
    "KiB",
    "MiB",
    "Series",
    "SweepResult",
    "WorkloadModel",
    "compile_for",
    "format_size",
    "inference_serving_step",
    "ir_timer",
    "latency_table",
    "moe_training_step",
    "run_sweep",
    "size_grid",
    "speedup_table",
    "summary_lines",
]
