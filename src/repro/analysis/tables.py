"""Rendering sweep results as the tables the benches print.

Each figure bench prints the same rows/series the paper plots: buffer
sizes down the side, configurations across the top, speedups over the
figure's baseline in the cells.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .sweep import SweepResult, format_size


def latency_table(result: SweepResult) -> str:
    """Raw latencies (us) per size and configuration."""
    labels = list(result.series)
    rows = [["size"] + labels]
    for i, size in enumerate(result.sizes):
        row = [format_size(size)]
        for label in labels:
            row.append(f"{result.series[label].times_us[i]:.1f}")
        rows.append(row)
    return _render(rows)


def speedup_table(result: SweepResult, baseline_label: str) -> str:
    """Speedup over the baseline per size (the figures' y axes)."""
    speedups = result.speedups(baseline_label)
    labels = list(speedups)
    rows = [["size"] + labels + [baseline_label]]
    for i, size in enumerate(result.sizes):
        row = [format_size(size)]
        for label in labels:
            row.append(f"{speedups[label][i]:.2f}x")
        row.append("1.00x")
        rows.append(row)
    return _render(rows)


def summary_lines(result: SweepResult, baseline_label: str) -> List[str]:
    """One line per configuration: peak speedup and where it happens."""
    lines = []
    for label, values in result.speedups(baseline_label).items():
        best = max(values)
        where = result.sizes[values.index(best)]
        lines.append(
            f"{label}: up to {best:.2f}x over {baseline_label} "
            f"(at {format_size(where)})"
        )
    return lines


def _render(rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(row[col]) for row in rows)
        for col in range(len(rows[0]))
    ]
    lines = []
    for index, row in enumerate(rows):
        cells = [cell.rjust(width) for cell, width in zip(row, widths)]
        lines.append("  ".join(cells))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
