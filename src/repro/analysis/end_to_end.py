"""End-to-end workload model (paper section 7.6).

The paper reports 1.22-1.29x serving and 1.10-1.89x training speedups
from swapping NCCL collectives for MSCCLang ones. Workload-level gain
is governed by the communication fraction of the step and the collective
speedup (Amdahl): this module models a training/serving step as compute
time plus a set of collective calls, prices the calls with either the
NCCL baseline or the custom algorithms, and reports the step speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple


@dataclass
class CollectiveCall:
    """One collective invocation per step: which, how big, how often."""

    name: str
    buffer_bytes: float
    calls_per_step: int = 1


@dataclass
class WorkloadModel:
    """A distributed ML step: compute plus collective calls.

    ``baseline_timers``/``optimized_timers`` map collective names to
    ``time_us(buffer_bytes)`` functions (usually an NcclModel and a set
    of compiled MSCCLang algorithms).
    """

    name: str
    compute_us: float
    calls: List[CollectiveCall] = field(default_factory=list)

    def step_time_us(self, timers: Dict[str, Callable[[float], float]],
                     overlap: float = 0.0) -> float:
        """Step latency with the given collective implementations.

        ``overlap`` in [0, 1) is the fraction of communication hidden
        under compute (e.g. gradient-bucket overlap in data parallel
        training).
        """
        if not 0.0 <= overlap < 1.0:
            raise ValueError(
                f"overlap must be in [0, 1), got {overlap}"
            )
        comm = sum(
            call.calls_per_step * timers[call.name](call.buffer_bytes)
            for call in self.calls
        )
        return self.compute_us + (1.0 - overlap) * comm

    def communication_fraction(
            self, timers: Dict[str, Callable[[float], float]]) -> float:
        """Share of the (non-overlapped) step spent communicating."""
        total = self.step_time_us(timers)
        if total <= 0.0:
            # A degenerate model (no compute, free collectives) spends
            # nothing anywhere; report 0 rather than dividing by zero.
            return 0.0
        return 1.0 - self.compute_us / total

    def speedup(self, baseline_timers, optimized_timers,
                overlap: float = 0.0) -> float:
        """Step speedup from switching collective implementations."""
        return (self.step_time_us(baseline_timers, overlap)
                / self.step_time_us(optimized_timers, overlap))


def moe_training_step(num_ranks: int, *, expert_mb: float = 64.0,
                      dense_mb: float = 128.0,
                      compute_ms: float = 35.0) -> WorkloadModel:
    """A Mixture-of-Experts step: 2 AllToAlls (dispatch/combine) per
    layer group plus a gradient AllReduce (the paper's MoE workload)."""
    mb = 1024 * 1024
    return WorkloadModel(
        name=f"moe_training_{num_ranks}gpu",
        compute_us=compute_ms * 1e3,
        calls=[
            CollectiveCall("alltoall", expert_mb * mb, calls_per_step=4),
            CollectiveCall("allreduce", dense_mb * mb, calls_per_step=1),
        ],
    )


def inference_serving_step(*, hidden_mb: float = 8.0,
                           compute_ms: float = 4.0) -> WorkloadModel:
    """A tensor-parallel transformer decode step: small AllReduces after
    attention and MLP blocks (the paper's Copilot serving workload)."""
    mb = 1024 * 1024
    return WorkloadModel(
        name="tp_inference",
        compute_us=compute_ms * 1e3,
        calls=[
            CollectiveCall("allreduce", hidden_mb * mb, calls_per_step=8),
        ],
    )
