"""Process-based parallel evaluation: the sweep/tune worker pool.

Every paper figure and tuning run boils down to a bag of independent
(configuration x buffer size) simulation points. :func:`parallel_map`
shards such a bag across a pool of worker processes —
``jobs`` explicit, or the ``REPRO_JOBS`` environment variable — and
merges results **deterministically**: outputs come back in task order
regardless of which worker finished first, so a parallel
:func:`~repro.analysis.sweep.run_sweep` or
:func:`~repro.analysis.autotune.tune` is bitwise-identical to its
sequential run.

Three properties the callers rely on:

* **Determinism** — results are merged by task index, never by
  completion order. The simulations themselves are deterministic, so
  ``jobs=N`` equals ``jobs=1`` exactly.
* **Graceful degradation** — a task whose callable cannot cross a
  process boundary (a lambda, a closure over a tracer) runs inline in
  the parent instead of crashing the pool. ``jobs=1`` never spawns a
  pool at all.
* **Observability** — pass a :class:`~repro.observe.Tracer` and every
  task becomes a span on a per-worker track under one pool span, so a
  Chrome trace shows the fan-out; process-wide counters are exported
  by :func:`repro.observe.metrics_dict` (``workers`` section) via
  :func:`pool_stats`.

Workers inherit ``REPRO_CACHE_DIR``, so anything they compile lands in
the persistent :class:`~repro.core.cache.DiskCacheTier` and is shared
with the parent and with sibling workers instead of being recompiled
per process.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from ..observe.tracer import Tracer, maybe_span

JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The worker count: explicit ``jobs``, else ``$REPRO_JOBS``, else 1."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV}={raw!r} is not an integer worker count"
            )
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


# Process-wide pool accounting, exported by repro.observe.metrics_dict.
_STATS: Dict[str, float] = {}
_WORKER_TASKS: Dict[str, int] = {}


def reset_pool_stats() -> None:
    _STATS.clear()
    _WORKER_TASKS.clear()


def pool_stats() -> Dict:
    """JSON-safe counters over every pool run in this process.

    ``utilization`` is aggregate worker busy time over aggregate pool
    capacity (wall time x jobs) — 1.0 means every worker slot was busy
    for every pool's whole duration.
    """
    slot_us = _STATS.get("slot_us", 0.0)
    busy_us = _STATS.get("busy_us", 0.0)
    return {
        "pools": int(_STATS.get("pools", 0)),
        "tasks": int(_STATS.get("tasks", 0)),
        "parallel_tasks": int(_STATS.get("parallel_tasks", 0)),
        "inline_tasks": int(_STATS.get("inline_tasks", 0)),
        "max_jobs": int(_STATS.get("max_jobs", 0)),
        "busy_us": round(busy_us, 3),
        "wall_us": round(_STATS.get("wall_us", 0.0), 3),
        "utilization": round(busy_us / slot_us, 4) if slot_us else 0.0,
        "per_worker_tasks": dict(sorted(_WORKER_TASKS.items())),
    }


def _bump(name: str, delta: float) -> None:
    _STATS[name] = _STATS.get(name, 0.0) + delta


def _run_task(payload):
    """Worker-side wrapper: run one task and report who ran it when.

    ``time.perf_counter`` is CLOCK_MONOTONIC on Linux, shared across
    the fork, so the parent can place these timestamps on its own
    timeline.
    """
    index, fn, task = payload
    start = time.perf_counter()
    result = fn(task)
    end = time.perf_counter()
    return index, result, os.getpid(), start * 1e6, end * 1e6


def _pickles(obj) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def parallel_map(fn: Callable, tasks: Sequence, *,
                 jobs: Optional[int] = None,
                 tracer: Optional[Tracer] = None,
                 label: str = "parallel") -> List:
    """``[fn(task) for task in tasks]``, sharded across processes.

    Results are returned in task order whatever the completion order,
    so callers can rely on bitwise-identical merging. ``fn`` must be a
    module-level callable (picklable); individual tasks that are not
    picklable fall back to inline execution in the parent.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    results: List = [None] * len(tasks)
    if not tasks:
        return results
    jobs = min(jobs, len(tasks))

    if jobs == 1 or not _pickles(fn):
        remote: List[int] = []
        inline = list(range(len(tasks)))
    else:
        portable = [_pickles(task) for task in tasks]
        remote = [i for i, ok in enumerate(portable) if ok]
        inline = [i for i, ok in enumerate(portable) if not ok]

    wall_start = time.perf_counter()
    spans: List = []  # (index, worker label, start_us, end_us)
    with maybe_span(tracer, f"{label}.pool", cat="parallel",
                    jobs=jobs, tasks=len(tasks)) as pool_span:
        if remote:
            payloads = [(i, fn, tasks[i]) for i in remote]
            chunksize = max(1, len(remote) // (jobs * 4))
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for index, result, pid, s_us, e_us in pool.map(
                        _run_task, payloads, chunksize=chunksize):
                    results[index] = result
                    spans.append((index, f"pid {pid}", s_us, e_us))
        for index in inline:
            start = time.perf_counter()
            results[index] = fn(tasks[index])
            end = time.perf_counter()
            spans.append((index, "inline", start * 1e6, end * 1e6))
        wall_us = (time.perf_counter() - wall_start) * 1e6

        if pool_span is not None and tracer is not None:
            # Worker timestamps are absolute monotonic microseconds;
            # rebase them onto the pool span's position in the tracer's
            # own time domain.
            base = pool_span.start_us - wall_start * 1e6
            for index, worker, s_us, e_us in spans:
                tracer.emit(f"{label}.task", base + s_us, base + e_us,
                            cat="parallel", track=("workers", worker),
                            parent=pool_span, task=index)

    _bump("pools", 1)
    _bump("tasks", len(tasks))
    _bump("parallel_tasks", len(remote))
    _bump("inline_tasks", len(inline))
    _bump("busy_us", sum(e - s for _, _, s, e in spans))
    _bump("wall_us", wall_us)
    _bump("slot_us", wall_us * jobs)
    _STATS["max_jobs"] = max(_STATS.get("max_jobs", 0), jobs)
    for _, worker, _, _ in spans:
        _WORKER_TASKS[worker] = _WORKER_TASKS.get(worker, 0) + 1
    if tracer is not None:
        tracer.add_counter(f"{label}.tasks", len(tasks))
    return results
