"""Cluster topology model: machines, links, and transfer paths.

The simulator prices a point-to-point transfer by routing it through a
path of *bandwidth resources* (NVLink ports, InfiniBand NICs) plus the
sending thread block's own copy engine, and adding a per-hop latency
(the alpha of the alpha-beta model). Resources are shared FCFS servers,
so contention between concurrent transfers emerges naturally:

* one thread block alone is capped by its copy-engine bandwidth (the
  paper's observation that a single A100 thread block cannot saturate an
  NVLink),
* many thread blocks sharing one NVLink or NIC saturate the link and
  divide its bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.errors import RuntimeConfigError

GB = 1e9  # bytes
# Internally bandwidth is bytes/microsecond: 1 GB/s = 1e3 bytes/us.
_GBPS_TO_BYTES_PER_US = 1e3


@dataclass(frozen=True)
class MachineSpec:
    """Per-node hardware parameters.

    Bandwidths are GB/s; latencies are microseconds. ``gpus_per_nic``
    says how many GPUs share each InfiniBand NIC (1 on NDv4 where each
    GPU effectively owns a 25 GB/s NIC, 2 on DGX-2 where a GPU pair
    shares one).
    """

    name: str
    gpus_per_node: int
    sm_count: int
    nvlink_bandwidth: float  # per-GPU egress/ingress, GB/s
    nvlink_alpha: float  # us, intra-node hop latency
    ib_bandwidth: float  # per NIC, GB/s
    ib_alpha: float  # us, cross-node hop latency
    gpus_per_nic: int
    # Per-message InfiniBand cost: each message occupies its NICs for
    # this many extra microseconds on top of the pure byte time, modeling
    # per-message driver/QP overheads and fabric effects that make
    # aggregation (the Two-Step AllToAll's whole point) profitable.
    ib_message_overhead: float
    threadblock_bandwidth: float  # single thread block copy rate, GB/s
    reduce_bandwidth: float  # single thread block reduce rate, GB/s
    kernel_launch_overhead: float  # us, per kernel launch

    @property
    def nics_per_node(self) -> int:
        return self.gpus_per_node // self.gpus_per_nic


class Resource:
    """A FCFS bandwidth server (an NVLink port, a NIC, a copy engine)."""

    __slots__ = ("name", "bandwidth", "next_free", "busy_time")

    def __init__(self, name: str, bandwidth_gbps: float):
        if bandwidth_gbps <= 0:
            raise RuntimeConfigError(
                f"resource {name!r} needs positive bandwidth"
            )
        self.name = name
        self.bandwidth = bandwidth_gbps * _GBPS_TO_BYTES_PER_US
        self.next_free = 0.0
        self.busy_time = 0.0

    def reserve(self, now: float, nbytes: float,
                efficiency: float = 1.0,
                overhead: float = 0.0) -> float:
        """Reserve capacity for a transfer arriving at ``now``.

        Returns the finish time; the resource serves requests in arrival
        order at ``bandwidth * efficiency``, each costing an extra
        ``overhead`` microseconds of occupancy (per-message cost).
        """
        return self.reserve_timed(now, nbytes, efficiency, overhead)[0]

    def reserve_timed(self, now: float, nbytes: float,
                      efficiency: float = 1.0,
                      overhead: float = 0.0
                      ) -> Tuple[float, float, float]:
        """:meth:`reserve`, returning ``(finish, queue_us, service_us)``.

        The queueing/service breakdown is returned to the caller rather
        than parked in per-resource scratch attributes, so overlapping
        reservations issued by a batched caller cannot clobber each
        other's accounting.
        """
        start = max(now, self.next_free)
        duration = nbytes / (self.bandwidth * efficiency) + overhead
        self.next_free = start + duration
        self.busy_time += duration
        return self.next_free, start - now, duration

    def reset(self) -> None:
        self.next_free = 0.0
        self.busy_time = 0.0


class Topology:
    """A cluster of ``num_nodes`` identical machines."""

    def __init__(self, machine: MachineSpec, num_nodes: int):
        if num_nodes < 1:
            raise RuntimeConfigError("need at least one node")
        self.machine = machine
        self.num_nodes = num_nodes
        self._resources = {}

    @property
    def num_ranks(self) -> int:
        return self.num_nodes * self.machine.gpus_per_node

    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.machine.gpus_per_node

    def local_index(self, rank: int) -> int:
        self._check_rank(rank)
        return rank % self.machine.gpus_per_node

    def rank_of(self, node: int, gpu: int) -> int:
        rank = node * self.machine.gpus_per_node + gpu
        self._check_rank(rank)
        return rank

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise RuntimeConfigError(
                f"rank {rank} out of range for {self.num_ranks} ranks"
            )

    # -- resources ---------------------------------------------------------
    def resource(self, name: str, bandwidth_gbps: float) -> Resource:
        """Get or create the named shared resource."""
        res = self._resources.get(name)
        if res is None:
            res = Resource(name, bandwidth_gbps)
            self._resources[name] = res
        return res

    def nvlink_out(self, rank: int) -> Resource:
        return self.resource(
            f"nvlink_out[{rank}]", self.machine.nvlink_bandwidth
        )

    def nvlink_in(self, rank: int) -> Resource:
        return self.resource(
            f"nvlink_in[{rank}]", self.machine.nvlink_bandwidth
        )

    def nic_out(self, rank: int) -> Resource:
        node = self.node_of(rank)
        nic_index = self.local_index(rank) // self.machine.gpus_per_nic
        return self.resource(
            f"nic_out[{node},{nic_index}]", self.machine.ib_bandwidth
        )

    def nic_in(self, rank: int) -> Resource:
        node = self.node_of(rank)
        nic_index = self.local_index(rank) // self.machine.gpus_per_nic
        return self.resource(
            f"nic_in[{node},{nic_index}]", self.machine.ib_bandwidth
        )

    def reset_resources(self) -> None:
        for res in self._resources.values():
            res.reset()

    # -- transfer routing -----------------------------------------------------
    def path(self, src: int, dst: int) -> Tuple[List[Resource], float, bool]:
        """(shared resources, alpha in us, crosses_node) for src -> dst."""
        if src == dst:
            return ([], 0.0, False)
        if self.same_node(src, dst):
            resources = [self.nvlink_out(src), self.nvlink_in(dst)]
            return (resources, self.machine.nvlink_alpha, False)
        resources = [self.nic_out(src), self.nic_in(dst)]
        return (resources, self.machine.ib_alpha, True)

    def link_bandwidth(self, src: int, dst: int) -> float:
        """Bottleneck bandwidth (GB/s) of the src -> dst path."""
        if src == dst:
            return float("inf")
        if self.same_node(src, dst):
            return self.machine.nvlink_bandwidth
        return self.machine.ib_bandwidth

    def link_alpha(self, src: int, dst: int) -> float:
        """Base latency (us) of the src -> dst path."""
        if src == dst:
            return 0.0
        if self.same_node(src, dst):
            return self.machine.nvlink_alpha
        return self.machine.ib_alpha

    def __repr__(self) -> str:
        return (
            f"Topology({self.machine.name}, nodes={self.num_nodes}, "
            f"ranks={self.num_ranks})"
        )
