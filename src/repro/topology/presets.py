"""Hardware presets for the systems the paper evaluates on (section 7).

Numbers come from public specifications and NCCL microbenchmark
folklore; the simulator's purpose is *relative* behaviour, so what
matters is the ratios (NVLink vs IB bandwidth, alpha vs beta, a single
thread block's copy rate vs a link).

* **NDv4** (Azure ND A100 v4): 8 A100s, 12 NVLink3 each (600 GB/s
  bidirectional = 300 GB/s each direction), each GPU effectively owning
  one HDR InfiniBand NIC at 25 GB/s through a shared PCIe switch.
* **DGX-2**: 16 V100s over NVSwitch (6 NVLink2 = 150 GB/s per
  direction), one 25 GB/s HDR NIC per GPU pair.
* **DGX-1**: 8 V100s in a hybrid cube mesh; modeled with the same
  per-GPU NVLink budget (used for the SCCL comparison, Figure 11).
"""

from __future__ import annotations

from .model import MachineSpec, Topology

NDV4_A100 = MachineSpec(
    name="NDv4-A100",
    gpus_per_node=8,
    sm_count=108,
    nvlink_bandwidth=300.0,
    nvlink_alpha=0.8,
    ib_bandwidth=25.0,
    ib_alpha=4.5,
    gpus_per_nic=1,
    ib_message_overhead=3.0,
    threadblock_bandwidth=22.0,
    reduce_bandwidth=16.0,
    kernel_launch_overhead=9.0,
)

DGX2_V100 = MachineSpec(
    name="DGX2-V100",
    gpus_per_node=16,
    sm_count=80,
    nvlink_bandwidth=150.0,
    nvlink_alpha=1.0,
    ib_bandwidth=25.0,
    ib_alpha=5.0,
    gpus_per_nic=2,
    ib_message_overhead=3.0,
    threadblock_bandwidth=18.0,
    reduce_bandwidth=13.0,
    kernel_launch_overhead=10.0,
)

DGX1_V100 = MachineSpec(
    name="DGX1-V100",
    gpus_per_node=8,
    sm_count=80,
    nvlink_bandwidth=150.0,
    nvlink_alpha=1.0,
    ib_bandwidth=12.5,
    ib_alpha=5.0,
    gpus_per_nic=2,
    ib_message_overhead=3.0,
    threadblock_bandwidth=18.0,
    reduce_bandwidth=13.0,
    kernel_launch_overhead=10.0,
)


def ndv4(num_nodes: int = 1) -> Topology:
    """Azure ND A100 v4 cluster (8 A100 GPUs per node)."""
    return Topology(NDV4_A100, num_nodes)


def dgx2(num_nodes: int = 1) -> Topology:
    """NVIDIA DGX-2 cluster (16 V100 GPUs per node)."""
    return Topology(DGX2_V100, num_nodes)


def dgx1(num_nodes: int = 1) -> Topology:
    """NVIDIA DGX-1 cluster (8 V100 GPUs per node)."""
    return Topology(DGX1_V100, num_nodes)


def generic(gpus_per_node: int, num_nodes: int = 1, *,
            nvlink_bandwidth: float = 200.0,
            ib_bandwidth: float = 25.0) -> Topology:
    """A configurable machine for tests and what-if experiments."""
    spec = MachineSpec(
        name=f"generic-{gpus_per_node}gpu",
        gpus_per_node=gpus_per_node,
        sm_count=108,
        nvlink_bandwidth=nvlink_bandwidth,
        nvlink_alpha=0.9,
        ib_bandwidth=ib_bandwidth,
        ib_alpha=5.0,
        gpus_per_nic=1,
        ib_message_overhead=3.0,
        threadblock_bandwidth=20.0,
        reduce_bandwidth=14.0,
        kernel_launch_overhead=10.0,
    )
    return Topology(spec, num_nodes)
