"""DGX-1 hybrid cube-mesh topology with point-to-point NVLinks.

Unlike NVSwitch systems, the DGX-1's 8 V100s connect pairwise: each GPU
has 6 NVLink ports wired into a "hybrid cube mesh" — two quads with
double links inside (ring + one diagonal per GPU) and single links
across. A transfer between directly connected GPUs gets 1x or 2x link
bandwidth; GPUs without a direct link (e.g. 0 and 5) have no NVLink
path and must relay (the SCCL paper's synthesized algorithms respect
exactly this constraint).

``Dgx1MeshTopology.path`` prices transfers per physical link rather
than per-GPU aggregate port, so algorithms that route over the double
links (like the (1,2,2) AllGather's xor-partner steps) are rewarded.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..core.errors import RuntimeConfigError
from .model import MachineSpec, Resource, Topology
from .presets import DGX1_V100

# NVLink wiring of a DGX-1V: pair -> number of NVLink2 bricks.
# Two quads {0,1,2,3} and {4,5,6,7}; inside a quad, the ring edges are
# doubled on two sides; one single diagonal; cross-quad single links
# pair each GPU with its counterpart and one neighbor.
DGX1_LINKS: Dict[FrozenSet, int] = {
    frozenset(pair): width for pair, width in {
        # quad 0 (ring 0-1-3-2 plus diagonals)
        (0, 1): 1, (0, 2): 1, (0, 3): 2, (1, 2): 2, (1, 3): 1,
        (2, 3): 2,
        # quad 1
        (4, 5): 1, (4, 6): 1, (4, 7): 2, (5, 6): 2, (5, 7): 1,
        (6, 7): 2,
        # cross-quad links (two pairs doubled so every GPU uses all 6
        # of its NVLink bricks)
        (0, 4): 2, (1, 5): 2, (2, 6): 1, (3, 7): 1,
    }.items()
}

NVLINK2_BRICK_GBPS = 25.0  # one NVLink2 brick, per direction


class Dgx1MeshTopology(Topology):
    """A single DGX-1 node with explicit pairwise NVLink wiring."""

    def __init__(self, machine: MachineSpec = DGX1_V100):
        if machine.gpus_per_node != 8:
            raise RuntimeConfigError("the cube mesh is an 8-GPU wiring")
        super().__init__(machine, num_nodes=1)

    def link_width(self, a: int, b: int) -> int:
        """Number of NVLink bricks between two GPUs (0 = no direct link)."""
        self._check_rank(a)
        self._check_rank(b)
        if a == b:
            return 0
        return DGX1_LINKS.get(frozenset((a, b)), 0)

    def neighbors(self, rank: int) -> List[int]:
        """GPUs directly reachable over NVLink."""
        return sorted(
            other for other in range(self.num_ranks)
            if self.link_width(rank, other) > 0
        )

    def _pair_resource(self, a: int, b: int, width: int) -> Resource:
        lo, hi = min(a, b), max(a, b)
        return self.resource(
            f"nvlink_pair[{lo},{hi},{a}->{b}]",
            width * NVLINK2_BRICK_GBPS,
        )

    def path(self, src: int, dst: int):
        """Direct pairs use their dedicated link; others relay via the
        best common neighbor (two hops, modeled as the bottleneck)."""
        if src == dst:
            return ([], 0.0, False)
        width = self.link_width(src, dst)
        if width > 0:
            return ([self._pair_resource(src, dst, width)],
                    self.machine.nvlink_alpha, False)
        relay = self.best_relay(src, dst)
        first = self._pair_resource(src, relay,
                                    self.link_width(src, relay))
        second = self._pair_resource(relay, dst,
                                     self.link_width(relay, dst))
        return ([first, second], 2 * self.machine.nvlink_alpha, False)

    def best_relay(self, src: int, dst: int) -> int:
        """Widest-bottleneck intermediate GPU for an unlinked pair."""
        best, best_width = None, -1
        for relay in range(self.num_ranks):
            if relay in (src, dst):
                continue
            width = min(self.link_width(src, relay),
                        self.link_width(relay, dst))
            if width > best_width:
                best, best_width = relay, width
        if best is None or best_width == 0:
            raise RuntimeConfigError(
                f"no NVLink route between GPUs {src} and {dst}"
            )
        return best

    def link_bandwidth(self, src: int, dst: int) -> float:
        if src == dst:
            return float("inf")
        width = self.link_width(src, dst)
        if width > 0:
            return width * NVLINK2_BRICK_GBPS
        relay = self.best_relay(src, dst)
        return min(self.link_bandwidth(src, relay),
                   self.link_bandwidth(relay, dst))

    def link_alpha(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        hops = 1 if self.link_width(src, dst) else 2
        return hops * self.machine.nvlink_alpha

    def __repr__(self) -> str:
        return "Dgx1MeshTopology(8xV100 hybrid cube mesh)"


def dgx1_mesh() -> Dgx1MeshTopology:
    """A single DGX-1 with explicit cube-mesh NVLink wiring."""
    return Dgx1MeshTopology()
