"""Cluster topology models and hardware presets."""

from .dgx1_mesh import DGX1_LINKS, Dgx1MeshTopology, dgx1_mesh
from .model import GB, MachineSpec, Resource, Topology
from .presets import DGX1_V100, DGX2_V100, NDV4_A100, dgx1, dgx2, generic, ndv4

__all__ = [
    "DGX1_LINKS",
    "DGX1_V100",
    "Dgx1MeshTopology",
    "dgx1_mesh",
    "DGX2_V100",
    "GB",
    "MachineSpec",
    "NDV4_A100",
    "Resource",
    "Topology",
    "dgx1",
    "dgx2",
    "generic",
    "ndv4",
]
