"""Chunk identities: the values the DSL's abstract semantics track.

The paper (section 3.1) distinguishes three kinds of chunk:

* **Input chunks**, uniquely identified by ``(rank, index)`` into the
  rank's input buffer.
* **Reduction chunks**, identified by the collection of input chunks that
  were combined through the point-wise reduction.
* **Uninitialized chunks**, a unit type filling output/scratch buffers at
  program start.

Tracking these identities while tracing is what lets the compiler verify
an algorithm against a collective's postcondition without running it on
hardware.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import FrozenSet, Tuple


@dataclass(frozen=True)
class InputChunk:
    """A chunk initialized at runtime in some rank's input buffer."""

    rank: int
    index: int

    def __repr__(self) -> str:
        return f"c[{self.rank},{self.index}]"


@dataclass(frozen=True)
class Uninitialized:
    """The unit value stored by output/scratch buffers before any write."""

    def __repr__(self) -> str:
        return "<uninit>"


UNINITIALIZED = Uninitialized()

# A reduction is a multiset of input chunks: the identity is insensitive
# to the order reductions happened in (sums commute) but sensitive to
# multiplicity, so reducing the same chunk twice is distinguishable.
_Contribution = Tuple[InputChunk, int]


@dataclass(frozen=True)
class ReductionChunk:
    """The result of point-wise reducing two or more chunks.

    ``contributions`` is a canonical (sorted) tuple of
    ``(input_chunk, multiplicity)`` pairs.
    """

    contributions: Tuple[_Contribution, ...]

    @staticmethod
    def of(*chunks: "Chunk") -> "ReductionChunk":
        """Build the reduction of the given chunks (inputs or reductions)."""
        counter: Counter = Counter()
        for chunk in chunks:
            if isinstance(chunk, InputChunk):
                counter[chunk] += 1
            elif isinstance(chunk, ReductionChunk):
                for contrib, mult in chunk.contributions:
                    counter[contrib] += mult
            else:
                raise TypeError(f"cannot reduce {chunk!r}")
        ordered = tuple(
            sorted(counter.items(), key=lambda kv: (kv[0].rank, kv[0].index))
        )
        return ReductionChunk(ordered)

    @property
    def inputs(self) -> FrozenSet[InputChunk]:
        """The set of distinct input chunks contributing to this value."""
        return frozenset(c for c, _ in self.contributions)

    def __repr__(self) -> str:
        terms = []
        for chunk, mult in self.contributions:
            terms.append(f"{mult}*{chunk!r}" if mult > 1 else repr(chunk))
        return "(" + "+".join(terms) + ")"


Chunk = object  # union: InputChunk | ReductionChunk | Uninitialized


def reduce_chunks(a: Chunk, b: Chunk) -> ReductionChunk:
    """Abstract semantics of the point-wise reduce of two chunk values."""
    return ReductionChunk.of(a, b)


def is_initialized(chunk: Chunk) -> bool:
    """True when ``chunk`` holds data (is not the uninitialized unit)."""
    return not isinstance(chunk, Uninitialized)


def allreduce_result(num_ranks: int, index: int) -> ReductionChunk:
    """The reduction chunk AllReduce must place at ``index`` on every rank."""
    return ReductionChunk.of(*(InputChunk(r, index) for r in range(num_ranks)))
