"""Instruction-level representation: the nodes of the Instruction DAG.

The compiler expands each Chunk DAG operation into point-to-point or
local instructions (paper section 4.2):

==============  =======================================================
``send``        send a local span to the send peer
``recv``        receive a span from the recv peer into a local location
``copy``        local copy
``reduce``      local reduce: dst = dst (+) src
``rrc``         recvReduceCopy: dst = src (+) incoming
``rcs``         recvCopySend: store incoming locally and forward it
``rrcs``        recvReduceCopySend: rrc, then forward the result
``rrs``         recvReduceSend: forward src (+) incoming, no local write
``nop``         no data movement; carries cross-thread-block ordering
==============  =======================================================

Each instruction may be one *instance* of a parallelized operation, in
which case it carries the fraction of every chunk's elements it owns
(``frac_lo``/``frac_hi`` as exact rationals). Instances of the same
operation partition [0, 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Set, Tuple

from .buffers import Buffer

# A local span: (buffer, index, count) on the instruction's own rank.
LocalSpan = Tuple[Buffer, int, int]


class Op(enum.Enum):
    """Instruction opcodes, matching the paper's primitive set."""

    SEND = "s"
    RECV = "r"
    COPY = "cpy"
    REDUCE = "re"
    RECV_REDUCE_COPY = "rrc"
    RECV_COPY_SEND = "rcs"
    RECV_REDUCE_COPY_SEND = "rrcs"
    RECV_REDUCE_SEND = "rrs"
    # Synchronization-only step: moves no data, exists to carry a
    # cross-thread-block dependency (hand-written MSCCL XML uses these
    # as barriers). Not a member of any op set below.
    NOP = "nop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


SENDING_OPS = frozenset({
    Op.SEND, Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND,
    Op.RECV_REDUCE_SEND,
})
RECEIVING_OPS = frozenset({
    Op.RECV, Op.RECV_REDUCE_COPY, Op.RECV_COPY_SEND,
    Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND,
})
REDUCING_OPS = frozenset({
    Op.REDUCE, Op.RECV_REDUCE_COPY, Op.RECV_REDUCE_COPY_SEND,
    Op.RECV_REDUCE_SEND,
})
LOCAL_OPS = frozenset({Op.COPY, Op.REDUCE})


@dataclass
class Instruction:
    """One node of the Instruction DAG.

    ``deps`` are processing-edge predecessors (same rank, must execute
    first); ``send_match``/``recv_match`` are the communication-edge
    partners (send -> recv pairing across ranks).
    """

    instr_id: int
    rank: int
    op: Op
    src: Optional[LocalSpan] = None
    dst: Optional[LocalSpan] = None
    send_peer: Optional[int] = None
    recv_peer: Optional[int] = None
    channel_directive: Optional[int] = None
    channel: Optional[int] = None
    frac_lo: Fraction = Fraction(0)
    frac_hi: Fraction = Fraction(1)
    instance: Tuple[int, int] = (0, 1)  # (instance index, total instances)
    chunk_op_id: int = -1
    trace_key: Tuple[int, int] = (0, 0)  # (chunk op order, instance index)
    deps: Set[int] = field(default_factory=set)
    true_deps: Set[int] = field(default_factory=set)
    send_match: Optional[int] = None  # recv-side instruction id
    recv_match: Optional[int] = None  # send-side instruction id
    overwritten: bool = False  # dst later fully overwritten
    # Origin chunks (rank, buffer name, index) whose data this
    # instruction moves; fusion unions the absorbed send's set in.
    lineage: frozenset = frozenset()
    # instr_ids of sends absorbed into this instruction by fusion.
    fused_ids: List[int] = field(default_factory=list)

    @property
    def sends(self) -> bool:
        return self.op in SENDING_OPS

    @property
    def receives(self) -> bool:
        return self.op in RECEIVING_OPS

    @property
    def fraction(self) -> Tuple[Fraction, Fraction]:
        return (self.frac_lo, self.frac_hi)

    def read_spans(self) -> List[LocalSpan]:
        """Local spans this instruction reads."""
        spans: List[LocalSpan] = []
        if self.op in (Op.SEND, Op.COPY, Op.RECV_REDUCE_COPY,
                       Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND):
            if self.src is not None:
                spans.append(self.src)
        elif self.op is Op.REDUCE:
            if self.src is not None:
                spans.append(self.src)
            if self.dst is not None:
                spans.append(self.dst)
        return spans

    def write_spans(self) -> List[LocalSpan]:
        """Local spans this instruction writes."""
        if self.op in (Op.RECV, Op.COPY, Op.REDUCE, Op.RECV_REDUCE_COPY,
                       Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND):
            if self.dst is not None:
                return [self.dst]
        return []

    def __repr__(self) -> str:
        parts = [f"#{self.instr_id} r{self.rank} {self.op.value}"]
        if self.src is not None:
            buf, idx, cnt = self.src
            parts.append(f"src={buf.value}[{idx}:{idx + cnt}]")
        if self.dst is not None:
            buf, idx, cnt = self.dst
            parts.append(f"dst={buf.value}[{idx}:{idx + cnt}]")
        if self.send_peer is not None:
            parts.append(f"->r{self.send_peer}")
        if self.recv_peer is not None:
            parts.append(f"<-r{self.recv_peer}")
        if (self.frac_lo, self.frac_hi) != (Fraction(0), Fraction(1)):
            parts.append(f"frac=[{self.frac_lo},{self.frac_hi})")
        return "Instr(" + " ".join(parts) + ")"


class InstructionDAG:
    """The full instruction graph produced by lowering."""

    def __init__(self) -> None:
        self.instructions: List[Instruction] = []

    def new(self, **kwargs) -> Instruction:
        instr = Instruction(instr_id=len(self.instructions), **kwargs)
        self.instructions.append(instr)
        return instr

    def live(self) -> List[Instruction]:
        """Instructions not removed by fusion (fusion nulls out slots)."""
        return [i for i in self.instructions if i is not None]

    def dependents(self):
        """Reverse adjacency over processing edges: id -> dependents."""
        result = {i.instr_id: set() for i in self.live()}
        for instr in self.live():
            for dep in instr.deps:
                if dep in result:
                    result[dep].add(instr.instr_id)
        return result

    def __len__(self) -> int:
        return len(self.live())


def fractions_overlap(lo1: Fraction, hi1: Fraction,
                      lo2: Fraction, hi2: Fraction) -> bool:
    """True when two half-open element fractions intersect."""
    return lo1 < hi2 and lo2 < hi1


def fraction_covers(outer_lo: Fraction, outer_hi: Fraction,
                    inner_lo: Fraction, inner_hi: Fraction) -> bool:
    """True when [outer) fully contains [inner)."""
    return outer_lo <= inner_lo and inner_hi <= outer_hi
