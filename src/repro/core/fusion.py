"""Peephole instruction fusion (paper section 4.3).

Three rewrites combine a receive-side instruction with a dependent send
so intermediate values flow through registers instead of global memory:

* ``recv`` + ``send``  ->  ``rcs``   (recvCopySend)
* ``rrc``  + ``send``  ->  ``rrcs``  (recvReduceCopySend)
* ``rrc``  + ``send``  ->  ``rrs``   (recvReduceSend) when the locally
  reduced value is never read again and is later overwritten, so the
  local store can be elided entirely.

When several sends depend on one receive, the send on the longest path
through the Instruction DAG is fused (it gates the most downstream
work).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .instructions import Instruction, InstructionDAG, Op


def _reverse_depths(idag: InstructionDAG) -> Dict[int, int]:
    """Longest path (in edges) from each instruction to any leaf.

    Edges: processing dependencies and send->recv communication edges.
    Instruction ids are already a topological order (lowering only adds
    edges from lower to higher ids), so one reverse sweep suffices.
    """
    depths: Dict[int, int] = {}
    successors: Dict[int, Set[int]] = {
        i.instr_id: set() for i in idag.live()
    }
    for instr in idag.live():
        for dep in instr.deps:
            successors[dep].add(instr.instr_id)
        if instr.send_match is not None:
            successors[instr.instr_id].add(instr.send_match)
    for instr in reversed(idag.live()):
        succ = successors[instr.instr_id]
        depths[instr.instr_id] = (
            1 + max(depths[s] for s in succ) if succ else 0
        )
    return depths


class _ChainTracker:
    """Channel chains as the scheduler will later see them.

    ``_assign_channels`` identifies each communication edge by its
    receiving instruction's id and unions a fused instruction's
    incoming edge with its outgoing edge — transitively, so a chain of
    rcs/rrcs hops must agree on a single explicit ``ch=`` directive. A
    pairwise directive check at fusion time is not enough: two fusions
    that look compatible locally can join chains whose *other* ends
    carry different directives. This tracker mirrors the scheduler's
    union-find so such fusions are skipped instead of exploding later
    as a ``SchedulingError``.
    """

    def __init__(self, by_id: List[Optional[Instruction]]):
        self._by_id = by_id
        self._parent: Dict[int, int] = {}
        self._dirs: Dict[int, Set[int]] = {}

    def _register(self, edge: int) -> None:
        if edge in self._parent:
            return
        self._parent[edge] = edge
        dirs: Set[int] = set()
        recv_side = self._by_id[edge]
        if recv_side is not None:
            if recv_side.channel_directive is not None:
                dirs.add(recv_side.channel_directive)
            if recv_side.recv_match is not None:
                send_side = self._by_id[recv_side.recv_match]
                if (send_side is not None
                        and send_side.channel_directive is not None):
                    dirs.add(send_side.channel_directive)
        self._dirs[edge] = dirs

    def _find(self, edge: int) -> int:
        self._register(edge)
        root = edge
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[edge] != root:  # path compression
            self._parent[edge], edge = root, self._parent[edge]
        return root

    def can_merge(self, incoming_edge: int, outgoing_edge: int) -> bool:
        """Would fusing these edges leave at most one directive?"""
        merged = (self._dirs[self._find(incoming_edge)]
                  | self._dirs[self._find(outgoing_edge)])
        return len(merged) <= 1

    def merge(self, incoming_edge: int, outgoing_edge: int) -> None:
        ra = self._find(incoming_edge)
        rb = self._find(outgoing_edge)
        if ra != rb:
            self._parent[rb] = ra
            self._dirs[ra] |= self._dirs.pop(rb)


def _pick_send(receiver: Instruction, candidates: List[Instruction],
               rev_depth: Dict[int, int]) -> Instruction:
    """The send to fuse: the one on the longest downstream path."""
    return max(
        candidates,
        key=lambda s: (rev_depth[s.instr_id], -s.instr_id),
    )


def fuse(idag: InstructionDAG) -> InstructionDAG:
    """Apply all peephole fusions in place and return the DAG."""
    rev_depth = _reverse_depths(idag)
    dependents: Dict[int, Set[int]] = {
        i.instr_id: set() for i in idag.live()
    }
    for instr in idag.live():
        for dep in instr.deps:
            dependents[dep].add(instr.instr_id)

    by_id = idag.instructions  # list indexed by instr_id; fused slots None
    chains = _ChainTracker(by_id)

    for receiver in list(idag.live()):
        if receiver.op not in (Op.RECV, Op.RECV_REDUCE_COPY):
            continue
        candidates = []
        for dep_id in sorted(dependents[receiver.instr_id]):
            cand = by_id[dep_id]
            if cand is None or cand.op is not Op.SEND:
                continue
            if cand.rank != receiver.rank:
                continue
            if cand.src != receiver.dst:
                continue
            if cand.fraction != receiver.fraction:
                continue
            # Fusing ties the receiver's incoming communication edge to
            # the send's outgoing one in the scheduler's channel
            # assignment; both (transitive) chains must agree on one
            # explicit ch= directive.
            if (cand.send_match is not None
                    and not chains.can_merge(receiver.instr_id,
                                             cand.send_match)):
                continue
            # Fusing moves the send to the receiver's position: every
            # other prerequisite of the send must already be satisfied
            # there.
            extra = cand.deps - {receiver.instr_id}
            if not extra <= receiver.deps:
                continue
            candidates.append(cand)
        if not candidates:
            continue

        send = _pick_send(receiver, candidates, rev_depth)
        if send.send_match is not None:
            chains.merge(receiver.instr_id, send.send_match)
        _fuse_pair(receiver, send, by_id, dependents)

    return idag


def _fuse_pair(receiver: Instruction, send: Instruction,
               by_id: List[Optional[Instruction]],
               dependents: Dict[int, Set[int]]) -> None:
    """Merge ``send`` into ``receiver`` and rewrite the graph."""
    if receiver.op is Op.RECV:
        receiver.op = Op.RECV_COPY_SEND
    else:
        # rrs when the reduced value is never read by anything but this
        # send and the location is later fully overwritten; otherwise
        # the local copy must be kept (rrcs).
        true_readers = {
            d for d in dependents[receiver.instr_id]
            if by_id[d] is not None
            and receiver.instr_id in by_id[d].true_deps
        }
        if true_readers == {send.instr_id} and receiver.overwritten:
            receiver.op = Op.RECV_REDUCE_SEND
        else:
            receiver.op = Op.RECV_REDUCE_COPY_SEND

    receiver.send_peer = send.send_peer
    receiver.send_match = send.send_match
    receiver.lineage |= send.lineage
    receiver.fused_ids.append(send.instr_id)
    receiver.fused_ids.extend(send.fused_ids)
    if receiver.channel_directive is None:
        receiver.channel_directive = send.channel_directive
    remote_recv = by_id[send.send_match]
    remote_recv.recv_match = receiver.instr_id

    # Inherit the send's remaining dependencies and dependents.
    receiver.deps |= send.deps - {receiver.instr_id}
    receiver.true_deps |= send.true_deps - {receiver.instr_id}
    for dep_id in send.deps:
        if dep_id != receiver.instr_id and by_id[dep_id] is not None:
            dependents[dep_id].discard(send.instr_id)
            dependents[dep_id].add(receiver.instr_id)
    for dependent_id in dependents[send.instr_id]:
        dependent = by_id[dependent_id]
        if dependent is None:
            continue
        dependent.deps.discard(send.instr_id)
        dependent.deps.add(receiver.instr_id)
        if send.instr_id in dependent.true_deps:
            dependent.true_deps.discard(send.instr_id)
            dependent.true_deps.add(receiver.instr_id)
        dependents[receiver.instr_id].add(dependent_id)
    dependents[send.instr_id] = set()
    dependents[receiver.instr_id].discard(send.instr_id)
    by_id[send.instr_id] = None
