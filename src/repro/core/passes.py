"""Post-scheduling IR optimization passes.

The scheduler emits correct but occasionally redundant metadata; these
passes tighten it without changing semantics:

* :func:`prune_redundant_deps` — transitive reduction of cross-thread-
  block dependencies: a ``dep`` entry is redundant if another dependency
  (or the thread block's own program order, or an incoming communication
  edge) already guarantees the ordering. Fewer dep entries mean fewer
  semaphore waits in the interpreter.
* :func:`renumber_channels` — compact channel ids to a dense 0..n-1
  range (after channel probing they may be sparse).
* :func:`ir_stats` — before/after accounting for the passes.

All passes mutate the IR in place and return it, so they chain.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..observe.tracer import maybe_span
from .instructions import Op
from .ir import MscclIr

RECEIVING = frozenset({
    Op.RECV, Op.RECV_REDUCE_COPY, Op.RECV_COPY_SEND,
    Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND,
})
SENDING = frozenset({
    Op.SEND, Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND,
    Op.RECV_REDUCE_SEND,
})


def _completion_order(ir: MscclIr):
    """For each rank, a map (tb, step) -> set of (tb, step) known-done.

    Conservative happens-before within one rank: program order inside a
    thread block plus the transitive closure through explicit deps.
    Communication edges are cross-rank and cannot order two same-rank
    instructions by themselves, so they are ignored here (safe: we only
    *keep* deps that are not provably redundant).
    """
    orders = {}
    for gpu in ir.gpus:
        # done[(tb, step)] = set of (tb, step) guaranteed complete when
        # this instruction starts.
        done: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
        # Iterate in a topological order over (program order + deps).
        pending = {
            (tb.tb_id, instr.step): instr
            for tb in gpu.threadblocks for instr in tb.instructions
        }
        resolved: Set[Tuple[int, int]] = set()
        progress = True
        while pending and progress:
            progress = False
            for key in sorted(pending):
                tb_id, step = key
                instr = pending[key]
                preds = set()
                if step > 0:
                    prev = (tb_id, step - 1)
                    if prev in pending:
                        continue  # wait for predecessor resolution
                    preds.add(prev)
                    preds |= done.get(prev, set())
                blocked = False
                for dep in instr.depends:
                    dep_key = tuple(dep)
                    if dep_key in pending:
                        blocked = True
                        break
                    preds.add(dep_key)
                    preds |= done.get(dep_key, set())
                if blocked:
                    continue
                done[key] = preds
                resolved.add(key)
                del pending[key]
                progress = True
        orders[gpu.rank] = done
    return orders


def prune_redundant_deps(ir: MscclIr) -> MscclIr:
    """Drop dep entries already implied by other ordering edges."""
    orders = _completion_order(ir)
    for gpu in ir.gpus:
        done = orders[gpu.rank]
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                if not instr.depends:
                    continue
                key = (tb.tb_id, instr.step)
                kept: List[Tuple[int, int]] = []
                for index, dep in enumerate(instr.depends):
                    others: Set[Tuple[int, int]] = set()
                    if instr.step > 0:
                        prev = (tb.tb_id, instr.step - 1)
                        others.add(prev)
                        others |= done.get(prev, set())
                    for j, other in enumerate(instr.depends):
                        if j != index:
                            other_key = tuple(other)
                            others.add(other_key)
                            others |= done.get(other_key, set())
                    if tuple(dep) not in others:
                        kept.append(tuple(dep))
                instr.depends = kept
    _refresh_has_dep(ir)
    return ir


def _refresh_has_dep(ir: MscclIr) -> None:
    """Recompute has_dep flags after dep edits."""
    flagged: Set[Tuple[int, int, int]] = set()
    for gpu in ir.gpus:
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                for dep_tb, dep_step in instr.depends:
                    flagged.add((gpu.rank, dep_tb, dep_step))
    for gpu in ir.gpus:
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                instr.has_dep = (
                    (gpu.rank, tb.tb_id, instr.step) in flagged
                )


def renumber_channels(ir: MscclIr) -> MscclIr:
    """Compact channel numbers to 0..n-1 preserving relative order."""
    used = sorted({
        tb.channel for gpu in ir.gpus for tb in gpu.threadblocks
    })
    mapping = {channel: index for index, channel in enumerate(used)}
    for gpu in ir.gpus:
        for tb in gpu.threadblocks:
            tb.channel = mapping[tb.channel]
    return ir


def ir_stats(ir: MscclIr) -> Dict[str, int]:
    """Counters the passes aim to reduce."""
    dep_entries = sum(
        len(instr.depends)
        for gpu in ir.gpus
        for tb in gpu.threadblocks
        for instr in tb.instructions
    )
    flagged = sum(
        1
        for gpu in ir.gpus
        for tb in gpu.threadblocks
        for instr in tb.instructions
        if instr.has_dep
    )
    return {
        "instructions": ir.instruction_count(),
        "threadblocks": ir.threadblock_count(),
        "channels": ir.channels_used(),
        "dep_entries": dep_entries,
        "has_dep_flags": flagged,
    }


def optimize_ir(ir: MscclIr, tracer=None) -> MscclIr:
    """The default pass pipeline.

    With a :class:`repro.observe.Tracer`, each pass gets a span carrying
    the :func:`ir_stats` counters before and after it ran.
    """
    with maybe_span(tracer, "optimize", cat="compiler") as outer:
        before = ir_stats(ir)
        with maybe_span(tracer, "prune_redundant_deps", cat="compiler",
                        dep_entries_in=before["dep_entries"]) as span:
            prune_redundant_deps(ir)
            if span is not None:
                span.args["dep_entries_out"] = \
                    ir_stats(ir)["dep_entries"]
        with maybe_span(tracer, "renumber_channels", cat="compiler",
                        channels_in=before["channels"]) as span:
            renumber_channels(ir)
            if span is not None:
                span.args["channels_out"] = ir_stats(ir)["channels"]
        if outer is not None:
            after = ir_stats(ir)
            outer.args.update({
                "instructions": after["instructions"],
                "dep_entries_in": before["dep_entries"],
                "dep_entries_out": after["dep_entries"],
            })
    return ir
