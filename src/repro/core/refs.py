"""Chunk references: the fluent handles MSCCLang programs manipulate.

Programs never touch chunks directly; they hold :class:`ChunkRef` values
returned by ``chunk()``, ``copy()`` and ``reduce()``. A reference
snapshots the *versions* of the buffer locations it covers; if a later
operation overwrites any of them, the reference is stale and any use
raises :class:`~repro.core.errors.StaleReferenceError`. This is what
makes MSCCLang programs data-race free by construction (section 3.3).
"""

from __future__ import annotations

from typing import List, Optional

from .buffers import Buffer
from .errors import ProgramError, StaleReferenceError


class ChunkRef:
    """A reference to ``count`` contiguous chunks at a buffer location.

    Coordinates are canonical (in-place aliasing already resolved).
    """

    __slots__ = ("_program", "rank", "buffer", "index", "count", "_versions")

    def __init__(self, program, rank: int, buffer: Buffer, index: int,
                 count: int, versions: List[int]):
        self._program = program
        self.rank = rank
        self.buffer = buffer
        self.index = index
        self.count = count
        self._versions = versions

    # -- validity ------------------------------------------------------
    def is_stale(self) -> bool:
        """True if any covered location was written after this snapshot."""
        current = self._program.buffer_state(self.rank, self.buffer).versions(
            self.index, self.count
        )
        return current != self._versions

    def _check_fresh(self, role: str) -> None:
        if self.is_stale():
            raise StaleReferenceError(
                f"{role} reference {self!r} is stale: the location was "
                "overwritten after this reference was created; re-acquire "
                "it with chunk(...)"
            )

    # -- operations ------------------------------------------------------
    def copy(self, dst_rank, buffer=None, index=None,
             count: Optional[int] = None, *,
             ch: Optional[int] = None) -> "ChunkRef":
        """Copy these chunks to a destination; returns the new reference.

        ``dst_rank`` may be an integer rank or a ``(node, gpu)`` tuple.
        ``buffer``/``index`` default to this reference's own buffer and
        index. ``count``, if given, must match this reference's count
        (it exists so calls can mirror the paper's examples verbatim).
        ``ch`` pins the transfer to a channel (section 5.1).
        """
        self._check_fresh("copy source")
        if count is not None and count != self.count:
            raise ProgramError(
                f"copy count {count} does not match the reference's "
                f"count {self.count}"
            )
        if buffer is None:
            buffer = self.buffer
        if index is None:
            index = self.index
        return self._program.apply_copy(self, dst_rank, buffer, index, ch)

    def reduce(self, other: "ChunkRef", *,
               ch: Optional[int] = None) -> "ChunkRef":
        """Reduce ``other`` into this reference's location, in place.

        Matches the paper's ``c1.reduce(c2)``: the result lands at
        ``c1``'s indices and a fresh reference to it is returned.
        """
        if not isinstance(other, ChunkRef):
            raise ProgramError(
                f"reduce expects a ChunkRef, got {type(other).__name__}"
            )
        if other.count != self.count:
            raise ProgramError(
                f"reduce requires equal counts: {self.count} vs {other.count}"
            )
        self._check_fresh("reduce destination")
        other._check_fresh("reduce source")
        return self._program.apply_reduce(self, other, ch)

    # -- introspection ---------------------------------------------------
    def values(self):
        """The abstract chunk values currently referenced (fresh only)."""
        self._check_fresh("inspected")
        state = self._program.buffer_state(self.rank, self.buffer)
        return state.read(self.index, self.count)

    def __repr__(self) -> str:
        return (
            f"ChunkRef(rank={self.rank}, buffer={self.buffer}, "
            f"index={self.index}, count={self.count})"
        )
