"""Lowering: expand the Chunk DAG into the Instruction DAG.

Each chunk operation becomes one local instruction or a send/recv pair
(paper section 4.2). Parallelized operations (``parallelize`` regions
and whole-program ``instances``) are replicated here: instance *k* of
*S* owns the element fraction ``[k/S, (k+1)/S)`` of every chunk it
touches, so instances partition the data exactly.

Dependencies are recomputed at instruction granularity with per-location
*fractional* interval tracking, which yields exact true/false edges even
when differently-parallelized phases interact (e.g. a 2-way parallelized
intra-node phase feeding an unparallelized inter-node phase).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Tuple

from .dag import ChunkDAG, ChunkOp
from .errors import ProgramError
from .instructions import Instruction, InstructionDAG, Op

Interval = Tuple[Fraction, Fraction]
Location = Tuple[int, object, int]  # (rank, buffer, index)


def _subtract(intervals: List[Interval], lo: Fraction,
              hi: Fraction) -> List[Interval]:
    """Remove [lo, hi) from a sorted, disjoint interval list."""
    result: List[Interval] = []
    for (ilo, ihi) in intervals:
        if ihi <= lo or hi <= ilo:
            result.append((ilo, ihi))
            continue
        if ilo < lo:
            result.append((ilo, lo))
        if hi < ihi:
            result.append((hi, ihi))
    return result


def _overlaps(intervals: List[Interval], lo: Fraction,
              hi: Fraction) -> bool:
    """True when [lo, hi) intersects any interval in the list."""
    return any(ilo < hi and lo < ihi for (ilo, ihi) in intervals)


class _AccessEntry:
    """A reader's or writer's remaining (not yet overwritten) intervals."""

    __slots__ = ("instr_id", "intervals")

    def __init__(self, instr_id: int, lo: Fraction, hi: Fraction):
        self.instr_id = instr_id
        self.intervals: List[Interval] = [(lo, hi)]


class _LocationTracker:
    """Fractional last-writer / readers-since-write bookkeeping."""

    def __init__(self) -> None:
        self._writers: Dict[Location, List[_AccessEntry]] = {}
        self._readers: Dict[Location, List[_AccessEntry]] = {}
        # instr_id -> number of write cells not yet fully overwritten.
        self.pending_cells: Dict[int, int] = {}

    def record_read(self, instr: Instruction, loc: Location,
                    lo: Fraction, hi: Fraction) -> None:
        for entry in self._writers.get(loc, ()):
            if entry.instr_id != instr.instr_id and _overlaps(
                    entry.intervals, lo, hi):
                instr.deps.add(entry.instr_id)
                instr.true_deps.add(entry.instr_id)
        self._readers.setdefault(loc, []).append(
            _AccessEntry(instr.instr_id, lo, hi)
        )

    def record_write(self, instr: Instruction, loc: Location,
                     lo: Fraction, hi: Fraction) -> None:
        writers = self._writers.setdefault(loc, [])
        surviving_writers: List[_AccessEntry] = []
        for entry in writers:
            if entry.instr_id != instr.instr_id and _overlaps(
                    entry.intervals, lo, hi):
                instr.deps.add(entry.instr_id)  # WAW
            entry.intervals = _subtract(entry.intervals, lo, hi)
            if entry.intervals:
                surviving_writers.append(entry)
            else:
                self.pending_cells[entry.instr_id] -= 1
        readers = self._readers.get(loc, [])
        surviving_readers: List[_AccessEntry] = []
        for entry in readers:
            if entry.instr_id != instr.instr_id and _overlaps(
                    entry.intervals, lo, hi):
                instr.deps.add(entry.instr_id)  # WAR
            entry.intervals = _subtract(entry.intervals, lo, hi)
            if entry.intervals:
                surviving_readers.append(entry)
        surviving_writers.append(_AccessEntry(instr.instr_id, lo, hi))
        self._writers[loc] = surviving_writers
        self._readers[loc] = surviving_readers
        self.pending_cells[instr.instr_id] = (
            self.pending_cells.get(instr.instr_id, 0) + 1
        )


def _span_locations(rank: int, span) -> List[Location]:
    buffer, index, count = span
    return [(rank, buffer, index + k) for k in range(count)]


def _record_instruction(tracker: _LocationTracker,
                        instr: Instruction) -> None:
    """Register an instruction's reads then writes with the tracker."""
    for span in instr.read_spans():
        for loc in _span_locations(instr.rank, span):
            tracker.record_read(instr, loc, instr.frac_lo, instr.frac_hi)
    for span in instr.write_spans():
        for loc in _span_locations(instr.rank, span):
            tracker.record_write(instr, loc, instr.frac_lo, instr.frac_hi)


def lower(dag: ChunkDAG, instances: int = 1) -> InstructionDAG:
    """Expand a Chunk DAG into an Instruction DAG.

    ``instances`` is the whole-program parallelization factor (the
    paper's ``r``); ``parallelize`` regions multiply on top of it.
    """
    idag = InstructionDAG()
    tracker = _LocationTracker()

    for op in dag.operations():
        group_n = op.parallel.instances if op.parallel is not None else 1
        total = instances * group_n
        for prog_i in range(instances):
            for group_i in range(group_n):
                k = prog_i * group_n + group_i
                lo = Fraction(k, total)
                hi = Fraction(k + 1, total)
                _expand_op(idag, tracker, op, k, total, lo, hi)

    # Finalize the "dst fully overwritten later" flags used by the rrs
    # fusion rule.
    for instr in idag.live():
        pending = tracker.pending_cells.get(instr.instr_id)
        if pending is not None:
            instr.overwritten = pending == 0 and bool(instr.write_spans())
    return idag


def _expand_op(idag: InstructionDAG, tracker: _LocationTracker,
               op: ChunkOp, k: int, total: int,
               lo: Fraction, hi: Fraction) -> None:
    """Emit the instruction(s) for one instance of one chunk op."""
    src_rank, src_buffer, src_index, count = op.src
    dst_rank, dst_buffer, dst_index, dst_count = op.dst
    if dst_count != count:
        # Chunk ops move data element-wise, so both spans must cover
        # the same number of chunks; anything else would silently
        # truncate (the old code dropped the dst count on the floor).
        raise ProgramError(
            f"chunk op {op.kind!r} moves {count} chunk(s) from rank "
            f"{src_rank} {src_buffer}[{src_index}] but its destination "
            f"span on rank {dst_rank} {dst_buffer}[{dst_index}] covers "
            f"{dst_count}; source and destination counts must match"
        )
    src_span = (src_buffer, src_index, count)
    dst_span = (dst_buffer, dst_index, count)
    common = dict(
        channel_directive=op.channel,
        frac_lo=lo,
        frac_hi=hi,
        instance=(k, total),
        chunk_op_id=op.op_id,
        trace_key=(op.trace_index, k),
        lineage=op.lineage,
    )

    if op.is_local:
        local_op = Op.COPY if op.kind == "copy" else Op.REDUCE
        instr = idag.new(rank=src_rank, op=local_op, src=src_span,
                         dst=dst_span, **common)
        _record_instruction(tracker, instr)
        return

    # A remote reduce's send moves only the source span's data; the
    # accumulator's own origins never leave the destination rank.
    send_common = dict(common, lineage=op.src_lineage)
    send = idag.new(rank=src_rank, op=Op.SEND, src=src_span,
                    send_peer=dst_rank, **send_common)
    _record_instruction(tracker, send)
    if op.kind == "copy":
        recv = idag.new(rank=dst_rank, op=Op.RECV, dst=dst_span,
                        recv_peer=src_rank, **common)
    else:  # remote reduce: receive and accumulate into the destination
        recv = idag.new(rank=dst_rank, op=Op.RECV_REDUCE_COPY,
                        src=dst_span, dst=dst_span,
                        recv_peer=src_rank, **common)
    _record_instruction(tracker, recv)
    send.send_match = recv.instr_id
    recv.recv_match = send.instr_id
