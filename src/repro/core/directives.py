"""Scheduling directives exposed to MSCCLang programs (paper section 5.1).

Two directives exist:

* ``ch=`` keyword on ``copy``/``reduce`` — pins an operation's transfer
  to a channel (handled by :mod:`repro.core.refs`).
* ``with parallelize(n):`` — chunk parallelization: every operation
  traced inside the block is replicated ``n`` times by the compiler,
  each instance carrying ``1/n`` of the data on disjoint channels.
"""

from __future__ import annotations

from contextlib import contextmanager

from .program import current_program


@contextmanager
def parallelize(instances: int):
    """Replicate the operations traced inside this block ``instances``-way.

    Example (paper section 5.1)::

        with parallelize(N):
            ReduceScatter(local_ranks, 0, N)
    """
    program = current_program()
    group = program.push_parallel(instances)
    try:
        yield group
    finally:
        program.pop_parallel(group)
