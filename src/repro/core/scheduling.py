"""Scheduling: from Instruction DAG to MSCCL-IR (paper section 5).

Three phases:

1. **Channel assignment.** Communication edges are grouped into chains
   (edges joined by fused instructions must share a channel). Each chain
   derives a key from its user directive (``ch=``) and its parallel
   instance; keys map to dense channel numbers, with linear probing when
   a chain's pairings (a fused instruction binds a send connection to a
   receive connection on one thread block) would conflict.

2. **Thread block assignment.** Instructions are sorted into a global
   topological order with a priority heap keyed on depth (max hops from
   a root — enabled earlier first) and reverse depth (max hops to a leaf
   — more downstream work first). Thread blocks are created per unique
   (send peer, receive peer, channel) connection pair; local operations
   go to the thread block whose latest assigned instruction is earliest.
   Assigning in topological order guarantees the sequential order inside
   every thread block cannot create a cycle, so the IR is deadlock-free.

3. **Cross-thread-block synchronization.** Processing edges that cross
   thread blocks become explicit ``depends`` entries (the ``dep``
   modifier of the paper's IR), implemented by the runtime's semaphores.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..observe.tracer import maybe_span
from .errors import SchedulingError
from .instructions import Instruction, InstructionDAG
from .ir import GpuProgram, IrInstruction, MscclIr, ThreadBlock

_MAX_CHANNEL_PROBES = 1024


@dataclass
class _TbRecord:
    """A thread block being built during assignment."""

    rank: int
    tb_id: int
    channel: int
    send_peer: Optional[int] = None
    recv_peer: Optional[int] = None
    members: List[Instruction] = field(default_factory=list)
    last_pos: int = -1


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self._parent.setdefault(x, x)
        if parent != x:
            root = self.find(parent)
            self._parent[x] = root
            return root
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)


def _compute_depths(instrs: List[Instruction]) -> Tuple[Dict[int, int],
                                                        Dict[int, int]]:
    """(depth from roots, reverse depth to leaves) over all edges."""
    by_id = {i.instr_id: i for i in instrs}
    successors: Dict[int, List[int]] = {i.instr_id: [] for i in instrs}
    for instr in instrs:
        for dep in instr.deps:
            if dep in by_id:
                successors[dep].append(instr.instr_id)
        if instr.send_match is not None and instr.send_match in by_id:
            successors[instr.instr_id].append(instr.send_match)
    depth: Dict[int, int] = {}
    for instr in instrs:  # ids are a topological order
        preds = [d for d in instr.deps if d in by_id]
        if instr.recv_match is not None and instr.recv_match in by_id:
            preds.append(instr.recv_match)
        depth[instr.instr_id] = (
            1 + max(depth[p] for p in preds) if preds else 0
        )
    rev: Dict[int, int] = {}
    for instr in reversed(instrs):
        succ = successors[instr.instr_id]
        rev[instr.instr_id] = 1 + max((rev[s] for s in succ), default=-1)
    return depth, rev


def _assign_channels(instrs: List[Instruction]) -> None:
    """Phase 1: give every communication edge a concrete channel."""
    by_id = {i.instr_id: i for i in instrs}
    # A communication edge is identified by its receiving instruction's
    # id. Fused instructions tie their incoming and outgoing edges.
    uf = _UnionFind()
    edges = set()
    for instr in instrs:
        if instr.receives:
            edges.add(instr.instr_id)
        if instr.sends and instr.send_match is not None:
            edges.add(instr.send_match)
        if instr.receives and instr.sends and instr.send_match is not None:
            uf.union(instr.instr_id, instr.send_match)

    chains: Dict[int, List[int]] = {}
    for edge in edges:
        chains.setdefault(uf.find(edge), []).append(edge)

    # Gather each chain's directive, instance, and member instructions.
    chain_infos = []
    for root, edge_ids in chains.items():
        members: List[Instruction] = []
        directives = set()
        for edge in edge_ids:
            recv_side = by_id[edge]
            members.append(recv_side)
            send_side = by_id[recv_side.recv_match]
            members.append(send_side)
            for m in (recv_side, send_side):
                if m.channel_directive is not None:
                    directives.add(m.channel_directive)
        if len(directives) > 1:
            raise SchedulingError(
                f"conflicting channel directives {sorted(directives)} in "
                "one fused chain; use compatible ch= values"
            )
        base = directives.pop() if directives else 0
        k, total = members[0].instance
        key = (base, Fraction(k, total), total)
        order = min(m.trace_key for m in members)
        chain_infos.append((key, order, root, members))

    # Dense preference channels from sorted unique keys.
    unique_keys = sorted({info[0] for info in chain_infos})
    preference = {key: i for i, key in enumerate(unique_keys)}

    # Pairing registry: a fused instruction on (rank, channel) binds its
    # send connection to its receive connection; conflicting bindings on
    # the same channel are impossible to place on one thread block.
    pair_by_send: Dict[Tuple[int, int, int], int] = {}
    pair_by_recv: Dict[Tuple[int, int, int], int] = {}

    def pairings_of(members: List[Instruction]):
        return [
            (m.rank, m.send_peer, m.recv_peer)
            for m in members
            if m.sends and m.receives
        ]

    def feasible(channel: int, members: List[Instruction]) -> bool:
        for rank, send_peer, recv_peer in pairings_of(members):
            bound = pair_by_send.get((rank, channel, send_peer))
            if bound is not None and bound != recv_peer:
                return False
            bound = pair_by_recv.get((rank, channel, recv_peer))
            if bound is not None and bound != send_peer:
                return False
        return True

    def commit(channel: int, members: List[Instruction]) -> None:
        for rank, send_peer, recv_peer in pairings_of(members):
            pair_by_send[(rank, channel, send_peer)] = recv_peer
            pair_by_recv[(rank, channel, recv_peer)] = send_peer

    for key, _order, _root, members in sorted(
            chain_infos, key=lambda info: (preference[info[0]], info[1])):
        start = preference[key]
        for probe in range(_MAX_CHANNEL_PROBES):
            channel = start + probe
            if feasible(channel, members):
                break
        else:
            raise SchedulingError(
                "could not find a conflict-free channel after "
                f"{_MAX_CHANNEL_PROBES} probes"
            )
        commit(channel, members)
        for member in members:
            if member.channel is not None and member.channel != channel:
                raise SchedulingError(
                    f"instruction {member!r} pulled into two chains with "
                    f"channels {member.channel} and {channel}"
                )
            member.channel = channel


def schedule(idag: InstructionDAG, *, name: str, collective_name: str,
             protocol: str, num_ranks: int, in_place: bool,
             input_chunks, output_chunks, scratch_chunks,
             max_threadblocks: Optional[int] = None,
             tracer=None) -> MscclIr:
    """Phases 2 and 3: build the MSCCL-IR from a fused Instruction DAG.

    ``input_chunks``/``output_chunks``/``scratch_chunks`` are callables
    rank -> chunk count. ``max_threadblocks`` bounds thread blocks per
    GPU (the SM count constraint of cooperative kernel launch).
    ``tracer`` (a :class:`repro.observe.Tracer`) records the scheduler's
    internal phases as nested spans.
    """
    instrs = idag.live()
    with maybe_span(tracer, "assign_channels", cat="compiler",
                    instructions=len(instrs)) as chan_span:
        _assign_channels(instrs)
        if chan_span is not None:
            chan_span.args["channels"] = len({
                i.channel for i in instrs if i.channel is not None
            })
    depth, rev = _compute_depths(instrs)
    by_id = {i.instr_id: i for i in instrs}

    # Global topological order via a priority heap.
    indegree: Dict[int, int] = {}
    successors: Dict[int, List[int]] = {i.instr_id: [] for i in instrs}
    for instr in instrs:
        count = len([d for d in instr.deps if d in by_id])
        if instr.recv_match is not None and instr.recv_match in by_id:
            count += 1
        indegree[instr.instr_id] = count
        for dep in instr.deps:
            if dep in by_id:
                successors[dep].append(instr.instr_id)
        if instr.send_match is not None and instr.send_match in by_id:
            successors[instr.instr_id].append(instr.send_match)

    def priority(instr: Instruction):
        return (depth[instr.instr_id], -rev[instr.instr_id],
                instr.trace_key, instr.instr_id)

    heap = [
        (priority(i), i.instr_id) for i in instrs
        if indegree[i.instr_id] == 0
    ]
    heapq.heapify(heap)

    tbs_by_rank: Dict[int, List[_TbRecord]] = {
        r: [] for r in range(num_ranks)
    }
    send_owner: Dict[Tuple[int, int, int], _TbRecord] = {}
    recv_owner: Dict[Tuple[int, int, int], _TbRecord] = {}
    placement: Dict[int, Tuple[_TbRecord, int]] = {}
    position = 0
    scheduled = 0

    # Fused instructions statically bind a send connection to a recv
    # connection on one thread block. Precompute those bindings so that
    # when a lone send or recv claims a connection first, its thread
    # block is reserved with BOTH peers — otherwise a later fused
    # instruction could find its two connections stranded on different
    # blocks.
    bound_recv_of_send: Dict[Tuple[int, int, int], int] = {}
    bound_send_of_recv: Dict[Tuple[int, int, int], int] = {}
    for instr in instrs:
        if instr.sends and instr.receives:
            channel = instr.channel if instr.channel is not None else 0
            bound_recv_of_send[(instr.rank, instr.send_peer, channel)] = \
                instr.recv_peer
            bound_send_of_recv[(instr.rank, instr.recv_peer, channel)] = \
                instr.send_peer

    def new_tb(rank: int, channel: int) -> _TbRecord:
        tb = _TbRecord(rank=rank, tb_id=len(tbs_by_rank[rank]),
                       channel=channel)
        tbs_by_rank[rank].append(tb)
        return tb

    def claim(tb: _TbRecord, send_key, recv_key, instr) -> None:
        """Attach the instruction's connections (and any statically
        bound partner connections) to the thread block."""
        rank = tb.rank
        channel = tb.channel
        if send_key:
            if tb.send_peer is not None and tb.send_peer != send_key[1]:
                raise SchedulingError(
                    f"thread block {tb.tb_id} on rank {rank} would need "
                    f"two send peers ({tb.send_peer}, {send_key[1]})"
                )
            tb.send_peer = send_key[1]
            send_owner[send_key] = tb
            bound = bound_recv_of_send.get(send_key)
            if bound is not None and tb.recv_peer is None:
                partner = (rank, bound, channel)
                if recv_owner.get(partner) is None:
                    tb.recv_peer = bound
                    recv_owner[partner] = tb
        if recv_key:
            if tb.recv_peer is not None and tb.recv_peer != recv_key[1]:
                raise SchedulingError(
                    f"thread block {tb.tb_id} on rank {rank} would need "
                    f"two recv peers ({tb.recv_peer}, {recv_key[1]})"
                )
            tb.recv_peer = recv_key[1]
            recv_owner[recv_key] = tb
            bound = bound_send_of_recv.get(recv_key)
            if bound is not None and tb.send_peer is None:
                partner = (rank, bound, channel)
                if send_owner.get(partner) is None:
                    tb.send_peer = bound
                    send_owner[partner] = tb

    def tb_for(instr: Instruction) -> _TbRecord:
        rank = instr.rank
        if not instr.sends and not instr.receives:
            # Local op: freest thread block (earliest last instruction).
            existing = tbs_by_rank[rank]
            if not existing:
                return new_tb(rank, channel=0)
            return min(existing, key=lambda tb: (tb.last_pos, tb.tb_id))
        channel = instr.channel if instr.channel is not None else 0
        send_key = (rank, instr.send_peer, channel) if instr.sends else None
        recv_key = (rank, instr.recv_peer, channel) if instr.receives else None
        tb_s = send_owner.get(send_key) if send_key else None
        tb_r = recv_owner.get(recv_key) if recv_key else None
        if tb_s is not None and tb_r is not None and tb_s is not tb_r:
            raise SchedulingError(
                f"instruction {instr!r} needs send connection {send_key} "
                f"and recv connection {recv_key}, already owned by "
                "different thread blocks"
            )
        tb = tb_s or tb_r
        if tb is None and not (instr.sends and instr.receives):
            # Pair one-directional traffic with the opposite direction to
            # the same peer on the same channel (as NCCL's p2p transport
            # does) to halve thread block consumption — but only when no
            # static fused binding lays claim to either side.
            if instr.sends and send_key not in bound_recv_of_send:
                tb = next(
                    (t for t in tbs_by_rank[rank]
                     if t.channel == channel and t.send_peer is None
                     and t.recv_peer == instr.send_peer
                     and (rank, t.recv_peer, channel)
                     not in bound_send_of_recv), None,
                )
            elif instr.receives and recv_key not in bound_send_of_recv:
                tb = next(
                    (t for t in tbs_by_rank[rank]
                     if t.channel == channel and t.recv_peer is None
                     and t.send_peer == instr.recv_peer
                     and (rank, t.send_peer, channel)
                     not in bound_recv_of_send), None,
                )
        if tb is None:
            tb = new_tb(rank, channel)
        claim(tb, send_key, recv_key, instr)
        return tb

    with maybe_span(tracer, "place_threadblocks", cat="compiler",
                    instructions=len(instrs)) as place_span:
        while heap:
            _, instr_id = heapq.heappop(heap)
            instr = by_id[instr_id]
            tb = tb_for(instr)
            placement[instr_id] = (tb, len(tb.members))
            tb.members.append(instr)
            tb.last_pos = position
            position += 1
            scheduled += 1
            for succ in successors[instr_id]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(heap, (priority(by_id[succ]), succ))
        if place_span is not None:
            place_span.args["threadblocks"] = sum(
                len(tbs) for tbs in tbs_by_rank.values()
            )

    if scheduled != len(instrs):
        raise SchedulingError(
            "instruction DAG contains a cycle: scheduled "
            f"{scheduled} of {len(instrs)} instructions"
        )

    if max_threadblocks is not None:
        for rank, tbs in tbs_by_rank.items():
            if len(tbs) > max_threadblocks:
                raise SchedulingError(
                    f"rank {rank} needs {len(tbs)} thread blocks, but the "
                    f"GPU only has {max_threadblocks} SMs; reduce channels "
                    "or parallelization"
                )

    # Phase 3: cross thread block dependencies.
    ir = MscclIr(
        name=name,
        collective=collective_name,
        protocol=protocol,
        num_ranks=num_ranks,
        in_place=in_place,
    )
    has_dep_flags: Dict[Tuple[int, int, int], bool] = {}
    ir_instrs: Dict[int, IrInstruction] = {}
    for rank in range(num_ranks):
        gpu = GpuProgram(
            rank=rank,
            input_chunks=input_chunks(rank),
            output_chunks=output_chunks(rank),
            scratch_chunks=scratch_chunks(rank),
        )
        for tb in tbs_by_rank[rank]:
            ir_tb = ThreadBlock(
                tb_id=tb.tb_id,
                send_peer=tb.send_peer,
                recv_peer=tb.recv_peer,
                channel=tb.channel,
            )
            for step, instr in enumerate(tb.members):
                depends: Dict[int, int] = {}
                for dep_id in instr.deps:
                    if dep_id not in placement:
                        continue
                    dep_tb, dep_step = placement[dep_id]
                    if dep_tb is tb:
                        continue  # implicit via sequential execution
                    if dep_tb.rank != rank:
                        continue  # satisfied by the communication edge
                    previous = depends.get(dep_tb.tb_id, -1)
                    depends[dep_tb.tb_id] = max(previous, dep_step)
                dep_list = sorted(depends.items())
                for dep_tb_id, dep_step in dep_list:
                    has_dep_flags[(rank, dep_tb_id, dep_step)] = True
                count = 0
                if instr.src is not None:
                    count = instr.src[2]
                if instr.dst is not None:
                    count = max(count, instr.dst[2])
                ir_instr = IrInstruction(
                    step=step,
                    op=instr.op,
                    src=instr.src,
                    dst=instr.dst,
                    count=count,
                    frac_lo=instr.frac_lo,
                    frac_hi=instr.frac_hi,
                    depends=dep_list,
                    lineage=(tuple(sorted(instr.lineage))
                             if instr.lineage else None),
                )
                ir_tb.instructions.append(ir_instr)
                ir_instrs[instr.instr_id] = ir_instr
            gpu.threadblocks.append(ir_tb)
        ir.gpus.append(gpu)

    for (rank, tb_id, step), flag in has_dep_flags.items():
        ir.gpus[rank].threadblocks[tb_id].instructions[step].has_dep = flag

    # Tag every receive with the index of the message it consumes on its
    # connection. A connection's sender is a single thread block, so
    # wire order is the sender's program order; the matching receive may
    # be scheduled at a different relative position on its own thread
    # block (the runtime's FIFO slots are indexed, not first-come).
    sequence: Dict[Tuple[int, int, int], int] = {}
    for rank in range(num_ranks):
        for tb in tbs_by_rank[rank]:
            for instr in tb.members:
                if instr.sends and instr.send_match is not None:
                    conn = (rank, instr.send_peer, tb.channel)
                    seq = sequence.get(conn, 0)
                    sequence[conn] = seq + 1
                    ir_instrs[instr.send_match].recv_seq = seq
    return ir
