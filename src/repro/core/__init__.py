"""The MSCCLang core: DSL, compiler, MSCCL-IR, and verification.

Typical use::

    from repro.core import (
        MSCCLProgram, AllReduce, chunk, parallelize, compile_program,
    )

    coll = AllReduce(num_ranks=8, chunk_factor=8, in_place=True)
    with MSCCLProgram("ring", coll, protocol="LL") as prog:
        ...  # chunk(...).copy(...) / .reduce(...)
    ir = compile_program(prog)
"""

from .buffers import Buffer, as_buffer
from .chunk import (
    InputChunk,
    ReductionChunk,
    UNINITIALIZED,
    Uninitialized,
    allreduce_result,
)
from .collectives import (
    AllGather,
    AllReduce,
    AllToAll,
    AllToNext,
    Broadcast,
    Collective,
    Custom,
    Gather,
    Reduce,
    ReduceScatter,
    Scatter,
)
from .compiler import CompiledAlgorithm, CompilerOptions, compile_program
from .dag import ChunkDAG, ChunkOp
from .directives import parallelize
from .errors import (
    DeadlockError,
    MscclError,
    ProgramError,
    RuntimeConfigError,
    SchedulingError,
    SimulationError,
    StaleReferenceError,
    UninitializedChunkError,
    VerificationError,
)
from .fusion import fuse
from .instructions import Instruction, InstructionDAG, Op
from .ir import GpuProgram, IrInstruction, MscclIr, ThreadBlock
from .lowering import lower
from .passes import ir_stats, optimize_ir, prune_redundant_deps, renumber_channels
from .program import MSCCLProgram, chunk, current_program
from .refs import ChunkRef
from .scheduling import schedule
from .verification import audit_ir, check_postcondition
from .visualize import chunk_dag_dot, describe_ir, instruction_dag_dot, ir_dot

__all__ = [
    "AllGather",
    "AllReduce",
    "AllToAll",
    "AllToNext",
    "Broadcast",
    "Buffer",
    "ChunkDAG",
    "ChunkOp",
    "ChunkRef",
    "Collective",
    "Gather",
    "CompiledAlgorithm",
    "CompilerOptions",
    "Custom",
    "DeadlockError",
    "GpuProgram",
    "InputChunk",
    "Instruction",
    "InstructionDAG",
    "IrInstruction",
    "MSCCLProgram",
    "MscclError",
    "MscclIr",
    "Op",
    "ProgramError",
    "Reduce",
    "ReduceScatter",
    "Scatter",
    "ReductionChunk",
    "RuntimeConfigError",
    "SchedulingError",
    "SimulationError",
    "StaleReferenceError",
    "ThreadBlock",
    "UNINITIALIZED",
    "Uninitialized",
    "UninitializedChunkError",
    "VerificationError",
    "allreduce_result",
    "as_buffer",
    "audit_ir",
    "check_postcondition",
    "chunk_dag_dot",
    "describe_ir",
    "instruction_dag_dot",
    "ir_dot",
    "chunk",
    "compile_program",
    "current_program",
    "fuse",
    "lower",
    "ir_stats",
    "optimize_ir",
    "prune_redundant_deps",
    "renumber_channels",
    "parallelize",
    "schedule",
]
