"""The MSCCLang core: DSL, compiler, MSCCL-IR, and verification.

Typical use::

    from repro.core import (
        MSCCLProgram, AllReduce, chunk, parallelize, compile_program,
    )

    coll = AllReduce(num_ranks=8, chunk_factor=8, in_place=True)
    with MSCCLProgram("ring", coll, protocol="LL") as prog:
        ...  # chunk(...).copy(...) / .reduce(...)
    ir = compile_program(prog)
"""

from .buffers import Buffer, as_buffer
from .chunk import (
    InputChunk,
    ReductionChunk,
    UNINITIALIZED,
    Uninitialized,
    allreduce_result,
)
from .collectives import (
    AllGather,
    AllReduce,
    AllToAll,
    AllToAllV,
    AllToNext,
    Broadcast,
    Collective,
    Custom,
    Gather,
    Reduce,
    ReduceScatter,
    Scatter,
)
from .cache import (CompileCache, DiskCacheTier, default_compile_cache,
                    program_digest, reset_default_compile_cache)
from .compiler import CompiledAlgorithm, CompilerOptions, compile_program
from .dag import ChunkDAG, ChunkOp
from .directives import parallelize
from .errors import (
    BuildError,
    ConformanceError,
    DeadlockError,
    MscclError,
    PassValidationError,
    ProgramError,
    RuntimeConfigError,
    SchedulingError,
    SimulationError,
    StaleReferenceError,
    UninitializedChunkError,
    VerificationError,
    XmlImportError,
)
from .fusion import fuse
from .instructions import Instruction, InstructionDAG, Op
from .interop import (collective_from_name, import_xml, import_xml_file,
                      infer_collective, resolve_collective, trace_ir)
from .ir import GpuProgram, IrInstruction, MscclIr, ThreadBlock
from .lowering import lower
from .passes import ir_stats, optimize_ir, prune_redundant_deps, renumber_channels
from .pipeline import (
    CompileState,
    DefaultSchedulerPolicy,
    Pass,
    PassPipeline,
    SchedulerPolicy,
    default_pipeline,
)
from .program import MSCCLProgram, chunk, current_program
from .refs import ChunkRef
from .scheduling import schedule
from .verification import audit_ir, check_postcondition, dependence_edges
from .visualize import chunk_dag_dot, describe_ir, instruction_dag_dot, ir_dot

__all__ = [
    "AllGather",
    "AllReduce",
    "AllToAll",
    "AllToAllV",
    "AllToNext",
    "Broadcast",
    "Buffer",
    "BuildError",
    "ChunkDAG",
    "ChunkOp",
    "ChunkRef",
    "Collective",
    "Gather",
    "CompileCache",
    "DiskCacheTier",
    "reset_default_compile_cache",
    "CompileState",
    "CompiledAlgorithm",
    "CompilerOptions",
    "Custom",
    "ConformanceError",
    "DeadlockError",
    "DefaultSchedulerPolicy",
    "GpuProgram",
    "InputChunk",
    "Instruction",
    "InstructionDAG",
    "IrInstruction",
    "MSCCLProgram",
    "MscclError",
    "MscclIr",
    "Op",
    "Pass",
    "PassPipeline",
    "PassValidationError",
    "ProgramError",
    "Reduce",
    "ReduceScatter",
    "Scatter",
    "ReductionChunk",
    "RuntimeConfigError",
    "SchedulerPolicy",
    "SchedulingError",
    "SimulationError",
    "StaleReferenceError",
    "ThreadBlock",
    "UNINITIALIZED",
    "Uninitialized",
    "UninitializedChunkError",
    "VerificationError",
    "XmlImportError",
    "allreduce_result",
    "as_buffer",
    "audit_ir",
    "check_postcondition",
    "collective_from_name",
    "dependence_edges",
    "import_xml",
    "import_xml_file",
    "infer_collective",
    "resolve_collective",
    "trace_ir",
    "chunk_dag_dot",
    "describe_ir",
    "instruction_dag_dot",
    "ir_dot",
    "chunk",
    "compile_program",
    "current_program",
    "default_compile_cache",
    "default_pipeline",
    "fuse",
    "lower",
    "program_digest",
    "ir_stats",
    "optimize_ir",
    "prune_redundant_deps",
    "renumber_channels",
    "parallelize",
    "schedule",
]
