"""Real-MSCCL XML interop: import, abstract replay, collective inference.

The MSCCLang paper positions MSCCL-IR/XML as the interchange point
between algorithm authors and the runtime. This module makes that
bidirectional: :func:`import_xml` accepts both our own emitted dialect
and the reference dialect that hand-written XML (MSCCL-XML-Builder,
msccl-tools output) uses —

* short buffer names ``i``/``o``/``s`` next to ``input``/``output``/
  ``scratch``,
* op aliases ``send``/``recv``/``copy``/``reduce`` next to the short
  codes ``s``/``r``/``cpy``/``re``/``rrc``/``rcs``/``rrcs``/``rrs``,
  plus synchronization-only ``nop`` steps,
* the step-index attribute spelled ``s`` instead of ``step``,
* scalar ``depid="-1" deps="-1"`` meaning "no dependency",
* absent optional attributes (``seq``, ``hasdep``, chunk counts)
  filled by inference.

Malformed input raises :class:`~repro.core.errors.XmlImportError`
naming the offending element and attribute instead of surfacing as a
``TypeError`` deep inside ``int()``.

Imported programs lack the compiler's metadata, so two reconstruction
passes run after parsing: receive-sequence tags (the runtime's indexed
FIFO slots) are inferred per connection in thread-block program order,
and ``has_dep`` flags are recomputed from the union of all dependency
targets.

For third-party algorithms we also need an *oracle*: :func:`trace_ir`
abstract-interprets a scheduled IR over chunk identities (the same
values the DSL tracer uses), and :func:`infer_collective` packages the
resulting output states as a :class:`~repro.core.collectives.Custom`
postcondition. :func:`resolve_collective` prefers a real collective
reconstructed from the XML's ``coll`` name (a genuine independent
check) and falls back to the traced one, which still lets the
differential conformance harness compare executor, simulator, and
schedule permutations against program-order semantics.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple
from xml.etree import ElementTree

from .buffers import Buffer, as_buffer
from .chunk import (UNINITIALIZED, Chunk, InputChunk, is_initialized,
                    reduce_chunks)
from .collectives import (AllGather, AllReduce, AllToAll, AllToNext,
                          Collective, Custom, ReduceScatter)
from .errors import (DeadlockError, ProgramError, UninitializedChunkError,
                     VerificationError, XmlImportError)
from .instructions import Op, RECEIVING_OPS, SENDING_OPS
from .ir import GpuProgram, IrInstruction, MscclIr, ThreadBlock

__all__ = [
    "import_xml",
    "import_xml_file",
    "trace_ir",
    "infer_collective",
    "collective_from_name",
    "resolve_collective",
    "OP_ALIASES",
]

#: Accepted spellings of the ``type`` attribute. The enum values are the
#: short codes; the long names are what hand-written XML tends to use.
OP_ALIASES: Dict[str, Op] = {op.value: op for op in Op}
OP_ALIASES.update({
    "send": Op.SEND,
    "recv": Op.RECV,
    "copy": Op.COPY,
    "reduce": Op.REDUCE,
    "recvreducecopy": Op.RECV_REDUCE_COPY,
    "recvcopysend": Op.RECV_COPY_SEND,
    "recvreducecopysend": Op.RECV_REDUCE_COPY_SEND,
    "recvreducesend": Op.RECV_REDUCE_SEND,
})


# ---------------------------------------------------------------------------
# attribute helpers: every failure names the element and attribute
# ---------------------------------------------------------------------------

_REQUIRED = object()


def _attr(el: ElementTree.Element, names) -> Tuple[Optional[str], str]:
    """First present attribute among ``names`` and its display name."""
    for name in names:
        value = el.get(name)
        if value is not None:
            return value, name
    return None, "/".join(repr(n) for n in names)


def _int_attr(el: ElementTree.Element, where: str, names,
              default=_REQUIRED) -> int:
    value, label = _attr(el, names)
    if value is None:
        if default is _REQUIRED:
            raise XmlImportError(
                f"<{el.tag}> {where}: missing required attribute {label}"
            )
        return default
    try:
        return int(value)
    except ValueError:
        raise XmlImportError(
            f"<{el.tag}> {where}: attribute {label} must be an integer, "
            f"got {value!r}"
        ) from None


def _fraction_attr(el: ElementTree.Element, where: str, name: str,
                   default: str) -> Fraction:
    value = el.get(name, default)
    try:
        return Fraction(value)
    except (ValueError, ZeroDivisionError):
        raise XmlImportError(
            f"<{el.tag}> {where}: attribute {name!r} must be a fraction "
            f"like '1/2', got {value!r}"
        ) from None


def _buffer_attr(el: ElementTree.Element, where: str,
                 name: str) -> Optional[Buffer]:
    value = el.get(name)
    if value is None:
        return None
    try:
        return as_buffer(value)
    except ProgramError as exc:
        raise XmlImportError(
            f"<{el.tag}> {where}: attribute {name!r}: {exc}"
        ) from None


def _parse_dep_list(el: ElementTree.Element,
                    where: str) -> List[Tuple[int, int]]:
    """``depid``/``deps`` as comma lists; ``-1`` entries mean "none"."""
    dep_ids = el.get("depid")
    dep_steps = el.get("deps")
    if dep_ids is None and dep_steps is None:
        return []
    if dep_ids is None or dep_steps is None:
        missing = "deps" if dep_steps is None else "depid"
        raise XmlImportError(
            f"<step> {where}: 'depid' and 'deps' must appear together "
            f"(missing {missing!r})"
        )
    ids = dep_ids.split(",")
    steps = dep_steps.split(",")
    if len(ids) != len(steps):
        raise XmlImportError(
            f"<step> {where}: 'depid' lists {len(ids)} entries but "
            f"'deps' lists {len(steps)}"
        )
    depends = []
    for tb_text, step_text in zip(ids, steps):
        try:
            dep_tb, dep_step = int(tb_text), int(step_text)
        except ValueError:
            raise XmlImportError(
                f"<step> {where}: 'depid'/'deps' entries must be "
                f"integers, got {tb_text!r}/{step_text!r}"
            ) from None
        if dep_tb < 0:
            continue  # reference dialect: depid="-1" means no dependency
        depends.append((dep_tb, dep_step))
    return depends


def _parse_lineage(el: ElementTree.Element, where: str):
    raw = el.get("lineage")
    if not raw:
        return None
    origins = []
    for origin in raw.split(","):
        parts = origin.split(":")
        if len(parts) != 3:
            raise XmlImportError(
                f"<step> {where}: 'lineage' entries must look like "
                f"'rank:buffer:index', got {origin!r}"
            )
        try:
            origins.append((int(parts[0]), parts[1], int(parts[2])))
        except ValueError:
            raise XmlImportError(
                f"<step> {where}: 'lineage' rank/index must be integers "
                f"in {origin!r}"
            ) from None
    return tuple(origins)


# ---------------------------------------------------------------------------
# the importer
# ---------------------------------------------------------------------------

def import_xml(text: str) -> MscclIr:
    """Parse MSCCL XML (our dialect or the reference one) into an IR.

    Raises :class:`XmlImportError` on malformed documents; the message
    always names the offending element and attribute.
    """
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise XmlImportError(f"not well-formed XML: {exc}") from None
    if root.tag != "algo":
        raise XmlImportError(
            f"expected a top-level <algo> element, got <{root.tag}>"
        )
    num_ranks = _int_attr(root, "(top level)", ("ngpus",))
    if num_ranks < 1:
        raise XmlImportError(
            f"<algo> (top level): 'ngpus' must be >= 1, got {num_ranks}"
        )
    ir = MscclIr(
        name=root.get("name", "unnamed"),
        collective=root.get("coll", "custom"),
        protocol=root.get("proto", "Simple"),
        num_ranks=num_ranks,
        in_place=root.get("inplace", "0") == "1",
    )

    seen_ranks = set()
    for gpu_el in root.findall("gpu"):
        rank = _int_attr(gpu_el, "(under <algo>)", ("id",))
        where_gpu = f"(gpu {rank})"
        if rank in seen_ranks:
            raise XmlImportError(f"<gpu> {where_gpu}: duplicate gpu id")
        seen_ranks.add(rank)
        gpu = GpuProgram(
            rank=rank,
            input_chunks=_int_attr(gpu_el, where_gpu, ("i_chunks",), 0),
            output_chunks=_int_attr(gpu_el, where_gpu, ("o_chunks",), 0),
            scratch_chunks=_int_attr(gpu_el, where_gpu, ("s_chunks",), 0),
        )
        seen_tbs = set()
        for position, tb_el in enumerate(gpu_el.findall("tb")):
            tb_id = _int_attr(tb_el, where_gpu, ("id",), position)
            where_tb = f"(gpu {rank}, tb {tb_id})"
            if tb_id in seen_tbs:
                raise XmlImportError(
                    f"<tb> {where_tb}: duplicate tb id on gpu {rank}"
                )
            seen_tbs.add(tb_id)
            send = _int_attr(tb_el, where_tb, ("send",), -1)
            recv = _int_attr(tb_el, where_tb, ("recv",), -1)
            tb = ThreadBlock(
                tb_id=tb_id,
                send_peer=None if send < 0 else send,
                recv_peer=None if recv < 0 else recv,
                channel=_int_attr(tb_el, where_tb, ("chan",), 0),
            )
            for step_el in tb_el.findall("step"):
                tb.instructions.append(
                    _parse_step(step_el, where_tb)
                )
            _order_steps(tb, where_tb)
            gpu.threadblocks.append(tb)
        ir.gpus.append(gpu)

    if seen_ranks != set(range(num_ranks)):
        missing = sorted(set(range(num_ranks)) - seen_ranks)
        extra = sorted(seen_ranks - set(range(num_ranks)))
        detail = []
        if missing:
            detail.append(f"missing gpu ids {missing}")
        if extra:
            detail.append(f"unexpected gpu ids {extra}")
        raise XmlImportError(
            f"<algo> declares ngpus={num_ranks} but " + ", ".join(detail)
        )
    ir.gpus.sort(key=lambda g: g.rank)

    _deduce_scratch_sizes(ir)
    _validate_spans(ir)
    _validate_depends(ir)
    _validate_unique_connections(ir)
    _infer_recv_seqs(ir)
    _recompute_has_dep(ir)
    return ir


def import_xml_file(path) -> MscclIr:
    """Read ``path`` and :func:`import_xml` its contents."""
    with open(path, "r", encoding="utf-8") as handle:
        return import_xml(handle.read())


def _parse_step(step_el: ElementTree.Element, where_tb: str) -> IrInstruction:
    step = _int_attr(step_el, where_tb, ("step", "s"))
    where = f"{where_tb[:-1]}, step {step})"
    op_text = step_el.get("type")
    if op_text is None:
        raise XmlImportError(
            f"<step> {where}: missing required attribute 'type'"
        )
    op = OP_ALIASES.get(op_text.lower())
    if op is None:
        raise XmlImportError(
            f"<step> {where}: unknown op type {op_text!r}; expected one "
            f"of {sorted(OP_ALIASES)}"
        )
    count = _int_attr(step_el, where, ("cnt",), 1)
    src = None
    src_buf = _buffer_attr(step_el, where, "srcbuf")
    if src_buf is not None:
        src = (src_buf,
               _int_attr(step_el, where, ("srcoff",)),
               _int_attr(step_el, where, ("scnt",), count))
    dst = None
    dst_buf = _buffer_attr(step_el, where, "dstbuf")
    if dst_buf is not None:
        dst = (dst_buf,
               _int_attr(step_el, where, ("dstoff",)),
               _int_attr(step_el, where, ("dcnt",), count))
    has_dep_text = step_el.get("hasdep")
    return IrInstruction(
        step=step,
        op=op,
        src=src,
        dst=dst,
        count=count,
        frac_lo=_fraction_attr(step_el, where, "flo", "0"),
        frac_hi=_fraction_attr(step_el, where, "fhi", "1"),
        depends=_parse_dep_list(step_el, where),
        # None here means "not stated"; _recompute_has_dep fills it in
        # from the union of dependency targets after the whole program
        # is parsed.
        has_dep=(None if has_dep_text is None else has_dep_text == "1"),
        recv_seq=_int_attr(step_el, where, ("seq",), None),
        lineage=_parse_lineage(step_el, where),
    )


def _order_steps(tb: ThreadBlock, where_tb: str) -> None:
    """Sort by step index and require a contiguous 0..n-1 program."""
    tb.instructions.sort(key=lambda i: i.step)
    indices = [i.step for i in tb.instructions]
    if indices != list(range(len(indices))):
        raise XmlImportError(
            f"<tb> {where_tb}: step indices must be contiguous from 0, "
            f"got {indices}"
        )


def _deduce_scratch_sizes(ir: MscclIr) -> None:
    """Grow each declared scratch size to cover the highest index used.

    Hand-written XML routinely omits ``s_chunks``; the paper deduces
    scratch sizes from use, so the importer does too.
    """
    for gpu in ir.gpus:
        high = gpu.scratch_chunks
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                for span in (instr.src, instr.dst):
                    if span is not None and span[0] is Buffer.SCRATCH:
                        high = max(high, span[1] + span[2])
        gpu.scratch_chunks = high


def _validate_spans(ir: MscclIr) -> None:
    for gpu in ir.gpus:
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                where = (f"(gpu {gpu.rank}, tb {tb.tb_id}, "
                         f"step {instr.step})")
                for label, span in (("src", instr.src), ("dst", instr.dst)):
                    if span is None:
                        continue
                    buf, index, cnt = span
                    if index < 0 or cnt < 1:
                        raise XmlImportError(
                            f"<step> {where}: {label} span "
                            f"{buf.value}[{index}:{index + cnt}] must have "
                            "a non-negative offset and a positive count"
                        )
                    declared = gpu.buffer_chunks(buf)
                    if index + cnt > declared:
                        raise XmlImportError(
                            f"<step> {where}: {label} span "
                            f"{buf.value}[{index}:{index + cnt}] exceeds "
                            f"the declared {buf.value} size of {declared} "
                            f"chunk(s) on gpu {gpu.rank}"
                        )


def _validate_depends(ir: MscclIr) -> None:
    """Every dependency must name an existing same-rank (tb, step)."""
    for gpu in ir.gpus:
        steps = {
            (tb.tb_id, instr.step)
            for tb in gpu.threadblocks
            for instr in tb.instructions
        }
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                for dep in instr.depends:
                    if tuple(dep) not in steps:
                        raise XmlImportError(
                            f"<step> (gpu {gpu.rank}, tb {tb.tb_id}, "
                            f"step {instr.step}): dependency on "
                            f"(tb {dep[0]}, step {dep[1]}), which does "
                            f"not exist on gpu {gpu.rank}"
                        )


def _validate_unique_connections(ir: MscclIr) -> None:
    """One thread block per directed (peer, channel) connection per gpu.

    The MSCCL runtime gives each thread block its own connection pair;
    two thread blocks sharing a send (or recv) connection would make
    FIFO message ordering ambiguous, so the importer rejects it the
    same way the scheduler refuses to produce it.
    """
    for gpu in ir.gpus:
        seen: Dict[Tuple[str, int, int], int] = {}
        for tb in gpu.threadblocks:
            for kind, peer in (("send", tb.send_peer),
                               ("recv", tb.recv_peer)):
                if peer is None:
                    continue
                key = (kind, peer, tb.channel)
                other = seen.get(key)
                if other is not None:
                    raise XmlImportError(
                        f"<tb> (gpu {gpu.rank}, tb {tb.tb_id}): {kind} "
                        f"connection to rank {peer} on channel "
                        f"{tb.channel} is already used by tb {other}; "
                        "each directed connection belongs to exactly "
                        "one thread block"
                    )
                seen[key] = tb.tb_id


def _infer_recv_seqs(ir: MscclIr) -> None:
    """Tag receives with FIFO slot indices when the XML omits them.

    The runtime's FIFO slots are indexed: receive ``seq`` consumes the
    connection's ``seq``-th message. Our own XML carries explicit
    ``seq`` attributes; reference XML does not, because hand-written
    programs receive in thread-block program order. So per connection:
    if every receive is untagged, number them 0..n-1 in program order
    (connections are single-thread-block, so this is the step order).
    Mixing tagged and untagged receives on one connection is ambiguous
    and rejected.
    """
    by_conn: Dict[Tuple[int, int, int], List[IrInstruction]] = {}
    for gpu in ir.gpus:
        for tb in sorted(gpu.threadblocks, key=lambda t: t.tb_id):
            for instr in tb.instructions:
                if instr.op in RECEIVING_OPS:
                    if tb.recv_peer is None:
                        raise XmlImportError(
                            f"<step> (gpu {gpu.rank}, tb {tb.tb_id}, "
                            f"step {instr.step}): op "
                            f"{instr.op.value!r} receives but the thread "
                            "block declares no recv peer"
                        )
                    conn = (tb.recv_peer, gpu.rank, tb.channel)
                    by_conn.setdefault(conn, []).append(instr)
    for conn, instrs in by_conn.items():
        tagged = [i for i in instrs if i.recv_seq is not None]
        if len(tagged) == len(instrs):
            continue
        if tagged:
            src, dst, ch = conn
            raise XmlImportError(
                f"connection {src}->{dst} ch{ch} mixes explicit 'seq' "
                "attributes with untagged receives; tag all or none"
            )
        for seq, instr in enumerate(instrs):
            instr.recv_seq = seq


def _recompute_has_dep(ir: MscclIr) -> None:
    """Fill unstated ``has_dep`` flags from the dependency targets."""
    for gpu in ir.gpus:
        targets = {
            tuple(dep)
            for tb in gpu.threadblocks
            for instr in tb.instructions
            for dep in instr.depends
        }
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                if instr.has_dep is None:
                    instr.has_dep = (tb.tb_id, instr.step) in targets


# ---------------------------------------------------------------------------
# abstract replay: program-order semantics over chunk identities
# ---------------------------------------------------------------------------

def trace_ir(ir: MscclIr,
             collective: Optional[Collective] = None) -> Dict[int, Dict[int, Chunk]]:
    """Abstract-interpret a scheduled IR; return per-rank output states.

    Runs the IR to completion over chunk identities (the values the DSL
    tracer uses), respecting cross-thread-block dependencies and the
    runtime's indexed FIFO slots, and returns ``{rank: {output index:
    chunk}}`` for every initialized output location. This is the
    program-order semantics the conformance harness compares shuffled
    and fault-injected executions against.

    Inputs are seeded from ``collective.precondition`` when one is
    given (which also resolves in-place aliasing); otherwise every rank
    ``r`` gets ``InputChunk(r, i)`` across its declared input buffer.
    In-place IRs without a collective are rejected — the input/output
    aliasing cannot be reconstructed from the IR alone. Fractional
    instances (``flo``/``fhi``) are likewise rejected here: identity
    semantics cannot split a chunk, so such programs must be verified
    at the data level via the executor instead.
    """
    if collective is None and ir.in_place:
        raise ProgramError(
            f"IR '{ir.name}' is in-place; tracing needs an explicit "
            "collective to reconstruct the input/output aliasing"
        )
    for gpu in ir.gpus:
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                if (instr.frac_lo, instr.frac_hi) != (Fraction(0),
                                                      Fraction(1)):
                    raise ProgramError(
                        f"IR '{ir.name}' uses fractional instances "
                        f"(gpu {gpu.rank}, tb {tb.tb_id}, step "
                        f"{instr.step}); identity-level tracing cannot "
                        "split chunks — verify via the executor instead"
                    )

    buffers: Dict[Tuple[int, Buffer], List[Chunk]] = {}
    for gpu in ir.gpus:
        for buf in Buffer:
            buffers[(gpu.rank, buf)] = (
                [UNINITIALIZED] * gpu.buffer_chunks(buf)
            )
        if collective is not None:
            for index, value in collective.precondition(gpu.rank).items():
                buf, store = collective.alias(gpu.rank, Buffer.INPUT, index)
                buffers[(gpu.rank, buf)][store] = value
        else:
            for index in range(gpu.input_chunks):
                buffers[(gpu.rank, Buffer.INPUT)][index] = InputChunk(
                    gpu.rank, index
                )

    def read(rank: int, span) -> List[Chunk]:
        buf, index, cnt = span
        values = buffers[(rank, buf)][index:index + cnt]
        if len(values) != cnt:
            raise VerificationError(
                f"rank {rank} span {buf.value}[{index}:{index + cnt}] "
                f"exceeds the buffer ({len(buffers[(rank, buf)])} chunks)"
            )
        for offset, value in enumerate(values):
            if not is_initialized(value):
                raise UninitializedChunkError(
                    f"rank {rank} read uninitialized chunk at "
                    f"{buf.value}[{index + offset}] while tracing "
                    f"'{ir.name}'"
                )
        return values

    def write(rank: int, span, values: List[Chunk]) -> None:
        buf, index, cnt = span
        if len(values) != cnt:
            raise VerificationError(
                f"rank {rank} write to {buf.value}[{index}:{index + cnt}] "
                f"got a payload of {len(values)} chunk(s)"
            )
        buffers[(rank, buf)][index:index + cnt] = values

    # Cooperative sweeps, mirroring the executor: each pass runs every
    # thread block as far as it can go; no progress across a full
    # sweep means deadlock (audit_ir should have caught it earlier).
    tbs = [(gpu, tb) for gpu in ir.gpus for tb in gpu.threadblocks]
    pcs = {(gpu.rank, tb.tb_id): 0 for gpu, tb in tbs}
    done = set()
    fifos: Dict[Tuple[int, int, int], Dict[int, List[Chunk]]] = {}
    send_seq: Dict[Tuple[int, int, int], int] = {}
    total = ir.instruction_count()

    def payload_in(gpu, tb, instr) -> List[Chunk]:
        conn = (tb.recv_peer, gpu.rank, tb.channel)
        message = fifos[conn].pop(instr.recv_seq)
        expect = (instr.src if instr.op is Op.RECV_REDUCE_SEND
                  else instr.dst)
        if expect is not None and len(message) != expect[2]:
            src, dst, ch = conn
            raise VerificationError(
                f"connection {src}->{dst} ch{ch} message "
                f"{instr.recv_seq}: sender pushed {len(message)} "
                f"chunk(s) but the receive at (gpu {gpu.rank}, tb "
                f"{tb.tb_id}, step {instr.step}) expects {expect[2]}"
            )
        return message

    def push_out(gpu, tb, values: List[Chunk]) -> None:
        conn = (gpu.rank, tb.send_peer, tb.channel)
        seq = send_seq.get(conn, 0)
        send_seq[conn] = seq + 1
        fifos.setdefault(conn, {})[seq] = values

    progress = True
    while progress:
        progress = False
        for gpu, tb in tbs:
            key = (gpu.rank, tb.tb_id)
            while pcs[key] < len(tb.instructions):
                instr = tb.instructions[pcs[key]]
                if any((gpu.rank, dep_tb, dep_step) not in done
                       for dep_tb, dep_step in instr.depends):
                    break
                if instr.op in RECEIVING_OPS:
                    conn = (tb.recv_peer, gpu.rank, tb.channel)
                    if instr.recv_seq not in fifos.get(conn, {}):
                        break
                op = instr.op
                if op is Op.SEND:
                    push_out(gpu, tb, read(gpu.rank, instr.src))
                elif op is Op.RECV:
                    write(gpu.rank, instr.dst, payload_in(gpu, tb, instr))
                elif op is Op.COPY:
                    write(gpu.rank, instr.dst, read(gpu.rank, instr.src))
                elif op is Op.REDUCE:
                    write(gpu.rank, instr.dst, [
                        reduce_chunks(a, b) for a, b in zip(
                            read(gpu.rank, instr.src),
                            read(gpu.rank, instr.dst))
                    ])
                elif op is Op.RECV_REDUCE_COPY:
                    message = payload_in(gpu, tb, instr)
                    write(gpu.rank, instr.dst, [
                        reduce_chunks(m, s) for m, s in zip(
                            message, read(gpu.rank, instr.src))
                    ])
                elif op is Op.RECV_COPY_SEND:
                    message = payload_in(gpu, tb, instr)
                    write(gpu.rank, instr.dst, message)
                    push_out(gpu, tb, message)
                elif op is Op.RECV_REDUCE_COPY_SEND:
                    message = payload_in(gpu, tb, instr)
                    combined = [
                        reduce_chunks(m, s) for m, s in zip(
                            message, read(gpu.rank, instr.src))
                    ]
                    write(gpu.rank, instr.dst, combined)
                    push_out(gpu, tb, combined)
                elif op is Op.RECV_REDUCE_SEND:
                    message = payload_in(gpu, tb, instr)
                    push_out(gpu, tb, [
                        reduce_chunks(m, s) for m, s in zip(
                            message, read(gpu.rank, instr.src))
                    ])
                elif op is Op.NOP:
                    pass
                else:  # pragma: no cover - Op is exhaustive above
                    raise VerificationError(f"unknown opcode {op}")
                done.add((gpu.rank, tb.tb_id, instr.step))
                pcs[key] += 1
                progress = True

    if len(done) != total:
        blocked = []
        for gpu, tb in tbs:
            pc = pcs[(gpu.rank, tb.tb_id)]
            if pc < len(tb.instructions):
                instr = tb.instructions[pc]
                blocked.append((gpu.rank, tb.tb_id, instr.step,
                                f"stuck at op {instr.op.value!r}"))
        raise DeadlockError(
            f"tracing IR '{ir.name}' stalled with "
            f"{total - len(done)} instruction(s) blocked",
            blocked=blocked,
        )

    return {
        gpu.rank: {
            index: value
            for index, value in enumerate(
                buffers[(gpu.rank, Buffer.OUTPUT)])
            if is_initialized(value)
        }
        for gpu in ir.gpus
    }


def infer_collective(ir: MscclIr) -> Custom:
    """Package an IR's traced program-order semantics as a collective.

    The returned :class:`Custom` collective's postcondition is exactly
    what the IR computes, so it cannot catch an *algorithmic* bug — but
    it gives the differential conformance harness a fixed point to
    compare the executor, the simulator, shuffled schedules, and fault
    injection against, which is the oracle third-party XML needs.
    """
    outputs = trace_ir(ir)
    input_sizes = {gpu.rank: gpu.input_chunks for gpu in ir.gpus}
    output_sizes = {gpu.rank: gpu.output_chunks for gpu in ir.gpus}
    return Custom(
        num_ranks=ir.num_ranks,
        postcondition_fn=lambda rank: dict(outputs[rank]),
        input_chunks_fn=lambda rank: input_sizes[rank],
        output_chunks_fn=lambda rank: output_sizes[rank],
        name=f"{ir.collective or 'custom'} (traced)",
    )


def collective_from_name(ir: MscclIr) -> Optional[Collective]:
    """Reconstruct a standard collective from the XML's ``coll`` name.

    Uses the declared buffer sizes to recover ``chunk_factor``. Returns
    ``None`` when the name is unknown, needs parameters the XML does
    not carry (a root rank, an alltoallv count matrix), or the declared
    sizes do not fit the named collective's shape.
    """
    if not ir.gpus:
        return None
    name = (ir.collective or "").lower()
    n = ir.num_ranks
    in0 = ir.gpus[0].input_chunks
    out0 = ir.gpus[0].output_chunks

    def uniform(getter) -> bool:
        return all(getter(g) == getter(ir.gpus[0]) for g in ir.gpus)

    if not (uniform(lambda g: g.input_chunks)
            and uniform(lambda g: g.output_chunks)):
        return None

    try:
        if name == "allreduce" and out0 >= 1:
            if ir.in_place or in0 == out0:
                return AllReduce(n, chunk_factor=out0,
                                 in_place=ir.in_place)
        elif name == "allgather" and out0 >= n and out0 % n == 0:
            factor = out0 // n
            if in0 in (0, factor):
                return AllGather(n, chunk_factor=factor,
                                 in_place=ir.in_place)
        elif name == "reducescatter" and in0 >= n and in0 % n == 0:
            factor = in0 // n
            expected_out = in0 if ir.in_place else factor
            if out0 == expected_out:
                return ReduceScatter(n, chunk_factor=factor,
                                     in_place=ir.in_place)
        elif name == "alltoall" and not ir.in_place:
            if in0 == out0 and in0 >= n and in0 % n == 0:
                return AllToAll(n, chunk_factor=in0 // n)
        elif name == "alltonext" and not ir.in_place:
            if in0 == out0 and in0 >= 1:
                return AllToNext(n, chunk_factor=in0)
    except ProgramError:
        return None
    return None


def resolve_collective(ir: MscclIr,
                       collective: Optional[Collective] = None) -> Collective:
    """The collective to verify an imported IR against.

    Preference order: an explicitly supplied :class:`Collective`; a
    standard collective reconstructed from the XML's ``coll`` name
    (an *independent* postcondition, so it catches wrong algorithms);
    finally the traced :func:`infer_collective` oracle.
    """
    if collective is not None:
        if not isinstance(collective, Collective):
            raise ProgramError(
                "resolve_collective needs a Collective instance, got "
                f"{type(collective).__name__}"
            )
        return collective
    named = collective_from_name(ir)
    if named is not None:
        return named
    return infer_collective(ir)
