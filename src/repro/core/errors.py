"""Exception hierarchy for the MSCCLang reproduction.

Every error the DSL, compiler, or runtime raises derives from
:class:`MscclError` so callers can catch the whole family with one
``except`` clause while tests can assert on precise subclasses.
"""

from __future__ import annotations


class MscclError(Exception):
    """Base class for all errors raised by this library."""


class ProgramError(MscclError):
    """A structurally invalid use of the DSL (bad rank, buffer, index...)."""


class StaleReferenceError(ProgramError):
    """An operation used a chunk reference that is no longer the latest.

    MSCCLang only allows the most recent reference to any (rank, buffer,
    index) location to be used, which makes programs data-race free by
    construction (paper section 3.3).
    """


class UninitializedChunkError(ProgramError):
    """The program read a buffer location holding uninitialized data."""


class VerificationError(MscclError):
    """The traced program does not satisfy the collective's postcondition."""


class SchedulingError(MscclError):
    """The compiler could not produce a valid schedule.

    Raised, for example, when a schedule would need more thread blocks
    than the GPU has streaming multiprocessors, or when a thread block
    would need more than one send or receive peer.
    """


class DeadlockError(MscclError):
    """An IR-level audit detected a potential deadlock cycle.

    When raised by :meth:`repro.runtime.IrExecutor.run`, the exception
    additionally carries :attr:`blocked`: one ``(rank, tb, step,
    reason)`` tuple per stuck thread block explaining what it was
    waiting on (an unmet cross-thread-block dependency, a FIFO message
    that never arrived, a full FIFO slot window, ...).
    """

    def __init__(self, message: str, blocked=None):
        super().__init__(message)
        self.blocked = list(blocked) if blocked else []


class ConformanceError(MscclError):
    """The differential conformance harness found a runtime divergence.

    Carries :attr:`witnesses`: the (minimized)
    :class:`repro.conformance.Witness` objects describing each failing
    schedule or fault plan, including the racing instruction pair when
    one was identified.
    """

    def __init__(self, message: str, witnesses=None):
        super().__init__(message)
        self.witnesses = list(witnesses) if witnesses else []


class PassValidationError(MscclError):
    """A pipeline invariant failed right after a compiler pass ran.

    Raised only when the pipeline runs with ``validate_each=True``:
    every pass declares the invariants that must hold after it, and the
    first violation is pinned to the pass that introduced it via
    :attr:`pass_name` / :attr:`invariant`.
    """

    def __init__(self, pass_name: str, invariant: str, cause: Exception):
        self.pass_name = pass_name
        self.invariant = invariant
        super().__init__(
            f"invariant {invariant!r} violated after pass "
            f"{pass_name!r}: {cause}"
        )


class XmlImportError(MscclError):
    """A reference-dialect MSCCL XML document could not be imported.

    Always names the offending element and attribute (e.g. ``<step>
    missing required attribute 's'/'step'``) so hand-written XML can be
    fixed from the message alone, instead of surfacing as a bare
    ``TypeError: int() argument must not be None`` deep in parsing.
    """


class BuildError(MscclError):
    """A structurally invalid use of the step-level IR builder.

    Raised by :mod:`repro.build` when a program under construction
    breaks an IR invariant that would otherwise only surface later as a
    scheduling or audit failure: a send from a thread block with no send
    peer, a dependency on a step that does not exist, overlapping
    thread-block ids, and so on.
    """


class RuntimeConfigError(MscclError):
    """Invalid runtime configuration (unknown protocol, bad size range...)."""


class SimulationError(MscclError):
    """The discrete-event simulator reached an inconsistent state."""
