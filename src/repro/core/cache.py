"""A content-addressed compile cache with memory and disk tiers.

Sweeps, autotuning runs, and benchmark suites compile the *same traced
program* under the *same options* dozens of times per process (every
figure bench re-traces its configurations, the autotuner compiles each
candidate once per tuning call, ...). The cache keys each compile by a
SHA-256 digest of the program's trace content — the chunk-DAG
operations, the collective's shape, the protocol and instance count —
plus every :class:`~repro.core.compiler.CompilerOptions` field that can
change the produced IR (including the scheduler policy's
``policy_key``). Tracers, validation, and dump settings are
deliberately excluded: they never change the output.

Two tiers:

* **Memory** — an LRU-bounded ``OrderedDict`` in front, always present.
* **Disk** (:class:`DiskCacheTier`, optional) — content-addressed JSON
  files under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``),
  written via atomic renames so concurrent worker processes and repeat
  CLI invocations never observe a torn entry, and LRU-bounded by total
  bytes (``REPRO_CACHE_MAX_BYTES``, default 256 MiB). The process-wide
  :func:`default_compile_cache` carries a disk tier, which is how a
  second ``repro-tools sweep`` invocation — or a pool of evaluation
  workers — reuses the first one's compiles.

Hits are served by deserializing the stored IR JSON, so every caller
gets a private :class:`~repro.core.ir.MscclIr` it may freely mutate —
a cache hit is byte-identical (XML serialization) to a cold compile
but can never alias another caller's IR.

Hit/miss counters are kept per cache and surfaced two ways: bumped on
the compile's tracer (``compile_cache.hits`` / ``compile_cache.misses``
/ ``compile_cache.disk_hits`` counters) and exported by
:func:`repro.observe.metrics_dict` from the process-wide default cache
(:func:`default_compile_cache`).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, NamedTuple, Optional

from .collectives import (AllGather, AllReduce, AllToAll, AllToNext,
                          Broadcast, Collective, Gather, Reduce,
                          ReduceScatter, Scatter)
from .ir import MscclIr
from .program import MSCCLProgram

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"
DEFAULT_DISK_BYTES = 256 * 1024 * 1024
# How long a ``.write-*.part`` temp file may sit in the cache directory
# before eviction treats it as an orphan from a crashed/killed writer
# and removes it. Until then its bytes count toward the LRU budget.
DEFAULT_PART_GRACE_SECONDS = 60.0


class CacheEntry(NamedTuple):
    """One cached compile: the IR (serialized) and its collective."""

    ir_json: str
    collective: Collective


def program_digest(program: MSCCLProgram) -> str:
    """SHA-256 of the program's trace content.

    Two programs digest equal exactly when their chunk DAGs record the
    same operations in the same order over the same collective shape —
    the inputs the deterministic compiler pipeline sees. Builder
    identity is irrelevant: re-tracing the same algorithm yields the
    same digest.
    """
    collective = program.collective
    doc = {
        "name": program.name,
        "protocol": program.protocol,
        "instances": program.instances,
        "collective": {
            "kind": type(collective).__name__,
            "name": collective.name,
            "num_ranks": collective.num_ranks,
            "in_place": collective.in_place,
            "sizing_chunks": collective.sizing_chunks(),
            "output_chunks": [
                collective.output_chunks(rank)
                for rank in range(collective.num_ranks)
            ],
            "input_chunks": [
                0 if collective.in_place else collective.input_chunks(rank)
                for rank in range(collective.num_ranks)
            ],
        },
        "scratch_chunks": [
            program.scratch_chunks(rank)
            for rank in range(program.num_ranks)
        ],
        "ops": [
            (
                op.kind,
                _span_key(op.src),
                _span_key(op.dst),
                op.channel,
                None if op.parallel is None
                else (op.parallel.group_id, op.parallel.instances),
            )
            for op in program.dag.ops
        ],
    }
    payload = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _span_key(span):
    if span is None:
        return None
    rank, buffer, index, count = span
    return (rank, buffer.value, index, count)


def options_digest(options) -> str:
    """A stable key over every output-affecting CompilerOptions field."""
    scheduler = getattr(options, "scheduler", None)
    policy_key = ("default" if scheduler is None
                  else getattr(scheduler, "policy_key",
                               type(scheduler).__qualname__))
    doc = {
        "instr_fusion": options.instr_fusion,
        "verify": options.verify,
        "audit": options.audit,
        "optimize": options.optimize,
        "max_threadblocks": options.max_threadblocks,
        "num_slots": options.num_slots,
        "scheduler": policy_key,
    }
    return json.dumps(doc, separators=(",", ":"), sort_keys=True)


# Collectives a disk entry can round-trip: plain shape parameters fully
# describe them. Custom collectives carry arbitrary callables, so their
# entries stay in the memory tier only.
_SERIALIZABLE_COLLECTIVES = {
    cls.__name__: cls
    for cls in (AllReduce, AllGather, ReduceScatter, AllToAll, AllToNext,
                Broadcast, Reduce, Gather, Scatter)
}


def collective_to_doc(collective: Collective) -> Optional[Dict]:
    """JSON-safe reconstruction parameters, or None if not storable."""
    cls = _SERIALIZABLE_COLLECTIVES.get(type(collective).__name__)
    if cls is None or type(collective) is not cls:
        return None
    doc = {
        "kind": type(collective).__name__,
        "num_ranks": collective.num_ranks,
        "chunk_factor": collective.chunk_factor,
        "in_place": collective.in_place,
        "reduce_op": collective.reduce_op,
    }
    root = getattr(collective, "root", None)
    if root is not None:
        doc["root"] = root
    return doc


def collective_from_doc(doc: Dict) -> Collective:
    """Rebuild a collective stored by :func:`collective_to_doc`."""
    cls = _SERIALIZABLE_COLLECTIVES[doc["kind"]]
    kwargs = {
        "num_ranks": doc["num_ranks"],
        "chunk_factor": doc["chunk_factor"],
        "in_place": doc["in_place"],
        "reduce_op": doc["reduce_op"],
    }
    if "root" in doc:
        kwargs["root"] = doc["root"]
    return cls(**kwargs)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class DiskCacheTier:
    """Persistent content-addressed entries shared across processes.

    Every entry is one JSON file named by the SHA-256 of its cache key.
    Writes go to a temp file in the same directory and land via
    ``os.replace``, so a reader (or a concurrent writer) never sees a
    torn entry — the worst outcome of a write race is that the last
    writer wins with a byte-identical payload. Corrupt or truncated
    files are treated as misses and deleted best-effort.

    The tier is LRU-bounded by total bytes: lookups bump the entry's
    mtime, and stores evict oldest-mtime files until the directory fits
    ``max_bytes`` again (the entry just written is never evicted).
    Eviction also accounts for ``.write-*.part`` temp files: a live one
    (a concurrent writer mid-store) counts toward the byte budget, and
    one older than ``part_grace_seconds`` — orphaned by a crashed or
    killed writer, since a healthy store renames within milliseconds —
    is deleted on the spot.

    Counter bumps and eviction hold a lock so concurrent threads in one
    process never race them; cross-process safety comes from the atomic
    renames alone.
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 max_bytes: Optional[int] = None,
                 part_grace_seconds: float = DEFAULT_PART_GRACE_SECONDS):
        if max_bytes is None:
            env = os.environ.get(CACHE_BYTES_ENV, "").strip()
            max_bytes = int(env) if env else DEFAULT_DISK_BYTES
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if part_grace_seconds < 0:
            raise ValueError("part_grace_seconds must be >= 0")
        self.directory = (Path(directory) if directory is not None
                          else default_cache_dir())
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.part_grace_seconds = part_grace_seconds
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.orphans_removed = 0
        self._lock = threading.RLock()

    def path_for(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()
        return self.directory / f"{digest}.json"

    def lookup(self, key: str) -> Optional[CacheEntry]:
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self._bump("misses")
            return None
        try:
            doc = json.loads(text)
            if doc["key"] != key:
                raise ValueError("cache key collision or stale entry")
            entry = CacheEntry(doc["ir_json"],
                               collective_from_doc(doc["collective"]))
            # A file can be valid JSON yet hold a damaged IR payload;
            # parse it now so a bad entry is a miss here, not a crash
            # in the caller's materialize().
            MscclIr.from_json(entry.ir_json)
        except (ValueError, KeyError, TypeError):
            self._bump("misses")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._bump("hits")
        try:
            os.utime(path)  # LRU bump
        except OSError:
            pass
        return entry

    def _bump(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def store(self, key: str, entry: CacheEntry) -> bool:
        """Persist one entry; False if its collective cannot round-trip."""
        doc_collective = collective_to_doc(entry.collective)
        if doc_collective is None:
            return False
        payload = json.dumps({
            "key": key,
            "collective": doc_collective,
            "ir_json": entry.ir_json,
        }, separators=(",", ":"))
        path = self.path_for(key)
        fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                   prefix=".write-", suffix=".part")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self._evict(keep=path)
        return True

    def _sweep_part_files(self) -> int:
        """Reap orphaned temp files; returns live ``.part`` bytes.

        A ``.part`` older than the grace period was abandoned by a
        crashed/killed writer (a healthy store renames within
        milliseconds) and is removed. Younger ones belong to an
        in-flight writer: they stay, but their bytes count toward the
        budget so a burst of concurrent writers cannot silently blow
        past ``max_bytes``.
        """
        live_bytes = 0
        now = time.time()
        for path in self.directory.glob(".write-*.part"):
            try:
                stat = path.stat()
            except OSError:
                continue  # the writer finished (renamed) or unlinked it
            if now - stat.st_mtime > self.part_grace_seconds:
                try:
                    path.unlink()
                except OSError:
                    continue
                with self._lock:
                    self.orphans_removed += 1
            else:
                live_bytes += stat.st_size
        return live_bytes

    def _evict(self, keep: Path) -> None:
        with self._lock:
            entries = []
            total = self._sweep_part_files()
            for path in self.directory.glob("*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # raced with another process's eviction
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
            entries.sort(key=lambda row: row[0])
            for _mtime, size, path in entries:
                if total <= self.max_bytes:
                    break
                if path == keep:
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                self.evictions += 1

    def entry_count(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def total_bytes(self) -> int:
        """Entry bytes plus any in-flight writers' ``.part`` bytes."""
        total = 0
        for pattern in ("*.json", ".write-*.part"):
            for path in self.directory.glob(pattern):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
        return total

    def clear(self) -> None:
        for pattern in ("*.json", ".write-*.part"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.orphans_removed = 0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "orphans_removed": self.orphans_removed,
            "entries": self.entry_count(),
            "bytes": self.total_bytes(),
            "dir": str(self.directory),
        }


class CompileCache:
    """LRU-bounded content-addressed store of compiled IRs.

    ``disk`` attaches a persistent :class:`DiskCacheTier` behind the
    memory tier: lookups fall through to it on a memory miss (promoting
    the entry back into memory), stores write through to it. After a
    lookup, :attr:`last_hit_tier` says which tier served it
    (``"memory"``, ``"disk"``, or None on a miss).

    The cache is thread-safe: the memory tier and the hit/miss counters
    are guarded by a lock (the plan service's executor threads and the
    tuner both hammer one instance), and ``last_hit_tier`` is
    thread-local, so each thread reads the tier of *its own* last
    lookup, never a concurrent one's.
    """

    def __init__(self, maxsize: int = 256,
                 disk: Optional[DiskCacheTier] = None):
        self.maxsize = maxsize
        self.disk = disk
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()
        self._tier_local = threading.local()

    @property
    def last_hit_tier(self) -> Optional[str]:
        """Tier of the calling thread's most recent lookup."""
        return getattr(self._tier_local, "tier", None)

    @last_hit_tier.setter
    def last_hit_tier(self, tier: Optional[str]) -> None:
        self._tier_local.tier = tier

    def key_for(self, program: MSCCLProgram, options) -> str:
        return program_digest(program) + "/" + options_digest(options)

    def lookup(self, key: str) -> Optional[CacheEntry]:
        """The entry for ``key`` (bumping hit/miss counters)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self.last_hit_tier = "memory"
                return entry
            if self.disk is not None:
                entry = self.disk.lookup(key)
                if entry is not None:
                    self._put(key, entry)
                    self.hits += 1
                    self.last_hit_tier = "disk"
                    return entry
            self.misses += 1
            self.last_hit_tier = None
            return None

    def store(self, key: str, ir: MscclIr,
              collective: Collective) -> None:
        entry = CacheEntry(ir.to_json(), collective)
        with self._lock:
            self._put(key, entry)
        if self.disk is not None:
            self.disk.store(key, entry)

    def _put(self, key: str, entry: CacheEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def materialize(self, entry: CacheEntry) -> MscclIr:
        """A fresh, privately-owned IR for a hit."""
        return MscclIr.from_json(entry.ir_json)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.last_hit_tier = None

    def stats(self) -> Dict[str, float]:
        """JSON-safe counters for dashboards and BENCH artifacts."""
        with self._lock:
            hits, misses = self.hits, self.misses
            entries = len(self._entries)
        total = hits + misses
        stats: Dict[str, float] = {
            "hits": hits,
            "misses": misses,
            "entries": entries,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }
        if self.disk is not None:
            stats["disk"] = self.disk.stats()
        return stats


_DEFAULT_CACHE: Optional[CompileCache] = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_compile_cache() -> CompileCache:
    """The process-wide cache shared by sweeps, tuning, and benches.

    Created lazily on first use so ``REPRO_CACHE_DIR`` /
    ``REPRO_CACHE_MAX_BYTES`` are read at call time, with a persistent
    disk tier attached; when the cache directory cannot be created
    (read-only home, sandbox), the cache quietly runs memory-only.
    Creation is race-free: concurrent first callers (the plan service's
    executor threads) all observe the same instance, never two caches
    splitting the hit counters.
    """
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        with _DEFAULT_CACHE_LOCK:
            if _DEFAULT_CACHE is None:
                try:
                    disk: Optional[DiskCacheTier] = DiskCacheTier()
                except (OSError, ValueError):
                    disk = None
                _DEFAULT_CACHE = CompileCache(disk=disk)
    return _DEFAULT_CACHE


def reset_default_compile_cache() -> None:
    """Drop the process-wide cache so the next use re-reads the env.

    The disk tier's files survive — this models a fresh process (tests
    use it to exercise the persistent tier without subprocesses).
    """
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        _DEFAULT_CACHE = None
