"""A content-addressed compile cache.

Sweeps, autotuning runs, and benchmark suites compile the *same traced
program* under the *same options* dozens of times per process (every
figure bench re-traces its configurations, the autotuner compiles each
candidate once per tuning call, ...). The cache keys each compile by a
SHA-256 digest of the program's trace content — the chunk-DAG
operations, the collective's shape, the protocol and instance count —
plus every :class:`~repro.core.compiler.CompilerOptions` field that can
change the produced IR (including the scheduler policy's
``policy_key``). Tracers, validation, and dump settings are
deliberately excluded: they never change the output.

Hits are served by deserializing the stored IR JSON, so every caller
gets a private :class:`~repro.core.ir.MscclIr` it may freely mutate —
a cache hit is byte-identical (XML serialization) to a cold compile
but can never alias another caller's IR.

Hit/miss counters are kept per cache and surfaced two ways: bumped on
the compile's tracer (``compile_cache.hits`` / ``compile_cache.misses``
counters) and exported by :func:`repro.observe.metrics_dict` from the
process-wide default cache (:func:`default_compile_cache`).
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Dict, NamedTuple, Optional

from .collectives import Collective
from .ir import MscclIr
from .program import MSCCLProgram


class CacheEntry(NamedTuple):
    """One cached compile: the IR (serialized) and its collective."""

    ir_json: str
    collective: Collective


def program_digest(program: MSCCLProgram) -> str:
    """SHA-256 of the program's trace content.

    Two programs digest equal exactly when their chunk DAGs record the
    same operations in the same order over the same collective shape —
    the inputs the deterministic compiler pipeline sees. Builder
    identity is irrelevant: re-tracing the same algorithm yields the
    same digest.
    """
    collective = program.collective
    doc = {
        "name": program.name,
        "protocol": program.protocol,
        "instances": program.instances,
        "collective": {
            "kind": type(collective).__name__,
            "name": collective.name,
            "num_ranks": collective.num_ranks,
            "in_place": collective.in_place,
            "sizing_chunks": collective.sizing_chunks(),
            "output_chunks": [
                collective.output_chunks(rank)
                for rank in range(collective.num_ranks)
            ],
            "input_chunks": [
                0 if collective.in_place else collective.input_chunks(rank)
                for rank in range(collective.num_ranks)
            ],
        },
        "scratch_chunks": [
            program.scratch_chunks(rank)
            for rank in range(program.num_ranks)
        ],
        "ops": [
            (
                op.kind,
                _span_key(op.src),
                _span_key(op.dst),
                op.channel,
                None if op.parallel is None
                else (op.parallel.group_id, op.parallel.instances),
            )
            for op in program.dag.ops
        ],
    }
    payload = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _span_key(span):
    if span is None:
        return None
    rank, buffer, index, count = span
    return (rank, buffer.value, index, count)


def options_digest(options) -> str:
    """A stable key over every output-affecting CompilerOptions field."""
    scheduler = getattr(options, "scheduler", None)
    policy_key = ("default" if scheduler is None
                  else getattr(scheduler, "policy_key",
                               type(scheduler).__qualname__))
    doc = {
        "instr_fusion": options.instr_fusion,
        "verify": options.verify,
        "audit": options.audit,
        "optimize": options.optimize,
        "max_threadblocks": options.max_threadblocks,
        "num_slots": options.num_slots,
        "scheduler": policy_key,
    }
    return json.dumps(doc, separators=(",", ":"), sort_keys=True)


class CompileCache:
    """LRU-bounded content-addressed store of compiled IRs."""

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def key_for(self, program: MSCCLProgram, options) -> str:
        return program_digest(program) + "/" + options_digest(options)

    def lookup(self, key: str) -> Optional[CacheEntry]:
        """The entry for ``key`` (bumping hit/miss counters)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: str, ir: MscclIr,
              collective: Collective) -> None:
        self._entries[key] = CacheEntry(ir.to_json(), collective)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def materialize(self, entry: CacheEntry) -> MscclIr:
        """A fresh, privately-owned IR for a hit."""
        return MscclIr.from_json(entry.ir_json)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, float]:
        """JSON-safe counters for dashboards and BENCH artifacts."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }


_DEFAULT_CACHE = CompileCache()


def default_compile_cache() -> CompileCache:
    """The process-wide cache shared by sweeps, tuning, and benches."""
    return _DEFAULT_CACHE
