"""Named buffers and the per-rank buffer state used while tracing.

Each rank exposes three named buffers (paper section 3.1):

* ``input`` — holds the rank's input chunks at program start,
* ``output`` — uninitialized; must satisfy the postcondition at the end,
* ``scratch`` — uninitialized temporary storage whose size is deduced
  from the highest index the program touches.

``BufferState`` tracks, for every index, the abstract chunk value
currently stored there plus a monotonically increasing *version*. The
version implements the stale-reference rule: a ``ChunkRef`` snapshots the
versions of the locations it covers, and any later write bumps them,
invalidating older references.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from .chunk import UNINITIALIZED, Chunk, is_initialized
from .errors import ProgramError, UninitializedChunkError


class Buffer(enum.Enum):
    """The three per-rank buffers a program may address."""

    INPUT = "input"
    OUTPUT = "output"
    SCRATCH = "scratch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_ALIASES = {
    "in": Buffer.INPUT,
    "input": Buffer.INPUT,
    "i": Buffer.INPUT,
    "out": Buffer.OUTPUT,
    "output": Buffer.OUTPUT,
    "o": Buffer.OUTPUT,
    "sc": Buffer.SCRATCH,
    "scratch": Buffer.SCRATCH,
    "s": Buffer.SCRATCH,
}


def as_buffer(name) -> Buffer:
    """Normalize a user-facing buffer name ('in', 'out', 'sc', ...)."""
    if isinstance(name, Buffer):
        return name
    if isinstance(name, str):
        try:
            return _ALIASES[name.lower()]
        except KeyError:
            raise ProgramError(
                f"unknown buffer {name!r}; expected one of "
                f"{sorted(set(_ALIASES))}"
            ) from None
    raise ProgramError(f"buffer must be a string or Buffer, got {type(name)}")


class BufferState:
    """Abstract contents of one buffer on one rank during tracing.

    The buffer grows on demand for scratch (whose size is deduced), while
    input/output have a fixed chunk count and reject out-of-range access.
    """

    def __init__(self, buffer: Buffer, rank: int, size: Optional[int]):
        self.buffer = buffer
        self.rank = rank
        self._fixed_size = size
        self._chunks: List[Chunk] = (
            [UNINITIALIZED] * size if size is not None else []
        )
        self._versions: List[int] = [0] * len(self._chunks)

    @property
    def size(self) -> int:
        """Number of chunk slots currently materialized."""
        return len(self._chunks)

    def _check_range(self, index: int, count: int) -> None:
        if index < 0 or count < 1:
            raise ProgramError(
                f"invalid access {self.buffer}[{index}:{index + count}] "
                f"on rank {self.rank}: index must be >= 0 and count >= 1"
            )
        end = index + count
        if self._fixed_size is not None:
            if end > self._fixed_size:
                raise ProgramError(
                    f"access {self.buffer}[{index}:{end}] on rank "
                    f"{self.rank} is out of range (size {self._fixed_size})"
                )
        elif end > len(self._chunks):
            # Scratch grows to cover the highest index accessed.
            growth = end - len(self._chunks)
            self._chunks.extend([UNINITIALIZED] * growth)
            self._versions.extend([0] * growth)

    def read(self, index: int, count: int) -> List[Chunk]:
        """Read ``count`` chunk values; error on uninitialized data."""
        self._check_range(index, count)
        values = self._chunks[index : index + count]
        for offset, value in enumerate(values):
            if not is_initialized(value):
                raise UninitializedChunkError(
                    f"rank {self.rank} read uninitialized chunk at "
                    f"{self.buffer}[{index + offset}]"
                )
        return list(values)

    def peek(self, index: int, count: int) -> List[Chunk]:
        """Read values without the initialization check (for diagnostics)."""
        self._check_range(index, count)
        return list(self._chunks[index : index + count])

    def write(self, index: int, values: List[Chunk]) -> None:
        """Store values and bump versions, invalidating older references."""
        self._check_range(index, len(values))
        for offset, value in enumerate(values):
            self._chunks[index + offset] = value
            self._versions[index + offset] += 1

    def versions(self, index: int, count: int) -> List[int]:
        """Current version stamps for a span (used by ChunkRef snapshots)."""
        self._check_range(index, count)
        return list(self._versions[index : index + count])

    def snapshot(self) -> Dict[int, Chunk]:
        """Mapping of index -> chunk for all initialized slots."""
        return {
            i: c for i, c in enumerate(self._chunks) if is_initialized(c)
        }
