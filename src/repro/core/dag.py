"""The Chunk DAG: the compiler's trace of a program's chunk movement.

Tracing executes the Python program once, recording every ``copy`` and
``reduce`` as a node (paper section 4.1). Edges are dependencies between
operations:

* **true dependencies** — an operation reads a location another op wrote,
* **false dependencies** — an operation overwrites a location another op
  wrote or read (WAW / WAR from reusing buffer indices).

Source nodes stand for the input chunks present at program start so the
graph is rooted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .buffers import Buffer

# A located span of chunks: (rank, buffer, start index, count).
Span = Tuple[int, Buffer, int, int]

# A chunk origin: (rank, buffer name, index) of an input chunk present at
# program start. Lineage sets are frozensets of these.
Origin = Tuple[int, str, int]


def span_locations(span: Span):
    """Iterate the (rank, buffer, index) locations a span covers."""
    rank, buffer, index, count = span
    for offset in range(count):
        yield (rank, buffer, index + offset)


@dataclass
class ParallelGroup:
    """A ``parallelize(n)`` region; ops inside are replicated n ways."""

    group_id: int
    instances: int


@dataclass
class ChunkOp:
    """One node of the Chunk DAG.

    ``kind`` is ``'start'`` (input chunk source), ``'copy'``, or
    ``'reduce'``. For copy, ``src`` is read and ``dst`` written. For
    reduce, both ``src`` and ``dst`` are read and ``dst`` is written
    (the in-place accumulator).
    """

    op_id: int
    kind: str
    src: Optional[Span]
    dst: Optional[Span]
    channel: Optional[int] = None
    parallel: Optional[ParallelGroup] = None
    trace_index: int = 0
    deps: Set[int] = field(default_factory=set)
    true_deps: Set[int] = field(default_factory=set)
    # Origin chunks whose data flows through this op (see ``Origin``).
    lineage: frozenset = frozenset()
    # Origins read from ``src`` only: what actually travels on a remote
    # reduce (the accumulator's own origins never leave the dst rank).
    src_lineage: frozenset = frozenset()

    @property
    def is_local(self) -> bool:
        """True when source and destination live on the same rank."""
        if self.src is None or self.dst is None:
            return True
        return self.src[0] == self.dst[0]

    def __repr__(self) -> str:
        return (
            f"ChunkOp#{self.op_id}({self.kind}, src={self.src}, "
            f"dst={self.dst}, ch={self.channel})"
        )


class ChunkDAG:
    """Accumulates ChunkOps and dependency edges during tracing."""

    def __init__(self) -> None:
        self.ops: List[ChunkOp] = []
        # Per location bookkeeping for dependence computation.
        self._last_writer: Dict[Tuple[int, Buffer, int], int] = {}
        self._readers_since_write: Dict[Tuple[int, Buffer, int], Set[int]] = {}
        # Per location origin-chunk lineage (dataflow provenance).
        self._lineage: Dict[Tuple[int, Buffer, int], frozenset] = {}

    def _location_lineage(self, loc: Tuple[int, Buffer, int]) -> frozenset:
        """Origins currently stored at a location (empty if untouched)."""
        return self._lineage.get(loc, frozenset())

    def _new_op(self, kind: str, src: Optional[Span], dst: Optional[Span],
                channel: Optional[int],
                parallel: Optional[ParallelGroup]) -> ChunkOp:
        op = ChunkOp(
            op_id=len(self.ops),
            kind=kind,
            src=src,
            dst=dst,
            channel=channel,
            parallel=parallel,
            trace_index=len(self.ops),
        )
        self.ops.append(op)
        return op

    def _record_read(self, op: ChunkOp, span: Span) -> None:
        for loc in span_locations(span):
            writer = self._last_writer.get(loc)
            if writer is not None and writer != op.op_id:
                op.deps.add(writer)
                op.true_deps.add(writer)
            self._readers_since_write.setdefault(loc, set()).add(op.op_id)

    def _record_write(self, op: ChunkOp, span: Span) -> None:
        for loc in span_locations(span):
            writer = self._last_writer.get(loc)
            if writer is not None and writer != op.op_id:
                op.deps.add(writer)  # WAW false dependency
            for reader in self._readers_since_write.get(loc, ()):
                if reader != op.op_id:
                    op.deps.add(reader)  # WAR false dependency
            self._last_writer[loc] = op.op_id
            self._readers_since_write[loc] = set()

    def add_start(self, span: Span) -> ChunkOp:
        """Record a source node for input chunks present at start."""
        op = self._new_op("start", None, span, None, None)
        self._record_write(op, span)
        # Each start location is its own lineage origin.
        origins = set()
        for (rank, buffer, index) in span_locations(span):
            origin = frozenset({(rank, buffer.value, index)})
            self._lineage[(rank, buffer, index)] = origin
            origins |= origin
        op.lineage = frozenset(origins)
        op.src_lineage = op.lineage
        # Start nodes are not real writes for WAR purposes; reset readers.
        return op

    def add_copy(self, src: Span, dst: Span, channel: Optional[int],
                 parallel: Optional[ParallelGroup]) -> ChunkOp:
        """Record a copy op reading ``src`` and writing ``dst``."""
        op = self._new_op("copy", src, dst, channel, parallel)
        self._record_read(op, src)
        self._record_write(op, dst)
        # Positional dataflow: dst location i takes src location i's set.
        moved = set()
        for src_loc, dst_loc in zip(span_locations(src),
                                    span_locations(dst)):
            origins = self._location_lineage(src_loc)
            self._lineage[dst_loc] = origins
            moved |= origins
        op.lineage = frozenset(moved)
        op.src_lineage = op.lineage
        return op

    def add_reduce(self, src: Span, dst: Span, channel: Optional[int],
                   parallel: Optional[ParallelGroup]) -> ChunkOp:
        """Record a reduce op accumulating ``src`` into ``dst``."""
        op = self._new_op("reduce", src, dst, channel, parallel)
        self._record_read(op, src)
        self._record_read(op, dst)
        self._record_write(op, dst)
        # The accumulator keeps its own origins and gains the source's.
        merged = set()
        read = set()
        for src_loc, dst_loc in zip(span_locations(src),
                                    span_locations(dst)):
            incoming = self._location_lineage(src_loc)
            origins = incoming | self._location_lineage(dst_loc)
            self._lineage[dst_loc] = origins
            merged |= origins
            read |= incoming
        op.lineage = frozenset(merged)
        op.src_lineage = frozenset(read)
        return op

    # -- queries ---------------------------------------------------------
    def operations(self) -> List[ChunkOp]:
        """All copy/reduce nodes in trace order (start nodes excluded)."""
        return [op for op in self.ops if op.kind != "start"]

    def dependents(self) -> Dict[int, Set[int]]:
        """Reverse adjacency: op_id -> set of ops depending on it."""
        result: Dict[int, Set[int]] = {op.op_id: set() for op in self.ops}
        for op in self.ops:
            for dep in op.deps:
                result[dep].add(op.op_id)
        return result

    def __len__(self) -> int:
        return len(self.ops)
