"""Collective definitions: preconditions, postconditions, and aliasing.

A collective states *what* must be true before and after a program runs
(paper section 3.2); the MSCCLang program states *how* chunks move. The
precondition places unique :class:`~repro.core.chunk.InputChunk` values
in every rank's input buffer. The postcondition maps every output index
to the input or reduction chunk that must be there, which lets
:mod:`repro.core.verification` check algorithms automatically.

In-place algorithms alias the input buffer onto (a region of) the output
buffer; ``alias`` resolves user-facing coordinates to canonical storage
coordinates so tracing sees a single underlying buffer.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .buffers import Buffer
from .chunk import Chunk, InputChunk, ReductionChunk
from .errors import ProgramError

Coordinate = Tuple[Buffer, int]


REDUCE_OPS = ("sum", "max", "min", "prod")


class Collective:
    """Base class: a named collective over ``num_ranks`` ranks.

    Subclasses define buffer sizes and the postcondition. ``chunk_factor``
    scales how finely the algorithm divides buffers; its meaning is
    documented per collective. ``reduce_op`` selects the point-wise
    reduction (MPI_SUM/MAX/MIN/PROD); the abstract chunk identities are
    operator-agnostic (a multiset of contributing inputs), while the
    data-level executor applies the chosen operator numerically.
    """

    name = "collective"

    def __init__(self, num_ranks: int, chunk_factor: int = 1,
                 in_place: bool = False, reduce_op: str = "sum"):
        if num_ranks < 1:
            raise ProgramError("collective needs at least one rank")
        if chunk_factor < 1:
            raise ProgramError("chunk_factor must be >= 1")
        if reduce_op not in REDUCE_OPS:
            raise ProgramError(
                f"unknown reduce_op {reduce_op!r}; expected one of "
                f"{REDUCE_OPS}"
            )
        self.num_ranks = num_ranks
        self.chunk_factor = chunk_factor
        self.in_place = in_place
        self.reduce_op = reduce_op

    # -- sizes ---------------------------------------------------------
    def input_chunks(self, rank: int) -> int:
        """Number of chunks in ``rank``'s input buffer."""
        raise NotImplementedError

    def output_chunks(self, rank: int) -> int:
        """Number of chunks in ``rank``'s output buffer."""
        raise NotImplementedError

    def sizing_chunks(self) -> int:
        """Chunks the headline "buffer size" divides into.

        Benchmarks quote one buffer size per collective call; the chunk
        payload is that size divided by this count (the larger of the
        rank-0 input and output buffers, matching how the paper's
        figures label their x axes).
        """
        return max(self.input_chunks(0), self.output_chunks(0))

    # -- conditions ----------------------------------------------------
    def precondition(self, rank: int) -> Dict[int, InputChunk]:
        """Initial input-buffer contents: index -> unique input chunk."""
        return {
            i: InputChunk(rank, i) for i in range(self.input_chunks(rank))
        }

    def postcondition(self, rank: int) -> Dict[int, Chunk]:
        """Required final output-buffer contents: index -> chunk.

        Indices absent from the mapping are unconstrained (used by
        collectives, like AllToNext's first rank, with partial outputs).
        """
        raise NotImplementedError

    # -- in-place aliasing ---------------------------------------------
    def input_offset(self, rank: int) -> int:
        """Where the input buffer lands inside the output when in place."""
        return 0

    def alias(self, rank: int, buffer: Buffer, index: int) -> Coordinate:
        """Map user coordinates to canonical storage coordinates."""
        if self.in_place and buffer is Buffer.INPUT:
            return (Buffer.OUTPUT, index + self.input_offset(rank))
        return (buffer, index)

    def __repr__(self) -> str:
        inplace = ", in_place" if self.in_place else ""
        return (
            f"{type(self).__name__}(ranks={self.num_ranks}, "
            f"chunk_factor={self.chunk_factor}{inplace})"
        )


class AllReduce(Collective):
    """Every rank ends with the element-wise sum of all input buffers.

    ``chunk_factor`` is the number of chunks each buffer divides into.
    """

    name = "allreduce"

    def input_chunks(self, rank: int) -> int:
        return self.chunk_factor

    def output_chunks(self, rank: int) -> int:
        return self.chunk_factor

    def postcondition(self, rank: int) -> Dict[int, Chunk]:
        return {
            i: ReductionChunk.of(
                *(InputChunk(r, i) for r in range(self.num_ranks))
            )
            for i in range(self.chunk_factor)
        }


class AllGather(Collective):
    """Every rank ends with the concatenation of all ranks' inputs.

    ``chunk_factor`` is the number of chunks per *input* buffer; the
    output holds ``num_ranks * chunk_factor`` chunks. In place, rank r's
    input aliases output indices ``[r*chunk_factor, (r+1)*chunk_factor)``.
    """

    name = "allgather"

    def input_chunks(self, rank: int) -> int:
        return self.chunk_factor

    def output_chunks(self, rank: int) -> int:
        return self.num_ranks * self.chunk_factor

    def input_offset(self, rank: int) -> int:
        return rank * self.chunk_factor

    def postcondition(self, rank: int) -> Dict[int, Chunk]:
        expected: Dict[int, Chunk] = {}
        for src in range(self.num_ranks):
            for i in range(self.chunk_factor):
                expected[src * self.chunk_factor + i] = InputChunk(src, i)
        return expected


class ReduceScatter(Collective):
    """Rank r ends with its share of the fully reduced buffer.

    Inputs have ``num_ranks * chunk_factor`` chunks; rank r's output is
    the ``chunk_factor`` reduced chunks of segment r. In place, the
    output aliases input indices ``[r*chunk_factor, (r+1)*chunk_factor)``
    — expressed here as the input buffer aliasing a *larger* region, so
    canonical storage is the input-sized output buffer.
    """

    name = "reducescatter"

    def input_chunks(self, rank: int) -> int:
        return self.num_ranks * self.chunk_factor

    def output_chunks(self, rank: int) -> int:
        if self.in_place:
            # Canonical storage spans the whole input buffer.
            return self.num_ranks * self.chunk_factor
        return self.chunk_factor

    def postcondition(self, rank: int) -> Dict[int, Chunk]:
        base = rank * self.chunk_factor if self.in_place else 0
        expected: Dict[int, Chunk] = {}
        for i in range(self.chunk_factor):
            source_index = rank * self.chunk_factor + i
            expected[base + i] = ReductionChunk.of(
                *(InputChunk(r, source_index) for r in range(self.num_ranks))
            )
        return expected


class AllToAll(Collective):
    """Block j of rank i's input ends at block i of rank j's output.

    Each input divides into ``num_ranks`` blocks of ``chunk_factor``
    chunks; block indices transpose across ranks.
    """

    name = "alltoall"

    def input_chunks(self, rank: int) -> int:
        return self.num_ranks * self.chunk_factor

    def output_chunks(self, rank: int) -> int:
        return self.num_ranks * self.chunk_factor

    def postcondition(self, rank: int) -> Dict[int, Chunk]:
        expected: Dict[int, Chunk] = {}
        for src in range(self.num_ranks):
            for k in range(self.chunk_factor):
                expected[src * self.chunk_factor + k] = InputChunk(
                    src, rank * self.chunk_factor + k
                )
        return expected


class AllToNext(Collective):
    """Rank i sends its input buffer to rank i+1 (paper section 7.4).

    Rank 0's output is unconstrained; the last rank sends nothing.
    ``chunk_factor`` is the number of chunks per buffer.
    """

    name = "alltonext"

    def input_chunks(self, rank: int) -> int:
        return self.chunk_factor

    def output_chunks(self, rank: int) -> int:
        return self.chunk_factor

    def postcondition(self, rank: int) -> Dict[int, Chunk]:
        if rank == 0:
            return {}
        return {
            i: InputChunk(rank - 1, i) for i in range(self.chunk_factor)
        }


class Broadcast(Collective):
    """Every rank ends with the root's input buffer.

    ``chunk_factor`` chunks per buffer; ``root`` defaults to rank 0.
    """

    name = "broadcast"

    def __init__(self, num_ranks: int, chunk_factor: int = 1,
                 in_place: bool = False, root: int = 0,
                 reduce_op: str = "sum"):
        super().__init__(num_ranks, chunk_factor, in_place, reduce_op)
        if not 0 <= root < num_ranks:
            raise ProgramError(f"root {root} out of range")
        self.root = root

    def input_chunks(self, rank: int) -> int:
        # Only the root holds data; other ranks still expose an input
        # buffer of matching shape (uninitialized and unused).
        return self.chunk_factor

    def output_chunks(self, rank: int) -> int:
        return self.chunk_factor

    def precondition(self, rank: int) -> Dict[int, InputChunk]:
        if rank != self.root:
            return {}
        return {
            i: InputChunk(rank, i) for i in range(self.chunk_factor)
        }

    def postcondition(self, rank: int) -> Dict[int, Chunk]:
        return {
            i: InputChunk(self.root, i) for i in range(self.chunk_factor)
        }


class Reduce(Collective):
    """The root ends with the element-wise sum of all inputs.

    The inverse of Broadcast: only the root's output is constrained.
    """

    name = "reduce"

    def __init__(self, num_ranks: int, chunk_factor: int = 1,
                 in_place: bool = False, root: int = 0,
                 reduce_op: str = "sum"):
        super().__init__(num_ranks, chunk_factor, in_place, reduce_op)
        if not 0 <= root < num_ranks:
            raise ProgramError(f"root {root} out of range")
        self.root = root

    def input_chunks(self, rank: int) -> int:
        return self.chunk_factor

    def output_chunks(self, rank: int) -> int:
        return self.chunk_factor

    def postcondition(self, rank: int) -> Dict[int, Chunk]:
        if rank != self.root:
            return {}
        return {
            i: ReductionChunk.of(
                *(InputChunk(r, i) for r in range(self.num_ranks))
            )
            for i in range(self.chunk_factor)
        }


class Gather(Collective):
    """The root ends with the concatenation of all ranks' inputs."""

    name = "gather"

    def __init__(self, num_ranks: int, chunk_factor: int = 1,
                 in_place: bool = False, root: int = 0,
                 reduce_op: str = "sum"):
        super().__init__(num_ranks, chunk_factor, in_place, reduce_op)
        if not 0 <= root < num_ranks:
            raise ProgramError(f"root {root} out of range")
        self.root = root

    def input_chunks(self, rank: int) -> int:
        return self.chunk_factor

    def output_chunks(self, rank: int) -> int:
        return self.num_ranks * self.chunk_factor

    def input_offset(self, rank: int) -> int:
        return rank * self.chunk_factor

    def postcondition(self, rank: int) -> Dict[int, Chunk]:
        if rank != self.root:
            return {}
        expected: Dict[int, Chunk] = {}
        for src in range(self.num_ranks):
            for i in range(self.chunk_factor):
                expected[src * self.chunk_factor + i] = InputChunk(src, i)
        return expected


class Scatter(Collective):
    """Rank r ends with block r of the root's input buffer."""

    name = "scatter"

    def __init__(self, num_ranks: int, chunk_factor: int = 1,
                 in_place: bool = False, root: int = 0,
                 reduce_op: str = "sum"):
        super().__init__(num_ranks, chunk_factor, in_place, reduce_op)
        if not 0 <= root < num_ranks:
            raise ProgramError(f"root {root} out of range")
        self.root = root

    def input_chunks(self, rank: int) -> int:
        return self.num_ranks * self.chunk_factor

    def output_chunks(self, rank: int) -> int:
        return self.chunk_factor

    def precondition(self, rank: int) -> Dict[int, InputChunk]:
        if rank != self.root:
            return {}
        return {
            i: InputChunk(rank, i)
            for i in range(self.num_ranks * self.chunk_factor)
        }

    def postcondition(self, rank: int) -> Dict[int, Chunk]:
        return {
            i: InputChunk(self.root, rank * self.chunk_factor + i)
            for i in range(self.chunk_factor)
        }


class AllToAllV(Collective):
    """Variable-count all-to-all: ``counts[src][dst]`` chunks per pair.

    The MoE token-dispatch pattern: every rank sends a different amount
    to every peer. Rank r's input is the concatenation of its outgoing
    blocks in destination order (block for dst at offset
    ``send_offset(r, dst)``); its output is the concatenation of the
    incoming blocks in source order (block from src at offset
    ``recv_offset(src, r)``). Buffer sizes therefore differ per rank —
    the collective that motivates variable-size chunk support end to
    end. In-place operation is meaningless here (input and output have
    different shapes) and is rejected.
    """

    name = "alltoallv"

    def __init__(self, counts, reduce_op: str = "sum"):
        rows = [list(int(c) for c in row) for row in counts]
        if not rows or any(len(row) != len(rows) for row in rows):
            raise ProgramError(
                "alltoallv counts must be a square num_ranks x num_ranks "
                f"matrix, got rows of lengths {[len(r) for r in rows]}"
            )
        if any(c < 0 for row in rows for c in row):
            raise ProgramError("alltoallv counts must be non-negative")
        super().__init__(len(rows), chunk_factor=1, in_place=False,
                         reduce_op=reduce_op)
        self.counts = rows

    def input_chunks(self, rank: int) -> int:
        return sum(self.counts[rank])

    def output_chunks(self, rank: int) -> int:
        return sum(self.counts[src][rank] for src in range(self.num_ranks))

    def sizing_chunks(self) -> int:
        # Rows differ per rank, so size against the largest buffer
        # anywhere (rank 0 alone would under-size skewed matrices).
        return max(
            [1] + [max(self.input_chunks(r), self.output_chunks(r))
                   for r in range(self.num_ranks)]
        )

    def send_offset(self, src: int, dst: int) -> int:
        """Offset of the block for ``dst`` inside ``src``'s input."""
        return sum(self.counts[src][:dst])

    def recv_offset(self, src: int, dst: int) -> int:
        """Offset of the block from ``src`` inside ``dst``'s output."""
        return sum(self.counts[s][dst] for s in range(src))

    def postcondition(self, rank: int) -> Dict[int, Chunk]:
        expected: Dict[int, Chunk] = {}
        for src in range(self.num_ranks):
            base_out = self.recv_offset(src, rank)
            base_in = self.send_offset(src, rank)
            for k in range(self.counts[src][rank]):
                expected[base_out + k] = InputChunk(src, base_in + k)
        return expected


class Custom(Collective):
    """A user-defined collective built from explicit size/post functions.

    ``postcondition_fn(rank)`` returns the index -> chunk mapping;
    ``input_chunks_fn`` / ``output_chunks_fn`` give buffer sizes (both
    default to ``chunk_factor`` chunks).
    """

    name = "custom"

    def __init__(self, num_ranks: int, postcondition_fn,
                 input_chunks_fn=None, output_chunks_fn=None,
                 chunk_factor: int = 1, in_place: bool = False,
                 name: Optional[str] = None, reduce_op: str = "sum"):
        super().__init__(num_ranks, chunk_factor, in_place, reduce_op)
        self._postcondition_fn = postcondition_fn
        self._input_chunks_fn = input_chunks_fn
        self._output_chunks_fn = output_chunks_fn
        if name:
            self.name = name

    def input_chunks(self, rank: int) -> int:
        if self._input_chunks_fn is not None:
            return self._input_chunks_fn(rank)
        return self.chunk_factor

    def output_chunks(self, rank: int) -> int:
        if self._output_chunks_fn is not None:
            return self._output_chunks_fn(rank)
        return self.chunk_factor

    def postcondition(self, rank: int) -> Dict[int, Chunk]:
        return self._postcondition_fn(rank)
