"""The compiler as a pluggable pass pipeline.

The paper describes a fixed trace→lower→fuse→schedule sequence; GC3
frames the same stages as an optimizing compiler. This module makes
that pipeline a first-class object: each stage is a :class:`Pass` with
a name, an enable predicate over :class:`CompilerOptions`, declared
invariants, and a ``run(state)`` that advances one shared
:class:`CompileState`. ``compile_program`` just builds the default
pipeline and runs it, so alternative pipelines (extra passes, a
different :class:`SchedulerPolicy`, instrumentation between stages)
plug in without touching the driver.

Two debugging facilities ride on the pipeline structure:

* **Per-pass validation** (``validate_each=True``, or the
  ``REPRO_VALIDATE_PASSES`` environment variable): after every pass,
  the invariants that pass declares — program postcondition, chunk
  lineage well-formedness, deadlock-freedom of the IR — are re-checked,
  so a compiler bug surfaces as a
  :class:`~repro.core.errors.PassValidationError` naming the exact pass
  that introduced it rather than as a downstream mystery.
* **Per-pass dumps** (``dump_after=...``): a snapshot of the IR (or the
  instruction DAG, before scheduling) is stored after the named passes,
  feeding ``repro-tools passes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Union

from ..observe.tracer import Tracer
from .collectives import Collective
from .dag import ChunkDAG
from .errors import MscclError, PassValidationError
from .fusion import fuse
from .instructions import InstructionDAG
from .ir import MscclIr
from .lowering import lower
from .passes import ir_stats, prune_redundant_deps, renumber_channels
from .program import MSCCLProgram
from .scheduling import schedule
from .verification import audit_ir, check_postcondition

_VALID_LINEAGE_BUFFERS = frozenset({"input", "output", "scratch"})


@dataclass
class CompileState:
    """Everything the passes share while one program compiles.

    Passes consume and produce the fields progressively: ``lower``
    fills :attr:`idag` from the program's chunk DAG, ``schedule`` fills
    :attr:`ir`, the post-scheduling passes mutate :attr:`ir` in place.
    ``options`` is the :class:`~repro.core.compiler.CompilerOptions`
    driving this compile (typed loosely to avoid a circular import).
    """

    program: MSCCLProgram
    collective: Collective
    options: object
    tracer: Tracer
    idag: Optional[InstructionDAG] = None
    ir: Optional[MscclIr] = None
    # Per-pass snapshots recorded when the pipeline runs with
    # ``dump_after``; keyed by pass name.
    dumps: Dict[str, str] = field(default_factory=dict)

    @property
    def dag(self) -> ChunkDAG:
        return self.program.dag

    def chunk_ops(self) -> int:
        return len(self.program.dag.operations())


# -- invariants ----------------------------------------------------------

def _check_postcondition(state: CompileState) -> None:
    # verify=False is an explicit opt-out (e.g. intentionally partial
    # programs in tests); validation must not re-impose the check.
    if state.options.verify:
        check_postcondition(state.program)


def _iter_lineages(state: CompileState):
    if state.ir is not None:
        for gpu in state.ir.gpus:
            for tb in gpu.threadblocks:
                for instr in tb.instructions:
                    if instr.lineage:
                        yield instr, instr.lineage
    elif state.idag is not None:
        for instr in state.idag.live():
            if instr.lineage:
                yield instr, instr.lineage


def _check_lineage(state: CompileState) -> None:
    """Every recorded origin must name a real (rank, buffer, index)."""
    num_ranks = state.program.num_ranks
    for instr, lineage in _iter_lineages(state):
        for origin in lineage:
            rank, buffer_name, index = origin
            if not 0 <= rank < num_ranks:
                raise MscclError(
                    f"{instr!r} carries lineage origin {origin} with "
                    f"rank outside [0, {num_ranks})"
                )
            if buffer_name not in _VALID_LINEAGE_BUFFERS:
                raise MscclError(
                    f"{instr!r} carries lineage origin {origin} with "
                    f"unknown buffer {buffer_name!r}"
                )
            if index < 0:
                raise MscclError(
                    f"{instr!r} carries lineage origin {origin} with "
                    "negative index"
                )


def _check_deadlock(state: CompileState) -> None:
    if state.ir is not None and state.options.audit:
        audit_ir(state.ir, num_slots=state.options.num_slots)


#: Named invariant checkers a :class:`Pass` may declare. Each receives
#: the state and raises :class:`~repro.core.errors.MscclError` (or a
#: subclass) on violation; checkers skip artifacts that do not exist
#: yet, so the same names work at every pipeline position.
INVARIANTS: Dict[str, Callable[[CompileState], None]] = {
    "postcondition": _check_postcondition,
    "lineage": _check_lineage,
    "deadlock_audit": _check_deadlock,
}

_IR_INVARIANTS = ("postcondition", "lineage", "deadlock_audit")


# -- the Pass protocol ---------------------------------------------------

class Pass:
    """One pipeline stage.

    Subclasses set :attr:`name` (unique within a pipeline; also the
    span name in the compile trace) and :attr:`invariants` (names into
    :data:`INVARIANTS`, re-checked after this pass when the pipeline
    validates), override :meth:`enabled` when the pass is gated by a
    :class:`~repro.core.compiler.CompilerOptions` knob, and implement
    :meth:`run`, which mutates the state in place.
    """

    name: str = "pass"
    invariants: tuple = ()

    def enabled(self, options) -> bool:
        return True

    def run(self, state: CompileState) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class VerifyPass(Pass):
    """Postcondition check of the traced program (pre-hardware)."""

    name = "verify"
    invariants = ("postcondition",)

    def enabled(self, options) -> bool:
        return options.verify

    def run(self, state: CompileState) -> None:
        with state.tracer.span("verify", cat="compiler",
                               chunk_ops=state.chunk_ops()):
            check_postcondition(state.program)


class LowerPass(Pass):
    """Chunk DAG → Instruction DAG (instance expansion, exact deps)."""

    name = "lower"
    invariants = ("postcondition", "lineage")

    def run(self, state: CompileState) -> None:
        with state.tracer.span("lower", cat="compiler",
                               chunk_ops_in=state.chunk_ops()) as span:
            state.idag = lower(state.program.dag,
                               instances=state.program.instances)
            span.args["instructions_out"] = len(state.idag.live())


class FusePass(Pass):
    """Peephole fusion of receives with dependent sends."""

    name = "fuse"
    invariants = ("postcondition", "lineage")

    def enabled(self, options) -> bool:
        return options.instr_fusion

    def run(self, state: CompileState) -> None:
        with state.tracer.span("fuse", cat="compiler",
                               nodes_in=len(state.idag.live())) as span:
            fuse(state.idag)
            span.args["nodes_out"] = len(state.idag.live())


class SchedulerPolicy:
    """The scheduling seam: Instruction DAG → MSCCL-IR.

    The default policy wraps :func:`repro.core.scheduling.schedule`;
    alternative policies (different thread-block packing, different
    priority functions) subclass this and land in
    ``CompilerOptions.scheduler``. :attr:`policy_key` participates in
    the compile-cache key, so two compiles of the same program under
    different policies never alias.
    """

    policy_key: str = "default"

    def schedule(self, state: CompileState) -> MscclIr:
        raise NotImplementedError


class DefaultSchedulerPolicy(SchedulerPolicy):
    """Channel assignment + topological thread-block packing (§5)."""

    policy_key = "default"

    def schedule(self, state: CompileState) -> MscclIr:
        program = state.program
        collective = state.collective

        def input_chunks(rank: int) -> int:
            if collective.in_place:
                return 0  # the input aliases the output buffer
            return collective.input_chunks(rank)

        return schedule(
            state.idag,
            name=program.name,
            collective_name=collective.name,
            protocol=program.protocol,
            num_ranks=program.num_ranks,
            in_place=collective.in_place,
            input_chunks=input_chunks,
            output_chunks=collective.output_chunks,
            scratch_chunks=program.scratch_chunks,
            max_threadblocks=state.options.max_threadblocks,
            tracer=state.tracer,
        )


class SchedulePass(Pass):
    """Instruction DAG → MSCCL-IR via the configured SchedulerPolicy."""

    name = "schedule"
    invariants = _IR_INVARIANTS

    def run(self, state: CompileState) -> None:
        with state.tracer.span("schedule", cat="compiler",
                               nodes_in=len(state.idag.live())) as span:
            policy = state.options.scheduler or DefaultSchedulerPolicy()
            state.ir = policy.schedule(state)
            span.args["instructions_out"] = state.ir.instruction_count()
            span.args["threadblocks"] = state.ir.threadblock_count()
            span.args["channels"] = state.ir.channels_used()


class PruneDepsPass(Pass):
    """Transitive reduction of cross-thread-block dep entries."""

    name = "prune_redundant_deps"
    invariants = _IR_INVARIANTS

    def enabled(self, options) -> bool:
        return options.optimize

    def run(self, state: CompileState) -> None:
        before = ir_stats(state.ir)["dep_entries"]
        with state.tracer.span("prune_redundant_deps", cat="compiler",
                               dep_entries_in=before) as span:
            prune_redundant_deps(state.ir)
            span.args["dep_entries_out"] = \
                ir_stats(state.ir)["dep_entries"]


class RenumberChannelsPass(Pass):
    """Compact channel ids to a dense 0..n-1 range."""

    name = "renumber_channels"
    invariants = _IR_INVARIANTS

    def enabled(self, options) -> bool:
        return options.optimize

    def run(self, state: CompileState) -> None:
        before = ir_stats(state.ir)["channels"]
        with state.tracer.span("renumber_channels", cat="compiler",
                               channels_in=before) as span:
            renumber_channels(state.ir)
            span.args["channels_out"] = ir_stats(state.ir)["channels"]


class AuditPass(Pass):
    """Static deadlock-freedom audit of the scheduled IR."""

    name = "audit"
    invariants = _IR_INVARIANTS

    def enabled(self, options) -> bool:
        return options.audit

    def run(self, state: CompileState) -> None:
        with state.tracer.span(
                "audit", cat="compiler",
                instructions=state.ir.instruction_count(),
                num_slots=state.options.num_slots):
            audit_ir(state.ir, num_slots=state.options.num_slots)


# -- the pipeline --------------------------------------------------------

DumpSpec = Union[bool, str, Iterable[str], None]


class PassPipeline:
    """An ordered list of passes executed over one CompileState.

    The list is mutable through :meth:`insert_before` /
    :meth:`insert_after` / :meth:`replace` / :meth:`remove`, so callers
    can build variant pipelines (an extra instrumentation pass, a
    deliberately broken pass in tests, a pass dropped for an ablation)
    without re-implementing the driver.
    """

    def __init__(self, passes: Iterable[Pass]):
        self.passes: List[Pass] = list(passes)
        names = [p.name for p in self.passes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pass names in pipeline: {names}")

    # -- composition -----------------------------------------------------
    def names(self) -> List[str]:
        return [p.name for p in self.passes]

    def _index(self, name: str) -> int:
        for index, p in enumerate(self.passes):
            if p.name == name:
                return index
        raise KeyError(f"no pass named {name!r} in pipeline "
                       f"{self.names()}")

    def get(self, name: str) -> Pass:
        return self.passes[self._index(name)]

    def insert_before(self, name: str, new: Pass) -> "PassPipeline":
        self.passes.insert(self._index(name), new)
        return self

    def insert_after(self, name: str, new: Pass) -> "PassPipeline":
        self.passes.insert(self._index(name) + 1, new)
        return self

    def replace(self, name: str, new: Pass) -> "PassPipeline":
        self.passes[self._index(name)] = new
        return self

    def remove(self, name: str) -> "PassPipeline":
        del self.passes[self._index(name)]
        return self

    # -- execution -------------------------------------------------------
    def run(self, state: CompileState, *, validate_each: bool = False,
            dump_after: DumpSpec = None) -> CompileState:
        """Execute every enabled pass in order; returns the state.

        ``validate_each`` re-checks each pass's declared invariants
        right after it runs (see :data:`INVARIANTS`); ``dump_after``
        is ``True``/``"all"`` or an iterable of pass names after which
        an IR / instruction-DAG snapshot lands in ``state.dumps``.
        """
        dump_names = self._dump_names(dump_after)
        for p in self.passes:
            if not p.enabled(state.options):
                continue
            p.run(state)
            if dump_names is not None and (
                    dump_names == "all" or p.name in dump_names):
                state.dumps[p.name] = _snapshot(state)
            if validate_each:
                self._validate(p, state)
        return state

    @staticmethod
    def _dump_names(dump_after: DumpSpec):
        if dump_after is None or dump_after is False:
            return None
        if dump_after is True or dump_after == "all":
            return "all"
        return frozenset(dump_after)

    @staticmethod
    def _validate(p: Pass, state: CompileState) -> None:
        for invariant in p.invariants:
            checker = INVARIANTS.get(invariant)
            if checker is None:
                raise PassValidationError(
                    p.name, invariant,
                    KeyError(f"unknown invariant {invariant!r}"),
                )
            try:
                checker(state)
            except MscclError as error:
                raise PassValidationError(
                    p.name, invariant, error
                ) from error


def _snapshot(state: CompileState) -> str:
    """A human-diffable dump of the pipeline's current artifact."""
    if state.ir is not None:
        return state.ir.to_xml()
    if state.idag is not None:
        return "\n".join(repr(i) for i in state.idag.live())
    return "\n".join(repr(op) for op in state.program.dag.ops)


def default_pipeline() -> PassPipeline:
    """The paper's trace→lower→fuse→schedule(→optimize)→audit order."""
    return PassPipeline([
        VerifyPass(),
        LowerPass(),
        FusePass(),
        SchedulePass(),
        PruneDepsPass(),
        RenumberChannelsPass(),
        AuditPass(),
    ])
