"""Correctness checks: postconditions and deadlock-freedom audits.

Two independent layers:

* :func:`check_postcondition` validates the *traced* program against its
  collective's postcondition — the paper's "automatically check whether
  an implementation properly implements a collective before running on
  hardware" (section 3.2).

* :func:`audit_ir` validates a *scheduled* IR: communication edges must
  pair up send-for-send across connections, and the dependence graph —
  thread-block program order, cross-thread-block deps, communication
  edges, and FIFO back-pressure edges for ``num_slots`` buffer slots —
  must be acyclic. Acyclicity is exactly deadlock-freedom for the
  runtime's blocking semantics (section 5.2 / 6.1).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .chunk import ReductionChunk
from .errors import DeadlockError, VerificationError
from .instructions import Op
from .ir import MscclIr


def check_postcondition(program) -> None:
    """Raise VerificationError unless the trace satisfies the collective."""
    collective = program.collective
    failures: List[str] = []
    for rank in range(collective.num_ranks):
        expected = collective.postcondition(rank)
        actual = program.output_state(rank)
        for index, want in sorted(expected.items()):
            got = actual.get(index)
            if got is None:
                failures.append(
                    f"rank {rank} output[{index}]: expected {want!r}, "
                    "but the location is uninitialized"
                )
            elif not _chunks_equal(got, want):
                failures.append(
                    f"rank {rank} output[{index}]: expected {want!r}, "
                    f"got {got!r}"
                )
    if failures:
        preview = "\n  ".join(failures[:10])
        more = f"\n  ... and {len(failures) - 10} more" \
            if len(failures) > 10 else ""
        raise VerificationError(
            f"program '{program.name}' does not implement "
            f"{collective.name}:\n  {preview}{more}"
        )


def _chunks_equal(got, want) -> bool:
    if isinstance(want, ReductionChunk) != isinstance(got, ReductionChunk):
        return False
    return got == want


#: One happens-before edge of the scheduled IR: (src, dst, kind) over
#: (rank, tb, step) nodes. Kinds: "program" (thread-block order), "dep"
#: (cross-thread-block dependency), "comm" (send -> matching receive),
#: "slot" (FIFO back-pressure: receive k frees the slot send k+slots
#: reuses).
DependenceEdge = Tuple[Tuple[int, int, int], Tuple[int, int, int], str]


def dependence_edges(ir: MscclIr,
                     num_slots: int = 8) -> List[DependenceEdge]:
    """The full happens-before edge list of a scheduled IR.

    This is the graph the deadlock audit checks for cycles, exported so
    other consumers (the conformance harness's race scan, tooling) can
    reason about the same ordering semantics the runtime enforces.
    Raises :class:`DeadlockError` on malformed connections (unmatched
    or invalidly tagged sends/receives).
    """
    if num_slots < 1:
        raise ValueError("num_slots must be >= 1")
    sends, recvs = _collect_connection_traffic(ir)

    recvs_by_seq = {}
    for conn in set(sends) | set(recvs):
        n_send = len(sends.get(conn, ()))
        tagged = recvs.get(conn, ())
        if n_send != len(tagged):
            src, dst, ch = conn
            raise DeadlockError(
                f"connection {src}->{dst} ch{ch} has {n_send} sends but "
                f"{len(tagged)} receives"
            )
        by_seq = {}
        for node, seq in tagged:
            if seq is None or not 0 <= seq < n_send or seq in by_seq:
                src, dst, ch = conn
                raise DeadlockError(
                    f"connection {src}->{dst} ch{ch} has an invalid or "
                    f"duplicate receive sequence tag {seq}"
                )
            by_seq[seq] = node
        recvs_by_seq[conn] = [by_seq[k] for k in range(n_send)]

    edges: List[DependenceEdge] = []
    for gpu in ir.gpus:
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                node = (gpu.rank, tb.tb_id, instr.step)
                if instr.step > 0:
                    edges.append(
                        ((gpu.rank, tb.tb_id, instr.step - 1), node,
                         "program")
                    )
                for dep_tb, dep_step in instr.depends:
                    edges.append(
                        ((gpu.rank, dep_tb, dep_step), node, "dep")
                    )

    for conn, send_nodes in sends.items():
        recv_nodes = recvs_by_seq[conn]
        for k, (send_node, recv_node) in enumerate(
                zip(send_nodes, recv_nodes)):
            edges.append((send_node, recv_node, "comm"))
            if k + num_slots < len(send_nodes):
                # FIFO back-pressure: send k+s needs slot k freed.
                edges.append((recv_node, send_nodes[k + num_slots],
                              "slot"))
    return edges


def _sent_count(instr) -> int:
    """Elements an instruction pushes onto its send connection.

    ``rcs``/``rrcs`` forward the value they just stored at ``dst``;
    plain sends and ``rrs`` forward (a combination with) ``src``.
    """
    span = instr.dst if instr.op in (Op.RECV_COPY_SEND,
                                     Op.RECV_REDUCE_COPY_SEND) else instr.src
    return span[2] if span is not None else instr.count


def _received_count(instr) -> int:
    """Elements an instruction expects from its recv connection.

    Every receiving op combines or stores the incoming message at
    ``dst`` except ``rrs``, which reduces it into ``src`` and forwards.
    """
    span = instr.src if instr.op is Op.RECV_REDUCE_SEND else instr.dst
    return span[2] if span is not None else instr.count


def check_payload_counts(ir: MscclIr) -> None:
    """Raise unless every matched send/recv pair moves the same count.

    With variable-size chunks (alltoallv, imported or hand-built IRs)
    nothing structurally forces the sender's span to be as long as the
    receiver's; a mismatch would corrupt data silently at the data
    level, so the audit pins it to the exact connection and sequence
    number instead.
    """
    sends: Dict[Tuple[int, int, int], List] = {}
    recvs: Dict[Tuple[int, int, int], Dict[int, Tuple]] = {}
    for gpu in ir.gpus:
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                node = (gpu.rank, tb.tb_id, instr.step)
                if instr.op in (Op.SEND, Op.RECV_COPY_SEND,
                                Op.RECV_REDUCE_COPY_SEND,
                                Op.RECV_REDUCE_SEND):
                    conn = (gpu.rank, tb.send_peer, tb.channel)
                    sends.setdefault(conn, []).append(
                        (node, _sent_count(instr)))
                if instr.op in (Op.RECV, Op.RECV_REDUCE_COPY,
                                Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND,
                                Op.RECV_REDUCE_SEND):
                    conn = (tb.recv_peer, gpu.rank, tb.channel)
                    if instr.recv_seq is not None:
                        recvs.setdefault(conn, {})[instr.recv_seq] = (
                            node, _received_count(instr))
    mismatches = []
    for conn, send_list in sends.items():
        for seq, (send_node, sent) in enumerate(send_list):
            recv = recvs.get(conn, {}).get(seq)
            if recv is not None and recv[1] != sent:
                src, dst, ch = conn
                mismatches.append(
                    f"connection {src}->{dst} ch{ch} message {seq}: "
                    f"send at (rank,tb,step)={send_node} carries {sent} "
                    f"chunk(s) but recv at {recv[0]} expects {recv[1]}"
                )
    if mismatches:
        preview = "\n  ".join(mismatches[:10])
        raise VerificationError(
            f"IR '{ir.name}' has send/recv payload count mismatches:\n  "
            + preview
        )


def audit_ir(ir: MscclIr, num_slots: int = 8) -> None:
    """Raise on malformed connections or a potential deadlock cycle."""
    check_payload_counts(ir)
    edges = dependence_edges(ir, num_slots)

    Node = Tuple[int, int, int]
    adjacency: Dict[Node, List[Node]] = {}
    indegree: Dict[Node, int] = {}
    for gpu in ir.gpus:
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                indegree.setdefault((gpu.rank, tb.tb_id, instr.step), 0)
    for src, dst, _kind in edges:
        adjacency.setdefault(src, []).append(dst)
        indegree[dst] = indegree.get(dst, 0) + 1
        indegree.setdefault(src, 0)

    # Kahn's algorithm; leftovers mean a cycle (potential deadlock).
    ready = [node for node, deg in indegree.items() if deg == 0]
    visited = 0
    while ready:
        node = ready.pop()
        visited += 1
        for succ in adjacency.get(node, ()):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if visited != len(indegree):
        stuck = [n for n, deg in indegree.items() if deg > 0]
        raise DeadlockError(
            f"IR '{ir.name}' has a dependence cycle with {num_slots} "
            f"FIFO slots; {len(stuck)} instructions are involved, e.g. "
            f"{sorted(stuck)[:5]}"
        )


def _collect_connection_traffic(ir: MscclIr):
    """Per-connection ordered send and recv (rank, tb, step) node lists."""
    sends: Dict[Tuple[int, int, int], List[Tuple[int, int, int]]] = {}
    recvs: Dict[Tuple[int, int, int], List[Tuple[int, int, int]]] = {}
    for gpu in ir.gpus:
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                node = (gpu.rank, tb.tb_id, instr.step)
                if instr.op in (Op.SEND, Op.RECV_COPY_SEND,
                                Op.RECV_REDUCE_COPY_SEND,
                                Op.RECV_REDUCE_SEND):
                    if tb.send_peer is None:
                        raise DeadlockError(
                            f"rank {gpu.rank} tb {tb.tb_id} sends but has "
                            "no send peer"
                        )
                    conn = (gpu.rank, tb.send_peer, tb.channel)
                    sends.setdefault(conn, []).append(node)
                if instr.op in (Op.RECV, Op.RECV_REDUCE_COPY,
                                Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND,
                                Op.RECV_REDUCE_SEND):
                    if tb.recv_peer is None:
                        raise DeadlockError(
                            f"rank {gpu.rank} tb {tb.tb_id} receives but "
                            "has no recv peer"
                        )
                    conn = (tb.recv_peer, gpu.rank, tb.channel)
                    recvs.setdefault(conn, []).append(
                        (node, instr.recv_seq)
                    )
    return sends, recvs
