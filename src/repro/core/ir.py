"""MSCCL-IR: the executable form the runtime interprets (paper Fig. 4).

The IR is a tree: a program contains one ``GpuProgram`` per rank, each a
list of ``ThreadBlock``s. A thread block has at most one send peer and
one receive peer, a channel identifying its connections, and a sequence
of ``IrInstruction``s executed in order. Cross-thread-block ordering is
expressed with ``depends`` entries naming (thread block, step) pairs
that must complete first.

The IR serializes to JSON (lossless) and to an msccl-tools-style XML
for eyeballing against the reference implementation's format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple
from xml.etree import ElementTree

from .buffers import Buffer
from .instructions import Op

LocalSpan = Tuple[Buffer, int, int]


@dataclass
class IrInstruction:
    """One interpreter step (paper Figure 5's Instruction struct).

    ``recv_seq`` tags receiving instructions with the index of the
    message they consume on their connection (per kernel iteration):
    the runtime's FIFO slots are indexed, so a receive matches its
    specific slot rather than whatever arrives first.
    """

    step: int
    op: Op
    src: Optional[LocalSpan] = None
    dst: Optional[LocalSpan] = None
    count: int = 1
    frac_lo: Fraction = Fraction(0)
    frac_hi: Fraction = Fraction(1)
    depends: List[Tuple[int, int]] = field(default_factory=list)
    has_dep: bool = False  # some other thread block waits on this step
    recv_seq: Optional[int] = None
    # Chunk lineage: origin chunks (rank, buffer name, index) whose data
    # this instruction moves. JSON serializes it as lists; XML as a
    # compact extension attribute ("rank:buffer:index,..." per step).
    lineage: Optional[Tuple[Tuple[int, str, int], ...]] = None

    def to_dict(self) -> dict:
        def span(s):
            return None if s is None else [s[0].value, s[1], s[2]]

        return {
            "step": self.step,
            "op": self.op.value,
            "src": span(self.src),
            "dst": span(self.dst),
            "count": self.count,
            "frac": [
                [self.frac_lo.numerator, self.frac_lo.denominator],
                [self.frac_hi.numerator, self.frac_hi.denominator],
            ],
            "depends": list(self.depends),
            "has_dep": self.has_dep,
            "recv_seq": self.recv_seq,
            "lineage": (None if self.lineage is None
                        else [list(origin) for origin in self.lineage]),
        }


@dataclass
class ThreadBlock:
    """A sequentially-executed instruction list with two connections."""

    tb_id: int
    send_peer: Optional[int] = None
    recv_peer: Optional[int] = None
    channel: int = 0
    instructions: List[IrInstruction] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "id": self.tb_id,
            "send_peer": self.send_peer,
            "recv_peer": self.recv_peer,
            "channel": self.channel,
            "instructions": [i.to_dict() for i in self.instructions],
        }


@dataclass
class GpuProgram:
    """All thread blocks of one rank plus its buffer sizes (in chunks)."""

    rank: int
    input_chunks: int
    output_chunks: int
    scratch_chunks: int
    threadblocks: List[ThreadBlock] = field(default_factory=list)

    def buffer_chunks(self, buffer: Buffer) -> int:
        if buffer is Buffer.INPUT:
            return self.input_chunks
        if buffer is Buffer.OUTPUT:
            return self.output_chunks
        return self.scratch_chunks

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "input_chunks": self.input_chunks,
            "output_chunks": self.output_chunks,
            "scratch_chunks": self.scratch_chunks,
            "threadblocks": [tb.to_dict() for tb in self.threadblocks],
        }


@dataclass
class MscclIr:
    """The complete executable program."""

    name: str
    collective: str
    protocol: str
    num_ranks: int
    in_place: bool
    gpus: List[GpuProgram] = field(default_factory=list)

    # -- queries -----------------------------------------------------------
    def threadblock_count(self) -> int:
        return sum(len(g.threadblocks) for g in self.gpus)

    def instruction_count(self) -> int:
        return sum(
            len(tb.instructions)
            for g in self.gpus
            for tb in g.threadblocks
        )

    def max_threadblocks_per_gpu(self) -> int:
        return max((len(g.threadblocks) for g in self.gpus), default=0)

    def channels_used(self) -> int:
        channels = {
            tb.channel for g in self.gpus for tb in g.threadblocks
        }
        return len(channels)

    def connections(self) -> List[Tuple[int, int, int]]:
        """All (src_rank, dst_rank, channel) connections in the program."""
        conns = set()
        for gpu in self.gpus:
            for tb in gpu.threadblocks:
                if tb.send_peer is not None:
                    conns.add((gpu.rank, tb.send_peer, tb.channel))
        return sorted(conns)

    def op_histogram(self) -> Dict[str, int]:
        """Opcode -> occurrence count, for tests and diagnostics."""
        histogram: Dict[str, int] = {}
        for gpu in self.gpus:
            for tb in gpu.threadblocks:
                for instr in tb.instructions:
                    histogram[instr.op.value] = (
                        histogram.get(instr.op.value, 0) + 1
                    )
        return histogram

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "collective": self.collective,
            "protocol": self.protocol,
            "num_ranks": self.num_ranks,
            "in_place": self.in_place,
            "gpus": [g.to_dict() for g in self.gpus],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_json(text: str) -> "MscclIr":
        return MscclIr.from_dict(json.loads(text))

    @staticmethod
    def from_dict(data: dict) -> "MscclIr":
        ir = MscclIr(
            name=data["name"],
            collective=data["collective"],
            protocol=data["protocol"],
            num_ranks=data["num_ranks"],
            in_place=data["in_place"],
        )
        for gd in data["gpus"]:
            gpu = GpuProgram(
                rank=gd["rank"],
                input_chunks=gd["input_chunks"],
                output_chunks=gd["output_chunks"],
                scratch_chunks=gd["scratch_chunks"],
            )
            for td in gd["threadblocks"]:
                tb = ThreadBlock(
                    tb_id=td["id"],
                    send_peer=td["send_peer"],
                    recv_peer=td["recv_peer"],
                    channel=td["channel"],
                )
                for idx in td["instructions"]:
                    def span(s):
                        if s is None:
                            return None
                        return (Buffer(s[0]), s[1], s[2])

                    (lo_n, lo_d), (hi_n, hi_d) = idx["frac"]
                    tb.instructions.append(IrInstruction(
                        step=idx["step"],
                        op=Op(idx["op"]),
                        src=span(idx["src"]),
                        dst=span(idx["dst"]),
                        count=idx["count"],
                        frac_lo=Fraction(lo_n, lo_d),
                        frac_hi=Fraction(hi_n, hi_d),
                        depends=[tuple(d) for d in idx["depends"]],
                        has_dep=idx["has_dep"],
                        recv_seq=idx.get("recv_seq"),
                        lineage=(None if idx.get("lineage") is None
                                 else tuple(tuple(o)
                                            for o in idx["lineage"])),
                    ))
                gpu.threadblocks.append(tb)
            ir.gpus.append(gpu)
        return ir

    @staticmethod
    def from_xml(text: str) -> "MscclIr":
        """Parse MSCCL XML: our own dialect or the reference one.

        Delegates to :func:`repro.core.interop.import_xml`, which also
        accepts the reference-dialect spellings (``i``/``o``/``s``
        buffer names, ``nop``/``copy``/``send`` op aliases, scalar
        ``depid="-1"``) and raises :class:`~repro.core.errors.
        XmlImportError` naming the offending element and attribute on
        malformed input.
        """
        from .interop import import_xml
        return import_xml(text)

    def to_xml(self) -> str:
        """msccl-tools-style XML rendering (for human inspection)."""
        root = ElementTree.Element("algo", {
            "name": self.name,
            "proto": self.protocol,
            "nchannels": str(self.channels_used()),
            "ngpus": str(self.num_ranks),
            "coll": self.collective,
            "inplace": "1" if self.in_place else "0",
        })
        for gpu in self.gpus:
            gpu_el = ElementTree.SubElement(root, "gpu", {
                "id": str(gpu.rank),
                "i_chunks": str(gpu.input_chunks),
                "o_chunks": str(gpu.output_chunks),
                "s_chunks": str(gpu.scratch_chunks),
            })
            for tb in gpu.threadblocks:
                tb_el = ElementTree.SubElement(gpu_el, "tb", {
                    "id": str(tb.tb_id),
                    "send": str(-1 if tb.send_peer is None else tb.send_peer),
                    "recv": str(-1 if tb.recv_peer is None else tb.recv_peer),
                    "chan": str(tb.channel),
                })
                for instr in tb.instructions:
                    attrs = {
                        "step": str(instr.step),
                        "type": instr.op.value,
                        "cnt": str(instr.count),
                    }
                    # Span counts usually equal the instruction count;
                    # when they differ (variable-size chunks, e.g.
                    # alltoallv) emit explicit overrides so round-trips
                    # are lossless instead of silently conflating them.
                    if instr.src is not None:
                        attrs["srcbuf"] = instr.src[0].value
                        attrs["srcoff"] = str(instr.src[1])
                        if instr.src[2] != instr.count:
                            attrs["scnt"] = str(instr.src[2])
                    if instr.dst is not None:
                        attrs["dstbuf"] = instr.dst[0].value
                        attrs["dstoff"] = str(instr.dst[1])
                        if instr.dst[2] != instr.count:
                            attrs["dcnt"] = str(instr.dst[2])
                    if (instr.frac_lo, instr.frac_hi) != (
                            Fraction(0), Fraction(1)):
                        attrs["flo"] = str(instr.frac_lo)
                        attrs["fhi"] = str(instr.frac_hi)
                    if instr.depends:
                        attrs["depid"] = ",".join(
                            str(tb_id) for tb_id, _ in instr.depends
                        )
                        attrs["deps"] = ",".join(
                            str(step) for _, step in instr.depends
                        )
                    if instr.has_dep:
                        attrs["hasdep"] = "1"
                    if instr.recv_seq is not None:
                        attrs["seq"] = str(instr.recv_seq)
                    if instr.lineage:
                        attrs["lineage"] = ",".join(
                            f"{rank}:{buf}:{index}"
                            for rank, buf, index in instr.lineage
                        )
                    ElementTree.SubElement(tb_el, "step", attrs)
        ElementTree.indent(root)
        return ElementTree.tostring(root, encoding="unicode")
