"""The compiler driver: trace -> lower -> fuse -> schedule -> audit.

:func:`compile_program` is the one entry point users need: it takes a
traced :class:`~repro.core.program.MSCCLProgram` and produces verified,
deadlock-free MSCCL-IR ready for the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .buffers import Buffer
from .fusion import fuse
from .ir import MscclIr
from .lowering import lower
from .program import MSCCLProgram
from .scheduling import schedule
from .verification import audit_ir, check_postcondition


@dataclass
class CompilerOptions:
    """Knobs controlling compilation.

    ``instr_fusion`` toggles the peephole fusion pass (ablation studies
    turn it off). ``max_threadblocks`` enforces the cooperative-launch
    SM limit. ``num_slots`` is the FIFO depth assumed by the deadlock
    audit (the runtime's protocol must provide at least this many).
    """

    instr_fusion: bool = True
    verify: bool = True
    audit: bool = True
    # Run the post-scheduling IR passes (dep pruning, channel
    # renumbering); off by default so the raw scheduler output stays
    # inspectable.
    optimize: bool = False
    max_threadblocks: Optional[int] = None
    num_slots: int = 8


def compile_program(program: MSCCLProgram,
                    options: Optional[CompilerOptions] = None) -> MscclIr:
    """Compile a traced program into MSCCL-IR."""
    options = options or CompilerOptions()
    if options.verify:
        check_postcondition(program)

    idag = lower(program.dag, instances=program.instances)
    if options.instr_fusion:
        fuse(idag)

    collective = program.collective

    def input_chunks(rank: int) -> int:
        if collective.in_place:
            return 0  # the input aliases the output buffer
        return collective.input_chunks(rank)

    ir = schedule(
        idag,
        name=program.name,
        collective_name=collective.name,
        protocol=program.protocol,
        num_ranks=program.num_ranks,
        in_place=collective.in_place,
        input_chunks=input_chunks,
        output_chunks=collective.output_chunks,
        scratch_chunks=program.scratch_chunks,
        max_threadblocks=options.max_threadblocks,
    )
    if options.optimize:
        from .passes import optimize_ir

        optimize_ir(ir)
    if options.audit:
        audit_ir(ir, num_slots=options.num_slots)
    return ir


def scratch_buffer_chunks(ir: MscclIr, rank: int) -> int:
    """Deduced scratch size for a rank (highest scratch index + 1)."""
    gpu = ir.gpus[rank]
    highest = gpu.scratch_chunks
    for tb in gpu.threadblocks:
        for instr in tb.instructions:
            for span in (instr.src, instr.dst):
                if span is not None and span[0] is Buffer.SCRATCH:
                    highest = max(highest, span[1] + span[2])
    return highest
