"""The compiler driver over the pass pipeline.

:func:`compile_program` is the one entry point users need: it takes a
traced :class:`~repro.core.program.MSCCLProgram` and produces a
:class:`CompiledAlgorithm` — a handle bundling the verified,
deadlock-free MSCCL-IR with the collective it implements, the options
it was built with, and a per-pass span summary (durations plus
node/instruction counts before and after every pass).

Since the pipeline refactor the driver owns almost nothing: it builds a
:class:`~repro.core.pipeline.CompileState`, consults the optional
:class:`~repro.core.cache.CompileCache`, and hands execution to a
:class:`~repro.core.pipeline.PassPipeline`
(verify→lower→fuse→schedule→optimize passes→audit by default; supply
``CompilerOptions.pipeline`` to run a variant).

The handle delegates attribute access to the underlying
:class:`~repro.core.ir.MscclIr`, so code written against the old
"returns an IR" contract keeps working unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..observe.tracer import Span, Tracer
from .buffers import Buffer
from .cache import CompileCache
from .collectives import Collective
from .ir import MscclIr
from .pipeline import (CompileState, DumpSpec, PassPipeline,
                       SchedulerPolicy, default_pipeline)
from .program import MSCCLProgram

VALIDATE_ENV = "REPRO_VALIDATE_PASSES"


@dataclass
class CompilerOptions:
    """Knobs controlling compilation.

    ``instr_fusion`` toggles the peephole fusion pass (ablation studies
    turn it off). ``max_threadblocks`` enforces the cooperative-launch
    SM limit. ``num_slots`` is the FIFO depth assumed by the deadlock
    audit (the runtime's protocol must provide at least this many).
    ``trace`` is an optional :class:`~repro.observe.Tracer` to record
    the per-pass spans into — pass the same tracer to
    :class:`~repro.runtime.simulator.SimConfig` for an end-to-end
    Chrome trace. When omitted, a private tracer is created so the
    compile-time span summary is always available on the result.

    Pipeline knobs: ``scheduler`` swaps the
    :class:`~repro.core.pipeline.SchedulerPolicy` (default: the paper's
    channel/thread-block assignment); ``pipeline`` replaces the whole
    pass list; ``validate_each`` re-checks each pass's invariants after
    it runs (``None`` reads the ``REPRO_VALIDATE_PASSES`` environment
    variable); ``dump_after`` records per-pass IR snapshots onto the
    result's ``dumps`` (pass names, or ``"all"``); ``cache`` consults a
    :class:`~repro.core.cache.CompileCache` before running any pass.
    """

    instr_fusion: bool = True
    verify: bool = True
    audit: bool = True
    # Run the post-scheduling IR passes (dep pruning, channel
    # renumbering); off by default so the raw scheduler output stays
    # inspectable.
    optimize: bool = False
    max_threadblocks: Optional[int] = None
    num_slots: int = 8
    trace: Optional[Tracer] = field(default=None, repr=False)
    scheduler: Optional[SchedulerPolicy] = field(default=None, repr=False)
    pipeline: Optional[PassPipeline] = field(default=None, repr=False)
    validate_each: Optional[bool] = None
    dump_after: DumpSpec = None
    cache: Optional[CompileCache] = field(default=None, repr=False)


class CompiledAlgorithm:
    """Everything the runtime needs about one compiled program.

    Bundles the :class:`MscclIr`, the :class:`Collective` it implements,
    the :class:`CompilerOptions` used, and the compile-time trace, so
    registration is one object instead of an error-prone
    ``(ir, collective)`` pair::

        algo = compile_program(program)
        communicator.register(algo, max_bytes=2 * MiB)

    Unknown attributes delegate to the IR (``algo.num_ranks``,
    ``algo.to_xml()``, ...), keeping the old ``compile_program`` return
    contract intact.
    """

    __slots__ = ("ir", "collective", "options", "tracer", "_span",
                 "dumps", "cache_hit")

    def __init__(self, ir: MscclIr, collective: Collective,
                 options: CompilerOptions, tracer: Tracer,
                 span: Span, dumps: Optional[Dict[str, str]] = None,
                 cache_hit: bool = False):
        self.ir = ir
        self.collective = collective
        self.options = options
        self.tracer = tracer
        self._span = span  # this compile's root span within the tracer
        # Per-pass snapshots when compiled with dump_after (see
        # repro-tools passes); empty otherwise.
        self.dumps = dumps or {}
        # True when this result was served from a CompileCache.
        self.cache_hit = cache_hit

    def sizing_chunks(self) -> int:
        """Chunks a call buffer divides into (for byte -> chunk sizing)."""
        return self.collective.sizing_chunks()

    @property
    def compile_span(self) -> Span:
        """The root span of this compile (children are the passes)."""
        return self._span

    @property
    def compile_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-pass durations and counters, e.g.
        ``{"fuse": {"duration_us": 12.3, "nodes_in": 96, ...}, ...}``."""
        summary: Dict[str, Dict[str, float]] = {}
        for child in self._span.children:
            row = {"duration_us": child.duration_us}
            row.update({
                key: value for key, value in child.args.items()
                if isinstance(value, (int, float))
            })
            summary[child.name] = row
        return summary

    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        return getattr(object.__getattribute__(self, "ir"), name)

    def __repr__(self) -> str:
        return (f"CompiledAlgorithm({self.ir.name!r}, "
                f"collective={self.ir.collective!r}, "
                f"ranks={self.ir.num_ranks}, "
                f"instructions={self.ir.instruction_count()})")


def _validate_each(options: CompilerOptions) -> bool:
    if options.validate_each is not None:
        return options.validate_each
    return bool(os.environ.get(VALIDATE_ENV))


def compile_program(program: MSCCLProgram,
                    options: Optional[CompilerOptions] = None
                    ) -> CompiledAlgorithm:
    """Compile a traced program into a :class:`CompiledAlgorithm`."""
    options = options or CompilerOptions()
    tracer = options.trace if options.trace is not None else Tracer()
    collective = program.collective

    cache_key = None
    if options.cache is not None:
        cache_key = options.cache.key_for(program, options)
        entry = options.cache.lookup(cache_key)
        if entry is not None:
            tracer.add_counter("compile_cache.hits", 1)
            if getattr(options.cache, "last_hit_tier", None) == "disk":
                # Served by the persistent tier: another process (or an
                # earlier run of this CLI) paid the compile.
                tracer.add_counter("compile_cache.disk_hits", 1)
            ir = options.cache.materialize(entry)
            with tracer.span("compile", cat="compiler",
                             algorithm=program.name,
                             collective=collective.name,
                             protocol=program.protocol,
                             num_ranks=program.num_ranks,
                             cache="hit") as root:
                root.args["instructions"] = ir.instruction_count()
                root.args["threadblocks"] = ir.threadblock_count()
            return CompiledAlgorithm(ir, entry.collective, options,
                                     tracer, root, cache_hit=True)
        tracer.add_counter("compile_cache.misses", 1)

    pipeline = (options.pipeline if options.pipeline is not None
                else default_pipeline())
    state = CompileState(program=program, collective=collective,
                         options=options, tracer=tracer)

    with tracer.span("compile", cat="compiler",
                     algorithm=program.name,
                     collective=collective.name,
                     protocol=program.protocol,
                     num_ranks=program.num_ranks) as root:
        pipeline.run(state, validate_each=_validate_each(options),
                     dump_after=options.dump_after)
        ir = state.ir
        if ir is None:
            raise RuntimeError(
                f"pipeline {pipeline.names()} finished without "
                "producing an IR (no schedule pass?)"
            )
        root.args["instructions"] = ir.instruction_count()
        root.args["threadblocks"] = ir.threadblock_count()

    if cache_key is not None:
        options.cache.store(cache_key, ir, collective)

    return CompiledAlgorithm(ir, collective, options, tracer, root,
                             dumps=state.dumps)


def scratch_buffer_chunks(ir: MscclIr, rank: int) -> int:
    """Deduced scratch size for a rank (highest scratch index + 1)."""
    gpu = ir.gpus[rank]
    highest = gpu.scratch_chunks
    for tb in gpu.threadblocks:
        for instr in tb.instructions:
            for span in (instr.src, instr.dst):
                if span is not None and span[0] is Buffer.SCRATCH:
                    highest = max(highest, span[1] + span[2])
    return highest
