"""The compiler driver: trace -> lower -> fuse -> schedule -> audit.

:func:`compile_program` is the one entry point users need: it takes a
traced :class:`~repro.core.program.MSCCLProgram` and produces a
:class:`CompiledAlgorithm` — a handle bundling the verified,
deadlock-free MSCCL-IR with the collective it implements, the options
it was built with, and a per-pass span summary (durations plus
node/instruction counts before and after every pass).

The handle delegates attribute access to the underlying
:class:`~repro.core.ir.MscclIr`, so code written against the old
"returns an IR" contract keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..observe.tracer import Span, Tracer
from .buffers import Buffer
from .collectives import Collective
from .fusion import fuse
from .ir import MscclIr
from .lowering import lower
from .program import MSCCLProgram
from .scheduling import schedule
from .verification import audit_ir, check_postcondition


@dataclass
class CompilerOptions:
    """Knobs controlling compilation.

    ``instr_fusion`` toggles the peephole fusion pass (ablation studies
    turn it off). ``max_threadblocks`` enforces the cooperative-launch
    SM limit. ``num_slots`` is the FIFO depth assumed by the deadlock
    audit (the runtime's protocol must provide at least this many).
    ``trace`` is an optional :class:`~repro.observe.Tracer` to record
    the per-pass spans into — pass the same tracer to
    :class:`~repro.runtime.simulator.SimConfig` for an end-to-end
    Chrome trace. When omitted, a private tracer is created so the
    compile-time span summary is always available on the result.
    """

    instr_fusion: bool = True
    verify: bool = True
    audit: bool = True
    # Run the post-scheduling IR passes (dep pruning, channel
    # renumbering); off by default so the raw scheduler output stays
    # inspectable.
    optimize: bool = False
    max_threadblocks: Optional[int] = None
    num_slots: int = 8
    trace: Optional[Tracer] = field(default=None, repr=False)


class CompiledAlgorithm:
    """Everything the runtime needs about one compiled program.

    Bundles the :class:`MscclIr`, the :class:`Collective` it implements,
    the :class:`CompilerOptions` used, and the compile-time trace, so
    registration is one object instead of an error-prone
    ``(ir, collective)`` pair::

        algo = compile_program(program)
        communicator.register(algo, max_bytes=2 * MiB)

    Unknown attributes delegate to the IR (``algo.num_ranks``,
    ``algo.to_xml()``, ...), keeping the old ``compile_program`` return
    contract intact.
    """

    __slots__ = ("ir", "collective", "options", "tracer", "_span")

    def __init__(self, ir: MscclIr, collective: Collective,
                 options: CompilerOptions, tracer: Tracer,
                 span: Span):
        self.ir = ir
        self.collective = collective
        self.options = options
        self.tracer = tracer
        self._span = span  # this compile's root span within the tracer

    def sizing_chunks(self) -> int:
        """Chunks a call buffer divides into (for byte -> chunk sizing)."""
        return self.collective.sizing_chunks()

    @property
    def compile_span(self) -> Span:
        """The root span of this compile (children are the passes)."""
        return self._span

    @property
    def compile_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-pass durations and counters, e.g.
        ``{"fuse": {"duration_us": 12.3, "nodes_in": 96, ...}, ...}``."""
        summary: Dict[str, Dict[str, float]] = {}
        for child in self._span.children:
            row = {"duration_us": child.duration_us}
            row.update({
                key: value for key, value in child.args.items()
                if isinstance(value, (int, float))
            })
            summary[child.name] = row
        return summary

    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        return getattr(object.__getattribute__(self, "ir"), name)

    def __repr__(self) -> str:
        return (f"CompiledAlgorithm({self.ir.name!r}, "
                f"collective={self.ir.collective!r}, "
                f"ranks={self.ir.num_ranks}, "
                f"instructions={self.ir.instruction_count()})")


def compile_program(program: MSCCLProgram,
                    options: Optional[CompilerOptions] = None
                    ) -> CompiledAlgorithm:
    """Compile a traced program into a :class:`CompiledAlgorithm`."""
    options = options or CompilerOptions()
    tracer = options.trace if options.trace is not None else Tracer()
    collective = program.collective
    chunk_ops = len(program.dag.operations())

    with tracer.span("compile", cat="compiler",
                     algorithm=program.name,
                     collective=collective.name,
                     protocol=program.protocol,
                     num_ranks=program.num_ranks) as root:
        if options.verify:
            with tracer.span("verify", cat="compiler",
                             chunk_ops=chunk_ops):
                check_postcondition(program)

        with tracer.span("lower", cat="compiler",
                         chunk_ops_in=chunk_ops) as lower_span:
            idag = lower(program.dag, instances=program.instances)
            lower_span.args["instructions_out"] = len(idag.live())

        if options.instr_fusion:
            with tracer.span("fuse", cat="compiler",
                             nodes_in=len(idag.live())) as fuse_span:
                fuse(idag)
                fuse_span.args["nodes_out"] = len(idag.live())

        def input_chunks(rank: int) -> int:
            if collective.in_place:
                return 0  # the input aliases the output buffer
            return collective.input_chunks(rank)

        with tracer.span("schedule", cat="compiler",
                         nodes_in=len(idag.live())) as sched_span:
            ir = schedule(
                idag,
                name=program.name,
                collective_name=collective.name,
                protocol=program.protocol,
                num_ranks=program.num_ranks,
                in_place=collective.in_place,
                input_chunks=input_chunks,
                output_chunks=collective.output_chunks,
                scratch_chunks=program.scratch_chunks,
                max_threadblocks=options.max_threadblocks,
                tracer=tracer,
            )
            sched_span.args["instructions_out"] = ir.instruction_count()
            sched_span.args["threadblocks"] = ir.threadblock_count()
            sched_span.args["channels"] = ir.channels_used()

        if options.optimize:
            from .passes import optimize_ir

            optimize_ir(ir, tracer=tracer)

        if options.audit:
            with tracer.span("audit", cat="compiler",
                             instructions=ir.instruction_count(),
                             num_slots=options.num_slots):
                audit_ir(ir, num_slots=options.num_slots)

        root.args["instructions"] = ir.instruction_count()
        root.args["threadblocks"] = ir.threadblock_count()

    return CompiledAlgorithm(ir, collective, options, tracer, root)


def scratch_buffer_chunks(ir: MscclIr, rank: int) -> int:
    """Deduced scratch size for a rank (highest scratch index + 1)."""
    gpu = ir.gpus[rank]
    highest = gpu.scratch_chunks
    for tb in gpu.threadblocks:
        for instr in tb.instructions:
            for span in (instr.src, instr.dst):
                if span is not None and span[0] is Buffer.SCRATCH:
                    highest = max(highest, span[1] + span[2])
    return highest
