"""Graphviz (DOT) exports of the compiler's intermediate structures.

Three views, mirroring the paper's Figure 4:

* :func:`chunk_dag_dot` — the traced Chunk DAG (operations + true/false
  dependencies),
* :func:`instruction_dag_dot` — the lowered/fused Instruction DAG with
  communication edges,
* :func:`ir_dot` — the scheduled MSCCL-IR: thread blocks as clusters,
  program order, cross-thread-block deps, and connections.

The output is plain DOT text; render with ``dot -Tsvg`` if graphviz is
installed, or just read it — the structure is legible as text.
"""

from __future__ import annotations

from typing import Iterable, List

from .dag import ChunkDAG
from .instructions import InstructionDAG
from .ir import MscclIr


def _escape(text: str) -> str:
    return text.replace('"', r"\"")


def chunk_dag_dot(dag: ChunkDAG, title: str = "chunk_dag") -> str:
    """DOT rendering of a Chunk DAG."""
    lines = [f'digraph "{_escape(title)}" {{', "  rankdir=TB;",
             "  node [shape=box, fontsize=10];"]
    for op in dag.ops:
        if op.kind == "start":
            rank, buffer, index, count = op.dst
            label = f"start r{rank} {buffer.value}[{index}+{count}]"
            lines.append(
                f'  op{op.op_id} [label="{_escape(label)}", '
                'shape=ellipse, style=dotted];'
            )
            continue
        src = f"r{op.src[0]} {op.src[1].value}[{op.src[2]}+{op.src[3]}]"
        dst = f"r{op.dst[0]} {op.dst[1].value}[{op.dst[2]}+{op.dst[3]}]"
        channel = f" ch{op.channel}" if op.channel is not None else ""
        label = f"#{op.op_id} {op.kind}{channel}\\n{src} -> {dst}"
        lines.append(f'  op{op.op_id} [label="{_escape(label)}"];')
    for op in dag.ops:
        for dep in sorted(op.deps):
            style = "" if dep in op.true_deps else " [style=dashed]"
            lines.append(f"  op{dep} -> op{op.op_id}{style};")
    lines.append("}")
    return "\n".join(lines)


def instruction_dag_dot(idag: InstructionDAG,
                        title: str = "instruction_dag") -> str:
    """DOT rendering of the Instruction DAG (comm edges in color)."""
    lines = [f'digraph "{_escape(title)}" {{', "  rankdir=TB;",
             "  node [shape=box, fontsize=10];"]
    live = idag.live()
    for instr in live:
        parts = [f"#{instr.instr_id} {instr.op.value} r{instr.rank}"]
        if instr.src is not None:
            buf, idx, cnt = instr.src
            parts.append(f"src {buf.value}[{idx}+{cnt}]")
        if instr.dst is not None:
            buf, idx, cnt = instr.dst
            parts.append(f"dst {buf.value}[{idx}+{cnt}]")
        label = "\\n".join(parts)
        lines.append(f'  i{instr.instr_id} [label="{_escape(label)}"];')
    ids = {i.instr_id for i in live}
    for instr in live:
        for dep in sorted(instr.deps):
            if dep in ids:
                style = "" if dep in instr.true_deps else " [style=dashed]"
                lines.append(f"  i{dep} -> i{instr.instr_id}{style};")
        if instr.send_match is not None and instr.send_match in ids:
            lines.append(
                f"  i{instr.instr_id} -> i{instr.send_match} "
                "[color=blue, penwidth=2];"
            )
    lines.append("}")
    return "\n".join(lines)


def ir_dot(ir: MscclIr, title: str = None) -> str:
    """DOT rendering of the scheduled IR: one cluster per thread block."""
    title = title or ir.name
    lines = [f'digraph "{_escape(title)}" {{', "  rankdir=LR;",
             "  node [shape=box, fontsize=9];",
             "  compound=true;"]
    for gpu in ir.gpus:
        lines.append(f"  subgraph cluster_gpu{gpu.rank} {{")
        lines.append(f'    label="GPU {gpu.rank}";')
        for tb in gpu.threadblocks:
            cluster = f"cluster_g{gpu.rank}tb{tb.tb_id}"
            lines.append(f"    subgraph {cluster} {{")
            peers = (f"send->{tb.send_peer} recv<-{tb.recv_peer} "
                     f"ch{tb.channel}")
            lines.append(f'      label="tb{tb.tb_id} {peers}";')
            previous = None
            for instr in tb.instructions:
                node = f"n{gpu.rank}_{tb.tb_id}_{instr.step}"
                label = f"{instr.step}: {instr.op.value}"
                lines.append(f'      {node} [label="{_escape(label)}"];')
                if previous is not None:
                    lines.append(f"      {previous} -> {node};")
                previous = node
            lines.append("    }")
        lines.append("  }")
    # Cross thread block dependencies.
    for gpu in ir.gpus:
        for tb in gpu.threadblocks:
            for instr in tb.instructions:
                node = f"n{gpu.rank}_{tb.tb_id}_{instr.step}"
                for dep_tb, dep_step in instr.depends:
                    src = f"n{gpu.rank}_{dep_tb}_{dep_step}"
                    lines.append(
                        f"  {src} -> {node} [color=red, style=dashed];"
                    )
    lines.append("}")
    return "\n".join(lines)


def describe_ir(ir: MscclIr) -> str:
    """A compact human-readable IR summary (counts, channels, shape)."""
    histogram = ", ".join(
        f"{op}:{count}" for op, count in sorted(ir.op_histogram().items())
    )
    lines = [
        f"program {ir.name!r} ({ir.collective}, {ir.protocol}"
        f"{', in-place' if ir.in_place else ''})",
        f"  ranks: {ir.num_ranks}",
        f"  thread blocks: {ir.threadblock_count()} "
        f"(max {ir.max_threadblocks_per_gpu()}/GPU)",
        f"  channels: {ir.channels_used()}",
        f"  connections: {len(ir.connections())}",
        f"  instructions: {ir.instruction_count()} ({histogram})",
    ]
    return "\n".join(lines)
