"""The MSCCLang program context: tracing the DSL into a Chunk DAG.

A program is written inside a ``with MSCCLProgram(...)`` block. The
module-level :func:`chunk` function (mirroring the paper's API) addresses
chunks on the *current* program. Executing the Python code once performs
the trace: every ``copy``/``reduce`` appends a node to the Chunk DAG and
updates the per-rank abstract buffer state, so correctness errors
(uninitialized reads, stale references) surface immediately at the
offending line.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple, Union

from .buffers import Buffer, BufferState, as_buffer
from .chunk import reduce_chunks
from .collectives import Collective
from .dag import ChunkDAG, ParallelGroup
from .errors import ProgramError
from .refs import ChunkRef

RankLike = Union[int, Tuple[int, int]]

_current = threading.local()


def _current_program() -> "MSCCLProgram":
    program = getattr(_current, "program", None)
    if program is None:
        raise ProgramError(
            "no MSCCLProgram is active; use 'with MSCCLProgram(...):'"
        )
    return program


class MSCCLProgram:
    """Tracing context for one collective algorithm.

    Parameters
    ----------
    name:
        Human-readable algorithm name, carried into the IR.
    collective:
        The :class:`~repro.core.collectives.Collective` this program
        implements; supplies buffer sizes, aliasing, and postcondition.
    gpus_per_node:
        Enables ``(node, gpu)`` tuple addressing for ranks and indices.
    protocol:
        Runtime protocol hint stored in the IR ('Simple', 'LL', 'LL128').
    instances:
        Whole-program parallelization factor (the paper's ``r``): the
        compiler replicates every operation this many times, each
        instance carrying 1/instances of the data on its own channels.
    """

    def __init__(self, name: str, collective: Collective, *,
                 gpus_per_node: Optional[int] = None,
                 protocol: str = "Simple",
                 instances: int = 1):
        if instances < 1:
            raise ProgramError("instances must be >= 1")
        self.name = name
        self.collective = collective
        self.num_ranks = collective.num_ranks
        self.gpus_per_node = gpus_per_node
        self.protocol = protocol
        self.instances = instances
        self.dag = ChunkDAG()
        self._buffers: Dict[Tuple[int, Buffer], BufferState] = {}
        self._parallel_stack: List[ParallelGroup] = []
        self._next_group_id = 0
        self._finalized = False
        self._init_buffers()

    # -- setup -----------------------------------------------------------
    def _init_buffers(self) -> None:
        coll = self.collective
        for rank in range(self.num_ranks):
            out_state = BufferState(
                Buffer.OUTPUT, rank, coll.output_chunks(rank)
            )
            self._buffers[(rank, Buffer.OUTPUT)] = out_state
            self._buffers[(rank, Buffer.SCRATCH)] = BufferState(
                Buffer.SCRATCH, rank, None
            )
            if not coll.in_place:
                self._buffers[(rank, Buffer.INPUT)] = BufferState(
                    Buffer.INPUT, rank, coll.input_chunks(rank)
                )
            # Place the precondition's input chunks (through the alias
            # for in-place collectives) and record DAG source nodes.
            for index, value in coll.precondition(rank).items():
                buffer, canon_index = coll.alias(rank, Buffer.INPUT, index)
                state = self._buffers[(rank, buffer)]
                state.write(canon_index, [value])
                self.dag.add_start((rank, buffer, canon_index, 1))

    # -- context management ----------------------------------------------
    def __enter__(self) -> "MSCCLProgram":
        if getattr(_current, "program", None) is not None:
            raise ProgramError("another MSCCLProgram is already active")
        _current.program = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _current.program = None
        if exc_type is None:
            self._finalized = True

    # -- rank / index resolution -------------------------------------------
    def resolve_rank(self, rank: RankLike) -> int:
        """Convert a (node, gpu) tuple or integer into an integer rank."""
        if isinstance(rank, tuple):
            if self.gpus_per_node is None:
                raise ProgramError(
                    "tuple rank addressing requires gpus_per_node"
                )
            node, gpu = rank
            if not 0 <= gpu < self.gpus_per_node:
                raise ProgramError(
                    f"gpu index {gpu} out of range for "
                    f"{self.gpus_per_node} GPUs per node"
                )
            rank = node * self.gpus_per_node + gpu
        if not 0 <= rank < self.num_ranks:
            raise ProgramError(
                f"rank {rank} out of range for {self.num_ranks} ranks"
            )
        return rank

    def resolve_index(self, index) -> int:
        """Convert a (node, gpu)-style tuple index into an integer index."""
        if isinstance(index, tuple):
            if self.gpus_per_node is None:
                raise ProgramError(
                    "tuple index addressing requires gpus_per_node"
                )
            node, gpu = index
            return node * self.gpus_per_node + gpu
        return index

    # -- buffer access -----------------------------------------------------
    def buffer_state(self, rank: int, buffer: Buffer) -> BufferState:
        """The canonical BufferState for (rank, buffer)."""
        try:
            return self._buffers[(rank, buffer)]
        except KeyError:
            raise ProgramError(
                f"buffer {buffer} does not exist on rank {rank} "
                "(in-place programs must address 'output' or the alias)"
            ) from None

    def _canonical(self, rank: int, buffer, index) -> Tuple[Buffer, int]:
        buffer = as_buffer(buffer)
        index = self.resolve_index(index)
        return self.collective.alias(rank, buffer, index)

    def _make_ref(self, rank: int, buffer: Buffer, index: int,
                  count: int) -> ChunkRef:
        state = self.buffer_state(rank, buffer)
        return ChunkRef(
            self, rank, buffer, index, count,
            state.versions(index, count),
        )

    # -- DSL entry points ----------------------------------------------------
    def get_chunk(self, rank: RankLike, buffer, index,
                  count: int = 1) -> ChunkRef:
        """The paper's ``chunk(rank, buffer, index, count)`` operation."""
        rank = self.resolve_rank(rank)
        buffer, index = self._canonical(rank, buffer, index)
        state = self.buffer_state(rank, buffer)
        state.read(index, count)  # errors on uninitialized chunks
        return self._make_ref(rank, buffer, index, count)

    def apply_copy(self, src: ChunkRef, dst_rank: RankLike, buffer, index,
                   ch: Optional[int]) -> ChunkRef:
        """Trace ``src.copy(dst_rank, buffer, index)``."""
        self._check_active()
        dst_rank = self.resolve_rank(dst_rank)
        dst_buffer, dst_index = self._canonical(dst_rank, buffer, index)
        if (dst_rank, dst_buffer, dst_index) == (
                src.rank, src.buffer, src.index):
            return src  # copying a chunk onto itself is a no-op
        values = self.buffer_state(src.rank, src.buffer).read(
            src.index, src.count
        )
        dst_state = self.buffer_state(dst_rank, dst_buffer)
        dst_state.write(dst_index, values)
        self.dag.add_copy(
            src=(src.rank, src.buffer, src.index, src.count),
            dst=(dst_rank, dst_buffer, dst_index, src.count),
            channel=ch,
            parallel=self._active_group(),
        )
        return self._make_ref(dst_rank, dst_buffer, dst_index, src.count)

    def apply_reduce(self, dst: ChunkRef, src: ChunkRef,
                     ch: Optional[int]) -> ChunkRef:
        """Trace ``dst.reduce(src)``: accumulate src into dst's location."""
        self._check_active()
        src_values = self.buffer_state(src.rank, src.buffer).read(
            src.index, src.count
        )
        dst_state = self.buffer_state(dst.rank, dst.buffer)
        dst_values = dst_state.read(dst.index, dst.count)
        reduced = [
            reduce_chunks(a, b) for a, b in zip(dst_values, src_values)
        ]
        dst_state.write(dst.index, reduced)
        self.dag.add_reduce(
            src=(src.rank, src.buffer, src.index, src.count),
            dst=(dst.rank, dst.buffer, dst.index, dst.count),
            channel=ch,
            parallel=self._active_group(),
        )
        return self._make_ref(dst.rank, dst.buffer, dst.index, dst.count)

    # -- parallelize directive -------------------------------------------------
    def push_parallel(self, instances: int) -> ParallelGroup:
        """Enter a ``parallelize(instances)`` region."""
        if instances < 1:
            raise ProgramError("parallelize factor must be >= 1")
        if self._parallel_stack:
            raise ProgramError("parallelize regions cannot nest")
        group = ParallelGroup(self._next_group_id, instances)
        self._next_group_id += 1
        self._parallel_stack.append(group)
        return group

    def pop_parallel(self, group: ParallelGroup) -> None:
        """Leave a ``parallelize`` region."""
        if not self._parallel_stack or self._parallel_stack[-1] is not group:
            raise ProgramError("mismatched parallelize exit")
        self._parallel_stack.pop()

    def _active_group(self) -> Optional[ParallelGroup]:
        return self._parallel_stack[-1] if self._parallel_stack else None

    def _check_active(self) -> None:
        if self._finalized:
            raise ProgramError(
                "this program already left its 'with' block; operations "
                "must be traced inside it"
            )

    # -- results ------------------------------------------------------------
    def output_state(self, rank: int) -> Dict[int, object]:
        """Final abstract output-buffer contents for verification."""
        return self._buffers[(rank, Buffer.OUTPUT)].snapshot()

    def scratch_chunks(self, rank: int) -> int:
        """Deduced scratch-buffer size (highest index accessed + 1)."""
        return self._buffers[(rank, Buffer.SCRATCH)].size


def chunk(rank: RankLike, buffer, index, count: int = 1) -> ChunkRef:
    """Address chunks on the current program (paper Table 1)."""
    return _current_program().get_chunk(rank, buffer, index, count)


def current_program() -> MSCCLProgram:
    """The program whose ``with`` block is active (for helpers/directives)."""
    return _current_program()
