"""Command-line tools: compile, inspect, and simulate algorithms.

Run ``python -m repro.tools --help``.
"""

from .cli import build_algorithm, build_topology, main

__all__ = ["build_algorithm", "build_topology", "main"]
