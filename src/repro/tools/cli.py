"""The ``repro-tools`` / ``python -m repro.tools`` command line.

Subcommands:

* ``compile``  — build a named algorithm and print its MSCCL-IR as XML,
  JSON, a summary, or DOT graphs of the compiler stages.
* ``simulate`` — compile and run one (algorithm, topology, size) point,
  printing latency and algorithm bandwidth.
* ``sweep``    — latency across a size grid, optionally against NCCL.
* ``passes``   — introspect the compiler pass pipeline: which passes
  run for the given options, their wall time and counters, per-pass
  invariant validation, and optional per-pass IR dumps to a directory.
* ``trace``    — compile + simulate with the observability tracer on
  and write a ``chrome://tracing`` JSON, printing the per-pass compile
  table, a flamegraph-style summary, and the runtime metrics.
* ``diagnose`` — compile + simulate with tracing and run the
  dependency-aware bottleneck analysis: exact critical-path
  attribution, hints, and optionally a chunk's hop-by-hop journey.
* ``conform``  — run the differential conformance + fault-injection
  harness: shuffled-schedule order invariance, executor-vs-simulator
  FIFO cross-checks, a static race scan, and fault plans; prints a
  per-algorithm verdict and exits nonzero on any witness.
* ``import``   — load a reference-dialect MSCCL XML file (including
  programs no registered builder produces, e.g. alltoallv), resolve
  its collective semantics, and feed the same machinery as compiled
  algorithms: summary, data-level check, timing simulation,
  conformance, and bottleneck diagnosis.
* ``serve``    — run the compile-plan service: an asyncio server that
  answers (collective, topology, size) requests from the two-tier
  compile cache, deduplicates identical in-flight requests, and
  autotunes cold plan families in the background (docs/serving.md).
* ``plan``     — the matching client: ask a running service for a
  plan (or its stats), print the selection summary or the XML.

Example::

    repro-tools compile ring_allreduce --ranks 8 \
        --channels 4 --instances 8 --protocol LL --format xml
    repro-tools simulate hierarchical_allreduce \
        --topology ndv4 --nodes 2 --size 64MB
    repro-tools trace ring_allreduce --ranks 8 --size 1MB \
        --out ring_trace.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..analysis.parallel import parallel_map
from ..analysis.sweep import (chunk_bytes_for, format_size, ir_timer,
                              run_sweep, size_grid)
from ..core.cache import default_compile_cache
from ..core.compiler import CompilerOptions, compile_program
from ..core.visualize import describe_ir, ir_dot
from ..nccl.selector import NcclModel
from ..observe import (Tracer, chunk_journey, diagnose, diagnose_text,
                       diagnosis_dict, flame_text, journey_text,
                       metrics_dict, metrics_text, write_chrome_trace)
from ..runtime.executor import IrExecutor
from ..runtime.simulator import IrSimulator, SimConfig
from ..topology import dgx1, dgx2, generic, ndv4
from .. import algorithms

TOPOLOGIES = {"ndv4": ndv4, "dgx2": dgx2, "dgx1": dgx1}

# name -> (builder kwargs adapter); builders come from repro.algorithms.
ALGORITHMS = {
    "ring_allreduce": lambda a: algorithms.ring_allreduce(
        a.ranks, channels=a.channels, instances=a.instances,
        protocol=a.protocol),
    "allpairs_allreduce": lambda a: algorithms.allpairs_allreduce(
        a.ranks, instances=a.instances, protocol=a.protocol),
    "hierarchical_allreduce": lambda a: algorithms.hierarchical_allreduce(
        a.nodes, a.ranks // a.nodes, instances=a.instances,
        protocol=a.protocol, intra_parallel=a.channels),
    "rhd_allreduce": lambda a:
        algorithms.recursive_halving_doubling_allreduce(
            a.ranks, instances=a.instances, protocol=a.protocol),
    "double_tree_allreduce": lambda a:
        algorithms.double_binary_tree_allreduce(
            a.ranks, instances=a.instances, protocol=a.protocol),
    "twostep_alltoall": lambda a: algorithms.twostep_alltoall(
        a.nodes, a.ranks // a.nodes, instances=a.instances,
        protocol=a.protocol),
    "hierarchical_alltoall": lambda a: algorithms.hierarchical_alltoall(
        a.nodes, a.ranks // a.nodes, instances=a.instances,
        protocol=a.protocol),
    "naive_alltoall": lambda a: algorithms.naive_alltoall(
        a.ranks, instances=a.instances, protocol=a.protocol,
        gpus_per_node=a.ranks // a.nodes),
    "alltonext": lambda a: algorithms.alltonext(
        a.nodes, a.ranks // a.nodes, instances=a.instances,
        protocol=a.protocol),
    "ring_allgather": lambda a: algorithms.ring_allgather(
        a.ranks, channels=a.channels, instances=a.instances,
        protocol=a.protocol),
    "rd_allgather": lambda a: algorithms.recursive_doubling_allgather(
        a.ranks, instances=a.instances, protocol=a.protocol),
    "ring_reducescatter": lambda a: algorithms.ring_reducescatter(
        a.ranks, channels=a.channels, instances=a.instances,
        protocol=a.protocol),
    "sccl_allgather": lambda a: algorithms.sccl_allgather_122(
        a.ranks, instances=a.instances, protocol=a.protocol),
    "chain_broadcast": lambda a: algorithms.chain_broadcast(
        a.ranks, instances=a.instances, protocol=a.protocol),
    "tree_broadcast": lambda a: algorithms.tree_broadcast(
        a.ranks, instances=a.instances, protocol=a.protocol),
}


def parse_size(text: str) -> int:
    """'64MB' / '128KB' / '1GB' / plain bytes."""
    units = {"KB": 1024, "MB": 1024 ** 2, "GB": 1024 ** 3, "B": 1}
    upper = text.upper()
    for suffix, factor in units.items():
        if upper.endswith(suffix):
            return int(float(upper[: -len(suffix)]) * factor)
    return int(text)


def build_topology(args):
    """The cluster the command targets."""
    if args.topology == "generic":
        return generic(args.ranks // args.nodes, args.nodes)
    topo = TOPOLOGIES[args.topology](args.nodes)
    if args.ranks != topo.num_ranks:
        raise SystemExit(
            f"--ranks {args.ranks} does not match {args.topology} with "
            f"{args.nodes} node(s) ({topo.num_ranks} GPUs)"
        )
    return topo


def build_algorithm(args):
    """Trace the requested program."""
    try:
        builder = ALGORITHMS[args.algorithm]
    except KeyError:
        raise SystemExit(
            f"unknown algorithm {args.algorithm!r}; choose from "
            f"{', '.join(sorted(ALGORITHMS))}"
        )
    return builder(args)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("algorithm", help="algorithm name")
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--nodes", type=int, default=1)
    parser.add_argument("--channels", type=int, default=1)
    parser.add_argument("--instances", type=int, default=1)
    parser.add_argument("--protocol", default="Simple",
                        choices=["Simple", "LL", "LL128"])
    parser.add_argument("--topology", default="generic",
                        choices=["generic", *TOPOLOGIES])


def _compile(args) -> int:
    topology = build_topology(args)
    program = build_algorithm(args)
    algo = compile_program(program, CompilerOptions(
        max_threadblocks=topology.machine.sm_count
    ))
    if args.check:
        IrExecutor(algo.ir, algo.collective).run_and_check()
        print("# data check passed", file=sys.stderr)
    if args.format == "xml":
        print(algo.ir.to_xml())
    elif args.format == "json":
        print(algo.ir.to_json(indent=2))
    elif args.format == "dot":
        print(ir_dot(algo.ir))
    else:
        print(describe_ir(algo.ir))
    return 0


def _simulate(args) -> int:
    topology = build_topology(args)
    program = build_algorithm(args)
    algo = compile_program(program, CompilerOptions(
        max_threadblocks=topology.machine.sm_count
    ))
    size = parse_size(args.size)
    result = IrSimulator(algo.ir, topology).run(
        chunk_bytes=chunk_bytes_for(size, algo.sizing_chunks())
    )
    print(f"{program.name} on {topology!r}")
    print(f"  buffer: {format_size(size)}  latency: "
          f"{result.time_us:.1f} us  algbw: "
          f"{result.algbw_gbps(size):.1f} GB/s  tiles: {result.tiles}")
    return 0


def _pass_table(algo) -> str:
    """The compile-time span summary as an aligned text table."""
    lines = [f"{'pass':<12s} {'wall us':>10s}  counters"]
    for name, row in algo.compile_summary.items():
        counters = "  ".join(
            f"{key}={value}" for key, value in row.items()
            if key != "duration_us"
        )
        lines.append(f"{name:<12s} {row['duration_us']:>10.1f}  {counters}")
    return "\n".join(lines)


def _passes(args) -> int:
    from ..core.pipeline import default_pipeline

    topology = build_topology(args)
    program = build_algorithm(args)
    options = CompilerOptions(
        max_threadblocks=topology.machine.sm_count,
        instr_fusion=not args.no_fusion,
        optimize=args.optimize,
        validate_each=True if args.validate else None,
        dump_after="all",
    )
    algo = compile_program(program, options)

    print(f"{program.name}: pass pipeline")
    for p in default_pipeline().passes:
        state = "ran" if p.name in algo.dumps else "skipped"
        invariants = ", ".join(p.invariants) or "-"
        print(f"  {p.name:<22s} {state:<8s} invariants: {invariants}")
    print("\n== pass timings ==")
    print(_pass_table(algo))
    if args.validate:
        print("\n# per-pass invariant validation passed")
    if args.dump_dir:
        from pathlib import Path as _Path

        dump_dir = _Path(args.dump_dir)
        dump_dir.mkdir(parents=True, exist_ok=True)
        for index, (name, text) in enumerate(algo.dumps.items()):
            suffix = "xml" if text.startswith("<") else "txt"
            path = dump_dir / f"{index:02d}_{name}.{suffix}"
            path.write_text(text + "\n")
            print(f"# {name} snapshot written to {path}",
                  file=sys.stderr)
    return 0


def _trace(args) -> int:
    topology = build_topology(args)
    program = build_algorithm(args)
    tracer = Tracer()
    algo = compile_program(program, CompilerOptions(
        max_threadblocks=topology.machine.sm_count, trace=tracer,
    ))
    size = parse_size(args.size)
    result = IrSimulator(
        algo.ir, topology, config=SimConfig(tracer=tracer)
    ).run(chunk_bytes=chunk_bytes_for(size, algo.sizing_chunks()))

    out = args.out or f"{args.algorithm}_trace.json"
    path = write_chrome_trace(out, tracer)
    print(f"{program.name} on {topology!r}: {result.time_us:.1f} us "
          f"for {format_size(size)}")
    print(f"# chrome trace written to {path} "
          "(open in chrome://tracing or https://ui.perfetto.dev)")
    print("\n== compiler passes ==")
    print(_pass_table(algo))
    print("\n== span summary ==")
    print(flame_text(tracer, max_depth=args.depth))
    metrics = metrics_dict(tracer, result)
    print("\n== metrics ==")
    print(metrics_text(metrics))
    if args.metrics:
        import json as _json
        from pathlib import Path as _Path

        _Path(args.metrics).write_text(_json.dumps(metrics, indent=2))
        print(f"# metrics written to {args.metrics}", file=sys.stderr)
    return 0


def _diagnose(args) -> int:
    topology = build_topology(args)
    program = build_algorithm(args)
    algo = compile_program(program, CompilerOptions(
        max_threadblocks=topology.machine.sm_count
    ))
    size = parse_size(args.size)
    result = IrSimulator(
        algo.ir, topology, config=SimConfig(collect_trace=True)
    ).run(chunk_bytes=chunk_bytes_for(size, algo.sizing_chunks()))

    diag = diagnose(result)
    print(f"{program.name} on {topology!r}: {result.time_us:.1f} us "
          f"for {format_size(size)}")
    print()
    print(diagnose_text(diag, top=args.top))
    if args.chunk:
        try:
            rank_text, buffer_name, index_text = args.chunk.split(":")
            rank, index = int(rank_text), int(index_text)
        except ValueError:
            raise SystemExit(
                f"--chunk wants rank:buffer:index, got {args.chunk!r}"
            )
        hops = chunk_journey(result, rank, buffer_name, index)
        print(f"\n== journey of chunk({rank}, {buffer_name}, "
              f"{index}) ==")
        print(journey_text(hops))
    if args.json:
        import json as _json
        from pathlib import Path as _Path

        payload = diagnosis_dict(diag)
        payload["algorithm"] = program.name
        payload["size_bytes"] = size
        _Path(args.json).write_text(_json.dumps(payload, indent=2))
        print(f"# diagnosis written to {args.json}", file=sys.stderr)
    return 0


def _conform_worker(payload):
    """Compile one algorithm and run the conformance harness on it.

    Module-level (and fed plain-data payloads) so the parallel layer
    can ship it to worker processes; ``repro-tools conform --jobs N``
    shards the per-algorithm runs this way.
    """
    from ..conformance import run_conformance

    name, ns, config = payload
    view = argparse.Namespace(**ns)
    program = ALGORITHMS[name](view)
    algo = compile_program(program, CompilerOptions(
        max_threadblocks=config.topology.machine.sm_count,
        cache=default_compile_cache(),
    ))
    return run_conformance(algo, config)


def _conform(args) -> int:
    import json as _json
    from pathlib import Path as _Path

    from ..conformance import ConformanceConfig

    names = (sorted(ALGORITHMS) if args.algorithm == "all"
             else [args.algorithm])
    for name in names:
        if name not in ALGORITHMS:
            raise SystemExit(
                f"unknown algorithm {name!r}; choose from "
                f"{', '.join(sorted(ALGORITHMS))} or 'all'"
            )
    topology = build_topology(args)
    config = ConformanceConfig(
        seeds=args.seeds,
        elements_per_chunk=args.elements,
        inject_faults=not args.no_faults,
        topology=topology,
    )
    ns = {key: vars(args)[key]
          for key in ("ranks", "nodes", "channels", "instances",
                      "protocol", "topology")}
    payloads = [(name, {**ns, "algorithm": name}, config)
                for name in names]
    results = parallel_map(_conform_worker, payloads, jobs=args.jobs,
                           label="conform")
    reports = []
    failures = 0
    for name, report in zip(names, results):
        reports.append((name, report))
        print(report.text())
        if not report.ok:
            failures += 1
            if args.witness_dir:
                witness_dir = _Path(args.witness_dir)
                witness_dir.mkdir(parents=True, exist_ok=True)
                path = witness_dir / f"{name}.witness.json"
                path.write_text(_json.dumps(report.to_dict(), indent=2))
                print(f"# witnesses written to {path}", file=sys.stderr)
    if args.json:
        _Path(args.json).write_text(_json.dumps(
            [report.to_dict() for _, report in reports], indent=2
        ))
        print(f"# reports written to {args.json}", file=sys.stderr)
    verdict = "FAIL" if failures else "PASS"
    print(f"{verdict}: {len(reports) - failures}/{len(reports)} "
          f"algorithm(s) conform ({args.seeds} seeds, "
          f"{args.ranks} ranks, {args.nodes} node(s))")
    return 1 if failures else 0


def _import(args) -> int:
    import json as _json
    from pathlib import Path as _Path

    from ..core.errors import MscclError
    from ..core.interop import import_xml_file, resolve_collective

    try:
        ir = import_xml_file(args.file)
    except (OSError, MscclError) as exc:
        raise SystemExit(f"cannot import {args.file}: {exc}")
    try:
        coll = resolve_collective(ir)
    except MscclError as exc:
        raise SystemExit(
            f"cannot resolve collective semantics for {args.file}: {exc}"
        )
    payload = {
        "file": str(args.file),
        "algorithm": ir.name,
        "collective": coll.name,
        "ranks": ir.num_ranks,
        "protocol": ir.protocol,
        "threadblocks": ir.threadblock_count(),
    }
    if args.format == "xml":
        print(ir.to_xml())
    elif args.format == "json":
        print(ir.to_json(indent=2))
    else:
        print(describe_ir(ir))
        print(f"# resolved collective: {coll.name}", file=sys.stderr)

    if args.check:
        IrExecutor(ir, coll).run_and_check()
        payload["check"] = "passed"
        print("# data check passed", file=sys.stderr)

    topology = generic(ir.num_ranks)
    size = parse_size(args.size)
    chunk_bytes = chunk_bytes_for(size, coll.sizing_chunks())

    if args.simulate:
        result = IrSimulator(ir, topology).run(chunk_bytes=chunk_bytes)
        payload["simulate"] = {
            "size_bytes": size,
            "time_us": result.time_us,
            "algbw_gbps": result.algbw_gbps(size),
        }
        print(f"{ir.name} on {topology!r}")
        print(f"  buffer: {format_size(size)}  latency: "
              f"{result.time_us:.1f} us  algbw: "
              f"{result.algbw_gbps(size):.1f} GB/s  "
              f"tiles: {result.tiles}")

    if args.diagnose:
        result = IrSimulator(
            ir, topology, config=SimConfig(collect_trace=True)
        ).run(chunk_bytes=chunk_bytes)
        diag = diagnose(result)
        print(f"\n== diagnosis ({format_size(size)}) ==")
        print(diagnose_text(diag, top=args.top))
        payload["diagnose"] = diagnosis_dict(diag)

    failures = 0
    if args.conform:
        from ..conformance import ConformanceConfig, run_conformance

        report = run_conformance(ir, ConformanceConfig(
            seeds=args.seeds, topology=topology,
        ), collective=coll)
        print(report.text())
        payload["conform"] = report.to_dict()
        if not report.ok:
            failures += 1

    if args.json:
        _Path(args.json).write_text(_json.dumps(payload, indent=2))
        print(f"# import report written to {args.json}", file=sys.stderr)
    return 1 if failures else 0


def _report(args) -> int:
    from pathlib import Path

    from ..analysis.report import build_report

    if args.results is not None:
        results_dir = Path(args.results)
    else:
        results_dir = (
            Path(__file__).resolve().parents[3]
            / "benchmarks" / "results"
        )
    print(build_report(results_dir, include_audit=not args.no_audit,
                       jobs=args.jobs))
    return 0


def _sweep(args) -> int:
    topology = build_topology(args)
    program = build_algorithm(args)
    tracer = Tracer()
    algo = compile_program(program, CompilerOptions(
        max_threadblocks=topology.machine.sm_count,
        cache=default_compile_cache(), trace=tracer,
    ))
    sizes = size_grid(parse_size(args.min_size),
                      parse_size(args.max_size))
    timer = ir_timer(algo, topology, program.collective)
    result = run_sweep(program.name, sizes, {program.name: timer},
                       jobs=args.jobs, tracer=tracer)
    times = result.series[program.name].times_us
    nccl = NcclModel(topology) if args.vs_nccl else None
    header = f"{'size':>8s} {'us':>12s}"
    if nccl:
        header += f" {'nccl us':>12s} {'speedup':>8s}"
    print(header)
    for size, elapsed in zip(sizes, times):
        row = f"{format_size(size):>8s} {elapsed:>12.1f}"
        if nccl:
            base = nccl.allreduce_time(size).time_us
            row += f" {base:>12.1f} {base / elapsed:>7.2f}x"
        print(row)

    metrics = metrics_dict(tracer)
    cache = metrics["compile_cache"]
    line = (f"# compile cache: {cache['hits']} hit(s), "
            f"{cache['misses']} miss(es)")
    disk = cache.get("disk")
    if disk:
        line += (f"; disk tier: {disk['hits']} hit(s), "
                 f"{disk['entries']} file(s)")
    print(line, file=sys.stderr)
    workers = metrics.get("workers")
    if workers:
        print(f"# workers: {workers['parallel_tasks']} of "
              f"{workers['tasks']} task(s) in {workers['max_jobs']} "
              f"job(s), {workers['utilization']:.0%} busy",
              file=sys.stderr)
    return 0


def _serve(args) -> int:
    import asyncio

    from ..serve import PlanService

    service = PlanService(
        autotune=not args.no_autotune,
        tune_jobs=args.tune_jobs,
    )

    async def run():
        await service.start(args.host, args.port)
        host, port = service.address
        print(f"# plan service listening on {host}:{port}",
              file=sys.stderr)
        await service.serve_until_shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("# interrupted; plan service stopped", file=sys.stderr)
    stats = service.stats()["serve"]
    print(f"# served {stats['requests']} request(s): "
          f"{stats['plan_hits']} table hit(s), "
          f"{stats['dedup_inflight']} deduplicated in flight, "
          f"{stats['promotions']} promotion(s)", file=sys.stderr)
    return 0


def _plan(args) -> int:
    import json as _json

    from ..serve import PlanServiceError, SyncPlanClient

    client = SyncPlanClient(args.host, args.port)
    try:
        if args.stats:
            stats = client.stats()
        elif args.shutdown:
            client.shutdown()
        else:
            plan = client.plan(
                args.collective, parse_size(args.size),
                topology=args.topology, nodes=args.nodes,
                gpus_per_node=args.gpus_per_node,
                protocol=args.protocol, include_xml=args.xml,
            )
    except (PlanServiceError, ConnectionRefusedError, OSError) as exc:
        raise SystemExit(
            f"cannot reach plan service at {args.host}:{args.port}: "
            f"{exc}")
    if args.stats:
        print(_json.dumps(stats, indent=2))
        return 0
    if args.shutdown:
        print("# service asked to shut down", file=sys.stderr)
        return 0
    if args.xml:
        print(plan["xml"])
        return 0
    predicted = plan.get("predicted_us")
    print(f"{plan['algorithm']}  ({plan['label']})")
    print(f"  collective: {plan['collective']}  ranks: {plan['ranks']}"
          f"  protocol: {plan['protocol']}")
    print(f"  origin: {plan['origin']}  tuned: {plan['tuned']}  "
          f"predicted: "
          f"{'n/a' if predicted is None else f'{predicted:.1f} us'}")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-tools",
        description="Compile, inspect, simulate, and trace MSCCLang "
                    "algorithms.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser("compile", help="emit MSCCL-IR")
    _add_common(compile_parser)
    compile_parser.add_argument(
        "--format", default="summary",
        choices=["summary", "xml", "json", "dot"],
    )
    compile_parser.add_argument(
        "--check", action="store_true",
        help="also execute on data and verify outputs",
    )
    compile_parser.set_defaults(func=_compile)

    sim_parser = sub.add_parser("simulate", help="time one buffer size")
    _add_common(sim_parser)
    sim_parser.add_argument("--size", default="1MB")
    sim_parser.set_defaults(func=_simulate)

    passes_parser = sub.add_parser(
        "passes",
        help="introspect the compiler pass pipeline (timings, "
             "validation, per-pass dumps)",
    )
    _add_common(passes_parser)
    passes_parser.add_argument(
        "--validate", action="store_true",
        help="re-check pass invariants after every pass "
             "(same as REPRO_VALIDATE_PASSES=1)",
    )
    passes_parser.add_argument(
        "--optimize", action="store_true",
        help="also run the post-scheduling optimization passes",
    )
    passes_parser.add_argument(
        "--no-fusion", action="store_true",
        help="disable the peephole fusion pass",
    )
    passes_parser.add_argument(
        "--dump-dir", default=None,
        help="write a per-pass IR / instruction-DAG snapshot into "
             "this directory",
    )
    passes_parser.set_defaults(func=_passes)

    trace_parser = sub.add_parser(
        "trace",
        help="compile + simulate with tracing; write a Chrome trace",
    )
    _add_common(trace_parser)
    trace_parser.add_argument("--size", default="1MB")
    trace_parser.add_argument(
        "--out", default=None,
        help="Chrome-trace JSON path (default: <algorithm>_trace.json)",
    )
    trace_parser.add_argument(
        "--metrics", default=None,
        help="also write the metrics dict as JSON to this path",
    )
    trace_parser.add_argument(
        "--depth", type=int, default=2,
        help="max depth of the printed span summary tree",
    )
    trace_parser.set_defaults(func=_trace)

    diagnose_parser = sub.add_parser(
        "diagnose",
        help="bottleneck attribution from the execution graph",
    )
    _add_common(diagnose_parser)
    diagnose_parser.add_argument("--size", default="1MB")
    diagnose_parser.add_argument(
        "--top", type=int, default=8,
        help="how many critical-path intervals to print",
    )
    diagnose_parser.add_argument(
        "--chunk", default=None, metavar="RANK:BUFFER:INDEX",
        help="also print this chunk's hop-by-hop journey "
             "(e.g. 0:input:0)",
    )
    diagnose_parser.add_argument(
        "--json", default=None,
        help="write the diagnosis (attribution, hints, path) as JSON; "
             "name it *.diagnose.json to fold into `repro-tools report`",
    )
    diagnose_parser.set_defaults(func=_diagnose)

    conform_parser = sub.add_parser(
        "conform",
        help="differential conformance + fault injection for the "
             "runtime (exit nonzero on any witness)",
    )
    conform_parser.add_argument(
        "algorithm", nargs="?", default="all",
        help="algorithm name, or 'all' (default) for every "
             "registered algorithm",
    )
    conform_parser.add_argument("--ranks", type=int, default=8)
    conform_parser.add_argument("--nodes", type=int, default=1)
    conform_parser.add_argument("--channels", type=int, default=1)
    conform_parser.add_argument("--instances", type=int, default=1)
    conform_parser.add_argument("--protocol", default="Simple",
                                choices=["Simple", "LL", "LL128"])
    conform_parser.add_argument("--topology", default="generic",
                                choices=["generic", *TOPOLOGIES])
    conform_parser.add_argument(
        "--seeds", type=int, default=5,
        help="shuffled-schedule rounds per algorithm",
    )
    conform_parser.add_argument(
        "--elements", type=int, default=8,
        help="elements per chunk in the data-level executor",
    )
    conform_parser.add_argument(
        "--no-faults", action="store_true",
        help="skip the fault-injection plans",
    )
    conform_parser.add_argument(
        "--json", default=None,
        help="write all conformance reports as JSON to this path",
    )
    conform_parser.add_argument(
        "--witness-dir", default=None,
        help="write <algorithm>.witness.json here for every failing "
             "algorithm (CI artifact upload)",
    )
    conform_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for per-algorithm runs "
             "(default: $REPRO_JOBS or 1)",
    )
    conform_parser.set_defaults(func=_conform)

    import_parser = sub.add_parser(
        "import",
        help="load reference-dialect MSCCL XML and check / simulate / "
             "conform it",
    )
    import_parser.add_argument("file", help="path to an MSCCL XML file")
    import_parser.add_argument(
        "--format", default="summary",
        choices=["summary", "xml", "json"],
        help="how to print the imported IR (default: summary)",
    )
    import_parser.add_argument(
        "--check", action="store_true",
        help="execute on data and verify against the resolved "
             "collective's postcondition",
    )
    import_parser.add_argument(
        "--simulate", action="store_true",
        help="time the program on a generic topology",
    )
    import_parser.add_argument(
        "--conform", action="store_true",
        help="run the differential conformance harness "
             "(exit nonzero on any witness)",
    )
    import_parser.add_argument(
        "--diagnose", action="store_true",
        help="print the dependency-aware bottleneck diagnosis",
    )
    import_parser.add_argument("--size", default="1MB")
    import_parser.add_argument(
        "--seeds", type=int, default=5,
        help="shuffled-schedule rounds for --conform",
    )
    import_parser.add_argument(
        "--top", type=int, default=8,
        help="critical-path intervals printed by --diagnose",
    )
    import_parser.add_argument(
        "--json", default=None,
        help="write a machine-readable import report to this path",
    )
    import_parser.set_defaults(func=_import)

    report_parser = sub.add_parser(
        "report", help="assemble the evaluation report from results/"
    )
    report_parser.add_argument(
        "--results", default=None,
        help="results directory (default: benchmarks/results)",
    )
    report_parser.add_argument("--no-audit", action="store_true")
    report_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the efficiency audit "
             "(default: $REPRO_JOBS or 1)",
    )
    report_parser.set_defaults(func=_report)

    sweep_parser = sub.add_parser("sweep", help="time a size grid")
    _add_common(sweep_parser)
    sweep_parser.add_argument("--min-size", default="1KB")
    sweep_parser.add_argument("--max-size", default="64MB")
    sweep_parser.add_argument("--vs-nccl", action="store_true",
                              help="compare against the NCCL AllReduce")
    sweep_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the size grid "
             "(default: $REPRO_JOBS or 1)",
    )
    sweep_parser.set_defaults(func=_sweep)

    serve_parser = sub.add_parser(
        "serve",
        help="run the compile-plan service (asyncio, shared-cache, "
             "background autotuning)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8765,
                              help="TCP port (0 picks a free one)")
    serve_parser.add_argument(
        "--tune-jobs", type=int, default=None,
        help="worker processes for background autotuning "
             "(default: $REPRO_JOBS or 1)",
    )
    serve_parser.add_argument(
        "--no-autotune", action="store_true",
        help="serve provisional plans only; never tune in background",
    )
    serve_parser.set_defaults(func=_serve)

    plan_parser = sub.add_parser(
        "plan", help="ask a running plan service for a plan"
    )
    plan_parser.add_argument(
        "collective", nargs="?", default="allreduce",
        help="collective name (default: allreduce)",
    )
    plan_parser.add_argument("--host", default="127.0.0.1")
    plan_parser.add_argument("--port", type=int, default=8765)
    plan_parser.add_argument("--size", default="1MB")
    plan_parser.add_argument("--topology", default="ndv4",
                             choices=["generic", *TOPOLOGIES])
    plan_parser.add_argument("--nodes", type=int, default=1)
    plan_parser.add_argument("--gpus-per-node", type=int, default=8,
                             help="only used with --topology generic")
    plan_parser.add_argument("--protocol", default=None,
                             choices=["Simple", "LL", "LL128"])
    plan_parser.add_argument(
        "--xml", action="store_true",
        help="print the plan's MSCCL-IR XML instead of the summary",
    )
    plan_parser.add_argument(
        "--stats", action="store_true",
        help="print the service's stats JSON and exit",
    )
    plan_parser.add_argument(
        "--shutdown", action="store_true",
        help="ask the service to shut down and exit",
    )
    plan_parser.set_defaults(func=_plan)

    args = parser.parse_args(argv)
    return args.func(args)
