"""The MSCCLang runtime substitute: protocols, simulator, executor."""

from .api import CallRecord, Communicator
from .config import AlgorithmRegistry, RegisteredAlgorithm
from .events import EventLoop, Signal
from .executor import FaultPlan, IrExecutor, PopEvent
from .profile import (
    TbProfile,
    critical_path,
    profile_threadblocks,
    slowest_threadblocks,
    timeline,
    utilization_report,
)
from .protocols import (LL, LL128, PROTOCOLS, SIMPLE, SIMPLE_DIRECT,
                        Protocol, get_protocol)
from .simulator import (IrSimulator, SimConfig, SimResult, TraceEntry,
                        happens_before_pairs)

__all__ = [
    "AlgorithmRegistry",
    "CallRecord",
    "Communicator",
    "EventLoop",
    "FaultPlan",
    "IrExecutor",
    "IrSimulator",
    "LL",
    "LL128",
    "PROTOCOLS",
    "PopEvent",
    "Protocol",
    "RegisteredAlgorithm",
    "SIMPLE",
    "SIMPLE_DIRECT",
    "SimConfig",
    "SimResult",
    "Signal",
    "TbProfile",
    "TraceEntry",
    "critical_path",
    "profile_threadblocks",
    "slowest_threadblocks",
    "timeline",
    "utilization_report",
    "get_protocol",
    "happens_before_pairs",
]
