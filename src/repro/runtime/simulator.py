"""Discrete-event interpreter for MSCCL-IR (the runtime substitute).

This plays the role of the paper's CUDA interpreter (section 6): every
thread block is a sequential process executing its instruction list once
per *tile* (the pipelining loop of Figure 5), connections are FIFOs with
protocol-defined slot counts, and cross-thread-block dependencies block
on semaphores. Timing comes from an alpha-beta cost model with FCFS
bandwidth resources (see :mod:`repro.topology.model`), which makes link
contention, per-thread-block injection limits, fusion benefits, and
pipelining overlap all first-class effects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import SimulationError
from ..core.instructions import Op
from ..core.ir import MscclIr
from ..observe.graph import Edge, ExecNode, ExecutionGraph, Segment
from ..observe.tracer import Span, Tracer
from ..topology.model import Resource, Topology
from .events import EventLoop, Signal
from .protocols import Protocol, get_protocol

FUSED_SEND_OPS = frozenset({
    Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND,
})


@dataclass
class SimConfig:
    """Simulation fidelity knobs.

    ``max_tiles`` bounds the pipelining loop's trip count to keep event
    counts manageable for multi-GB sweeps; pipelining benefits saturate
    after a handful of tiles, so this mainly trades accuracy of the
    per-tile alpha amortization (applied identically to all algorithms).

    ``tracer`` (a :class:`repro.observe.Tracer`) records one span per
    executed instruction occurrence on a ``("rank R", "tb T")`` track,
    FIFO-stall/semaphore-wait counters sampled from the event loop, and
    per-link busy-time counters. ``collect_trace`` is the lightweight
    switch: it provisions a private tracer so the profiling helpers in
    :mod:`repro.runtime.profile` work without any exporter setup.
    """

    max_tiles: int = 16
    instruction_overhead: float = 0.12  # us, per instruction per tile
    semaphore_overhead: float = 0.25  # us, threadfence + semaphore set
    include_launch: bool = True
    collect_trace: bool = False  # record per-instruction spans
    tracer: Optional[Tracer] = field(default=None, repr=False)
    # SCCL-style direct copy: sends write straight into the destination
    # buffer (no FIFO staging, no consume pass on the receiver). Used by
    # the SCCL-runtime comparison of paper section 7.5.
    direct_copy: bool = False
    # Fault injection: resource-name prefix -> bandwidth multiplier.
    # E.g. {"nic_out[0,3]": 0.25} runs one NIC at quarter speed to study
    # straggler behaviour (algorithms that stripe over many paths, like
    # AllToNext, degrade gracefully; single-path ones stall).
    degradations: Dict[str, float] = field(default_factory=dict)


@dataclass
class TraceEntry:
    """One executed instruction occurrence, as a flat row.

    Kept as a compatibility view over the span stream: the simulator
    records :class:`~repro.observe.Span` objects, and
    :attr:`SimResult.trace` derives these rows from them on demand.
    """

    start_us: float
    end_us: float
    rank: int
    tb_id: int
    tile: int
    step: int
    op: str


@dataclass
class SimResult:
    """Outcome of one simulated execution.

    When tracing was enabled, :attr:`tracer` holds the full span stream
    and counters for this run (plus whatever the caller already traced
    into it — e.g. compiler passes), :attr:`spans` the per-instruction
    spans of this execution only, and :attr:`trace` the same data as
    flat :class:`TraceEntry` rows.
    """

    time_us: float
    tiles: int
    instruction_count: int
    threadblocks: int
    chunk_bytes: float
    protocol: str
    resource_busy_us: Dict[str, float] = field(default_factory=dict)
    tracer: Optional[Tracer] = field(default=None, repr=False)
    spans: Optional[List[Span]] = field(default=None, repr=False)
    # Happens-before structure of the execution (see
    # :class:`repro.observe.ExecutionGraph`); populated when tracing.
    graph: Optional[ExecutionGraph] = field(default=None, repr=False)

    @property
    def trace(self) -> Optional[List[TraceEntry]]:
        """Flat per-instruction rows derived from the span stream."""
        if self.spans is None:
            return None
        return [
            TraceEntry(
                start_us=span.start_us,
                end_us=span.end_us,
                rank=span.args["rank"],
                tb_id=span.args["tb"],
                tile=span.args["tile"],
                step=span.args["step"],
                op=span.name,
            )
            for span in self.spans
        ]

    @property
    def time_s(self) -> float:
        return self.time_us * 1e-6

    def algbw_gbps(self, total_bytes: float) -> float:
        """Algorithm bandwidth: moved bytes over elapsed time.

        A degenerate run (empty IR, zero elapsed time) reports ``0.0``
        rather than infinity: no time passed because no bytes moved.
        """
        if self.time_us <= 0:
            return 0.0
        return total_bytes / self.time_us / 1e3


class _Connection:
    """One (src, dst, channel) FIFO between a sender and a receiver TB.

    Messages stream cut-through style: each carries the time its first
    byte lands (when the receiver may start consuming) and the time its
    last byte lands (before which the receiver cannot finish). Messages
    are identified by sequence number: the sender's k-th message uses
    FIFO slot ``k mod slots`` and pairs with the receive tagged ``k``
    (per tile), so receives may drain out of program order within the
    slot window, exactly like the indexed slots of the real runtime.
    """

    __slots__ = ("key", "slots", "issued", "consumed_count",
                 "sends_per_tile", "arrivals", "consumed",
                 "prev_first", "prev_last",
                 "arrival_signal", "slot_signal",
                 "messages", "freed_by")

    def __init__(self, key: Tuple[int, int, int], slots: int,
                 sends_per_tile: int):
        self.key = key
        self.slots = slots
        self.issued = 0
        self.consumed_count = 0
        self.sends_per_tile = sends_per_tile
        self.arrivals: Dict[int, float] = {}  # seq -> last-byte time
        self.consumed: set = set()
        self.prev_first = 0.0
        self.prev_last = 0.0
        self.arrival_signal = Signal("fifo_arrival")
        self.slot_signal = Signal("fifo_slot")
        # Execution-graph recording (only populated when tracing):
        # seq -> transfer detail, and seq -> consumer node that freed
        # the slot.
        self.messages: Dict[int, dict] = {}
        self.freed_by: Dict[int, tuple] = {}

    def clamp_fifo(self, first_byte: float,
                   last_byte: float) -> Tuple[float, float]:
        """Enforce in-order delivery on the connection."""
        first_byte = max(first_byte, self.prev_first)
        last_byte = max(last_byte, self.prev_last, first_byte)
        self.prev_first = first_byte
        self.prev_last = last_byte
        return first_byte, last_byte


class _Semaphore:
    """Per-thread-block monotone progress counter (paper Figure 5)."""

    __slots__ = ("value", "signal")

    def __init__(self) -> None:
        self.value = 0
        self.signal = Signal("semaphore")


class IrSimulator:
    """Simulates one IR execution on a topology with a protocol."""

    def __init__(self, ir: MscclIr, topology: Topology,
                 protocol: Optional[Protocol] = None,
                 config: Optional[SimConfig] = None):
        if ir.num_ranks != topology.num_ranks:
            raise SimulationError(
                f"IR has {ir.num_ranks} ranks but topology has "
                f"{topology.num_ranks}"
            )
        self.ir = ir
        self.topology = topology
        self.protocol = get_protocol(protocol or ir.protocol)
        self.config = config or SimConfig()
        # The direct-copy transport may come from either the protocol
        # (Simple-Direct, the paper's section 7.5 future work) or the
        # SCCL-runtime comparison's explicit config flag.
        self._direct = self.config.direct_copy or self.protocol.direct_copy

    # -- public API -----------------------------------------------------
    def run(self, chunk_bytes: float) -> SimResult:
        """Execute the IR with the given per-chunk payload size."""
        if chunk_bytes <= 0:
            raise SimulationError("chunk_bytes must be positive")
        self.topology.reset_resources()
        tracer = self.config.tracer
        if tracer is None and self.config.collect_trace:
            tracer = Tracer()
        loop = EventLoop(tracer=tracer)
        tiles = self._tile_count(chunk_bytes)
        connections = self._build_connections()
        semaphores: Dict[Tuple[int, int], _Semaphore] = {}
        engines: Dict[Tuple[int, int], Resource] = {}
        tb_lengths: Dict[Tuple[int, int], int] = {}
        machine = self.topology.machine

        for gpu in self.ir.gpus:
            for tb in gpu.threadblocks:
                key = (gpu.rank, tb.tb_id)
                semaphores[key] = _Semaphore()
                engines[key] = Resource(
                    f"engine[{gpu.rank},{tb.tb_id}]",
                    machine.threadblock_bandwidth,
                )
                tb_lengths[key] = len(tb.instructions)

        spans = [] if tracer is not None else None
        graph = ExecutionGraph() if tracer is not None else None
        for gpu in self.ir.gpus:
            for tb in gpu.threadblocks:
                loop.spawn(self._tb_process(
                    loop, gpu.rank, tb, tiles, chunk_bytes, connections,
                    semaphores, engines, tb_lengths, tracer, spans,
                    graph,
                ))

        elapsed = loop.run()
        for conn in connections.values():
            if conn.issued != conn.consumed_count:
                raise SimulationError(
                    f"connection {conn.key} finished with {conn.issued} "
                    f"sends but {conn.consumed_count} receives"
                )
        if self.config.include_launch:
            elapsed += machine.kernel_launch_overhead
        busy = {
            name: res.busy_time
            for name, res in self.topology._resources.items()
        }
        if tracer is not None:
            # Root span covering the whole execution (launch included),
            # so the span tree accounts for exactly the reported time.
            tracer.emit(
                "simulate", 0.0, elapsed, cat="sim",
                track=("sim", self.ir.name),
                algorithm=self.ir.name, protocol=self.protocol.name,
                tiles=tiles, chunk_bytes=chunk_bytes,
            )
            for name, busy_us in sorted(busy.items()):
                if busy_us > 0:
                    tracer.add_counter(f"link.{name}.busy_us", busy_us,
                                       t_us=elapsed)
        if graph is not None:
            graph.finalize(
                elapsed,
                machine.kernel_launch_overhead
                if self.config.include_launch else 0.0,
            )
        return SimResult(
            time_us=elapsed,
            tiles=tiles,
            instruction_count=self.ir.instruction_count(),
            threadblocks=self.ir.threadblock_count(),
            chunk_bytes=chunk_bytes,
            protocol=self.protocol.name,
            resource_busy_us=busy,
            tracer=tracer,
            spans=spans,
            graph=graph,
        )

    def execution_graph(self, chunk_bytes: float = 65536.0
                        ) -> ExecutionGraph:
        """One traced run's happens-before graph (for cross-checking).

        Convenience for consumers that want the
        :class:`~repro.observe.ExecutionGraph` — e.g. the conformance
        harness validating executor FIFO pops against the simulator's
        recorded edges — without wiring up a tracer themselves.
        """
        from dataclasses import replace

        config = replace(self.config, collect_trace=True)
        result = IrSimulator(self.ir, self.topology, self.protocol,
                             config).run(chunk_bytes)
        return result.graph

    # -- internals --------------------------------------------------------
    def _degradation(self, resource_name: str) -> float:
        """Bandwidth multiplier for an (optionally degraded) resource."""
        for prefix, factor in self.config.degradations.items():
            if resource_name.startswith(prefix):
                return factor
        return 1.0

    def _tile_count(self, chunk_bytes: float) -> int:
        largest = 0.0
        for gpu in self.ir.gpus:
            for tb in gpu.threadblocks:
                for instr in tb.instructions:
                    frac = float(instr.frac_hi - instr.frac_lo)
                    largest = max(largest, chunk_bytes * frac)
        tiles = max(1, math.ceil(largest / self.protocol.slot_bytes))
        return min(tiles, self.config.max_tiles)

    def _build_connections(self) -> Dict[Tuple[int, int, int], _Connection]:
        sends_per_tile: Dict[Tuple[int, int, int], int] = {}
        keys = set()
        for gpu in self.ir.gpus:
            for tb in gpu.threadblocks:
                if tb.send_peer is not None:
                    key = (gpu.rank, tb.send_peer, tb.channel)
                    keys.add(key)
                    count = sum(
                        1 for instr in tb.instructions
                        if instr.op in (Op.SEND, Op.RECV_COPY_SEND,
                                        Op.RECV_REDUCE_COPY_SEND,
                                        Op.RECV_REDUCE_SEND)
                    )
                    sends_per_tile[key] = count
                if tb.recv_peer is not None:
                    keys.add((tb.recv_peer, gpu.rank, tb.channel))
        return {
            key: _Connection(key, self.protocol.num_slots,
                             sends_per_tile.get(key, 0))
            for key in keys
        }

    def _instr_bytes(self, instr, chunk_bytes: float, tiles: int) -> float:
        # Prefer the spans' own counts (they can differ from
        # ``instr.count`` once chunks are variable-sized, e.g.
        # alltoallv); a span-less nop moves zero bytes.
        counts = [span[2] for span in (instr.src, instr.dst)
                  if span is not None]
        if counts:
            count = max(counts)
        else:
            count = 0 if instr.op is Op.NOP else instr.count
        frac = float(instr.frac_hi - instr.frac_lo)
        return chunk_bytes * frac * count / tiles

    def _tb_process(self, loop: EventLoop, rank: int, tb, tiles: int,
                    chunk_bytes: float, connections, semaphores, engines,
                    tb_lengths, tracer=None, spans=None, graph=None):
        """Generator process: the interpreter loop of paper Figure 5.

        With ``graph`` present, every instruction occurrence additionally
        records an :class:`ExecNode` whose segments tile its interval
        (waits carry the releasing node as cause) plus the explicit
        semaphore / FIFO / slot happens-before edges.
        """
        cfg = self.config
        machine = self.topology.machine
        engine = engines[(rank, tb.tb_id)]
        my_sem = semaphores[(rank, tb.tb_id)]
        n = len(tb.instructions)
        out_conn = None
        in_conn = None
        if tb.send_peer is not None:
            out_conn = connections[(rank, tb.send_peer, tb.channel)]
        if tb.recv_peer is not None:
            in_conn = connections[(tb.recv_peer, rank, tb.channel)]
        reduce_eff = machine.reduce_bandwidth / machine.threadblock_bandwidth

        for tile in range(tiles):
            for step, instr in enumerate(tb.instructions):
                key = (rank, tb.tb_id, tile, step)
                segs = [] if graph is not None else None
                instr_start = loop.now
                yield ("delay", cfg.instruction_overhead)
                if segs is not None and loop.now > instr_start:
                    segs.append(Segment("overhead", instr_start, loop.now))

                # Cross thread block dependencies (dep modifier).
                for dep_tb, dep_step in instr.depends:
                    dep_sem = semaphores[(rank, dep_tb)]
                    dep_len = tb_lengths[(rank, dep_tb)]
                    target = tile * dep_len + dep_step + 1
                    wait_from = loop.now
                    while dep_sem.value < target:
                        yield ("wait", dep_sem.signal)
                    if graph is not None:
                        graph.edges.append(Edge(
                            "sem", (rank, dep_tb, tile, dep_step), key,
                            loop.now,
                        ))
                        if loop.now > wait_from:
                            # The releaser is the most recent signaler;
                            # its instruction ends exactly now.
                            flat = dep_sem.value - 1
                            cause = (rank, dep_tb, flat // dep_len,
                                     flat % dep_len)
                            segs.append(Segment(
                                "sem_wait", wait_from, loop.now,
                                cause=cause,
                            ))

                nbytes = self._instr_bytes(instr, chunk_bytes, tiles)
                receives = instr.op in (
                    Op.RECV, Op.RECV_REDUCE_COPY, Op.RECV_COPY_SEND,
                    Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND,
                )
                sends = instr.op in (
                    Op.SEND, Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND,
                    Op.RECV_REDUCE_SEND,
                )
                reduces = instr.op in (
                    Op.REDUCE, Op.RECV_REDUCE_COPY,
                    Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND,
                )

                # All waits happen up front; the timing arithmetic below
                # is then purely computational (cut-through streaming).
                msg_last = None
                recv_target = None
                msg = None
                if receives:
                    if in_conn is None:
                        raise SimulationError(f"{instr.op} with no recv peer")
                    recv_target = (
                        tile * in_conn.sends_per_tile + instr.recv_seq
                    )
                    wait_from = loop.now
                    while recv_target not in in_conn.arrivals:
                        yield ("wait", in_conn.arrival_signal)
                    msg_last = in_conn.arrivals[recv_target]
                    if graph is not None:
                        msg = in_conn.messages.get(recv_target)
                        producer = msg["producer"] if msg else None
                        graph.edges.append(Edge(
                            "fifo", producer, key, loop.now,
                        ))
                        if loop.now > wait_from:
                            segs.append(Segment(
                                "fifo_stall", wait_from, loop.now,
                                cause=producer, detail=msg,
                            ))
                if sends:
                    if out_conn is None:
                        raise SimulationError(f"{instr.op} with no send peer")
                    send_seq = out_conn.issued
                    # The message reuses slot (seq mod slots); it must
                    # have been drained by the matching receive.
                    wait_from = loop.now
                    while (send_seq >= out_conn.slots
                           and (send_seq - out_conn.slots)
                           not in out_conn.consumed):
                        yield ("wait", out_conn.slot_signal)
                    if graph is not None and loop.now > wait_from:
                        freed = out_conn.freed_by.get(
                            send_seq - out_conn.slots
                        )
                        segs.append(Segment(
                            "slot_wait", wait_from, loop.now, cause=freed,
                        ))
                        graph.edges.append(Edge(
                            "slot", freed, key, loop.now,
                        ))
                    out_conn.issued += 1

                start = loop.now
                data_ready = start
                if receives:
                    # Consume: copy (and reduce) out of the FIFO slots as
                    # they stream in. Direct-copy transports land data in
                    # place, so only reductions cost receiver time.
                    if self._direct and not reduces:
                        data_ready = max(start, msg_last)
                        if segs is not None and data_ready > start:
                            _transfer_segments(segs, start, data_ready,
                                               msg)
                    else:
                        eff = reduce_eff if reduces else 1.0
                        finish = engine.reserve(start, nbytes, eff)
                        data_ready = max(finish, msg_last)
                        if segs is not None:
                            if finish > start:
                                segs.append(Segment("compute", start,
                                                    finish))
                            if data_ready > finish:
                                # Tail of the incoming message still
                                # streaming in past the consume pass.
                                _transfer_segments(segs, finish,
                                                   data_ready, msg)
                    self._spawn_slot_free(
                        loop, in_conn, recv_target, data_ready,
                        consumer=key if graph is not None else None,
                    )
                elif instr.op in (Op.COPY, Op.REDUCE):
                    eff = reduce_eff if reduces else 1.0
                    data_ready = engine.reserve(start, nbytes, eff)
                    if segs is not None and data_ready > start:
                        segs.append(Segment("compute", start, data_ready))

                if sends:
                    release, out_msg = self._launch_transfer(
                        loop, rank, tb.send_peer, nbytes, engine,
                        out_conn, stream_start=start,
                        data_ready=data_ready,
                        fused=instr.op in FUSED_SEND_OPS,
                        message_bytes=nbytes * tiles,
                        producer=key if graph is not None else None,
                    )
                    if segs is not None:
                        produce_finish = out_msg["produce_finish"]
                        if (instr.op not in FUSED_SEND_OPS
                                and produce_finish > start):
                            segs.append(Segment("compute", start,
                                                produce_finish))
                        base = max(produce_finish, data_ready)
                        if release > base:
                            # Wire occupancy until the peer holds the
                            # last byte (NVLink sends block on it).
                            _transfer_segments(segs, base, release,
                                               out_msg)
                    yield ("at", release)
                else:
                    yield ("at", data_ready)

                if instr.has_dep:
                    fence_from = loop.now
                    yield ("delay", cfg.semaphore_overhead)
                    if segs is not None and loop.now > fence_from:
                        segs.append(Segment("overhead", fence_from,
                                            loop.now))
                my_sem.value = tile * n + step + 1
                loop.notify(my_sem.signal)
                if tracer is not None:
                    span = tracer.emit(
                        instr.op.value, instr_start, loop.now,
                        cat="instr",
                        track=(f"rank {rank}", f"tb {tb.tb_id}"),
                        track_ids=(rank, tb.tb_id),
                        rank=rank, tb=tb.tb_id, channel=tb.channel,
                        step=step, tile=tile, nbytes=nbytes,
                    )
                    spans.append(span)
                if graph is not None:
                    graph.add_node(ExecNode(
                        key, instr.op.value, tb.channel, nbytes,
                        instr_start, loop.now, segs,
                        frozenset(instr.lineage or ()),
                    ))

    def _spawn_slot_free(self, loop: EventLoop, conn: _Connection,
                         seq: int, when: float,
                         consumer: Optional[tuple] = None) -> None:
        """Free a FIFO slot once the receiver fully drained the message."""
        if consumer is not None:
            conn.freed_by[seq] = consumer

        def free():
            yield ("at", when)
            conn.consumed.add(seq)
            conn.consumed_count += 1
            loop.notify(conn.slot_signal)

        loop.spawn(free())

    def _launch_transfer(self, loop: EventLoop, src: int, dst: int,
                         nbytes: float, engine: Resource, conn: _Connection,
                         stream_start: float, data_ready: float,
                         fused: bool, message_bytes: float = None,
                         producer: Optional[tuple] = None,
                         ) -> Tuple[float, Optional[dict]]:
        """Start one message streaming; returns when the sender unblocks.

        Transfers are cut-through: bytes flow through the path's shared
        resources as the producing pass generates them, so a chain of
        fused forwards adds only per-hop latency (alpha), not a full
        store-and-forward payload time per hop — matching how NCCL and
        the MSCCL interpreter stream FIFO slots.

        With ``producer`` set (execution-graph recording), also returns
        and files on the connection a transfer-detail dict: the sending
        node, departure time, and the bottleneck resource's queueing
        delay and service time, which the critical-path walk uses to
        split blocked intervals into queue / link / FIFO-stall time.
        """
        proto = self.protocol
        path, alpha_base, cross = self.topology.path(src, dst)
        alpha = alpha_base + proto.alpha_overhead
        # Fused sends feed the wire straight from the pass that produced
        # the data; unfused sends pay an extra memory pass through the
        # thread block's copy engine. A direct-copy send is exactly one
        # such pass (straight into the peer's destination buffer) — its
        # saving is on the receiver, which does nothing.
        if fused:
            produce_finish = data_ready
        else:
            produce_finish = engine.reserve(stream_start, nbytes)
        wire_eff = proto.bandwidth_efficiency
        wire_overhead = 0.0
        if cross:
            # Each InfiniBand message occupies its NICs for a fixed
            # extra cost. Tiles of one instruction stream back to back
            # on a single queue pair, so the per-message cost is spread
            # over them (nbytes is one tile; message_bytes the whole
            # instruction payload).
            per_message = self.topology.machine.ib_message_overhead
            basis = message_bytes if message_bytes else nbytes
            wire_overhead = per_message * (nbytes / basis)
        wire_finish = 0.0
        queue_us = 0.0
        service_us = 0.0
        bottleneck = None
        for resource in path:
            eff = wire_eff * self._degradation(resource.name)
            finish = resource.reserve(stream_start, nbytes, eff,
                                      wire_overhead)
            if finish > wire_finish:
                wire_finish = finish
                queue_us = resource.last_queue_us
                service_us = resource.last_service_us
                bottleneck = resource.name
        first_byte = stream_start + alpha
        last_byte = max(wire_finish, produce_finish) + alpha
        first_byte, last_byte = conn.clamp_fifo(first_byte, last_byte)
        seq = conn.issued - 1  # our seq: issued was bumped by the caller
        msg = None
        if producer is not None:
            msg = {
                "producer": producer,
                "seq": seq,
                "stream_start": stream_start,
                "first_byte": first_byte,
                "last_byte": last_byte,
                "produce_finish": produce_finish,
                "queue_us": queue_us,
                "wire_us": service_us,
                "alpha": alpha,
                "resource": bottleneck,
                "label": f"r{src}->r{dst} ch{conn.key[2]}",
            }
            conn.messages[seq] = msg

        def deliver():
            yield ("at", max(first_byte, loop.now))
            conn.arrivals[seq] = last_byte
            loop.notify(conn.arrival_signal)

        loop.spawn(deliver())
        # InfiniBand sends complete asynchronously through the proxy: the
        # thread block only produces into the staging buffer. NVLink
        # sends occupy the thread block until the last byte is stored on
        # the peer.
        if cross:
            return max(produce_finish, data_ready), msg
        return max(last_byte - alpha, data_ready), msg


def happens_before_pairs(graph: ExecutionGraph
                         ) -> Dict[str, set]:
    """Collapse a traced run's edges to per-kind instruction pairs.

    Tiles are the simulator's pipelining artifact; the executor runs
    each instruction once. Folding ``(rank, tb, tile, step)`` node keys
    down to ``(rank, tb, step)`` yields the instruction-level
    happens-before relation both runtimes must agree on: the returned
    dict maps each edge kind (``"fifo"``, ``"sem"``, ``"slot"``, plus
    implicit ``"program"`` order) to a set of
    ``((rank, tb, step), (rank, tb, step))`` pairs.
    """
    pairs: Dict[str, set] = {
        "fifo": set(), "sem": set(), "slot": set(), "program": set(),
    }
    for edge in graph.edges:
        if edge.src is None:
            continue
        src = (edge.src[0], edge.src[1], edge.src[3])
        dst = (edge.dst[0], edge.dst[1], edge.dst[3])
        pairs.setdefault(edge.kind, set()).add((src, dst))
    for src, dst in graph.iter_program_edges():
        pairs["program"].add(
            ((src[0], src[1], src[3]), (dst[0], dst[1], dst[3]))
        )
    return pairs


def _transfer_segments(segs: List[Segment], lo: float, hi: float,
                       msg: Optional[dict]) -> None:
    """Tile a wire-bound interval into queue / link / stall segments.

    ``[lo, hi)`` is time an instruction spent bound to a message on the
    wire (the streaming tail on the receive side, the occupancy until
    last byte on the send side). The message's bottleneck-resource
    detail splits it: FCFS queueing first, then serialization; whatever
    remains is in-order-delivery clamping or producer gating, i.e. a
    FIFO stall.
    """
    total = hi - lo
    detail = msg or {}
    link_t = min(detail.get("wire_us", 0.0), total)
    queue_t = min(detail.get("queue_us", 0.0), total - link_t)
    stall_t = total - link_t - queue_t
    t = lo
    for kind, dur in (("queue", queue_t), ("link", link_t),
                      ("fifo_stall", stall_t)):
        if dur > 0:
            segs.append(Segment(kind, t, t + dur, detail=detail))
            t += dur
