"""Discrete-event interpreter for MSCCL-IR (the runtime substitute).

This plays the role of the paper's CUDA interpreter (section 6): every
thread block is a sequential process executing its instruction list once
per *tile* (the pipelining loop of Figure 5), connections are FIFOs with
protocol-defined slot counts, and cross-thread-block dependencies block
on semaphores. Timing comes from an alpha-beta cost model with FCFS
bandwidth resources (see :mod:`repro.topology.model`), which makes link
contention, per-thread-block injection limits, fusion benefits, and
pipelining overlap all first-class effects.

Two event-loop engines share this model:

* **batched** (the default) precompiles every thread block's schedule
  into a :class:`_TbProgram` — per-step payload bytes vectorized with
  numpy, dependence targets resolved via
  :func:`repro.core.verification.dependence_edges`, bandwidth
  denominators folded into constants — and drives slim ``send(now)``
  generators on :class:`~repro.runtime.events.BatchEventLoop`, whose
  pooled action events replace the reference loop's per-message helper
  processes.
* **reference** is the original one-event-per-occurrence interpreter
  (:meth:`IrSimulator._tb_process` on
  :class:`~repro.runtime.events.EventLoop`), retained as the parity
  oracle and selectable with ``SimConfig(engine="reference")`` or the
  ``REPRO_SIM_REFERENCE=1`` environment escape hatch.

Both engines produce **bitwise-identical** results — same
:class:`SimResult` fields, span streams, and
:class:`~repro.observe.ExecutionGraph` — because they issue the same
float arithmetic at the same virtual times: every wait check, resource
reservation, and state write fires at exactly the virtual time the
reference loop would schedule it. The batched engine gets its
throughput from collapsing the reference loop's three generator
resumptions per occurrence (overhead, release, semaphore fence) into
one, with FIFO delivery and semaphore publication pushed as pooled
action events at their precomputed fire times.
:func:`sim_parity_diffs` checks the equivalence field by field, and
the differential conformance harness enforces it on every zoo
algorithm.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import MscclError, SimulationError
from ..core.instructions import Op
from ..core.ir import MscclIr
from ..core.verification import dependence_edges
from ..observe.graph import (Edge, ExecNode, ExecutionGraph, Segment,
                             _edge_sort_key)
from ..observe.tracer import Span, Tracer
from ..topology.model import Resource, Topology
from . import codegen
from .events import (DELIVER, FREE, SEM, DIRECT_WAKE, BatchEventLoop,
                     EventLoop, Signal)
from .protocols import Protocol, get_protocol

FUSED_SEND_OPS = frozenset({
    Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND,
})
RECV_OPS = frozenset({
    Op.RECV, Op.RECV_REDUCE_COPY, Op.RECV_COPY_SEND,
    Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND,
})
SEND_OPS = frozenset({
    Op.SEND, Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND,
    Op.RECV_REDUCE_SEND,
})
REDUCE_OPS = frozenset({
    Op.REDUCE, Op.RECV_REDUCE_COPY, Op.RECV_REDUCE_COPY_SEND,
    Op.RECV_REDUCE_SEND,
})
LOCAL_OPS = frozenset({Op.COPY, Op.REDUCE})

SIM_ENGINES = ("batched", "reference")
_REFERENCE_ENV = "REPRO_SIM_REFERENCE"


@dataclass
class SimConfig:
    """Simulation fidelity knobs.

    ``max_tiles`` bounds the pipelining loop's trip count to keep event
    counts manageable for multi-GB sweeps; pipelining benefits saturate
    after a handful of tiles, so this mainly trades accuracy of the
    per-tile alpha amortization (applied identically to all algorithms).

    ``tracer`` (a :class:`repro.observe.Tracer`) records one span per
    executed instruction occurrence on a ``("rank R", "tb T")`` track,
    FIFO-stall/semaphore-wait counters sampled from the event loop, and
    per-link busy-time counters. ``collect_trace`` is the lightweight
    switch: it provisions a private tracer so the profiling helpers in
    :mod:`repro.runtime.profile` work without any exporter setup.
    """

    max_tiles: int = 16
    instruction_overhead: float = 0.12  # us, per instruction per tile
    semaphore_overhead: float = 0.25  # us, threadfence + semaphore set
    include_launch: bool = True
    collect_trace: bool = False  # record per-instruction spans
    tracer: Optional[Tracer] = field(default=None, repr=False)
    # SCCL-style direct copy: sends write straight into the destination
    # buffer (no FIFO staging, no consume pass on the receiver). Used by
    # the SCCL-runtime comparison of paper section 7.5.
    direct_copy: bool = False
    # Fault injection: resource-name prefix -> bandwidth multiplier.
    # E.g. {"nic_out[0,3]": 0.25} runs one NIC at quarter speed to study
    # straggler behaviour (algorithms that stripe over many paths, like
    # AllToNext, degrade gracefully; single-path ones stall). A prefix
    # that matches no resource the run consults raises SimulationError
    # afterwards rather than silently simulating fault-free.
    degradations: Dict[str, float] = field(default_factory=dict)
    # Event-loop engine: "batched" or "reference". None resolves from
    # the REPRO_SIM_REFERENCE environment variable (parity triage
    # escape hatch), defaulting to "batched".
    engine: Optional[str] = None


@dataclass
class TraceEntry:
    """One executed instruction occurrence, as a flat row.

    Kept as a compatibility view over the span stream: the simulator
    records :class:`~repro.observe.Span` objects, and
    :attr:`SimResult.trace` derives these rows from them on demand.
    """

    start_us: float
    end_us: float
    rank: int
    tb_id: int
    tile: int
    step: int
    op: str


@dataclass
class SimResult:
    """Outcome of one simulated execution.

    When tracing was enabled, :attr:`tracer` holds the full span stream
    and counters for this run (plus whatever the caller already traced
    into it — e.g. compiler passes), :attr:`spans` the per-instruction
    spans of this execution only, and :attr:`trace` the same data as
    flat :class:`TraceEntry` rows.
    """

    time_us: float
    tiles: int
    instruction_count: int
    threadblocks: int
    chunk_bytes: float
    protocol: str
    resource_busy_us: Dict[str, float] = field(default_factory=dict)
    tracer: Optional[Tracer] = field(default=None, repr=False)
    spans: Optional[List[Span]] = field(default=None, repr=False)
    # Happens-before structure of the execution (see
    # :class:`repro.observe.ExecutionGraph`); populated when tracing.
    graph: Optional[ExecutionGraph] = field(default=None, repr=False)

    @property
    def trace(self) -> Optional[List[TraceEntry]]:
        """Flat per-instruction rows derived from the span stream."""
        if self.spans is None:
            return None
        return [
            TraceEntry(
                start_us=span.start_us,
                end_us=span.end_us,
                rank=span.args["rank"],
                tb_id=span.args["tb"],
                tile=span.args["tile"],
                step=span.args["step"],
                op=span.name,
            )
            for span in self.spans
        ]

    @property
    def time_s(self) -> float:
        return self.time_us * 1e-6

    def algbw_gbps(self, total_bytes: float) -> float:
        """Algorithm bandwidth: moved bytes over elapsed time.

        A degenerate run (empty IR, zero elapsed time) reports ``0.0``
        rather than infinity: no time passed because no bytes moved.
        """
        if self.time_us <= 0:
            return 0.0
        return total_bytes / self.time_us / 1e3


class _Connection:
    """One (src, dst, channel) FIFO between a sender and a receiver TB.

    Messages stream cut-through style: each carries the time its first
    byte lands (when the receiver may start consuming) and the time its
    last byte lands (before which the receiver cannot finish). Messages
    are identified by sequence number: the sender's k-th message uses
    FIFO slot ``k mod slots`` and pairs with the receive tagged ``k``
    (per tile), so receives may drain out of program order within the
    slot window, exactly like the indexed slots of the real runtime.
    """

    __slots__ = ("key", "slots", "issued", "consumed_count",
                 "sends_per_tile", "arrivals", "arrival_first",
                 "arrival_last", "free_times", "consumed",
                 "prev_first", "prev_last",
                 "arrival_signal", "slot_signal",
                 "messages", "freed_by")

    def __init__(self, key: Tuple[int, int, int], slots: int,
                 sends_per_tile: int):
        self.key = key
        self.slots = slots
        self.issued = 0
        self.consumed_count = 0
        self.sends_per_tile = sends_per_tile
        self.arrivals: Dict[int, float] = {}  # seq -> last-byte time
        # Lazy-publication maps (batched fast path only), dense lists
        # indexed by message sequence number and sized per run: the
        # sender writes each message's first/last-byte times at its
        # check point, the receiver writes each slot's drain time —
        # consumers then *sleep until* the published time instead of
        # being woken by an event, which is what lets an unblocked
        # occurrence run with no action events at all.
        self.arrival_first: List[Optional[float]] = []
        self.arrival_last: List[Optional[float]] = []
        self.free_times: List[Optional[float]] = []
        self.consumed: set = set()
        self.prev_first = 0.0
        self.prev_last = 0.0
        self.arrival_signal = Signal("fifo_arrival")
        self.slot_signal = Signal("fifo_slot")
        # Execution-graph recording (only populated when tracing):
        # seq -> transfer detail, and seq -> consumer node that freed
        # the slot.
        self.messages: Dict[int, dict] = {}
        self.freed_by: Dict[int, tuple] = {}

    def clamp_fifo(self, first_byte: float,
                   last_byte: float) -> Tuple[float, float]:
        """Enforce in-order delivery on the connection."""
        first_byte = max(first_byte, self.prev_first)
        last_byte = max(last_byte, self.prev_last, first_byte)
        self.prev_first = first_byte
        self.prev_last = last_byte
        return first_byte, last_byte

    def reset(self) -> None:
        """Back to the pre-run state (supports cached re-runs)."""
        self.issued = 0
        self.consumed_count = 0
        self.arrivals.clear()
        self.arrival_first = []
        self.arrival_last = []
        self.free_times = []
        self.consumed.clear()
        self.prev_first = 0.0
        self.prev_last = 0.0
        self.arrival_signal._waiters.clear()
        self.slot_signal._waiters.clear()
        self.messages.clear()
        self.freed_by.clear()


class _Semaphore:
    """Per-thread-block monotone progress counter (paper Figure 5).

    ``times`` is the fast path's lazy-publication view of the counter:
    entry ``k`` is the virtual time the value reaches ``k + 1`` (the
    occurrence's fence boundary), appended by the owning thread block
    at its check point. Dependents compare ``len(times)`` against their
    wait target and sleep until the published boundary — the value
    becomes visible at exactly the time the reference loop's fence
    resumption would write it. The recording path (and the reference
    engine) use ``value`` written at the boundary instead.
    """

    __slots__ = ("value", "times", "signal")

    def __init__(self) -> None:
        self.value = 0
        self.times: List[float] = []
        self.signal = Signal("semaphore")

    def reset(self) -> None:
        self.value = 0
        self.times.clear()
        self.signal._waiters.clear()


class _TbProgram:
    """One thread block's precompiled schedule for the batched engine.

    Everything invariant across tiles is resolved once at compile time —
    per-step payload bytes (numpy-vectorized), dependence semaphores and
    wait targets, FIFO endpoints, per-resource bandwidth denominators,
    the per-message wire overhead — so the per-occurrence work left in
    the generators is pure float arithmetic plus queue operations.

    ``recs`` holds one tuple per instruction::

        (deps, receives, sends, local, fused, direct_recv, nbytes,
         recv_seq, wire_overhead, consume_denom, step1, has_dep,
         consume_dur, produce_dur, path_durs)

    where ``deps`` is ``((sem, sem.times, signal, dep_len,
    dep_step + 1, dep_tb), ...)``, ``consume_denom`` is the copy
    engine's effective bandwidth
    for the consume/compute pass, and ``wire_overhead`` is the
    per-tile share of the InfiniBand per-message cost (``None`` marks
    the zero-byte cross-node send the reference engine rejects with a
    ZeroDivisionError; ``path_durs`` is then ``None`` too). The last
    three fields are the tile-invariant service durations with the
    divisions folded in at compile time — the fast path's whole
    per-occurrence arithmetic is adds and comparisons. ``meta``
    carries the per-instruction ``(op_value, lineage)`` pairs only the
    traced path needs.
    """

    __slots__ = ("rank", "tb_id", "channel", "engine", "engine_bw",
                 "sem", "sem_signal", "n", "watched", "out_conn",
                 "in_conn", "path_pairs", "alpha", "cross", "label",
                 "recs", "meta", "task")


class IrSimulator:
    """Simulates one IR execution on a topology with a protocol."""

    def __init__(self, ir: MscclIr, topology: Topology,
                 protocol: Optional[Protocol] = None,
                 config: Optional[SimConfig] = None):
        if ir.num_ranks != topology.num_ranks:
            raise SimulationError(
                f"IR has {ir.num_ranks} ranks but topology has "
                f"{topology.num_ranks}"
            )
        self.ir = ir
        self.topology = topology
        self.protocol = get_protocol(protocol or ir.protocol)
        self.config = config or SimConfig()
        # The direct-copy transport may come from either the protocol
        # (Simple-Direct, the paper's section 7.5 future work) or the
        # SCCL-runtime comparison's explicit config flag.
        self._direct = self.config.direct_copy or self.protocol.direct_copy
        # Per-instance caches: the runtime objects (connections,
        # semaphores, copy engines) are IR-and-protocol determined, and
        # a compiled program additionally depends only on
        # (chunk_bytes, tiles) — sweeps and repeated runs reset instead
        # of rebuilding.
        self._runtime_state = None
        self._program_cache: Dict[Tuple[float, int], List[_TbProgram]] = {}
        self._tiles_cache: Dict[float, int] = {}

    # -- public API -----------------------------------------------------
    def run(self, chunk_bytes: float) -> SimResult:
        """Execute the IR with the given per-chunk payload size."""
        if chunk_bytes <= 0:
            raise SimulationError("chunk_bytes must be positive")
        engine_name = self._resolve_engine()
        if "" in self.config.degradations:
            raise SimulationError(
                "degradations: the empty-string prefix matches every "
                "resource; name a specific resource prefix instead"
            )
        self.topology.reset_resources()
        tracer = self.config.tracer
        if tracer is None and self.config.collect_trace:
            tracer = Tracer()
        tiles = self._tiles_cache.get(chunk_bytes)
        if tiles is None:
            tiles = self._tile_count(chunk_bytes)
            self._tiles_cache[chunk_bytes] = tiles
        connections, semaphores, engines, tb_lengths = self._state()
        machine = self.topology.machine

        spans = [] if tracer is not None else None
        graph = ExecutionGraph() if tracer is not None else None
        if engine_name == "reference":
            loop = EventLoop(tracer=tracer)
            for gpu in self.ir.gpus:
                for tb in gpu.threadblocks:
                    loop.spawn(self._tb_process(
                        loop, gpu.rank, tb, tiles, chunk_bytes,
                        connections, semaphores, engines, tb_lengths,
                        tracer, spans, graph,
                    ))
        else:
            loop = BatchEventLoop(tracer=tracer)
            key = (chunk_bytes, tiles)
            programs = self._program_cache.get(key)
            if programs is None:
                programs = self._compile_programs(
                    chunk_bytes, tiles, connections, semaphores,
                    engines, tb_lengths,
                )
                self._program_cache[key] = programs
            oh = self.config.instruction_overhead
            sem_oh = self.config.semaphore_overhead
            # First check point is ``instruction_overhead`` after
            # launch — where the reference loop's first overhead delay
            # resumes. Empty thread blocks never touch shared state in
            # either engine, so they are not spawned at all.
            if tracer is None:
                # Fresh dense publication maps, sized for this run's
                # tile count; spawning (which primes the generators,
                # binding these lists) must come after.
                for conn in connections.values():
                    total = conn.sends_per_tile * tiles
                    conn.arrival_first = [None] * total
                    conn.arrival_last = [None] * total
                    conn.free_times = [None] * total
                for prog in programs:
                    if prog.recs:
                        loop.spawn(prog.task(prog, tiles, oh, sem_oh),
                                   at=oh)
            else:
                for prog in programs:
                    if prog.recs:
                        loop.spawn(_tb_task_recording(
                            prog, tiles, oh, sem_oh, tracer, spans,
                            graph,
                        ), at=oh)

        elapsed = loop.run()
        for conn in connections.values():
            if conn.issued != conn.consumed_count:
                raise SimulationError(
                    f"connection {conn.key} finished with {conn.issued} "
                    f"sends but {conn.consumed_count} receives"
                )
        self._check_degradations()
        if self.config.include_launch:
            elapsed += machine.kernel_launch_overhead
        busy = {
            name: res.busy_time
            for name, res in self.topology._resources.items()
        }
        if tracer is not None:
            # Root span covering the whole execution (launch included),
            # so the span tree accounts for exactly the reported time.
            tracer.emit(
                "simulate", 0.0, elapsed, cat="sim",
                track=("sim", self.ir.name),
                algorithm=self.ir.name, protocol=self.protocol.name,
                tiles=tiles, chunk_bytes=chunk_bytes,
            )
            for name, busy_us in sorted(busy.items()):
                if busy_us > 0:
                    tracer.add_counter(f"link.{name}.busy_us", busy_us,
                                       t_us=elapsed)
        if graph is not None:
            graph.finalize(
                elapsed,
                machine.kernel_launch_overhead
                if self.config.include_launch else 0.0,
            )
        return SimResult(
            time_us=elapsed,
            tiles=tiles,
            instruction_count=self.ir.instruction_count(),
            threadblocks=self.ir.threadblock_count(),
            chunk_bytes=chunk_bytes,
            protocol=self.protocol.name,
            resource_busy_us=busy,
            tracer=tracer,
            spans=spans,
            graph=graph,
        )

    def execution_graph(self, chunk_bytes: float = 65536.0
                        ) -> ExecutionGraph:
        """One traced run's happens-before graph (for cross-checking).

        Convenience for consumers that want the
        :class:`~repro.observe.ExecutionGraph` — e.g. the conformance
        harness validating executor FIFO pops against the simulator's
        recorded edges — without wiring up a tracer themselves.
        """
        from dataclasses import replace

        config = replace(self.config, collect_trace=True)
        result = IrSimulator(self.ir, self.topology, self.protocol,
                             config).run(chunk_bytes)
        return result.graph

    # -- internals --------------------------------------------------------
    def _resolve_engine(self) -> str:
        engine = self.config.engine
        if engine is None:
            reference = os.environ.get(_REFERENCE_ENV, "")
            engine = "reference" if reference not in ("", "0") \
                else "batched"
        if engine not in SIM_ENGINES:
            raise SimulationError(
                f"unknown simulator engine {engine!r}; pick one of "
                f"{', '.join(SIM_ENGINES)}"
            )
        return engine

    def _state(self):
        """Cached (connections, semaphores, engines, tb_lengths).

        Built once per simulator instance — they depend only on the IR,
        protocol, and machine — and reset to the pre-run state on every
        call, so repeated runs (sweeps, tuning, conformance reruns) skip
        the construction cost.
        """
        state = self._runtime_state
        if state is None:
            machine = self.topology.machine
            connections = self._build_connections()
            semaphores: Dict[Tuple[int, int], _Semaphore] = {}
            engines: Dict[Tuple[int, int], Resource] = {}
            tb_lengths: Dict[Tuple[int, int], int] = {}
            for gpu in self.ir.gpus:
                for tb in gpu.threadblocks:
                    key = (gpu.rank, tb.tb_id)
                    semaphores[key] = _Semaphore()
                    engines[key] = Resource(
                        f"engine[{gpu.rank},{tb.tb_id}]",
                        machine.threadblock_bandwidth,
                    )
                    tb_lengths[key] = len(tb.instructions)
            state = (connections, semaphores, engines, tb_lengths)
            self._runtime_state = state
            return state
        connections, semaphores, engines, _tb_lengths = state
        for conn in connections.values():
            conn.reset()
        for sem in semaphores.values():
            sem.reset()
        for engine in engines.values():
            engine.reset()
        return state

    def _degradation(self, resource_name: str) -> float:
        """Bandwidth multiplier for an (optionally degraded) resource."""
        for prefix, factor in self.config.degradations.items():
            if resource_name.startswith(prefix):
                return factor
        return 1.0

    def _check_degradations(self) -> None:
        """Reject fault injections that silently did nothing.

        A typo'd degradation prefix matches no resource, so the run
        completes fault-free — the worst failure mode for a fault
        study. After the run, any prefix that matched none of the
        resources the transfers actually consulted raises.
        """
        degradations = self.config.degradations
        if not degradations:
            return
        consulted = set()
        for gpu in self.ir.gpus:
            for tb in gpu.threadblocks:
                if tb.send_peer is None:
                    continue
                if not any(instr.op in SEND_OPS
                           for instr in tb.instructions):
                    continue
                path, _alpha, _cross = self.topology.path(
                    gpu.rank, tb.send_peer)
                consulted.update(res.name for res in path)
        unmatched = sorted(
            prefix for prefix in degradations
            if not any(name.startswith(prefix) for name in consulted)
        )
        if unmatched:
            names = sorted(consulted)
            shown = ", ".join(names[:8]) + (", ..." if len(names) > 8
                                            else "")
            raise SimulationError(
                "degradations matched no simulated resource: "
                + ", ".join(repr(p) for p in unmatched)
                + "; this run consulted " + (shown or "no shared links")
            )

    def _tile_count(self, chunk_bytes: float) -> int:
        """Pipelining trip count from the largest instruction payload.

        Sized from the same max-span-count basis as
        :meth:`_instr_bytes`, so variable-sized chunks (alltoallv
        ``count > 1`` spans) tile against the bytes they actually move
        rather than the bare chunk fraction.
        """
        largest = 0.0
        for gpu in self.ir.gpus:
            for tb in gpu.threadblocks:
                for instr in tb.instructions:
                    frac = float(instr.frac_hi - instr.frac_lo)
                    nbytes = chunk_bytes * frac * _span_count(instr)
                    if nbytes > largest:
                        largest = nbytes
        tiles = max(1, math.ceil(largest / self.protocol.slot_bytes))
        return min(tiles, self.config.max_tiles)

    def _build_connections(self) -> Dict[Tuple[int, int, int], _Connection]:
        sends_per_tile: Dict[Tuple[int, int, int], int] = {}
        keys = set()
        for gpu in self.ir.gpus:
            for tb in gpu.threadblocks:
                if tb.send_peer is not None:
                    key = (gpu.rank, tb.send_peer, tb.channel)
                    keys.add(key)
                    count = sum(
                        1 for instr in tb.instructions
                        if instr.op in SEND_OPS
                    )
                    sends_per_tile[key] = count
                if tb.recv_peer is not None:
                    keys.add((tb.recv_peer, gpu.rank, tb.channel))
        return {
            key: _Connection(key, self.protocol.num_slots,
                             sends_per_tile.get(key, 0))
            for key in keys
        }

    def _instr_bytes(self, instr, chunk_bytes: float, tiles: int) -> float:
        # Prefer the spans' own counts (they can differ from
        # ``instr.count`` once chunks are variable-sized, e.g.
        # alltoallv); a span-less nop moves zero bytes.
        frac = float(instr.frac_hi - instr.frac_lo)
        return chunk_bytes * frac * _span_count(instr) / tiles

    def _watched_tbs(self) -> set:
        """(rank, tb) keys whose progress semaphore anyone waits on.

        Extracted from the same dependence structure the deadlock audit
        walks (:func:`~repro.core.verification.dependence_edges`); for
        IRs too malformed for the edge builder (which raises on
        unbalanced connections the simulator reports in its own way),
        fall back to scanning the ``depends`` lists directly. The
        batched fast path skips semaphore bookkeeping for every thread
        block outside this set.
        """
        try:
            edges = dependence_edges(self.ir,
                                     num_slots=self.protocol.num_slots)
        except (MscclError, ValueError):
            return {
                (gpu.rank, dep_tb)
                for gpu in self.ir.gpus
                for tb in gpu.threadblocks
                for instr in tb.instructions
                for dep_tb, _dep_step in instr.depends
            }
        return {(src[0], src[1]) for src, _dst, kind in edges
                if kind == "dep"}

    def _compile_programs(self, chunk_bytes: float, tiles: int,
                          connections, semaphores, engines,
                          tb_lengths) -> List[_TbProgram]:
        """Precompile one :class:`_TbProgram` per thread block."""
        machine = self.topology.machine
        proto = self.protocol
        wire_eff = proto.bandwidth_efficiency
        per_message = machine.ib_message_overhead
        reduce_eff = (machine.reduce_bandwidth
                      / machine.threadblock_bandwidth)
        watched = self._watched_tbs()
        use_codegen = os.environ.get("REPRO_SIM_INTERP", "") in ("", "0")
        programs: List[_TbProgram] = []
        for gpu in self.ir.gpus:
            for tb in gpu.threadblocks:
                rank = gpu.rank
                key = (rank, tb.tb_id)
                engine = engines[key]
                sem = semaphores[key]
                prog = _TbProgram()
                prog.rank = rank
                prog.tb_id = tb.tb_id
                prog.channel = tb.channel
                prog.engine = engine
                prog.engine_bw = engine.bandwidth
                prog.sem = sem
                prog.sem_signal = sem.signal
                prog.n = len(tb.instructions)
                prog.watched = key in watched
                prog.out_conn = (
                    connections[(rank, tb.send_peer, tb.channel)]
                    if tb.send_peer is not None else None
                )
                prog.in_conn = (
                    connections[(tb.recv_peer, rank, tb.channel)]
                    if tb.recv_peer is not None else None
                )
                prog.path_pairs = ()
                prog.alpha = 0.0
                prog.cross = False
                prog.label = None
                if tb.send_peer is not None:
                    path, alpha_base, cross = self.topology.path(
                        rank, tb.send_peer)
                    prog.alpha = alpha_base + proto.alpha_overhead
                    prog.cross = cross
                    prog.path_pairs = tuple(
                        (res,
                         res.bandwidth
                         * (wire_eff * self._degradation(res.name)))
                        for res in path
                    )
                    prog.label = f"r{rank}->r{tb.send_peer} ch{tb.channel}"
                instrs = tb.instructions
                if instrs:
                    fracs = np.array(
                        [float(i.frac_hi - i.frac_lo) for i in instrs])
                    counts = np.array([_span_count(i) for i in instrs],
                                      dtype=np.float64)
                    nbytes_list = (
                        chunk_bytes * fracs * counts / tiles).tolist()
                else:
                    nbytes_list = []
                direct = self._direct
                recs = []
                meta = []
                for step, instr in enumerate(instrs):
                    op = instr.op
                    nbytes = nbytes_list[step]
                    receives = op in RECV_OPS
                    sends = op in SEND_OPS
                    reduces = op in REDUCE_OPS
                    if receives and prog.in_conn is None:
                        raise SimulationError(
                            f"{op} with no recv peer")
                    if sends and prog.out_conn is None:
                        raise SimulationError(
                            f"{op} with no send peer")
                    wire_overhead = 0.0
                    if sends and prog.cross:
                        basis = nbytes * tiles
                        if not basis:
                            basis = nbytes
                        wire_overhead = (
                            per_message * (nbytes / basis)
                            if basis else None
                        )
                    deps = tuple(
                        (semaphores[(rank, dep_tb)],
                         semaphores[(rank, dep_tb)].times,
                         semaphores[(rank, dep_tb)].signal,
                         tb_lengths[(rank, dep_tb)],
                         dep_step + 1,
                         dep_tb)
                        for dep_tb, dep_step in instr.depends
                    )
                    consume_denom = (engine.bandwidth * reduce_eff
                                     if reduces else engine.bandwidth)
                    # Per-occurrence durations are tile-invariant;
                    # folding the divisions into the program keeps them
                    # out of the fast generators (the floats are
                    # bitwise-identical — same dividend, same divisor).
                    path_durs = None
                    if sends and wire_overhead is not None:
                        path_durs = tuple(
                            (res, nbytes / denom + wire_overhead)
                            for res, denom in prog.path_pairs
                        )
                    recs.append((
                        deps,
                        receives,
                        sends,
                        op in LOCAL_OPS,
                        op in FUSED_SEND_OPS,
                        direct and not reduces,
                        nbytes,
                        instr.recv_seq,
                        wire_overhead,
                        consume_denom,
                        step + 1,
                        instr.has_dep,
                        nbytes / consume_denom,
                        nbytes / engine.bandwidth,
                        path_durs,
                    ))
                    meta.append((op.value, frozenset(instr.lineage or ())))
                prog.recs = recs
                prog.meta = meta
                # Shape-specialized generator (repro.runtime.codegen);
                # the interpreter below stays as the fallback and the
                # REPRO_SIM_INTERP=1 triage path.
                prog.task = _tb_task_fast
                if recs and use_codegen:
                    generated = codegen.task_factory(prog)
                    if generated is not None:
                        prog.task = generated
                programs.append(prog)
        return programs

    def _tb_process(self, loop: EventLoop, rank: int, tb, tiles: int,
                    chunk_bytes: float, connections, semaphores, engines,
                    tb_lengths, tracer=None, spans=None, graph=None):
        """Generator process: the interpreter loop of paper Figure 5.

        With ``graph`` present, every instruction occurrence additionally
        records an :class:`ExecNode` whose segments tile its interval
        (waits carry the releasing node as cause) plus the explicit
        semaphore / FIFO / slot happens-before edges.
        """
        cfg = self.config
        machine = self.topology.machine
        engine = engines[(rank, tb.tb_id)]
        my_sem = semaphores[(rank, tb.tb_id)]
        n = len(tb.instructions)
        out_conn = None
        in_conn = None
        if tb.send_peer is not None:
            out_conn = connections[(rank, tb.send_peer, tb.channel)]
        if tb.recv_peer is not None:
            in_conn = connections[(tb.recv_peer, rank, tb.channel)]
        reduce_eff = machine.reduce_bandwidth / machine.threadblock_bandwidth

        for tile in range(tiles):
            for step, instr in enumerate(tb.instructions):
                key = (rank, tb.tb_id, tile, step)
                segs = [] if graph is not None else None
                instr_start = loop.now
                yield ("delay", cfg.instruction_overhead)
                if segs is not None and loop.now > instr_start:
                    segs.append(Segment("overhead", instr_start, loop.now))

                # Cross thread block dependencies (dep modifier).
                for dep_tb, dep_step in instr.depends:
                    dep_sem = semaphores[(rank, dep_tb)]
                    dep_len = tb_lengths[(rank, dep_tb)]
                    target = tile * dep_len + dep_step + 1
                    wait_from = loop.now
                    while dep_sem.value < target:
                        yield ("wait", dep_sem.signal)
                    if graph is not None:
                        graph.edges.append(Edge(
                            "sem", (rank, dep_tb, tile, dep_step), key,
                            loop.now,
                        ))
                        if loop.now > wait_from:
                            # The releaser is the most recent signaler;
                            # its instruction ends exactly now.
                            flat = dep_sem.value - 1
                            cause = (rank, dep_tb, flat // dep_len,
                                     flat % dep_len)
                            segs.append(Segment(
                                "sem_wait", wait_from, loop.now,
                                cause=cause,
                            ))

                nbytes = self._instr_bytes(instr, chunk_bytes, tiles)
                receives = instr.op in RECV_OPS
                sends = instr.op in SEND_OPS
                reduces = instr.op in REDUCE_OPS

                # All waits happen up front; the timing arithmetic below
                # is then purely computational (cut-through streaming).
                msg_last = None
                recv_target = None
                msg = None
                if receives:
                    if in_conn is None:
                        raise SimulationError(f"{instr.op} with no recv peer")
                    recv_target = (
                        tile * in_conn.sends_per_tile + instr.recv_seq
                    )
                    wait_from = loop.now
                    while recv_target not in in_conn.arrivals:
                        yield ("wait", in_conn.arrival_signal)
                    msg_last = in_conn.arrivals[recv_target]
                    if graph is not None:
                        msg = in_conn.messages.get(recv_target)
                        producer = msg["producer"] if msg else None
                        graph.edges.append(Edge(
                            "fifo", producer, key, loop.now,
                        ))
                        if loop.now > wait_from:
                            segs.append(Segment(
                                "fifo_stall", wait_from, loop.now,
                                cause=producer, detail=msg,
                            ))
                if sends:
                    if out_conn is None:
                        raise SimulationError(f"{instr.op} with no send peer")
                    send_seq = out_conn.issued
                    # The message reuses slot (seq mod slots); it must
                    # have been drained by the matching receive.
                    wait_from = loop.now
                    while (send_seq >= out_conn.slots
                           and (send_seq - out_conn.slots)
                           not in out_conn.consumed):
                        yield ("wait", out_conn.slot_signal)
                    if graph is not None and loop.now > wait_from:
                        freed = out_conn.freed_by.get(
                            send_seq - out_conn.slots
                        )
                        segs.append(Segment(
                            "slot_wait", wait_from, loop.now, cause=freed,
                        ))
                        graph.edges.append(Edge(
                            "slot", freed, key, loop.now,
                        ))
                    out_conn.issued += 1

                start = loop.now
                data_ready = start
                if receives:
                    # Consume: copy (and reduce) out of the FIFO slots as
                    # they stream in. Direct-copy transports land data in
                    # place, so only reductions cost receiver time.
                    if self._direct and not reduces:
                        data_ready = max(start, msg_last)
                        if segs is not None and data_ready > start:
                            _transfer_segments(segs, start, data_ready,
                                               msg)
                    else:
                        eff = reduce_eff if reduces else 1.0
                        finish = engine.reserve(start, nbytes, eff)
                        data_ready = max(finish, msg_last)
                        if segs is not None:
                            if finish > start:
                                segs.append(Segment("compute", start,
                                                    finish))
                            if data_ready > finish:
                                # Tail of the incoming message still
                                # streaming in past the consume pass.
                                _transfer_segments(segs, finish,
                                                   data_ready, msg)
                    self._spawn_slot_free(
                        loop, in_conn, recv_target, data_ready,
                        consumer=key if graph is not None else None,
                    )
                elif instr.op in LOCAL_OPS:
                    eff = reduce_eff if reduces else 1.0
                    data_ready = engine.reserve(start, nbytes, eff)
                    if segs is not None and data_ready > start:
                        segs.append(Segment("compute", start, data_ready))

                if sends:
                    release, out_msg = self._launch_transfer(
                        loop, rank, tb.send_peer, nbytes, engine,
                        out_conn, stream_start=start,
                        data_ready=data_ready,
                        fused=instr.op in FUSED_SEND_OPS,
                        message_bytes=nbytes * tiles,
                        producer=key if graph is not None else None,
                    )
                    if segs is not None:
                        produce_finish = out_msg["produce_finish"]
                        if (instr.op not in FUSED_SEND_OPS
                                and produce_finish > start):
                            segs.append(Segment("compute", start,
                                                produce_finish))
                        base = max(produce_finish, data_ready)
                        if release > base:
                            # Wire occupancy until the peer holds the
                            # last byte (NVLink sends block on it).
                            _transfer_segments(segs, base, release,
                                               out_msg)
                    yield ("at", release)
                else:
                    yield ("at", data_ready)

                if instr.has_dep:
                    fence_from = loop.now
                    yield ("delay", cfg.semaphore_overhead)
                    if segs is not None and loop.now > fence_from:
                        segs.append(Segment("overhead", fence_from,
                                            loop.now))
                my_sem.value = tile * n + step + 1
                loop.notify(my_sem.signal)
                if tracer is not None:
                    span = tracer.emit(
                        instr.op.value, instr_start, loop.now,
                        cat="instr",
                        track=(f"rank {rank}", f"tb {tb.tb_id}"),
                        track_ids=(rank, tb.tb_id),
                        rank=rank, tb=tb.tb_id, channel=tb.channel,
                        step=step, tile=tile, nbytes=nbytes,
                    )
                    spans.append(span)
                if graph is not None:
                    graph.add_node(ExecNode(
                        key, instr.op.value, tb.channel, nbytes,
                        instr_start, loop.now, segs,
                        frozenset(instr.lineage or ()),
                    ))

    def _spawn_slot_free(self, loop: EventLoop, conn: _Connection,
                         seq: int, when: float,
                         consumer: Optional[tuple] = None) -> None:
        """Free a FIFO slot once the receiver fully drained the message."""
        if consumer is not None:
            conn.freed_by[seq] = consumer

        def free():
            yield ("at", when)
            conn.consumed.add(seq)
            conn.consumed_count += 1
            loop.notify(conn.slot_signal)

        loop.spawn(free())

    def _launch_transfer(self, loop: EventLoop, src: int, dst: int,
                         nbytes: float, engine: Resource, conn: _Connection,
                         stream_start: float, data_ready: float,
                         fused: bool, message_bytes: float = None,
                         producer: Optional[tuple] = None,
                         ) -> Tuple[float, Optional[dict]]:
        """Start one message streaming; returns when the sender unblocks.

        Transfers are cut-through: bytes flow through the path's shared
        resources as the producing pass generates them, so a chain of
        fused forwards adds only per-hop latency (alpha), not a full
        store-and-forward payload time per hop — matching how NCCL and
        the MSCCL interpreter stream FIFO slots.

        With ``producer`` set (execution-graph recording), also returns
        and files on the connection a transfer-detail dict: the sending
        node, departure time, and the bottleneck resource's queueing
        delay and service time, which the critical-path walk uses to
        split blocked intervals into queue / link / FIFO-stall time.
        """
        proto = self.protocol
        path, alpha_base, cross = self.topology.path(src, dst)
        alpha = alpha_base + proto.alpha_overhead
        # Fused sends feed the wire straight from the pass that produced
        # the data; unfused sends pay an extra memory pass through the
        # thread block's copy engine. A direct-copy send is exactly one
        # such pass (straight into the peer's destination buffer) — its
        # saving is on the receiver, which does nothing.
        if fused:
            produce_finish = data_ready
        else:
            produce_finish = engine.reserve(stream_start, nbytes)
        wire_eff = proto.bandwidth_efficiency
        wire_overhead = 0.0
        if cross:
            # Each InfiniBand message occupies its NICs for a fixed
            # extra cost. Tiles of one instruction stream back to back
            # on a single queue pair, so the per-message cost is spread
            # over them (nbytes is one tile; message_bytes the whole
            # instruction payload).
            per_message = self.topology.machine.ib_message_overhead
            basis = message_bytes if message_bytes else nbytes
            wire_overhead = per_message * (nbytes / basis)
        wire_finish = 0.0
        queue_us = 0.0
        service_us = 0.0
        bottleneck = None
        for resource in path:
            eff = wire_eff * self._degradation(resource.name)
            finish, q_us, s_us = resource.reserve_timed(
                stream_start, nbytes, eff, wire_overhead)
            if finish > wire_finish:
                wire_finish = finish
                queue_us = q_us
                service_us = s_us
                bottleneck = resource.name
        first_byte = stream_start + alpha
        last_byte = max(wire_finish, produce_finish) + alpha
        first_byte, last_byte = conn.clamp_fifo(first_byte, last_byte)
        seq = conn.issued - 1  # our seq: issued was bumped by the caller
        msg = None
        if producer is not None:
            msg = {
                "producer": producer,
                "seq": seq,
                "stream_start": stream_start,
                "first_byte": first_byte,
                "last_byte": last_byte,
                "produce_finish": produce_finish,
                "queue_us": queue_us,
                "wire_us": service_us,
                "alpha": alpha,
                "resource": bottleneck,
                "label": f"r{src}->r{dst} ch{conn.key[2]}",
            }
            conn.messages[seq] = msg

        def deliver():
            yield ("at", max(first_byte, loop.now))
            conn.arrivals[seq] = last_byte
            loop.notify(conn.arrival_signal)

        loop.spawn(deliver())
        # InfiniBand sends complete asynchronously through the proxy: the
        # thread block only produces into the staging buffer. NVLink
        # sends occupy the thread block until the last byte is stored on
        # the peer.
        if cross:
            return max(produce_finish, data_ready), msg
        return max(last_byte - alpha, data_ready), msg


def _span_count(instr) -> int:
    """Payload multiplier for one instruction: its widest span, in chunks.

    Spans carry their own counts (which can differ from ``instr.count``
    once chunks are variable-sized, e.g. alltoallv); a span-less nop
    moves zero bytes.
    """
    counts = [span[2] for span in (instr.src, instr.dst)
              if span is not None]
    if counts:
        return max(counts)
    return 0 if instr.op is Op.NOP else instr.count


def _tb_task_fast(prog: _TbProgram, tiles: int, oh: float,
                  sem_oh: float):
    """The batched engine's hot path: one slim generator per thread block.

    Resumed with the current virtual time (``now = yield ...``) at each
    occurrence's *check point* (instruction overhead after the previous
    occurrence's boundary); every per-step constant comes precompiled
    from the :class:`_TbProgram`. An unblocked occurrence costs exactly
    one resumption: its waits, resource reservations, and timing
    arithmetic all run inline at the check point.

    Inter-block state uses *lazy publication*: at its check point a
    producer eagerly writes the virtual time each fact becomes true —
    the message's first-byte arrival (``conn.arrival_first``), the
    slot's drain time (``conn.free_times``), the fence boundary
    (``sem.times``) — and each occurrence's wait chain is evaluated at
    the *previous* occurrence's check point, lifting the next resume
    time through the published times (pure reads of final, monotone
    values). The generator then resumes once, at exactly the virtual
    time the reference loop's last wait would have resolved, and runs
    its resource reservations there in heap order. Only a fact nobody
    has published yet blocks; a
    :data:`~repro.runtime.events.DIRECT_WAKE` action re-queues such
    already-blocked consumers straight at the fact's fire time (every
    fast-path signal has a single publishing thread block). State exclusive to this thread block — its copy
    engine's FCFS horizon, the in-order delivery clamp, the
    issued/consumed counters — lives in locals, with the counters the
    post-run balance check reads flushed on the final occurrence.
    """
    recs = prog.recs
    sem_times = prog.sem.times
    sem_signal = prog.sem_signal
    watched = prog.watched
    out_conn = prog.out_conn
    in_conn = prog.in_conn
    alpha = prog.alpha
    cross = prog.cross
    engine_nf = 0.0  # exclusive copy engine: local FCFS horizon
    consumed = 0
    issued = 0
    prev_first = 0.0
    prev_last = 0.0
    if in_conn is not None:
        in_last = in_conn.arrival_last
        in_first = in_conn.arrival_first
        in_len = len(in_first)
        in_free = in_conn.free_times
        in_spt = in_conn.sends_per_tile
        arrival_signal = in_conn.arrival_signal
        in_slot_signal = in_conn.slot_signal
    if out_conn is not None:
        slots = out_conn.slots
        out_last = out_conn.arrival_last
        out_first = out_conn.arrival_first
        out_free = out_conn.free_times
        out_arrival_signal = out_conn.arrival_signal
        slot_signal = out_conn.slot_signal
    WAKEK = DIRECT_WAKE
    remaining = tiles * len(recs)
    pending = None

    now = yield  # primed; first resumption arrives at the check point
    wake = now
    for tile in range(tiles):
        if in_conn is not None:
            recv_base = tile * in_spt
        for rec in recs:
            (deps, receives, sends, local, fused, direct_recv, _nbytes,
             recv_seq, _wire_overhead, _consume_denom, _step1, has_dep,
             consume_dur, produce_dur, path_durs) = rec

            # -- wait chain: evaluated here, at the previous
            # occurrence's check point. `wake` starts at this
            # occurrence's own check point and is lifted through each
            # published time (final, monotone values — safe to read
            # early). An unpublished fact first advances virtual time
            # to the best-known lower bound and re-checks there — the
            # reference loop's own check discipline — and blocks only
            # if the producer still has not reached its check point
            # (it will see this waiter there and push a WAKE at the
            # fact's fire time).
            for _sem, dep_times, dep_signal, dep_len, base, _tb in deps:
                target = tile * dep_len + base
                while len(dep_times) < target:
                    if pending is not None:
                        now = yield (pending,
                                     wake if wake > now else dep_signal)
                        pending = None
                    elif wake > now:
                        now = yield wake
                    else:
                        now = yield dep_signal
                    if now > wake:
                        wake = now
                t = dep_times[target - 1]
                if t > wake:
                    wake = t
            if receives:
                rt = recv_base + recv_seq
                while True:
                    first = in_first[rt] if rt < in_len else None
                    if first is not None:
                        if first > wake:
                            wake = first
                        break
                    if pending is not None:
                        now = yield (pending,
                                     wake if wake > now
                                     else arrival_signal)
                        pending = None
                    elif wake > now:
                        now = yield wake
                    else:
                        now = yield arrival_signal
                    if now > wake:
                        wake = now
                msg_last = in_last[rt]
            if sends:
                send_seq = issued
                if send_seq >= slots:
                    freed = send_seq - slots
                    while True:
                        ft = out_free[freed]
                        if ft is not None:
                            if ft > wake:
                                wake = ft
                            break
                        if pending is not None:
                            now = yield (pending,
                                         wake if wake > now
                                         else slot_signal)
                            pending = None
                        elif wake > now:
                            now = yield wake
                        else:
                            now = yield slot_signal
                        if now > wake:
                            wake = now
                issued = send_seq + 1

            if pending is not None:
                now = yield (pending, wake)
                pending = None
            elif wake > now:
                now = yield wake
            # now == wake: the reference loop's last wait for this
            # occurrence resolved at exactly this virtual time; the
            # reservations below run here, in heap order.
            start = now
            data_ready = start
            if receives:
                if direct_recv:
                    data_ready = start if start >= msg_last else msg_last
                else:
                    rstart = start if start >= engine_nf else engine_nf
                    finish = rstart + consume_dur
                    engine_nf = finish
                    data_ready = finish if finish >= msg_last else msg_last
            elif local:
                rstart = start if start >= engine_nf else engine_nf
                data_ready = rstart + consume_dur
                engine_nf = data_ready

            actions = None
            if sends:
                if path_durs is None:
                    raise ZeroDivisionError("float division by zero")
                if fused:
                    produce_finish = data_ready
                else:
                    rstart = start if start >= engine_nf else engine_nf
                    produce_finish = rstart + produce_dur
                    engine_nf = produce_finish
                wire_finish = 0.0
                for res, dur in path_durs:
                    nf = res.next_free
                    rstart = start if start >= nf else nf
                    finish = rstart + dur
                    res.next_free = finish
                    res.busy_time += dur
                    if finish > wire_finish:
                        wire_finish = finish
                first_byte = start + alpha
                peak = (wire_finish if wire_finish >= produce_finish
                        else produce_finish)
                last_byte = peak + alpha
                # In-order delivery clamp (reference clamp_fifo).
                if first_byte < prev_first:
                    first_byte = prev_first
                if last_byte < prev_last:
                    last_byte = prev_last
                if last_byte < first_byte:
                    last_byte = first_byte
                prev_first = first_byte
                prev_last = last_byte
                if cross:
                    release = (produce_finish
                               if produce_finish >= data_ready
                               else data_ready)
                else:
                    drained = last_byte - alpha
                    release = (drained if drained >= data_ready
                               else data_ready)
                out_first[send_seq] = first_byte
                out_last[send_seq] = last_byte
                if out_arrival_signal._waiters:
                    actions = ((WAKEK, first_byte, out_arrival_signal),)
            else:
                release = data_ready
            if receives:
                in_free[rt] = data_ready
                consumed += 1
                if in_slot_signal._waiters:
                    wk = (WAKEK, data_ready, in_slot_signal)
                    actions = (actions + (wk,) if actions else (wk,))

            boundary = release + sem_oh if has_dep else release
            if watched:
                sem_times.append(boundary)
                if sem_signal._waiters:
                    wk = (WAKEK, boundary, sem_signal)
                    actions = (actions + (wk,) if actions else (wk,))
            remaining -= 1
            if remaining:
                pending = actions
                wake = boundary + oh
            else:
                # Final occurrence: flush the exclusive counters the
                # post-run balance check reads, then one last
                # resumption at the boundary (the reference loop's
                # last event for this block) and StopIteration.
                if in_conn is not None:
                    in_conn.consumed_count = consumed
                if out_conn is not None:
                    out_conn.issued = issued
                if actions is not None:
                    yield (actions, boundary)
                else:
                    yield boundary
                return


def _tb_task_recording(prog: _TbProgram, tiles: int, oh: float,
                       sem_oh: float, tracer, spans, graph):
    """The batched engine's traced path.

    Identical scheduling to :func:`_tb_task_fast` plus the exact
    recording of :meth:`IrSimulator._tb_process`: one span and one
    :class:`ExecNode` per occurrence, the same segments, edges, and
    FIFO message-detail dicts. Interval boundaries the reference loop
    observes on its release/fence resumptions (which the batched
    engine never takes) are recorded from the computed values instead
    — the floats are identical by construction.
    """
    recs = prog.recs
    metas = prog.meta
    rank = prog.rank
    tb_id = prog.tb_id
    channel = prog.channel
    engine = prog.engine
    engine_bw = prog.engine_bw
    sem = prog.sem
    sem_signal = prog.sem_signal
    n = prog.n
    watched = prog.watched
    out_conn = prog.out_conn
    in_conn = prog.in_conn
    path_pairs = prog.path_pairs
    alpha = prog.alpha
    cross = prog.cross
    label = prog.label
    edges = graph.edges
    track = (f"rank {rank}", f"tb {tb_id}")
    remaining = tiles * len(recs)
    boundary = 0.0

    now = yield  # primed; first resumption arrives at the check point
    for tile in range(tiles):
        for step, rec in enumerate(recs):
            (deps, receives, sends, local, fused, direct_recv, nbytes,
             recv_seq, wire_overhead, consume_denom, step1, has_dep,
             _consume_dur, _produce_dur, _path_durs) = rec
            key = (rank, tb_id, tile, step)
            segs = []
            instr_start = boundary
            if now > instr_start:
                segs.append(Segment("overhead", instr_start, now))

            for dep_sem, _dep_times, dep_signal, dep_len, base, \
                    dep_tb in deps:
                target = tile * dep_len + base
                wait_from = now
                while dep_sem.value < target:
                    now = yield dep_signal
                edges.append(Edge("sem", (rank, dep_tb, tile, base - 1),
                                  key, now))
                if now > wait_from:
                    flat = dep_sem.value - 1
                    cause = (rank, dep_tb, flat // dep_len,
                             flat % dep_len)
                    segs.append(Segment("sem_wait", wait_from, now,
                                        cause=cause))

            msg_last = None
            msg = None
            rt = None
            if receives:
                rt = tile * in_conn.sends_per_tile + recv_seq
                wait_from = now
                while rt not in in_conn.arrivals:
                    now = yield in_conn.arrival_signal
                msg_last = in_conn.arrivals[rt]
                msg = in_conn.messages.get(rt)
                producer = msg["producer"] if msg else None
                edges.append(Edge("fifo", producer, key, now))
                if now > wait_from:
                    segs.append(Segment("fifo_stall", wait_from, now,
                                        cause=producer, detail=msg))
            if sends:
                send_seq = out_conn.issued
                slots = out_conn.slots
                wait_from = now
                while (send_seq >= slots
                       and (send_seq - slots) not in out_conn.consumed):
                    now = yield out_conn.slot_signal
                if now > wait_from:
                    freed = out_conn.freed_by.get(send_seq - slots)
                    segs.append(Segment("slot_wait", wait_from, now,
                                        cause=freed))
                    edges.append(Edge("slot", freed, key, now))
                out_conn.issued = send_seq + 1

            start = now
            data_ready = start
            actions = None
            if receives:
                if direct_recv:
                    data_ready = start if start >= msg_last else msg_last
                    if data_ready > start:
                        _transfer_segments(segs, start, data_ready, msg)
                else:
                    nf = engine.next_free
                    rstart = start if start >= nf else nf
                    dur = nbytes / consume_denom
                    finish = rstart + dur
                    engine.next_free = finish
                    engine.busy_time += dur
                    data_ready = finish if finish >= msg_last else msg_last
                    if finish > start:
                        segs.append(Segment("compute", start, finish))
                    if data_ready > finish:
                        _transfer_segments(segs, finish, data_ready, msg)
                in_conn.freed_by[rt] = key
                actions = [(FREE, data_ready, (in_conn, rt))]
            elif local:
                nf = engine.next_free
                rstart = start if start >= nf else nf
                dur = nbytes / consume_denom
                data_ready = rstart + dur
                engine.next_free = data_ready
                engine.busy_time += dur
                if data_ready > start:
                    segs.append(Segment("compute", start, data_ready))

            if sends:
                if wire_overhead is None:
                    raise ZeroDivisionError("float division by zero")
                if fused:
                    produce_finish = data_ready
                else:
                    nf = engine.next_free
                    rstart = start if start >= nf else nf
                    dur = nbytes / engine_bw
                    produce_finish = rstart + dur
                    engine.next_free = produce_finish
                    engine.busy_time += dur
                wire_finish = 0.0
                queue_us = 0.0
                service_us = 0.0
                bottleneck = None
                for res, denom in path_pairs:
                    nf = res.next_free
                    rstart = start if start >= nf else nf
                    dur = nbytes / denom + wire_overhead
                    finish = rstart + dur
                    res.next_free = finish
                    res.busy_time += dur
                    if finish > wire_finish:
                        wire_finish = finish
                        queue_us = rstart - start
                        service_us = dur
                        bottleneck = res.name
                first_byte = start + alpha
                peak = (wire_finish if wire_finish >= produce_finish
                        else produce_finish)
                last_byte = peak + alpha
                prev = out_conn.prev_first
                if first_byte < prev:
                    first_byte = prev
                prev = out_conn.prev_last
                if last_byte < prev:
                    last_byte = prev
                if last_byte < first_byte:
                    last_byte = first_byte
                out_conn.prev_first = first_byte
                out_conn.prev_last = last_byte
                out_msg = {
                    "producer": key,
                    "seq": send_seq,
                    "stream_start": start,
                    "first_byte": first_byte,
                    "last_byte": last_byte,
                    "produce_finish": produce_finish,
                    "queue_us": queue_us,
                    "wire_us": service_us,
                    "alpha": alpha,
                    "resource": bottleneck,
                    "label": label,
                }
                out_conn.messages[send_seq] = out_msg
                if cross:
                    release = (produce_finish
                               if produce_finish >= data_ready
                               else data_ready)
                else:
                    drained = last_byte - alpha
                    release = (drained if drained >= data_ready
                               else data_ready)
                if not fused and produce_finish > start:
                    segs.append(Segment("compute", start, produce_finish))
                base_t = (produce_finish if produce_finish >= data_ready
                          else data_ready)
                if release > base_t:
                    _transfer_segments(segs, base_t, release, out_msg)
                deliver = (DELIVER, first_byte,
                           (out_conn, send_seq, last_byte))
                if actions is None:
                    actions = (deliver,)
                else:
                    actions.append(deliver)
                    actions = tuple(actions)
            else:
                release = data_ready
                if actions is not None:
                    actions = tuple(actions)

            boundary = release + sem_oh if has_dep else release
            if boundary > release:
                segs.append(Segment("overhead", release, boundary))
            if watched:
                sem_act = (SEM, boundary,
                           (sem, tile * n + step1, sem_signal))
                actions = (actions + (sem_act,) if actions
                           else (sem_act,))

            op_value, lineage = metas[step]
            span = tracer.emit(
                op_value, instr_start, boundary, cat="instr",
                track=track, track_ids=(rank, tb_id),
                rank=rank, tb=tb_id, channel=channel,
                step=step, tile=tile, nbytes=nbytes,
            )
            spans.append(span)
            graph.add_node(ExecNode(key, op_value, channel, nbytes,
                                    instr_start, boundary, segs,
                                    lineage))
            remaining -= 1
            if remaining:
                if actions is not None:
                    now = yield (actions, boundary + oh)
                else:
                    now = yield boundary + oh
            else:
                if actions is not None:
                    yield (actions, boundary)
                else:
                    yield boundary
                return


def happens_before_pairs(graph: ExecutionGraph
                         ) -> Dict[str, set]:
    """Collapse a traced run's edges to per-kind instruction pairs.

    Tiles are the simulator's pipelining artifact; the executor runs
    each instruction once. Folding ``(rank, tb, tile, step)`` node keys
    down to ``(rank, tb, step)`` yields the instruction-level
    happens-before relation both runtimes must agree on: the returned
    dict maps each edge kind (``"fifo"``, ``"sem"``, ``"slot"``, plus
    implicit ``"program"`` order) to a set of
    ``((rank, tb, step), (rank, tb, step))`` pairs.
    """
    pairs: Dict[str, set] = {
        "fifo": set(), "sem": set(), "slot": set(), "program": set(),
    }
    for edge in graph.edges:
        if edge.src is None:
            continue
        src = (edge.src[0], edge.src[1], edge.src[3])
        dst = (edge.dst[0], edge.dst[1], edge.dst[3])
        pairs.setdefault(edge.kind, set()).add((src, dst))
    for src, dst in graph.iter_program_edges():
        pairs["program"].add(
            ((src[0], src[1], src[3]), (dst[0], dst[1], dst[3]))
        )
    return pairs


def sim_parity_diffs(a: SimResult, b: SimResult,
                     labels: Tuple[str, str] = ("batched", "reference"),
                     max_diffs: int = 12) -> List[str]:
    """Bitwise field-by-field comparison of two :class:`SimResult`\\ s.

    Returns human-readable difference strings, at most ``max_diffs``
    of them; an empty list means the two runs are indistinguishable —
    same times, busy maps, span streams, execution-graph nodes, edges,
    and happens-before projection. This is the equality contract
    between the batched and reference engines.
    """
    diffs: List[str] = []
    la, lb = labels

    def note(text: str) -> bool:
        diffs.append(text)
        return len(diffs) >= max_diffs

    for name in ("time_us", "tiles", "instruction_count", "threadblocks",
                 "chunk_bytes", "protocol"):
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb and note(f"{name}: {la}={va!r} {lb}={vb!r}"):
            return diffs
    if a.resource_busy_us != b.resource_busy_us:
        for key in sorted(set(a.resource_busy_us)
                          | set(b.resource_busy_us)):
            va = a.resource_busy_us.get(key)
            vb = b.resource_busy_us.get(key)
            if va != vb and note(
                    f"resource_busy_us[{key}]: {la}={va!r} {lb}={vb!r}"):
                return diffs

    if (a.spans is None) != (b.spans is None):
        note(f"spans: recorded by "
             f"{la if a.spans is not None else lb} only")
    elif a.spans is not None:
        if len(a.spans) != len(b.spans):
            note(f"spans: {la} has {len(a.spans)}, "
                 f"{lb} has {len(b.spans)}")
        # Canonical order: the engines emit the same spans with the
        # same values but may interleave thread blocks differently
        # (the batched engine emits at the check point, the reference
        # at the occurrence boundary).
        fa = sorted(_span_fingerprint(s) for s in a.spans)
        fb = sorted(_span_fingerprint(s) for s in b.spans)
        for i, (sa, sb) in enumerate(zip(fa, fb)):
            if sa != sb:
                if note(f"span[{i}]: {la}={sa!r} {lb}={sb!r}"):
                    return diffs

    if (a.graph is None) != (b.graph is None):
        note(f"graph: recorded by "
             f"{la if a.graph is not None else lb} only")
    elif (a.graph is not None
          and a.graph.fingerprint() != b.graph.fingerprint()):
        graph_diffs_before = len(diffs)
        na = a.graph.node_fingerprints()
        nb = b.graph.node_fingerprints()
        for key in sorted(set(na) | set(nb)):
            if na.get(key) != nb.get(key):
                if note(f"graph node {key}: {la}={na.get(key)!r} "
                        f"{lb}={nb.get(key)!r}"):
                    return diffs
        ea = sorted(((e.kind, e.src, e.dst, e.t_us)
                     for e in a.graph.edges), key=_edge_sort_key)
        eb = sorted(((e.kind, e.src, e.dst, e.t_us)
                     for e in b.graph.edges), key=_edge_sort_key)
        if ea != eb:
            note(f"graph edges differ ({la}: {len(ea)}, {lb}: {len(eb)})")
        if happens_before_pairs(a.graph) != happens_before_pairs(b.graph):
            note("happens-before pairs differ")
        if len(diffs) == graph_diffs_before:
            note("graph fingerprints differ (finalize totals)")
    return diffs


def _span_fingerprint(span: Span) -> tuple:
    return (span.name, span.cat, span.start_us, span.end_us, span.track,
            span.track_ids, tuple(sorted(span.args.items())))


def _transfer_segments(segs: List[Segment], lo: float, hi: float,
                       msg: Optional[dict]) -> None:
    """Tile a wire-bound interval into queue / link / stall segments.

    ``[lo, hi)`` is time an instruction spent bound to a message on the
    wire (the streaming tail on the receive side, the occupancy until
    last byte on the send side). The message's bottleneck-resource
    detail splits it: FCFS queueing first, then serialization; whatever
    remains is in-order-delivery clamping or producer gating, i.e. a
    FIFO stall.
    """
    total = hi - lo
    detail = msg or {}
    link_t = min(detail.get("wire_us", 0.0), total)
    queue_t = min(detail.get("queue_us", 0.0), total - link_t)
    stall_t = total - link_t - queue_t
    t = lo
    for kind, dur in (("queue", queue_t), ("link", link_t),
                      ("fifo_stall", stall_t)):
        if dur > 0:
            segs.append(Segment(kind, t, t + dur, detail=detail))
            t += dur
