"""An NCCL-like communicator facade over the simulated runtime.

The paper's runtime "is API-compatible with NCCL allowing existing ML
workloads to easily convert" and "dynamically selects the right
algorithm to invoke based on user configurable size ranges and falls
back to NCCL's built-in algorithms otherwise" (section 6). This module
provides that surface for the simulator: a :class:`Communicator` with
``all_reduce`` / ``all_to_all`` / ``all_gather`` calls that select a
registered MSCCLang program by buffer size, simulate it, and fall back
to the NCCL model when nothing better is registered.

Registration takes the :class:`~repro.core.compiler.CompiledAlgorithm`
handle returned by ``compile_program``::

    algo = compile_program(program)
    comm.register(algo, max_bytes=2 * MiB, label="ring-ll")

The legacy ``register(ir, collective)`` pair was removed after its
deprecation cycle; pass the handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.compiler import CompiledAlgorithm
from ..core.errors import RuntimeConfigError
from ..nccl.selector import NcclModel
from ..topology.model import Topology
from .config import AlgorithmRegistry
from .simulator import IrSimulator, SimConfig, SimResult


@dataclass
class CallRecord:
    """One collective invocation, for profiling-style introspection."""

    collective: str
    buffer_bytes: float
    algorithm: str
    time_us: float


@dataclass
class Communicator:
    """Simulated NCCL-compatible communicator on a topology.

    Register tuned MSCCLang programs with :meth:`register`; collective
    calls select by size and fall back to the NCCL baseline. Every call
    is recorded in :attr:`history` with the algorithm used and its
    simulated latency, so workload traces can be replayed and audited;
    :meth:`summary` aggregates that history per collective.
    """

    topology: Topology
    sim_config: SimConfig = field(default_factory=SimConfig)
    history: List[CallRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._registries: Dict[str, AlgorithmRegistry] = {}
        self._nccl = NcclModel(self.topology, self.sim_config)

    @property
    def num_ranks(self) -> int:
        return self.topology.num_ranks

    # -- registration ----------------------------------------------------
    def register(self, algorithm: CompiledAlgorithm, *,
                 min_bytes: float = 0.0,
                 max_bytes: float = float("inf"),
                 label: str = "") -> None:
        """Register a compiled algorithm for a buffer-size range.

        ``algorithm`` is the :class:`CompiledAlgorithm` from
        ``compile_program`` — one object carrying the IR and its
        collective. (The pre-PR-1 ``register(ir, collective)`` pair is
        gone; positional extras now raise ``TypeError``.)
        """
        if not isinstance(algorithm, CompiledAlgorithm):
            raise RuntimeConfigError(
                "register() needs the CompiledAlgorithm returned by "
                "compile_program (bare MscclIr registration was removed "
                "with the deprecated (ir, collective) pair)"
            )
        ir = algorithm.ir
        collective = algorithm.collective
        if ir.num_ranks != self.num_ranks:
            raise RuntimeConfigError(
                f"program has {ir.num_ranks} ranks, communicator has "
                f"{self.num_ranks}"
            )
        registry = self._registries.setdefault(
            ir.collective, AlgorithmRegistry(ir.collective)
        )
        # Sizing rides along at construction time so calls can convert
        # buffer bytes to chunks (and adopted registries stay coherent).
        registry.register(
            ir, min_bytes=min_bytes, max_bytes=max_bytes, label=label,
            sizing_chunks=collective.sizing_chunks(),
        )

    def register_registry(self, registry: AlgorithmRegistry,
                          sizing_chunks: Optional[int] = None) -> None:
        """Adopt a whole registry (e.g. from the autotuner).

        Entries carry their sizing from registration time;
        ``sizing_chunks`` overrides it for registries built before
        sizing moved into the entry constructor.
        """
        if sizing_chunks is not None:
            for entry in registry.algorithms:
                entry.sizing_chunks = sizing_chunks
        self._registries[registry.collective_name] = registry

    # -- collective calls ---------------------------------------------------
    def all_reduce(self, buffer_bytes: float) -> SimResult:
        return self._call("allreduce", buffer_bytes,
                          fallback=self._nccl.allreduce_time)

    def all_to_all(self, buffer_bytes: float) -> SimResult:
        return self._call("alltoall", buffer_bytes,
                          fallback=self._nccl.alltoall_time)

    def all_gather(self, buffer_bytes: float) -> SimResult:
        return self._call("allgather", buffer_bytes, fallback=None)

    def reduce_scatter(self, buffer_bytes: float) -> SimResult:
        return self._call("reducescatter", buffer_bytes, fallback=None)

    def _call(self, collective: str, buffer_bytes: float,
              fallback) -> SimResult:
        registry = self._registries.get(collective)
        entry = None
        if registry is not None:
            for candidate in registry.algorithms:
                if candidate.matches(buffer_bytes):
                    entry = candidate
                    break
        if entry is not None:
            simulator = IrSimulator(entry.ir, self.topology,
                                    config=self.sim_config)
            result = simulator.run(
                chunk_bytes=buffer_bytes / entry.sizing_chunks
            )
            label = entry.label
        elif fallback is not None:
            result = fallback(buffer_bytes)
            label = "nccl-fallback"
        else:
            raise RuntimeConfigError(
                f"no algorithm registered for {collective} at "
                f"{buffer_bytes} bytes and NCCL has no built-in here"
            )
        self.history.append(CallRecord(
            collective=collective, buffer_bytes=buffer_bytes,
            algorithm=label, time_us=result.time_us,
        ))
        return result

    # -- introspection ------------------------------------------------------
    def total_time_us(self) -> float:
        return sum(record.time_us for record in self.history)

    def summary(self) -> Dict[str, Dict]:
        """Structured history: per-collective call counts, simulated
        time, and the per-algorithm breakdown::

            {"allreduce": {"calls": 3, "total_us": 812.5,
                           "algorithms": {"ring-ll": {...}, ...}}}
        """
        out: Dict[str, Dict] = {}
        for record in self.history:
            coll = out.setdefault(record.collective, {
                "calls": 0, "total_us": 0.0, "algorithms": {},
            })
            coll["calls"] += 1
            coll["total_us"] += record.time_us
            algo = coll["algorithms"].setdefault(record.algorithm, {
                "calls": 0, "total_us": 0.0,
            })
            algo["calls"] += 1
            algo["total_us"] += record.time_us
        return out

    def summary_text(self) -> str:
        """Per-algorithm call counts and cumulative time, as a table."""
        lines = [f"{'collective':<14s} {'algorithm':<28s} "
                 f"{'calls':>6s} {'total us':>12s}"]
        for collective, coll in sorted(self.summary().items()):
            for label, algo in sorted(coll["algorithms"].items()):
                lines.append(
                    f"{collective:<14s} {label:<28s} "
                    f"{algo['calls']:>6d} {algo['total_us']:>12.1f}"
                )
        return "\n".join(lines)
