"""An NCCL-like communicator facade over the simulated runtime.

The paper's runtime "is API-compatible with NCCL allowing existing ML
workloads to easily convert" and "dynamically selects the right
algorithm to invoke based on user configurable size ranges and falls
back to NCCL's built-in algorithms otherwise" (section 6). This module
provides that surface for the simulator: a :class:`Communicator` with
``all_reduce`` / ``all_to_all`` / ``all_gather`` calls that select a
registered MSCCLang program by buffer size, simulate it, and fall back
to the NCCL model when nothing better is registered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.collectives import Collective
from ..core.errors import RuntimeConfigError
from ..core.ir import MscclIr
from ..nccl.selector import NcclModel
from ..topology.model import Topology
from .config import AlgorithmRegistry
from .simulator import IrSimulator, SimConfig, SimResult


@dataclass
class CallRecord:
    """One collective invocation, for profiling-style introspection."""

    collective: str
    buffer_bytes: float
    algorithm: str
    time_us: float


@dataclass
class Communicator:
    """Simulated NCCL-compatible communicator on a topology.

    Register tuned MSCCLang programs with :meth:`register`; collective
    calls select by size and fall back to the NCCL baseline. Every call
    is recorded in :attr:`history` with the algorithm used and its
    simulated latency, so workload traces can be replayed and audited.
    """

    topology: Topology
    sim_config: SimConfig = field(default_factory=SimConfig)
    history: List[CallRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._registries: Dict[str, AlgorithmRegistry] = {}
        self._nccl = NcclModel(self.topology, self.sim_config)

    @property
    def num_ranks(self) -> int:
        return self.topology.num_ranks

    # -- registration ----------------------------------------------------
    def register(self, ir: MscclIr, collective: Collective,
                 min_bytes: float = 0.0,
                 max_bytes: float = float("inf"),
                 label: str = "") -> None:
        """Register a compiled program for a buffer-size range."""
        if ir.num_ranks != self.num_ranks:
            raise RuntimeConfigError(
                f"program has {ir.num_ranks} ranks, communicator has "
                f"{self.num_ranks}"
            )
        registry = self._registries.setdefault(
            ir.collective, AlgorithmRegistry(ir.collective)
        )
        entry = registry.register(ir, min_bytes, max_bytes, label)
        # Remember sizing so calls can convert buffer bytes to chunks.
        entry.sizing_chunks = collective.sizing_chunks()

    def register_registry(self, registry: AlgorithmRegistry,
                          sizing_chunks: int) -> None:
        """Adopt a whole registry (e.g. from the autotuner)."""
        for entry in registry.algorithms:
            entry.sizing_chunks = sizing_chunks
        self._registries[registry.collective_name] = registry

    # -- collective calls ---------------------------------------------------
    def all_reduce(self, buffer_bytes: float) -> SimResult:
        return self._call("allreduce", buffer_bytes,
                          fallback=self._nccl.allreduce_time)

    def all_to_all(self, buffer_bytes: float) -> SimResult:
        return self._call("alltoall", buffer_bytes,
                          fallback=self._nccl.alltoall_time)

    def all_gather(self, buffer_bytes: float) -> SimResult:
        return self._call("allgather", buffer_bytes, fallback=None)

    def reduce_scatter(self, buffer_bytes: float) -> SimResult:
        return self._call("reducescatter", buffer_bytes, fallback=None)

    def _call(self, collective: str, buffer_bytes: float,
              fallback) -> SimResult:
        registry = self._registries.get(collective)
        entry = None
        if registry is not None:
            for candidate in registry.algorithms:
                if candidate.matches(buffer_bytes):
                    entry = candidate
                    break
        if entry is not None:
            simulator = IrSimulator(entry.ir, self.topology,
                                    config=self.sim_config)
            result = simulator.run(
                chunk_bytes=buffer_bytes / entry.sizing_chunks
            )
            label = entry.label
        elif fallback is not None:
            result = fallback(buffer_bytes)
            label = "nccl-fallback"
        else:
            raise RuntimeConfigError(
                f"no algorithm registered for {collective} at "
                f"{buffer_bytes} bytes and NCCL has no built-in here"
            )
        self.history.append(CallRecord(
            collective=collective, buffer_bytes=buffer_bytes,
            algorithm=label, time_us=result.time_us,
        ))
        return result

    # -- introspection ------------------------------------------------------
    def total_time_us(self) -> float:
        return sum(record.time_us for record in self.history)

    def summary(self) -> str:
        """Per-algorithm call counts and cumulative time."""
        by_algorithm: Dict[str, List[CallRecord]] = {}
        for record in self.history:
            by_algorithm.setdefault(record.algorithm, []).append(record)
        lines = [f"{'algorithm':<28s} {'calls':>6s} {'total us':>12s}"]
        for label, records in sorted(by_algorithm.items()):
            total = sum(r.time_us for r in records)
            lines.append(f"{label:<28s} {len(records):>6d} {total:>12.1f}")
        return "\n".join(lines)
