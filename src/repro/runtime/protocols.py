"""NCCL communication protocols: Simple, LL, LL128 (paper section 6.1).

A protocol defines the FIFO geometry (slot size, number of slots) and
the latency/bandwidth trade-off:

* **Simple** — full link bandwidth but each slot handover costs a
  synchronization (highest latency).
* **LL** (low latency) — every 8 bytes carry a 4-byte flag, halving
  effective bandwidth, but a send is just a flagged store (lowest
  latency).
* **LL128** — flags per 128-byte line; ~95% of bandwidth at latency
  between the other two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.errors import RuntimeConfigError

KiB = 1024


@dataclass(frozen=True)
class Protocol:
    """Runtime protocol parameters.

    ``slot_bytes``/``num_slots`` give the FIFO geometry of every
    connection; chunks bigger than a slot are split into that many tiles
    and pipelined. ``bandwidth_efficiency`` scales link bandwidth;
    ``alpha_overhead`` (us) is added to every tile handover on top of
    the link's base latency.
    """

    name: str
    slot_bytes: int
    num_slots: int
    bandwidth_efficiency: float
    alpha_overhead: float
    # Direct-copy transport: sends write straight into the destination
    # buffer instead of staging through FIFO slots, eliminating the
    # receiver's consume pass. The paper leaves adding SCCL's direct
    # copy to the MSCCLang protocols as future work (section 7.5); this
    # implements it.
    direct_copy: bool = False

    def tile_bytes(self) -> int:
        return self.slot_bytes


SIMPLE = Protocol(
    name="Simple",
    slot_bytes=512 * KiB,
    num_slots=8,
    bandwidth_efficiency=1.0,
    alpha_overhead=3.5,
)

LL = Protocol(
    name="LL",
    slot_bytes=16 * KiB,
    num_slots=8,
    bandwidth_efficiency=0.5,
    alpha_overhead=0.3,
)

LL128 = Protocol(
    name="LL128",
    slot_bytes=120 * KiB,
    num_slots=8,
    bandwidth_efficiency=0.9375,
    alpha_overhead=1.2,
)

SIMPLE_DIRECT = Protocol(
    name="Simple-Direct",
    slot_bytes=512 * KiB,
    num_slots=8,
    bandwidth_efficiency=1.0,
    alpha_overhead=1.5,
    direct_copy=True,
)

PROTOCOLS: Dict[str, Protocol] = {
    "Simple": SIMPLE,
    "LL": LL,
    "LL128": LL128,
    "Simple-Direct": SIMPLE_DIRECT,
}


def get_protocol(name) -> Protocol:
    """Look up a protocol by name (case-insensitive) or pass one through."""
    if isinstance(name, Protocol):
        return name
    for key, proto in PROTOCOLS.items():
        if key.lower() == str(name).lower():
            return proto
    raise RuntimeConfigError(
        f"unknown protocol {name!r}; expected one of {sorted(PROTOCOLS)}"
    )
