"""Profiling tools over simulator execution traces.

Run the simulator with ``SimConfig(collect_trace=True)`` and feed the
result here to answer the questions a performance engineer asks of a
real collective: which thread blocks are busy vs. waiting, where the
critical path sits, what each rank's timeline looks like. This is the
analysis loop behind the paper's manual tuning ("we tune ... for the
system") made first-class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.errors import RuntimeConfigError
from .simulator import SimResult


@dataclass
class TbProfile:
    """Activity summary of one thread block."""

    rank: int
    tb_id: int
    instructions_executed: int
    first_start_us: float
    last_end_us: float
    active_us: float  # sum of instruction durations

    @property
    def span_us(self) -> float:
        return self.last_end_us - self.first_start_us

    @property
    def utilization(self) -> float:
        """Active share of the block's own first-to-last span."""
        if self.span_us <= 0:
            return 1.0
        return min(1.0, self.active_us / self.span_us)


def profile_threadblocks(result: SimResult) -> List[TbProfile]:
    """Per-thread-block activity from a collected trace."""
    if result.trace is None:
        raise RuntimeConfigError(
            "no trace collected; run with SimConfig(collect_trace=True)"
        )
    grouped: Dict[Tuple[int, int], List] = {}
    for entry in result.trace:
        grouped.setdefault((entry.rank, entry.tb_id), []).append(entry)
    profiles = []
    for (rank, tb_id), entries in sorted(grouped.items()):
        profiles.append(TbProfile(
            rank=rank,
            tb_id=tb_id,
            instructions_executed=len(entries),
            first_start_us=min(e.start_us for e in entries),
            last_end_us=max(e.end_us for e in entries),
            active_us=sum(e.end_us - e.start_us for e in entries),
        ))
    return profiles


def slowest_threadblocks(result: SimResult,
                         top: int = 5) -> List[TbProfile]:
    """Thread blocks whose last instruction finishes latest."""
    profiles = profile_threadblocks(result)
    return sorted(profiles, key=lambda p: -p.last_end_us)[:top]


def utilization_report(result: SimResult) -> str:
    """Text table: per thread block, activity and idle share."""
    profiles = profile_threadblocks(result)
    lines = [
        f"{'tb':>10s} {'instrs':>7s} {'span us':>10s} "
        f"{'active us':>10s} {'util':>6s}"
    ]
    for profile in profiles:
        tb = f"r{profile.rank}/tb{profile.tb_id}"
        lines.append(
            f"{tb:>10s} {profile.instructions_executed:>7d} "
            f"{profile.span_us:>10.1f} {profile.active_us:>10.1f} "
            f"{profile.utilization:>5.0%}"
        )
    return "\n".join(lines)


def critical_path(result: SimResult, top: int = 10) -> List[str]:
    """The longest-running instruction occurrences, formatted.

    Not a true dependency-chain critical path (the trace does not carry
    edges), but the dominant instruction occurrences reliably point at
    the bottleneck stage in practice.
    """
    if result.trace is None:
        raise RuntimeConfigError(
            "no trace collected; run with SimConfig(collect_trace=True)"
        )
    heaviest = sorted(
        result.trace, key=lambda e: e.end_us - e.start_us, reverse=True
    )[:top]
    return [
        f"r{e.rank}/tb{e.tb_id} tile{e.tile} step{e.step} {e.op}: "
        f"{e.end_us - e.start_us:.1f}us "
        f"[{e.start_us:.1f}..{e.end_us:.1f}]"
        for e in heaviest
    ]


def timeline(result: SimResult, rank: int, width: int = 64) -> str:
    """ASCII gantt of one rank's thread blocks ('#' active, '.' idle)."""
    if result.trace is None:
        raise RuntimeConfigError(
            "no trace collected; run with SimConfig(collect_trace=True)"
        )
    entries = [e for e in result.trace if e.rank == rank]
    if not entries:
        return f"(rank {rank} executed nothing)"
    horizon = max(e.end_us for e in entries)
    scale = width / horizon if horizon else 1.0
    rows = []
    tb_ids = sorted({e.tb_id for e in entries})
    for tb_id in tb_ids:
        cells = ["."] * width
        for e in entries:
            if e.tb_id != tb_id:
                continue
            lo = min(width - 1, int(e.start_us * scale))
            hi = min(width, max(lo + 1, int(e.end_us * scale)))
            for position in range(lo, hi):
                cells[position] = "#"
        rows.append(f"tb{tb_id:<3d} |{''.join(cells)}|")
    rows.append(f"      0us{'-' * (width - 12)}{horizon:.0f}us")
    return "\n".join(rows)
