"""Profiling tools over the simulator's span stream.

Run the simulator with ``SimConfig(collect_trace=True)`` (or pass a
:class:`repro.observe.Tracer` via ``SimConfig(tracer=...)``) and feed
the result here to answer the questions a performance engineer asks of
a real collective: which thread blocks are busy vs. waiting, where the
critical path sits, what each rank's timeline looks like. This is the
analysis loop behind the paper's manual tuning ("we tune ... for the
system") made first-class.

These helpers consume the per-instruction :class:`repro.observe.Span`
objects on :attr:`SimResult.spans` (rank/tb/step coordinates live in
``span.args``); the flat :attr:`SimResult.trace` rows are a derived
view of the same stream kept for external consumers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.errors import RuntimeConfigError
from ..observe.tracer import Span
from .simulator import SimResult


@dataclass
class TbProfile:
    """Activity summary of one thread block."""

    rank: int
    tb_id: int
    instructions_executed: int
    first_start_us: float
    last_end_us: float
    active_us: float  # sum of instruction durations

    @property
    def span_us(self) -> float:
        return self.last_end_us - self.first_start_us

    @property
    def utilization(self) -> float:
        """Active share of the block's own first-to-last span."""
        if self.span_us <= 0:
            return 1.0
        return min(1.0, self.active_us / self.span_us)


def _instruction_spans(result: SimResult) -> List[Span]:
    if result.spans is None:
        raise RuntimeConfigError(
            "no trace collected; run with SimConfig(collect_trace=True) "
            "or SimConfig(tracer=...)"
        )
    return result.spans


def profile_threadblocks(result: SimResult) -> List[TbProfile]:
    """Per-thread-block activity from the collected span stream."""
    grouped: Dict[Tuple[int, int], List[Span]] = {}
    for span in _instruction_spans(result):
        key = (span.args["rank"], span.args["tb"])
        grouped.setdefault(key, []).append(span)
    profiles = []
    for (rank, tb_id), spans in sorted(grouped.items()):
        profiles.append(TbProfile(
            rank=rank,
            tb_id=tb_id,
            instructions_executed=len(spans),
            first_start_us=min(s.start_us for s in spans),
            last_end_us=max(s.end_us for s in spans),
            active_us=sum(s.duration_us for s in spans),
        ))
    return profiles


def slowest_threadblocks(result: SimResult,
                         top: int = 5) -> List[TbProfile]:
    """Thread blocks whose last instruction finishes latest."""
    profiles = profile_threadblocks(result)
    return sorted(profiles, key=lambda p: -p.last_end_us)[:top]


def utilization_report(result: SimResult) -> str:
    """Text table: per thread block, activity and idle share."""
    profiles = profile_threadblocks(result)
    lines = [
        f"{'tb':>10s} {'instrs':>7s} {'span us':>10s} "
        f"{'active us':>10s} {'util':>6s}"
    ]
    for profile in profiles:
        tb = f"r{profile.rank}/tb{profile.tb_id}"
        lines.append(
            f"{tb:>10s} {profile.instructions_executed:>7d} "
            f"{profile.span_us:>10.1f} {profile.active_us:>10.1f} "
            f"{profile.utilization:>5.0%}"
        )
    return "\n".join(lines)


def critical_path(result: SimResult, top: int = 10) -> List[str]:
    """The dominant intervals of the true dependency critical path.

    The simulator's execution graph is walked backwards from the
    last-finishing instruction, hopping to the blocking node across
    every wait (see :meth:`repro.observe.ExecutionGraph.critical_path`);
    the chain's intervals exactly partition the simulated time, each
    attributed to a category (compute / link / queue / fifo_stall /
    sem_wait / overhead / launch). The ``top`` largest intervals are
    returned in time order, one formatted line each.

    Results that carry spans but no graph (assembled outside the
    simulator) fall back to the heaviest instruction occurrences.
    """
    spans = _instruction_spans(result)
    graph = result.graph
    if graph is None:
        heaviest = sorted(
            spans, key=lambda s: s.duration_us, reverse=True,
        )[:top]
        return [
            f"r{s.args['rank']}/tb{s.args['tb']} tile{s.args['tile']} "
            f"step{s.args['step']} {s.name}: "
            f"{s.duration_us:.1f}us "
            f"[{s.start_us:.1f}..{s.end_us:.1f}]"
            for s in heaviest
        ]
    steps = sorted(graph.critical_path(),
                   key=lambda s: -s.duration_us)[:top]
    steps.sort(key=lambda s: (s.start_us, s.end_us))
    lines = []
    for step in steps:
        node = graph.nodes.get(step.node) if step.node else None
        if node is not None:
            where = (f"r{node.rank}/tb{node.tb} tile{node.tile} "
                     f"step{node.step} {node.op}")
        else:
            where = step.label or "execution"
        what = step.kind + (f" {step.label}" if step.label
                            and node is not None else "")
        lines.append(
            f"{where} ({what}): {step.duration_us:.1f}us "
            f"[{step.start_us:.1f}..{step.end_us:.1f}]"
        )
    return lines


def timeline(result: SimResult, rank: int, width: int = 64) -> str:
    """ASCII gantt of one rank's thread blocks ('#' active, '.' idle)."""
    spans = [
        s for s in _instruction_spans(result) if s.args["rank"] == rank
    ]
    if not spans:
        return f"(rank {rank} executed nothing)"
    horizon = max(s.end_us for s in spans)
    scale = width / horizon if horizon else 1.0
    rows = []
    tb_ids = sorted({s.args["tb"] for s in spans})
    for tb_id in tb_ids:
        cells = ["."] * width
        for s in spans:
            if s.args["tb"] != tb_id:
                continue
            lo = min(width - 1, int(s.start_us * scale))
            hi = min(width, max(lo + 1, int(s.end_us * scale)))
            for position in range(lo, hi):
                cells[position] = "#"
        rows.append(f"tb{tb_id:<3d} |{''.join(cells)}|")
    rows.append(f"      0us{'-' * (width - 12)}{horizon:.0f}us")
    return "\n".join(rows)
