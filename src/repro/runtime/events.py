"""A tiny generator-based discrete-event engine.

Processes are Python generators that yield wait requests:

* ``("delay", dt)`` — resume after ``dt`` microseconds of virtual time,
* ``("wait", signal)`` — resume when the signal is next notified,
* ``("at", t)`` — resume at absolute virtual time ``t``.

The engine keeps a single priority queue of pending resumptions. This is
all the machinery the MSCCL-IR interpreter needs: semaphores and FIFOs
are built from :class:`Signal` plus plain counters.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, List, Optional, Tuple

from ..core.errors import SimulationError


class Signal:
    """A broadcast condition: processes wait, notify_all wakes them.

    ``label`` names the wait class ("fifo_arrival", "fifo_slot",
    "semaphore", ...) so a tracing event loop can attribute blocked
    time to it.
    """

    __slots__ = ("_waiters", "label")

    def __init__(self, label: str = "") -> None:
        self._waiters: List = []
        self.label = label

    def add_waiter(self, process, since: float = 0.0) -> None:
        self._waiters.append((process, since))

    def take_waiters(self) -> List:
        waiters, self._waiters = self._waiters, []
        return waiters


class EventLoop:
    """Runs processes until no further progress is possible.

    With a :class:`repro.observe.Tracer`, every wakeup from a labelled
    signal adds the time the process spent blocked to a
    ``wait.<label>_us`` counter (sampled at the wake time) — the FIFO
    stall and semaphore accounting of the observability layer.
    """

    def __init__(self, tracer=None) -> None:
        self.now = 0.0
        self.tracer = tracer
        self._queue: List[Tuple[float, int, Iterator]] = []
        self._sequence = 0
        self._active = 0
        self._blocked = 0

    def spawn(self, process: Iterator, at: Optional[float] = None) -> None:
        """Register a generator process; it starts at ``at`` (default now)."""
        self._active += 1
        self._push(self.now if at is None else at, process)

    def _push(self, time: float, process: Iterator) -> None:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self.now}"
            )
        heapq.heappush(self._queue, (time, self._sequence, process))
        self._sequence += 1

    def notify(self, signal: Signal) -> None:
        """Wake every process waiting on the signal (at the current time)."""
        for process, since in signal.take_waiters():
            self._blocked -= 1
            if self.tracer is not None and signal.label:
                self.tracer.add_counter(
                    f"wait.{signal.label}_us", self.now - since,
                    t_us=self.now,
                )
            self._push(self.now, process)

    def run(self) -> float:
        """Run to completion; returns the final virtual time.

        Raises SimulationError if processes remain blocked on signals
        that will never be notified (a deadlock).
        """
        while self._queue:
            time, _seq, process = heapq.heappop(self._queue)
            self.now = time
            self._step(process)
        if self._blocked:
            raise SimulationError(
                f"simulation deadlocked: {self._blocked} processes are "
                "waiting on signals nobody will notify"
            )
        return self.now

    def _step(self, process: Iterator) -> None:
        try:
            request = next(process)
        except StopIteration:
            self._active -= 1
            return
        kind = request[0]
        if kind == "delay":
            self._push(self.now + request[1], process)
        elif kind == "at":
            self._push(max(self.now, request[1]), process)
        elif kind == "wait":
            signal = request[1]
            signal.add_waiter(process, since=self.now)
            self._blocked += 1
        else:
            raise SimulationError(f"unknown wait request {request!r}")


def make_timer(loop: EventLoop) -> Callable[[float], Tuple[str, float]]:
    """Helper for tests: a delay-request factory bound to a loop."""
    del loop  # the request format is loop-independent
    return lambda dt: ("delay", dt)


# -- batched engine ---------------------------------------------------------
#
# Heap-entry kinds for BatchEventLoop. RESUME carries a thread-block
# generator's bound ``send``; the other three are *action events*:
# plain tuples standing in for the one-shot deliver/free helper
# processes and semaphore-fence resumptions the reference engine
# schedules per message / per instruction. Each action fires at a
# precomputed virtual time, performs one state write, and wakes the
# relevant signal's waiters — the same times and the same effects as
# the reference loop, with one heap event instead of a generator
# round-trip.
RESUME = 0
DELIVER = 1
FREE = 2
SEM = 3
WAKE = 4
DIRECT_WAKE = 5


class BatchEventLoop:
    """The slimmed event engine behind the batched simulator.

    Scheduling discipline matches :class:`EventLoop`: one priority
    queue ordered by ``(time, sequence)``, notified waiters re-queued
    at the notify time in list order. What changes is the cost per
    simulated instruction occurrence:

    * thread-block processes are primed generators driven by
      ``send(now)`` — the current virtual time rides the resumption
      instead of being re-read from the loop,
    * FIFO deliver/free bookkeeping and semaphore publication become
      pooled *action events* pushed directly at their precomputed fire
      times, so an unblocked occurrence costs a single generator
      resumption instead of three (overhead, release, fence) plus
      helper-process churn.

    Processes yield one of:

    * ``t`` (float) — resume at ``max(now, t)``,
    * ``signal`` — block until the signal is notified,
    * ``(actions, t | signal | None)`` — push each ``(kind, fire_t,
      payload)`` action event at ``max(now, fire_t)``, then resume at
      float ``t``, block on the signal, or (``None``) stop scheduling
      this process beyond the pushed actions.

    Action payloads: ``DELIVER (conn, seq, last_byte)`` records a FIFO
    arrival and wakes ``conn.arrival_signal``; ``FREE (conn, seq)``
    retires a slot and wakes ``conn.slot_signal``; ``SEM (sem, value,
    signal)`` publishes thread-block progress and wakes dependents;
    ``WAKE signal`` is a pure notification with no state write — used
    by the lazy-publication fast path, where producers write visibility
    times eagerly and only already-blocked consumers need an event.
    ``DIRECT_WAKE (fire_t, signal)`` is processed inline while actions
    are pushed and never becomes a heap event: the signal's blocked
    waiters are re-queued directly at the fact's fire time. This is
    valid because every fast-path signal has exactly one publishing
    thread block, so nothing else can wake those waiters between the
    publication and the fire time.
    """

    __slots__ = ("now", "tracer", "_queue", "_sequence", "_blocked")

    def __init__(self, tracer=None) -> None:
        self.now = 0.0
        self.tracer = tracer
        self._queue: List[tuple] = []
        self._sequence = 0
        self._blocked = 0

    def spawn(self, process, at: Optional[float] = None) -> None:
        """Prime a generator process; first resumption at ``at``."""
        process.send(None)
        heapq.heappush(
            self._queue,
            (self.now if at is None else at, self._sequence, RESUME,
             process.send),
        )
        self._sequence += 1

    def run(self) -> float:
        """Run to completion; returns the final virtual time.

        Raises SimulationError if processes remain blocked on signals
        that will never be notified (a deadlock), exactly like
        :class:`EventLoop`.
        """
        queue = self._queue
        push = heapq.heappush
        pop = heapq.heappop
        tracer = self.tracer
        seq = self._sequence
        blocked = self._blocked
        now = self.now
        while queue:
            now, _s, kind, payload = pop(queue)
            if kind == 0:  # RESUME: payload is the generator's send
                try:
                    req = payload(now)
                except StopIteration:
                    continue
                cls = type(req)
                if cls is float:
                    push(queue, (req if req > now else now, seq, 0,
                                 payload))
                    seq += 1
                elif cls is tuple:
                    for akind, at, apayload in req[0]:
                        if akind == 5:  # DIRECT_WAKE: re-queue waiters
                            waiters = apayload._waiters
                            apayload._waiters = []
                            blocked -= len(waiters)
                            t = at if at > now else now
                            for waiter, _since in waiters:
                                push(queue, (t, seq, 0, waiter))
                                seq += 1
                        else:
                            push(queue, (at if at > now else now, seq,
                                         akind, apayload))
                            seq += 1
                    t = req[1]
                    if t is None:
                        continue
                    if type(t) is float:
                        push(queue, (t if t > now else now, seq, 0,
                                     payload))
                        seq += 1
                    else:  # Signal: push actions, then block
                        t._waiters.append((payload, now))
                        blocked += 1
                else:  # Signal: block until notified
                    req._waiters.append((payload, now))
                    blocked += 1
                continue
            if kind == 4:  # WAKE: pure notification, payload is the signal
                signal = payload
            elif kind == 1:  # DELIVER: FIFO message arrival
                conn = payload[0]
                conn.arrivals[payload[1]] = payload[2]
                signal = conn.arrival_signal
            elif kind == 2:  # FREE: FIFO slot retired
                conn = payload[0]
                conn.consumed.add(payload[1])
                conn.consumed_count += 1
                signal = conn.slot_signal
            else:  # SEM: publish thread-block progress
                payload[0].value = payload[1]
                signal = payload[2]
            waiters = signal._waiters
            if waiters:
                signal._waiters = []
                blocked -= len(waiters)
                if tracer is not None:
                    label = signal.label
                    for waiter, since in waiters:
                        tracer.add_counter(f"wait.{label}_us",
                                           now - since, t_us=now)
                        push(queue, (now, seq, 0, waiter))
                        seq += 1
                else:
                    for waiter, _since in waiters:
                        push(queue, (now, seq, 0, waiter))
                        seq += 1
        self._sequence = seq
        self._blocked = blocked
        self.now = now
        if blocked:
            raise SimulationError(
                f"simulation deadlocked: {blocked} processes are "
                "waiting on signals nobody will notify"
            )
        return now
