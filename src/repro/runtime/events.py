"""A tiny generator-based discrete-event engine.

Processes are Python generators that yield wait requests:

* ``("delay", dt)`` — resume after ``dt`` microseconds of virtual time,
* ``("wait", signal)`` — resume when the signal is next notified,
* ``("at", t)`` — resume at absolute virtual time ``t``.

The engine keeps a single priority queue of pending resumptions. This is
all the machinery the MSCCL-IR interpreter needs: semaphores and FIFOs
are built from :class:`Signal` plus plain counters.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, List, Optional, Tuple

from ..core.errors import SimulationError


class Signal:
    """A broadcast condition: processes wait, notify_all wakes them.

    ``label`` names the wait class ("fifo_arrival", "fifo_slot",
    "semaphore", ...) so a tracing event loop can attribute blocked
    time to it.
    """

    __slots__ = ("_waiters", "label")

    def __init__(self, label: str = "") -> None:
        self._waiters: List = []
        self.label = label

    def add_waiter(self, process, since: float = 0.0) -> None:
        self._waiters.append((process, since))

    def take_waiters(self) -> List:
        waiters, self._waiters = self._waiters, []
        return waiters


class EventLoop:
    """Runs processes until no further progress is possible.

    With a :class:`repro.observe.Tracer`, every wakeup from a labelled
    signal adds the time the process spent blocked to a
    ``wait.<label>_us`` counter (sampled at the wake time) — the FIFO
    stall and semaphore accounting of the observability layer.
    """

    def __init__(self, tracer=None) -> None:
        self.now = 0.0
        self.tracer = tracer
        self._queue: List[Tuple[float, int, Iterator]] = []
        self._sequence = 0
        self._active = 0
        self._blocked = 0

    def spawn(self, process: Iterator, at: Optional[float] = None) -> None:
        """Register a generator process; it starts at ``at`` (default now)."""
        self._active += 1
        self._push(self.now if at is None else at, process)

    def _push(self, time: float, process: Iterator) -> None:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self.now}"
            )
        heapq.heappush(self._queue, (time, self._sequence, process))
        self._sequence += 1

    def notify(self, signal: Signal) -> None:
        """Wake every process waiting on the signal (at the current time)."""
        for process, since in signal.take_waiters():
            self._blocked -= 1
            if self.tracer is not None and signal.label:
                self.tracer.add_counter(
                    f"wait.{signal.label}_us", self.now - since,
                    t_us=self.now,
                )
            self._push(self.now, process)

    def run(self) -> float:
        """Run to completion; returns the final virtual time.

        Raises SimulationError if processes remain blocked on signals
        that will never be notified (a deadlock).
        """
        while self._queue:
            time, _seq, process = heapq.heappop(self._queue)
            self.now = time
            self._step(process)
        if self._blocked:
            raise SimulationError(
                f"simulation deadlocked: {self._blocked} processes are "
                "waiting on signals nobody will notify"
            )
        return self.now

    def _step(self, process: Iterator) -> None:
        try:
            request = next(process)
        except StopIteration:
            self._active -= 1
            return
        kind = request[0]
        if kind == "delay":
            self._push(self.now + request[1], process)
        elif kind == "at":
            self._push(max(self.now, request[1]), process)
        elif kind == "wait":
            signal = request[1]
            signal.add_waiter(process, since=self.now)
            self._blocked += 1
        else:
            raise SimulationError(f"unknown wait request {request!r}")


def make_timer(loop: EventLoop) -> Callable[[float], Tuple[str, float]]:
    """Helper for tests: a delay-request factory bound to a loop."""
    del loop  # the request format is loop-independent
    return lambda dt: ("delay", dt)
