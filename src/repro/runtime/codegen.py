"""Source-level specialization for the batched engine's fast path.

:func:`repro.runtime.simulator._tb_task_fast` is a generator
*interpreter*: every instruction occurrence re-unpacks its precompiled
record and re-tests the same structural flags (receives? sends? fused?
how many dependences?) that were fixed when the program was compiled.
At paper scale those loads and branches are a large share of the
per-occurrence cost.

This module folds them out. A thread block program's *shape* — the
per-record flag vector plus the dependence and wire-path arities — is
extracted once, and a generator function is generated (plain Python
source, ``compile`` + ``exec``) whose body is ``_tb_task_fast`` with:

* every structural branch resolved at generation time,
* the per-record loop unrolled, records' tile-invariant constants
  (service durations, receive sequence, dependence targets, path
  resources) bound to locals in the preamble,
* the ``remaining`` occurrence counter replaced by a static
  last-record / last-tile test,
* wire-path reservation hops unrolled.

Shapes repeat heavily — symmetric collectives compile hundreds of
thread blocks into a handful of shapes — so generated functions are
cached process-wide, keyed by shape. The generated code performs the
same float operations in the same order at the same virtual times as
the interpreter, so results stay bitwise-identical; the parity suite
pins this.

``REPRO_SIM_INTERP=1`` disables generation (the simulator falls back
to the interpreter) for triage and differential testing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# Generated functions keyed by program shape. Safe to share globally:
# the source depends only on the shape, never on runtime objects.
_CACHE: Dict[tuple, object] = {}

# Programs with more records than this fall back to the interpreter —
# the unrolled source (and its compile time) grows linearly with the
# record count, and such blocks amortize interpretation fine anyway.
MAX_RECS = 96


def shape_key(prog) -> tuple:
    """Everything the generated source depends on, and nothing else."""
    recs_shape = tuple(
        (len(rec[0]),          # dependence arity
         rec[1],               # receives
         rec[2],               # sends
         rec[3],               # local compute
         rec[4],               # fused send
         rec[5],               # direct receive
         rec[11],              # has_dep (fence after release)
         rec[14] is None,      # zero-byte cross-node send poison
         0 if rec[14] is None else len(rec[14]))  # wire-path arity
        for rec in prog.recs
    )
    return (prog.watched, prog.in_conn is not None,
            prog.out_conn is not None, prog.cross, recs_shape)


def task_factory(prog):
    """A generator factory specialized to ``prog``'s shape.

    Returns ``None`` when the program is too large to specialize
    profitably; the caller falls back to the interpreter.
    """
    if len(prog.recs) > MAX_RECS:
        return None
    key = shape_key(prog)
    fn = _CACHE.get(key)
    if fn is None:
        src = task_source(key)
        namespace: dict = {}
        exec(compile(src, f"<simtask{len(_CACHE)}>", "exec"), namespace)
        fn = namespace["_task"]
        _CACHE[key] = fn
    return fn


def task_source(key: tuple) -> str:
    """Emit the specialized generator source for a shape key."""
    watched, has_in, has_out, cross, recs_shape = key
    out: List[str] = []
    emit = out.append

    any_recv = any(r[1] for r in recs_shape)
    any_send = any(r[2] for r in recs_shape)
    # The copy engine horizon is touched by non-direct receives, local
    # compute, and non-fused sends.
    any_engine = any((r[1] and not r[5]) or r[3] or (r[2] and not r[4])
                     for r in recs_shape)

    emit("def _task(prog, tiles, oh, sem_oh):")
    emit("    recs = prog.recs")
    if watched:
        emit("    sem_times = prog.sem.times")
        emit("    sem_signal = prog.sem_signal")
    if any_send:
        emit("    alpha = prog.alpha")
    if has_in:
        emit("    in_conn = prog.in_conn")
        emit("    in_last = in_conn.arrival_last")
        emit("    in_first = in_conn.arrival_first")
        emit("    in_len = len(in_first)")
        emit("    in_free = in_conn.free_times")
        emit("    in_spt = in_conn.sends_per_tile")
        emit("    arrival_signal = in_conn.arrival_signal")
        emit("    in_slot_signal = in_conn.slot_signal")
        emit("    consumed = 0")
    if has_out:
        emit("    out_conn = prog.out_conn")
        emit("    slots = out_conn.slots")
        emit("    out_last = out_conn.arrival_last")
        emit("    out_first = out_conn.arrival_first")
        emit("    out_free = out_conn.free_times")
        emit("    out_arrival_signal = out_conn.arrival_signal")
        emit("    slot_signal = out_conn.slot_signal")
        emit("    issued = 0")
    if any_send:
        emit("    prev_first = 0.0")
        emit("    prev_last = 0.0")
    if any_engine:
        emit("    engine_nf = 0.0")

    # Per-record constants, bound once.
    for i, (ndeps, receives, sends, local, fused, direct_recv,
            has_dep, poisoned, npath) in enumerate(recs_shape):
        needed = (ndeps or receives or sends or local)
        if needed:
            emit(f"    _r = recs[{i}]")
        if ndeps:
            emit("    _d = _r[0]")
            for j in range(ndeps):
                emit(f"    dT{i}_{j} = _d[{j}][1]")
                emit(f"    dS{i}_{j} = _d[{j}][2]")
                emit(f"    dL{i}_{j} = _d[{j}][3]")
                emit(f"    dB{i}_{j} = _d[{j}][4]")
        if receives:
            emit(f"    rs{i} = _r[7]")
        if (receives and not direct_recv) or local:
            emit(f"    cd{i} = _r[12]")
        if sends and not fused and not poisoned:
            emit(f"    pd{i} = _r[13]")
        if sends and not poisoned and npath:
            emit("    _p = _r[14]")
            for k in range(npath):
                emit(f"    pR{i}_{k} = _p[{k}][0]")
                emit(f"    pD{i}_{k} = _p[{k}][1]")

    emit("    last_tile = tiles - 1")
    emit("    pending = None")
    emit("    now = yield")
    emit("    wake = now")
    emit("    for tile in range(tiles):")
    if has_in and any_recv:
        emit("        recv_base = tile * in_spt")

    n_recs = len(recs_shape)
    for i, (ndeps, receives, sends, local, fused, direct_recv,
            has_dep, poisoned, npath) in enumerate(recs_shape):
        ind = "        "
        act_sources = ((sends and not poisoned) or receives or watched)

        # -- wait chain, evaluated at the previous check point.
        for j in range(ndeps):
            emit(f"{ind}target = tile * dL{i}_{j} + dB{i}_{j}")
            emit(f"{ind}while len(dT{i}_{j}) < target:")
            emit(f"{ind}    if pending is not None:")
            emit(f"{ind}        now = yield (pending, wake "
                 f"if wake > now else dS{i}_{j})")
            emit(f"{ind}        pending = None")
            emit(f"{ind}    elif wake > now:")
            emit(f"{ind}        now = yield wake")
            emit(f"{ind}    else:")
            emit(f"{ind}        now = yield dS{i}_{j}")
            emit(f"{ind}    if now > wake:")
            emit(f"{ind}        wake = now")
            emit(f"{ind}t = dT{i}_{j}[target - 1]")
            emit(f"{ind}if t > wake:")
            emit(f"{ind}    wake = t")
        if receives:
            emit(f"{ind}rt = recv_base + rs{i}")
            emit(f"{ind}while True:")
            emit(f"{ind}    first = in_first[rt] if rt < in_len else None")
            emit(f"{ind}    if first is not None:")
            emit(f"{ind}        if first > wake:")
            emit(f"{ind}            wake = first")
            emit(f"{ind}        break")
            emit(f"{ind}    if pending is not None:")
            emit(f"{ind}        now = yield (pending, wake "
                 f"if wake > now else arrival_signal)")
            emit(f"{ind}        pending = None")
            emit(f"{ind}    elif wake > now:")
            emit(f"{ind}        now = yield wake")
            emit(f"{ind}    else:")
            emit(f"{ind}        now = yield arrival_signal")
            emit(f"{ind}    if now > wake:")
            emit(f"{ind}        wake = now")
            emit(f"{ind}msg_last = in_last[rt]")
        if sends:
            emit(f"{ind}send_seq = issued")
            emit(f"{ind}if send_seq >= slots:")
            emit(f"{ind}    freed = send_seq - slots")
            emit(f"{ind}    while True:")
            emit(f"{ind}        ft = out_free[freed]")
            emit(f"{ind}        if ft is not None:")
            emit(f"{ind}            if ft > wake:")
            emit(f"{ind}                wake = ft")
            emit(f"{ind}            break")
            emit(f"{ind}        if pending is not None:")
            emit(f"{ind}            now = yield (pending, wake "
                 f"if wake > now else slot_signal)")
            emit(f"{ind}            pending = None")
            emit(f"{ind}        elif wake > now:")
            emit(f"{ind}            now = yield wake")
            emit(f"{ind}        else:")
            emit(f"{ind}            now = yield slot_signal")
            emit(f"{ind}        if now > wake:")
            emit(f"{ind}            wake = now")
            emit(f"{ind}issued = send_seq + 1")

        # -- one resumption at the resolved wait time.
        emit(f"{ind}if pending is not None:")
        emit(f"{ind}    now = yield (pending, wake)")
        emit(f"{ind}    pending = None")
        emit(f"{ind}elif wake > now:")
        emit(f"{ind}    now = yield wake")
        emit(f"{ind}start = now")
        if receives:
            if direct_recv:
                emit(f"{ind}data_ready = start "
                     f"if start >= msg_last else msg_last")
            else:
                emit(f"{ind}rstart = start "
                     f"if start >= engine_nf else engine_nf")
                emit(f"{ind}finish = rstart + cd{i}")
                emit(f"{ind}engine_nf = finish")
                emit(f"{ind}data_ready = finish "
                     f"if finish >= msg_last else msg_last")
        elif local:
            emit(f"{ind}rstart = start "
                 f"if start >= engine_nf else engine_nf")
            emit(f"{ind}data_ready = rstart + cd{i}")
            emit(f"{ind}engine_nf = data_ready")
        else:
            emit(f"{ind}data_ready = start")

        if sends and poisoned:
            # The reference interpreter divides by the zero basis of a
            # zero-byte cross-node send at this exact point.
            emit(f"{ind}raise ZeroDivisionError"
                 f"('float division by zero')")
            continue
        if act_sources:
            emit(f"{ind}actions = None")
        if sends:
            if fused:
                emit(f"{ind}produce_finish = data_ready")
            else:
                emit(f"{ind}rstart = start "
                     f"if start >= engine_nf else engine_nf")
                emit(f"{ind}produce_finish = rstart + pd{i}")
                emit(f"{ind}engine_nf = produce_finish")
            if npath == 0:
                emit(f"{ind}wire_finish = 0.0")
            for k in range(npath):
                emit(f"{ind}nf = pR{i}_{k}.next_free")
                emit(f"{ind}rstart = start if start >= nf else nf")
                emit(f"{ind}finish = rstart + pD{i}_{k}")
                emit(f"{ind}pR{i}_{k}.next_free = finish")
                emit(f"{ind}pR{i}_{k}.busy_time += pD{i}_{k}")
                if k == 0:
                    emit(f"{ind}wire_finish = finish")
                else:
                    emit(f"{ind}if finish > wire_finish:")
                    emit(f"{ind}    wire_finish = finish")
            emit(f"{ind}first_byte = start + alpha")
            emit(f"{ind}peak = wire_finish "
                 f"if wire_finish >= produce_finish else produce_finish")
            emit(f"{ind}last_byte = peak + alpha")
            emit(f"{ind}if first_byte < prev_first:")
            emit(f"{ind}    first_byte = prev_first")
            emit(f"{ind}if last_byte < prev_last:")
            emit(f"{ind}    last_byte = prev_last")
            emit(f"{ind}if last_byte < first_byte:")
            emit(f"{ind}    last_byte = first_byte")
            emit(f"{ind}prev_first = first_byte")
            emit(f"{ind}prev_last = last_byte")
            if cross:
                emit(f"{ind}release = produce_finish "
                     f"if produce_finish >= data_ready else data_ready")
            else:
                emit(f"{ind}drained = last_byte - alpha")
                emit(f"{ind}release = drained "
                     f"if drained >= data_ready else data_ready")
            emit(f"{ind}out_first[send_seq] = first_byte")
            emit(f"{ind}out_last[send_seq] = last_byte")
            emit(f"{ind}if out_arrival_signal._waiters:")
            emit(f"{ind}    actions = "
                 f"((5, first_byte, out_arrival_signal),)")
        else:
            emit(f"{ind}release = data_ready")
        if receives:
            emit(f"{ind}in_free[rt] = data_ready")
            emit(f"{ind}consumed += 1")
            emit(f"{ind}if in_slot_signal._waiters:")
            emit(f"{ind}    wk = (5, data_ready, in_slot_signal)")
            emit(f"{ind}    actions = "
                 f"(actions + (wk,) if actions else (wk,))")
        if has_dep:
            emit(f"{ind}boundary = release + sem_oh")
        else:
            emit(f"{ind}boundary = release")
        if watched:
            emit(f"{ind}sem_times.append(boundary)")
            emit(f"{ind}if sem_signal._waiters:")
            emit(f"{ind}    wk = (5, boundary, sem_signal)")
            emit(f"{ind}    actions = "
                 f"(actions + (wk,) if actions else (wk,))")
        if i < n_recs - 1:
            # Only the last record of the last tile can be the final
            # occurrence, so earlier records skip the counter test.
            if act_sources:
                emit(f"{ind}pending = actions")
            emit(f"{ind}wake = boundary + oh")
        else:
            emit(f"{ind}if tile != last_tile:")
            if act_sources:
                emit(f"{ind}    pending = actions")
            emit(f"{ind}    wake = boundary + oh")
            emit(f"{ind}else:")
            if has_in:
                emit(f"{ind}    in_conn.consumed_count = consumed")
            if has_out:
                emit(f"{ind}    out_conn.issued = issued")
            if act_sources:
                emit(f"{ind}    if actions is not None:")
                emit(f"{ind}        yield (actions, boundary)")
                emit(f"{ind}    else:")
                emit(f"{ind}        yield boundary")
            else:
                emit(f"{ind}    yield boundary")
            emit(f"{ind}    return")
    emit("")
    return "\n".join(out)
