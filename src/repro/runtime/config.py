"""Runtime algorithm registry: size-based selection with NCCL fallback.

The paper's runtime dynamically selects an MSCCL-IR program based on
user-configurable buffer-size ranges and falls back to NCCL's built-in
algorithms otherwise (section 6). :class:`AlgorithmRegistry` reproduces
that policy for the simulator: programs register with a byte range and
the runtime picks the first match, else the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.compiler import CompiledAlgorithm
from ..core.errors import RuntimeConfigError
from ..core.ir import MscclIr


@dataclass
class RegisteredAlgorithm:
    """An IR valid for buffer sizes in [min_bytes, max_bytes].

    ``sizing_chunks`` converts a call's buffer size into the program's
    chunk payload. It is fixed at registration time so an adopted
    registry can never carry a stale value.
    """

    ir: MscclIr
    min_bytes: float
    max_bytes: float
    label: str = ""
    sizing_chunks: int = 1

    def matches(self, nbytes: float) -> bool:
        return self.min_bytes <= nbytes <= self.max_bytes


@dataclass
class AlgorithmRegistry:
    """Selects an algorithm for a collective call by buffer size."""

    collective_name: str
    algorithms: List[RegisteredAlgorithm] = field(default_factory=list)
    fallback: Optional[Callable[[float], MscclIr]] = None

    def register(self, ir, *, min_bytes: float = 0.0,
                 max_bytes: float = float("inf"),
                 label: str = "",
                 sizing_chunks: Optional[int] = None
                 ) -> RegisteredAlgorithm:
        """Register an IR for a size range; first match wins.

        ``ir`` may be a raw :class:`MscclIr` or the
        :class:`CompiledAlgorithm` handle from ``compile_program`` (in
        which case sizing defaults to the bundled collective's).
        """
        if isinstance(ir, CompiledAlgorithm):
            if sizing_chunks is None:
                sizing_chunks = ir.sizing_chunks()
            ir = ir.ir
        if ir.collective != self.collective_name:
            raise RuntimeConfigError(
                f"IR implements {ir.collective!r}, registry is for "
                f"{self.collective_name!r}"
            )
        if min_bytes > max_bytes:
            raise RuntimeConfigError(
                f"empty size range [{min_bytes}, {max_bytes}]"
            )
        entry = RegisteredAlgorithm(
            ir, min_bytes, max_bytes, label or ir.name,
            sizing_chunks=1 if sizing_chunks is None else sizing_chunks,
        )
        self.algorithms.append(entry)
        return entry

    def select(self, nbytes: float) -> MscclIr:
        """The IR to run for a buffer of ``nbytes`` (or the fallback)."""
        for entry in self.algorithms:
            if entry.matches(nbytes):
                return entry.ir
        if self.fallback is not None:
            return self.fallback(nbytes)
        raise RuntimeConfigError(
            f"no algorithm registered for {self.collective_name} at "
            f"{nbytes} bytes and no fallback configured"
        )

    def selected_label(self, nbytes: float) -> str:
        """Human-readable name of what select() would run."""
        for entry in self.algorithms:
            if entry.matches(nbytes):
                return entry.label
        if self.fallback is not None:
            return "fallback"
        return "<none>"
