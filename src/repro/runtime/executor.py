"""Data-level execution of MSCCL-IR on real numpy buffers.

The timing simulator answers "how fast"; this executor answers "is the
data right". It runs the IR's thread blocks cooperatively (round-robin,
respecting cross-thread-block dependencies and FIFO order), moving real
element arrays, then checks every rank's output buffer against the
collective's postcondition *numerically*: the expected value of any
output chunk is derived directly from the postcondition's chunk
identities (a sum of specific input chunks), so the check works for
every collective, including custom ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.buffers import Buffer
from ..core.chunk import InputChunk, ReductionChunk
from ..core.collectives import Collective
from ..core.errors import DeadlockError, VerificationError
from ..core.instructions import Op
from ..core.ir import MscclIr

DEFAULT_ELEMENTS_PER_CHUNK = 48

# Point-wise reduction operators (MPI_SUM / MAX / MIN / PROD).
_COMBINE = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}

RECV_OPS = frozenset({
    Op.RECV, Op.RECV_REDUCE_COPY, Op.RECV_COPY_SEND,
    Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND,
})
SEND_OPS = frozenset({
    Op.SEND, Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND,
    Op.RECV_REDUCE_SEND,
})

# (rank, tb_id) — one thread block; (rank, tb_id, step) — one instruction.
TbKey = Tuple[int, int]
InstrKey = Tuple[int, int, int]

# A sweep-order hook: called once per scheduler sweep with the sweep
# index and the thread-block keys in program order; returns the order
# this sweep services them in (a permutation).
SweepOrder = Callable[[int, Sequence[TbKey]], Sequence[TbKey]]


@dataclass
class PopEvent:
    """One executor FIFO pop: which send's payload a receive consumed."""

    conn: Tuple[int, int, int]  # (src rank, dst rank, channel)
    seq: int
    producer: Optional[InstrKey]  # the send that pushed this message
    consumer: InstrKey  # the receive that popped it


@dataclass
class FaultPlan:
    """Timing perturbations injected into :meth:`IrExecutor.run`.

    Every fault models a legal runtime delay, never data corruption: a
    correct, deadlock-free IR must still produce the right answer under
    any plan (except a ``fifo_slots`` below what the deadlock audit
    assumed, which may legitimately deadlock — and must then raise
    :class:`DeadlockError`, not hang or corrupt data).

    ``fifo_slots``      caps in-flight messages per connection: a send
                        with sequence ``s`` blocks until the receive of
                        ``s - fifo_slots`` has drained its slot.
    ``deliver_delay``   hides every pushed message for this many sweeps
                        before the matching receive may pop it.
    ``drop_sends``      maps ``(src, dst, channel, seq)`` to a number of
                        failed attempts: the send is dropped (and
                        retried next sweep) that many times before it
                        goes through.
    ``semaphore_skew``  lags cross-thread-block progress visibility:
                        dependency checks observe ``done_steps`` as it
                        was this many sweeps ago.
    """

    fifo_slots: Optional[int] = None
    deliver_delay: int = 0
    drop_sends: Dict[Tuple[int, int, int, int], int] = \
        field(default_factory=dict)
    semaphore_skew: int = 0

    def __post_init__(self):
        if self.fifo_slots is not None and self.fifo_slots < 1:
            raise ValueError("fifo_slots must be >= 1")
        if self.deliver_delay < 0 or self.semaphore_skew < 0:
            raise ValueError("delays must be >= 0")

    def describe(self) -> str:
        parts = []
        if self.fifo_slots is not None:
            parts.append(f"fifo_slots={self.fifo_slots}")
        if self.deliver_delay:
            parts.append(f"deliver_delay={self.deliver_delay}")
        if self.drop_sends:
            drops = ", ".join(
                f"{src}->{dst} ch{ch} seq{seq} x{times}"
                for (src, dst, ch, seq), times
                in sorted(self.drop_sends.items())
            )
            parts.append(f"drop_sends[{drops}]")
        if self.semaphore_skew:
            parts.append(f"semaphore_skew={self.semaphore_skew}")
        return ", ".join(parts) or "no faults"


class IrExecutor:
    """Executes an IR's data movement and validates the result."""

    def __init__(self, ir: MscclIr, collective: Collective,
                 elements_per_chunk: int = DEFAULT_ELEMENTS_PER_CHUNK,
                 seed: int = 0):
        self.ir = ir
        self.collective = collective
        self._combine = _COMBINE[getattr(collective, "reduce_op", "sum")]
        self.elements = elements_per_chunk
        self._rng = np.random.default_rng(seed)
        self.buffers: Dict[Tuple[int, Buffer], np.ndarray] = {}
        self.initial_inputs: Dict[int, np.ndarray] = {}
        # Event logs of the last run: who pushed each (connection, seq)
        # message, every FIFO pop with its producer/consumer pair, and
        # every buffer access — the raw material the conformance
        # harness cross-checks against the simulator's happens-before
        # graph and the IR's dependence graph.
        self.push_log: Dict[Tuple[Tuple[int, int, int], int], InstrKey] = {}
        self.pop_log: List[PopEvent] = []
        self.access_log: List[tuple] = []
        self._send_counters: Dict[Tuple[int, int, int], int] = {}
        self._faults: Optional[FaultPlan] = None
        self._drop_remaining: Dict[Tuple[int, int, int, int], int] = {}
        self._visible_at: Dict[Tuple[Tuple[int, int, int], int], int] = {}
        self._popped: Dict[Tuple[int, int, int], set] = {}
        self._sweep = 0
        self._fault_activity = False
        self._allocate()

    # -- setup ---------------------------------------------------------
    def _allocate(self) -> None:
        for gpu in self.ir.gpus:
            rank = gpu.rank
            for buffer, chunks in (
                    (Buffer.INPUT, gpu.input_chunks),
                    (Buffer.OUTPUT, gpu.output_chunks),
                    (Buffer.SCRATCH, gpu.scratch_chunks)):
                self.buffers[(rank, buffer)] = np.full(
                    (chunks, self.elements), np.nan
                )
            # Initialize the precondition's input chunks with unique
            # random data (through the in-place alias when needed).
            inputs = self._rng.normal(
                size=(self.collective.input_chunks(rank), self.elements)
            )
            self.initial_inputs[rank] = inputs.copy()
            for index in range(inputs.shape[0]):
                buffer, canon = self.collective.alias(
                    rank, Buffer.INPUT, index
                )
                store = self.buffers[(rank, buffer)]
                if canon >= store.shape[0]:
                    raise VerificationError(
                        f"collective {self.collective.name!r} places "
                        f"input chunk {index} at {buffer.value}[{canon}] "
                        f"on rank {rank}, but the IR declares only "
                        f"{store.shape[0]} {buffer.value} chunk(s)"
                    )
                store[canon] = inputs[index]

    # -- element slicing -------------------------------------------------
    def _slice(self, instr) -> slice:
        lo = int(self.elements * instr.frac_lo)
        hi = int(self.elements * instr.frac_hi)
        return slice(lo, hi)

    def _read(self, rank: int, span, sl: slice) -> np.ndarray:
        buffer, index, count = span
        return self.buffers[(rank, buffer)][index:index + count, sl].copy()

    def _write(self, rank: int, span, sl: slice, data: np.ndarray) -> None:
        buffer, index, count = span
        self.buffers[(rank, buffer)][index:index + count, sl] = data

    # -- execution -----------------------------------------------------------
    def run(self, max_idle_sweeps: int = 3, *,
            order: Optional[SweepOrder] = None,
            faults: Optional[FaultPlan] = None) -> None:
        """Execute all thread blocks to completion (raises on deadlock).

        ``order`` plugs in a per-sweep thread-block servicing order (a
        permutation of the program-order keys); a race-free IR's output
        is bitwise identical under every order. ``faults`` injects
        timing perturbations (see :class:`FaultPlan`); sweeps stalled
        only on fault machinery (a retrying send, an undelivered
        message, a lagging semaphore view) do not count toward the
        idle-sweep deadlock threshold.
        """
        tbs = [
            (gpu.rank, tb) for gpu in self.ir.gpus
            for tb in gpu.threadblocks
        ]
        keys = [(rank, tb.tb_id) for rank, tb in tbs]
        by_key = {(rank, tb.tb_id): (rank, tb) for rank, tb in tbs}
        pcs = {key: 0 for key in keys}
        done_steps: Dict[TbKey, int] = dict(pcs)
        # Per-connection message store, indexed by sequence tag, plus
        # the sender-side counter that assigns tags in program order.
        fifos: Dict[Tuple[int, int, int], Dict[int, object]] = {}
        self._send_counters = {}
        self.push_log = {}
        self.pop_log = []
        self.access_log = []
        self._faults = faults
        self._drop_remaining = dict(faults.drop_sends) if faults else {}
        self._visible_at = {}
        self._popped = {}
        self._sweep = 0
        skew = faults.semaphore_skew if faults else 0
        snapshots: List[Dict[TbKey, int]] = []
        total = sum(len(tb.instructions) for _, tb in tbs)
        executed = 0
        idle_sweeps = 0
        while executed < total:
            if skew:
                snapshots.append(dict(done_steps))
                if len(snapshots) > skew + 1:
                    snapshots.pop(0)
                visible_done = snapshots[0]
            else:
                visible_done = done_steps
            self._fault_activity = False
            sweep_keys = keys
            if order is not None:
                sweep_keys = list(order(self._sweep, tuple(keys)))
                if sorted(sweep_keys) != sorted(keys):
                    raise VerificationError(
                        "sweep-order hook must return a permutation of "
                        "the thread-block keys"
                    )
            progressed = False
            for key in sweep_keys:
                rank, tb = by_key[key]
                while pcs[key] < len(tb.instructions):
                    instr = tb.instructions[pcs[key]]
                    if not self._ready(rank, tb, instr, visible_done,
                                       fifos):
                        break
                    self._execute(rank, tb, instr, fifos)
                    pcs[key] += 1
                    done_steps[key] = pcs[key]
                    executed += 1
                    progressed = True
            self._sweep += 1
            if progressed:
                idle_sweeps = 0
                continue
            if (self._fault_activity
                    or self._faults_pending(done_steps, snapshots)):
                # The fault machinery is still draining (a send retry
                # was consumed, a delivery is scheduled, or the skewed
                # semaphore view has not converged): not a true idle
                # sweep.
                idle_sweeps = 0
                continue
            idle_sweeps += 1
            if idle_sweeps >= max_idle_sweeps:
                blocked = []
                for key in keys:
                    rank, tb = by_key[key]
                    if pcs[key] >= len(tb.instructions):
                        continue
                    instr = tb.instructions[pcs[key]]
                    blocked.append((rank, tb.tb_id, instr.step,
                                    self._blocked_reason(
                                        rank, tb, instr, done_steps,
                                        fifos)))
                detail = "\n  ".join(
                    f"rank {rank} tb {tb_id} step {step}: {reason}"
                    for rank, tb_id, step, reason in blocked[:12]
                )
                more = (f"\n  ... and {len(blocked) - 12} more"
                        if len(blocked) > 12 else "")
                raise DeadlockError(
                    f"executor stuck with {total - executed} "
                    f"instructions remaining; blocked thread blocks:\n"
                    f"  {detail}{more}",
                    blocked=blocked,
                )

    def _faults_pending(self, done_steps, snapshots) -> bool:
        """Is injected-fault machinery still owed future progress?"""
        if self._faults is None:
            return False
        if any(visible > self._sweep
               for visible in self._visible_at.values()):
            return True
        return bool(snapshots) and snapshots[0] != done_steps

    def _ready(self, rank: int, tb, instr, done_steps, fifos) -> bool:
        for dep_tb, dep_step in instr.depends:
            dep_key = (rank, dep_tb)
            if dep_key not in done_steps:
                raise VerificationError(
                    f"rank {rank} tb {tb.tb_id} step {instr.step} "
                    f"depends on thread block {dep_tb}, which does not "
                    f"exist on this rank"
                )
            if done_steps[dep_key] <= dep_step:
                return False
        if instr.op in RECV_OPS:
            conn = (tb.recv_peer, rank, tb.channel)
            if instr.recv_seq not in fifos.get(conn, {}):
                return False
            visible = self._visible_at.get((conn, instr.recv_seq))
            if visible is not None and visible > self._sweep:
                return False
        if instr.op in SEND_OPS and self._faults is not None:
            conn = (rank, tb.send_peer, tb.channel)
            seq = self._send_counters.get(conn, 0)
            slots = self._faults.fifo_slots
            if (slots is not None and seq >= slots
                    and (seq - slots) not in self._popped.get(
                        conn, frozenset())):
                return False
            drop_key = (rank, tb.send_peer, tb.channel, seq)
            remaining = self._drop_remaining.get(drop_key, 0)
            if remaining > 0:
                # One failed attempt per sweep; the retry happens when
                # the budget is spent.
                self._drop_remaining[drop_key] = remaining - 1
                self._fault_activity = True
                return False
        return True

    def _blocked_reason(self, rank: int, tb, instr, done_steps,
                        fifos) -> str:
        """Why this instruction is not ready (read-only diagnosis)."""
        reasons = []
        for dep_tb, dep_step in instr.depends:
            done = done_steps.get((rank, dep_tb))
            if done is None:
                reasons.append(f"depends on unknown tb {dep_tb}")
            elif done <= dep_step:
                reasons.append(
                    f"unmet dep on tb {dep_tb} step {dep_step} "
                    f"(only {done} steps done)"
                )
        if instr.op in RECV_OPS:
            conn = (tb.recv_peer, rank, tb.channel)
            if instr.recv_seq not in fifos.get(conn, {}):
                reasons.append(
                    f"missing FIFO seq {instr.recv_seq} on connection "
                    f"{conn[0]}->{conn[1]} ch{conn[2]}"
                )
            elif self._visible_at.get(
                    (conn, instr.recv_seq), 0) > self._sweep:
                reasons.append(
                    f"FIFO seq {instr.recv_seq} on connection "
                    f"{conn[0]}->{conn[1]} ch{conn[2]} held back by "
                    f"injected delivery delay"
                )
        if instr.op in SEND_OPS and self._faults is not None:
            conn = (rank, tb.send_peer, tb.channel)
            seq = self._send_counters.get(conn, 0)
            slots = self._faults.fifo_slots
            if (slots is not None and seq >= slots
                    and (seq - slots) not in self._popped.get(
                        conn, frozenset())):
                reasons.append(
                    f"FIFO slot window full on connection "
                    f"{rank}->{tb.send_peer} ch{tb.channel} (send seq "
                    f"{seq} waits for seq {seq - slots} to drain, "
                    f"{slots} slots)"
                )
            if self._drop_remaining.get(
                    (rank, tb.send_peer, tb.channel, seq), 0) > 0:
                reasons.append("send dropped by fault injection; "
                               "retry pending")
        return "; ".join(reasons) or \
            f"op {instr.op.value} unexpectedly not ready"

    def _record_accesses(self, node: InstrKey, instr) -> None:
        """Log this instruction's local buffer reads and writes."""
        op = instr.op
        reads = []
        writes = []
        if op in (Op.SEND, Op.COPY, Op.REDUCE, Op.RECV_REDUCE_COPY,
                  Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND):
            reads.append(instr.src)
        if op is Op.REDUCE:
            reads.append(instr.dst)
        if op in (Op.RECV, Op.COPY, Op.REDUCE, Op.RECV_REDUCE_COPY,
                  Op.RECV_COPY_SEND, Op.RECV_REDUCE_COPY_SEND):
            writes.append(instr.dst)
        for kind, spans in (("r", reads), ("w", writes)):
            for span in spans:
                if span is None:
                    continue
                buffer, index, count = span
                self.access_log.append(
                    (node, kind, buffer, index, count,
                     instr.frac_lo, instr.frac_hi)
                )

    def _execute(self, rank: int, tb, instr, fifos) -> None:
        sl = self._slice(instr)
        op = instr.op
        node: InstrKey = (rank, tb.tb_id, instr.step)
        self._record_accesses(node, instr)

        # Variable-size chunks make span shapes a real degree of
        # freedom; catch disagreements as typed errors naming the
        # instruction instead of relying on numpy broadcasting (which
        # would *silently* smear a 1-chunk payload across an n-chunk
        # span).
        if (instr.src is not None and instr.dst is not None
                and instr.src[2] != instr.dst[2]):
            raise VerificationError(
                f"rank {rank} tb {tb.tb_id} step {instr.step} "
                f"({op.value}): src span covers {instr.src[2]} chunk(s) "
                f"but dst span covers {instr.dst[2]}"
            )

        def push(data: np.ndarray) -> None:
            conn = (rank, tb.send_peer, tb.channel)
            seq = self._send_counters.get(conn, 0)
            self._send_counters[conn] = seq + 1
            fifos.setdefault(conn, {})[seq] = data
            self.push_log[(conn, seq)] = node
            if self._faults is not None and self._faults.deliver_delay:
                self._visible_at[(conn, seq)] = \
                    self._sweep + self._faults.deliver_delay

        def pop() -> np.ndarray:
            conn = (tb.recv_peer, rank, tb.channel)
            data = fifos[conn].pop(instr.recv_seq)
            self._visible_at.pop((conn, instr.recv_seq), None)
            self._popped.setdefault(conn, set()).add(instr.recv_seq)
            self.pop_log.append(PopEvent(
                conn, instr.recv_seq,
                self.push_log.get((conn, instr.recv_seq)), node,
            ))
            span = instr.src if op is Op.RECV_REDUCE_SEND else instr.dst
            if span is not None and data.shape[0] != span[2]:
                raise VerificationError(
                    f"rank {rank} tb {tb.tb_id} step {instr.step} "
                    f"({op.value}): message {instr.recv_seq} on "
                    f"connection {conn[0]}->{conn[1]} ch{conn[2]} "
                    f"carries {data.shape[0]} chunk(s) but the "
                    f"instruction's span covers {span[2]}"
                )
            return data

        if op is Op.SEND:
            push(self._read(rank, instr.src, sl))
        elif op is Op.RECV:
            self._write(rank, instr.dst, sl, pop())
        elif op is Op.COPY:
            self._write(rank, instr.dst, sl, self._read(rank, instr.src, sl))
        elif op is Op.REDUCE:
            result = self._combine(self._read(rank, instr.src, sl),
                                   self._read(rank, instr.dst, sl))
            self._write(rank, instr.dst, sl, result)
        elif op is Op.RECV_REDUCE_COPY:
            result = self._combine(pop(),
                                   self._read(rank, instr.src, sl))
            self._write(rank, instr.dst, sl, result)
        elif op is Op.RECV_COPY_SEND:
            data = pop()
            self._write(rank, instr.dst, sl, data)
            push(data)
        elif op is Op.RECV_REDUCE_COPY_SEND:
            result = self._combine(pop(),
                                   self._read(rank, instr.src, sl))
            self._write(rank, instr.dst, sl, result)
            push(result)
        elif op is Op.RECV_REDUCE_SEND:
            # The reduced value is forwarded without a local store.
            push(self._combine(pop(),
                               self._read(rank, instr.src, sl)))
        elif op is Op.NOP:
            # Synchronization-only: readiness (depends) was the whole
            # point; no data moves.
            pass
        else:  # pragma: no cover - enum is exhaustive
            raise VerificationError(f"unknown opcode {op}")

    # -- validation ------------------------------------------------------------
    def expected_chunk(self, rank: int, chunk_value) -> np.ndarray:
        """Numeric expectation for a postcondition chunk identity.

        The abstract identity is a multiset of contributing inputs; the
        numeric expectation folds them with the collective's operator
        (multiplicity matters for sum/prod, is idempotent for max/min).
        """
        if isinstance(chunk_value, InputChunk):
            return self.initial_inputs[chunk_value.rank][chunk_value.index]
        if isinstance(chunk_value, ReductionChunk):
            total = None
            for contrib, mult in chunk_value.contributions:
                value = self.initial_inputs[contrib.rank][contrib.index]
                repeats = (
                    mult if self._combine in (np.add, np.multiply) else 1
                )
                for _ in range(repeats):
                    total = (value.copy() if total is None
                             else self._combine(total, value))
            return total
        raise VerificationError(f"unexpected chunk value {chunk_value!r}")

    def check(self, rtol: float = 1e-9, atol: float = 1e-9) -> None:
        """Raise unless every constrained output chunk matches."""
        failures = []
        for gpu in self.ir.gpus:
            rank = gpu.rank
            output = self.buffers[(rank, Buffer.OUTPUT)]
            for index, value in self.collective.postcondition(rank).items():
                if index >= output.shape[0]:
                    raise VerificationError(
                        f"collective {self.collective.name!r} constrains "
                        f"output[{index}] on rank {rank}, but the IR "
                        f"declares only {output.shape[0]} output chunk(s)"
                    )
                expected = self.expected_chunk(rank, value)
                actual = output[index]
                if not np.allclose(actual, expected, rtol=rtol, atol=atol,
                                   equal_nan=False):
                    failures.append((rank, index))
        if failures:
            raise VerificationError(
                f"data-level check failed for {len(failures)} output "
                f"chunks, e.g. {failures[:5]}"
            )

    def run_and_check(self, **run_kwargs) -> None:
        """Convenience: execute then validate.

        Keyword arguments (``order``, ``faults``, ``max_idle_sweeps``)
        are forwarded to :meth:`run`.
        """
        self.run(**run_kwargs)
        self.check()
