"""Data-level execution of MSCCL-IR on real numpy buffers.

The timing simulator answers "how fast"; this executor answers "is the
data right". It runs the IR's thread blocks cooperatively (round-robin,
respecting cross-thread-block dependencies and FIFO order), moving real
element arrays, then checks every rank's output buffer against the
collective's postcondition *numerically*: the expected value of any
output chunk is derived directly from the postcondition's chunk
identities (a sum of specific input chunks), so the check works for
every collective, including custom ones.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.buffers import Buffer
from ..core.chunk import InputChunk, ReductionChunk
from ..core.collectives import Collective
from ..core.errors import DeadlockError, VerificationError
from ..core.instructions import Op
from ..core.ir import MscclIr

DEFAULT_ELEMENTS_PER_CHUNK = 48

# Point-wise reduction operators (MPI_SUM / MAX / MIN / PROD).
_COMBINE = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}


class IrExecutor:
    """Executes an IR's data movement and validates the result."""

    def __init__(self, ir: MscclIr, collective: Collective,
                 elements_per_chunk: int = DEFAULT_ELEMENTS_PER_CHUNK,
                 seed: int = 0):
        self.ir = ir
        self.collective = collective
        self._combine = _COMBINE[getattr(collective, "reduce_op", "sum")]
        self.elements = elements_per_chunk
        self._rng = np.random.default_rng(seed)
        self.buffers: Dict[Tuple[int, Buffer], np.ndarray] = {}
        self.initial_inputs: Dict[int, np.ndarray] = {}
        self._allocate()

    # -- setup ---------------------------------------------------------
    def _allocate(self) -> None:
        for gpu in self.ir.gpus:
            rank = gpu.rank
            for buffer, chunks in (
                    (Buffer.INPUT, gpu.input_chunks),
                    (Buffer.OUTPUT, gpu.output_chunks),
                    (Buffer.SCRATCH, gpu.scratch_chunks)):
                self.buffers[(rank, buffer)] = np.full(
                    (chunks, self.elements), np.nan
                )
            # Initialize the precondition's input chunks with unique
            # random data (through the in-place alias when needed).
            inputs = self._rng.normal(
                size=(self.collective.input_chunks(rank), self.elements)
            )
            self.initial_inputs[rank] = inputs.copy()
            for index in range(inputs.shape[0]):
                buffer, canon = self.collective.alias(
                    rank, Buffer.INPUT, index
                )
                self.buffers[(rank, buffer)][canon] = inputs[index]

    # -- element slicing -------------------------------------------------
    def _slice(self, instr) -> slice:
        lo = int(self.elements * instr.frac_lo)
        hi = int(self.elements * instr.frac_hi)
        return slice(lo, hi)

    def _read(self, rank: int, span, sl: slice) -> np.ndarray:
        buffer, index, count = span
        return self.buffers[(rank, buffer)][index:index + count, sl].copy()

    def _write(self, rank: int, span, sl: slice, data: np.ndarray) -> None:
        buffer, index, count = span
        self.buffers[(rank, buffer)][index:index + count, sl] = data

    # -- execution -----------------------------------------------------------
    def run(self, max_idle_sweeps: int = 3) -> None:
        """Execute all thread blocks to completion (raises on deadlock)."""
        tbs = [
            (gpu.rank, tb) for gpu in self.ir.gpus
            for tb in gpu.threadblocks
        ]
        pcs = {(rank, tb.tb_id): 0 for rank, tb in tbs}
        done_steps: Dict[Tuple[int, int], int] = dict(pcs)
        # Per-connection message store, indexed by sequence tag, plus
        # the sender-side counter that assigns tags in program order.
        fifos: Dict[Tuple[int, int, int], Dict[int, object]] = {}
        self._send_counters: Dict[Tuple[int, int, int], int] = {}
        total = sum(len(tb.instructions) for _, tb in tbs)
        executed = 0
        idle_sweeps = 0
        while executed < total:
            progressed = False
            for rank, tb in tbs:
                key = (rank, tb.tb_id)
                while pcs[key] < len(tb.instructions):
                    instr = tb.instructions[pcs[key]]
                    if not self._ready(rank, tb, instr, done_steps, fifos):
                        break
                    self._execute(rank, tb, instr, fifos)
                    pcs[key] += 1
                    done_steps[key] = pcs[key]
                    executed += 1
                    progressed = True
            if not progressed:
                idle_sweeps += 1
                if idle_sweeps >= max_idle_sweeps:
                    stuck = {
                        (r, t.tb_id): pcs[(r, t.tb_id)]
                        for r, t in tbs
                        if pcs[(r, t.tb_id)] < len(t.instructions)
                    }
                    raise DeadlockError(
                        f"executor stuck with {total - executed} "
                        f"instructions remaining; blocked thread blocks: "
                        f"{sorted(stuck.items())[:8]}"
                    )
            else:
                idle_sweeps = 0

    def _ready(self, rank: int, tb, instr, done_steps, fifos) -> bool:
        for dep_tb, dep_step in instr.depends:
            if done_steps[(rank, dep_tb)] <= dep_step:
                return False
        if instr.op in (Op.RECV, Op.RECV_REDUCE_COPY, Op.RECV_COPY_SEND,
                        Op.RECV_REDUCE_COPY_SEND, Op.RECV_REDUCE_SEND):
            conn = (tb.recv_peer, rank, tb.channel)
            if instr.recv_seq not in fifos.get(conn, {}):
                return False
        return True

    def _execute(self, rank: int, tb, instr, fifos) -> None:
        sl = self._slice(instr)
        op = instr.op

        def push(data: np.ndarray) -> None:
            conn = (rank, tb.send_peer, tb.channel)
            seq = self._send_counters.get(conn, 0)
            self._send_counters[conn] = seq + 1
            fifos.setdefault(conn, {})[seq] = data

        def pop() -> np.ndarray:
            conn = (tb.recv_peer, rank, tb.channel)
            return fifos[conn].pop(instr.recv_seq)

        if op is Op.SEND:
            push(self._read(rank, instr.src, sl))
        elif op is Op.RECV:
            self._write(rank, instr.dst, sl, pop())
        elif op is Op.COPY:
            self._write(rank, instr.dst, sl, self._read(rank, instr.src, sl))
        elif op is Op.REDUCE:
            result = self._combine(self._read(rank, instr.src, sl),
                                   self._read(rank, instr.dst, sl))
            self._write(rank, instr.dst, sl, result)
        elif op is Op.RECV_REDUCE_COPY:
            result = self._combine(pop(),
                                   self._read(rank, instr.src, sl))
            self._write(rank, instr.dst, sl, result)
        elif op is Op.RECV_COPY_SEND:
            data = pop()
            self._write(rank, instr.dst, sl, data)
            push(data)
        elif op is Op.RECV_REDUCE_COPY_SEND:
            result = self._combine(pop(),
                                   self._read(rank, instr.src, sl))
            self._write(rank, instr.dst, sl, result)
            push(result)
        elif op is Op.RECV_REDUCE_SEND:
            # The reduced value is forwarded without a local store.
            push(self._combine(pop(),
                               self._read(rank, instr.src, sl)))
        else:  # pragma: no cover - enum is exhaustive
            raise VerificationError(f"unknown opcode {op}")

    # -- validation ------------------------------------------------------------
    def expected_chunk(self, rank: int, chunk_value) -> np.ndarray:
        """Numeric expectation for a postcondition chunk identity.

        The abstract identity is a multiset of contributing inputs; the
        numeric expectation folds them with the collective's operator
        (multiplicity matters for sum/prod, is idempotent for max/min).
        """
        if isinstance(chunk_value, InputChunk):
            return self.initial_inputs[chunk_value.rank][chunk_value.index]
        if isinstance(chunk_value, ReductionChunk):
            total = None
            for contrib, mult in chunk_value.contributions:
                value = self.initial_inputs[contrib.rank][contrib.index]
                repeats = (
                    mult if self._combine in (np.add, np.multiply) else 1
                )
                for _ in range(repeats):
                    total = (value.copy() if total is None
                             else self._combine(total, value))
            return total
        raise VerificationError(f"unexpected chunk value {chunk_value!r}")

    def check(self, rtol: float = 1e-9, atol: float = 1e-9) -> None:
        """Raise unless every constrained output chunk matches."""
        failures = []
        for gpu in self.ir.gpus:
            rank = gpu.rank
            output = self.buffers[(rank, Buffer.OUTPUT)]
            for index, value in self.collective.postcondition(rank).items():
                expected = self.expected_chunk(rank, value)
                actual = output[index]
                if not np.allclose(actual, expected, rtol=rtol, atol=atol,
                                   equal_nan=False):
                    failures.append((rank, index))
        if failures:
            raise VerificationError(
                f"data-level check failed for {len(failures)} output "
                f"chunks, e.g. {failures[:5]}"
            )

    def run_and_check(self) -> None:
        """Convenience: execute then validate."""
        self.run()
        self.check()
