"""The NCCL-style Ring AllReduce baseline.

Section 7.1.1 of the paper reverse-engineers NCCL's Ring schedule as
"roughly equivalent to scheduling a logical ring onto one channel,
parallelizing the entire program 24 times, and varying the protocol
based on the buffer size". On multiple nodes, NCCL's topology search
additionally builds its rings with *different* node-internal orderings
so each ring crosses the node boundary on a different GPU's NIC,
spreading inter-node traffic over all NICs. Both aspects are modeled
here — through the same compiler and simulator as every MSCCLang
program, so comparisons isolate the schedule, not the machinery.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.collectives import AllReduce
from ..core.program import MSCCLProgram, chunk

MAX_NCCL_CHANNELS = 24


def _ring_order(num_nodes: int, gpus_per_node: int,
                rotation: int) -> List[int]:
    """Rank order of one ring: GPU order rotated inside every node.

    Rotation ``j`` makes the boundary hop leave each node from GPU
    ``(j - 1) % G`` and enter the next at GPU ``j % G``, so different
    rings use different NICs.
    """
    order = []
    for node in range(num_nodes):
        for i in range(gpus_per_node):
            order.append(node * gpus_per_node
                         + (i + rotation) % gpus_per_node)
    return order


def nccl_ring_allreduce(num_ranks: int, *,
                        gpus_per_node: Optional[int] = None,
                        rings: int = 1,
                        instances: int = MAX_NCCL_CHANNELS,
                        protocol: str = "Simple") -> MSCCLProgram:
    """NCCL's Ring AllReduce schedule.

    ``rings`` logical rings with rotated node-internal orderings share
    the chunks (ring ``j`` owns chunks ``j mod rings``); the whole
    program is then parallelized ``instances`` times. On a single node
    ``rings=1`` reproduces the paper's "one channel, 24 instances".
    """
    g = gpus_per_node or num_ranks
    if num_ranks % g:
        raise ValueError("num_ranks must be a multiple of gpus_per_node")
    if num_ranks % rings:
        raise ValueError("rings must divide num_ranks")
    num_nodes = num_ranks // g
    collective = AllReduce(num_ranks, chunk_factor=num_ranks, in_place=True)
    label = (
        f"nccl_ring_allreduce_{num_ranks}_rings{rings}"
        f"_r{instances}_{protocol.lower()}"
    )
    with MSCCLProgram(label, collective, gpus_per_node=g,
                      protocol=protocol, instances=instances) as program:
        for index in range(num_ranks):
            ring = index % rings
            order = _ring_order(num_nodes, g, ring % g)
            position = order.index(index)  # the chunk starts at its owner
            c = chunk(order[(position + 1) % num_ranks], "in", index)
            for step in range(1, num_ranks):
                nxt = order[(position + 1 + step) % num_ranks]
                c = chunk(nxt, "in", index).reduce(c, ch=ring)
            for step in range(num_ranks - 1):
                nxt = order[(position + 1 + step) % num_ranks]
                c = c.copy(nxt, "in", index, ch=ring)
    return program


def default_rings(num_nodes: int, gpus_per_node: int) -> int:
    """How many distinct rings NCCL builds: one per NIC path when the
    topology is multi-node, a single logical ring otherwise."""
    if num_nodes <= 1:
        return 1
    return min(gpus_per_node, 8)


def select_protocol(buffer_bytes: float) -> str:
    """NCCL's size-based protocol choice.

    NCCL's internal latency/bandwidth model abandons LL well before LL
    stops being the best choice for this topology — which is exactly the
    band (32KB-3MB) where the paper's multi-channel LL Ring wins by up
    to 1.9x (section 7.1.1).
    """
    if buffer_bytes <= 32 * 1024:
        return "LL"
    if buffer_bytes <= 1024 * 1024:
        return "LL128"
    return "Simple"


def select_instances(buffer_bytes: float, rings: int = 1) -> int:
    """NCCL's parallelization: 24 channels total across its rings."""
    del buffer_bytes
    return max(1, MAX_NCCL_CHANNELS // rings)
