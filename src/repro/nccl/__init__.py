"""NCCL-style baseline schedules and the size-based selection model."""

from .ring import (
    MAX_NCCL_CHANNELS,
    default_rings,
    nccl_ring_allreduce,
    select_instances,
    select_protocol,
)
from .selector import NcclModel
from .tree import nccl_tree_allreduce

__all__ = [
    "MAX_NCCL_CHANNELS",
    "default_rings",
    "NcclModel",
    "nccl_ring_allreduce",
    "nccl_tree_allreduce",
    "select_instances",
    "select_protocol",
]
